//! Backend-registry acceptance (DESIGN.md §13): enumerating the
//! campaign line-up from [`hybridem::core::registry::paper_registry`]
//! is a pure refactor — every family the old hand-built list produced
//! yields byte-identical campaign points — and the registry's
//! selection rule is monotone in SNR: more SNR never buys a more
//! expensive backend, and never loses feasibility.

use hybridem::comm::campaign::{run_campaign, CampaignSpec, DemapperFamily, EarlyStop};
use hybridem::comm::constellation::Constellation;
use hybridem::comm::demapper::MaxLogMap;
use hybridem::comm::snr::{ebn0_to_esn0_db, noise_sigma};
use hybridem::core::config::SystemConfig;
use hybridem::core::eval::{campaign_families, paper_scenarios};
use hybridem::core::hybrid::HybridDemapper;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::core::qat::{qat_quantized_demapper, QatConfig};
use hybridem::core::registry::{switch_registry, BackendRegistry};
use hybridem::fpga::demapper_accel::{SoftDemapperAccel, SoftDemapperConfig};
use hybridem::fpga::graph::QuantizedGraph;
use hybridem::mathkit::json::ToJson;
use proptest::prelude::*;
use std::sync::OnceLock;

fn trained_pipe() -> HybridPipeline {
    let mut pipe = HybridPipeline::new(SystemConfig::fast_test().at_snr(8.0));
    pipe.e2e_train();
    pipe.extract_centroids();
    pipe
}

/// Per-dimension σ on the paper's Eb/N0 axis — the exact conversion
/// the pre-registry family list used.
fn sigma_ebn0(snr_db: f64, bits: usize) -> f32 {
    noise_sigma(ebn0_to_esn0_db(snr_db, bits), 1.0) as f32
}

/// The pre-registry hand-built family list, reconstructed verbatim:
/// conventional max-log, AE-inference, hybrid centroids, the
/// fixed-point accelerator, and one QAT family per graph.
fn hand_built<'a>(
    pipe: &'a HybridPipeline,
    accel_cfg: SoftDemapperConfig,
    quantized: &'a [QuantizedGraph],
) -> Vec<DemapperFamily<'a>> {
    let hybrid = pipe.hybrid_demapper().expect("centroids extracted");
    let m = pipe.constellation().bits_per_symbol();
    let qam = Constellation::qam_gray(pipe.config().num_symbols());
    let learned = pipe.constellation();
    let centroids = hybrid.centroids().clone();
    let accel_centroids = centroids.points().to_vec();
    let conv_tx = qam.clone();
    let mut families = vec![
        DemapperFamily::new(
            "conventional",
            conv_tx,
            Box::new(move |snr| Box::new(MaxLogMap::new(qam.clone(), sigma_ebn0(snr, m)))),
        ),
        DemapperFamily::new(
            "AE-inference",
            learned.clone(),
            Box::new(move |_snr| Box::new(pipe.ann_demapper())),
        ),
        DemapperFamily::new(
            "hybrid-centroids",
            learned.clone(),
            Box::new(move |snr| {
                Box::new(HybridDemapper::from_centroids(
                    centroids.clone(),
                    sigma_ebn0(snr, m),
                ))
            }),
        ),
        DemapperFamily::new(
            "fixed-point-accel",
            learned.clone(),
            Box::new(move |snr| {
                Box::new(SoftDemapperAccel::new(
                    accel_cfg.clone(),
                    &accel_centroids,
                    sigma_ebn0(snr, m),
                ))
            }),
        ),
    ];
    for graph in quantized {
        families.push(DemapperFamily::new(
            format!("ann-qat-w{}", graph.weight_bits()),
            learned.clone(),
            Box::new(move |_snr| Box::new(graph)),
        ));
    }
    families
}

/// Runs a seeded micro-campaign (one AWGN scenario, two grid SNRs,
/// tight symbol cap) and returns `(family, point-json)` rows.
fn micro_points(families: Vec<DemapperFamily<'_>>) -> Vec<(String, String)> {
    let mut scenarios = paper_scenarios(4);
    scenarios.truncate(1);
    let mut spec = CampaignSpec::new(families, scenarios, vec![4.0, 8.0], 0xD0_0D);
    spec.name = "registry-equivalence-micro".to_string();
    spec.stop = EarlyStop::paper_default().capped(2_048);
    let report = run_campaign(&spec);
    report.validate().unwrap();
    report
        .points
        .iter()
        .map(|p| (p.family.clone(), p.to_json().to_string_pretty()))
        .collect()
}

/// The registry-enumerated campaign reproduces the hand-built list's
/// points byte-for-byte. The registry appends two new families
/// (exact-logmap, snn-event) after the historical ones, so the shared
/// families occupy the same seed-bearing matrix rows; their cells must
/// therefore serialise identically.
#[test]
fn registry_campaign_matches_the_hand_built_line_up() {
    let pipe = trained_pipe();
    let mut qcfg = QatConfig::at_bits(8);
    qcfg.steps = 40;
    let quantized = vec![qat_quantized_demapper(&pipe, &qcfg)];
    let accel_cfg = SoftDemapperConfig::paper_default();

    let via_registry = micro_points(campaign_families(&pipe, accel_cfg.clone(), &quantized));
    let by_hand = micro_points(hand_built(&pipe, accel_cfg, &quantized));

    let hand_names: Vec<&str> = ["conventional", "AE-inference", "hybrid-centroids"]
        .into_iter()
        .chain(["fixed-point-accel", "ann-qat-w8"])
        .collect();
    let shared: Vec<&(String, String)> = via_registry
        .iter()
        .filter(|(fam, _)| hand_names.contains(&fam.as_str()))
        .collect();
    assert_eq!(shared.len(), by_hand.len(), "one row per historical cell");
    for (reg_row, hand_row) in shared.iter().zip(&by_hand) {
        assert_eq!(reg_row.0, hand_row.0, "family order preserved");
        assert_eq!(
            reg_row.1, hand_row.1,
            "registry family {} must reproduce the hand-built points byte-for-byte",
            reg_row.0
        );
    }
    // And the registry adds the two new families on top.
    assert!(via_registry.iter().any(|(f, _)| f == "exact-logmap"));
    assert!(via_registry.iter().any(|(f, _)| f == "snn-event"));
}

/// One shared registry for the selection properties — built once; the
/// pipeline training dominates the test's cost.
fn shared_registry() -> &'static BackendRegistry {
    static REG: OnceLock<BackendRegistry> = OnceLock::new();
    REG.get_or_init(|| switch_registry(&trained_pipe(), &[]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Selection is monotone in SNR: raising Es/N0 (a) never loses
    /// feasibility, and (b) never selects a backend that is strictly
    /// more expensive than the low-SNR choice at the same operating
    /// point — the controller's downshift-on-rising-SNR behaviour is
    /// a theorem of the rule, not a tuning accident.
    #[test]
    fn selection_is_monotone_in_snr(lo in -5.0f64..30.0, delta in 0.0f64..20.0) {
        let reg = shared_registry();
        let target = 2e-2;
        let hi = lo + delta;
        if let Some(a) = reg.select(lo, target) {
            let b = reg.select(hi, target)
                .expect("feasible at lo ⇒ feasible at hi (predicted BER decreasing in SNR)");
            let cost_a = reg.get(a).cost(hi);
            let cost_b = reg.get(b).cost(hi);
            prop_assert!(
                !cost_a.cheaper_than(&cost_b),
                "selection at {hi:.2} dB ({}) costs more than the {lo:.2} dB choice ({})",
                reg.get(b).name(),
                reg.get(a).name()
            );
        }
        // The graceful-floor variant always returns something and
        // agrees with `select` whenever the target is reachable.
        let floor = reg.select_or_best(hi, target);
        if let Some(b) = reg.select(hi, target) {
            prop_assert_eq!(floor, b);
        }
    }
}
