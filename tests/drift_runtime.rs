//! Thread-count determinism and drift-recovery claims of the online
//! runtime artefact (DESIGN.md §10).
//!
//! This test mutates `HYBRIDEM_THREADS` between campaign runs, so it
//! lives alone in its own test binary (see `tests/campaign_threads.rs`
//! for the glibc `set_var`/`getenv` race rationale). One trained
//! pipeline backs every run; the drift campaign itself is repeated
//! under different worker counts and must serialise to the same bytes,
//! and the resulting report must show the adaptive-hybrid family
//! re-converging after every recoverable scripted drift while the
//! frozen-ANN family stays broken on the persistent ones.

use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::core::runtime::{
    drift_families, drift_suite, run_drift_campaign, DriftCampaignSpec, DriftRuntimeReport,
    LinkParams, RECOVERY_WINDOW,
};
use hybridem::mathkit::json::{FromJson, Json, ToJson};

#[test]
fn drift_artefact_is_thread_invariant_and_recovers_as_scripted() {
    // One AE shared by all runs: fast-test budgets land the hybrid at
    // ≈ 3 % clean BER, well inside the default 5 % retrain threshold
    // (same regime as the HYBRIDEM_QUICK CI smoke).
    let mut cfg = SystemConfig::fast_test().at_snr(8.0);
    cfg.retrain_steps = 400;
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();

    let params = LinkParams::default();
    let run = |pipe: &HybridPipeline| {
        // Three scenarios keep the debug-mode budget honest while
        // covering all claim kinds: both-recover (burst), the paper's
        // adaptive-recovers/frozen-does-not step, and the CFO pulse
        // whose rotation persists after the rate returns to zero.
        let scenarios = drift_suite(pipe.config().es_n0_db())
            .into_iter()
            .filter(|s| {
                matches!(
                    s.trajectory.name.as_str(),
                    "phase-step" | "cfo-drift" | "burst-interference"
                )
            })
            .collect();
        let spec = DriftCampaignSpec {
            name: "drift-threads".to_string(),
            families: drift_families(pipe, &params),
            scenarios,
            links: 2,
            params: params.clone(),
            seed: 31,
        };
        run_drift_campaign(&spec).to_json().to_string_pretty()
    };

    // Byte-identical artefact at 1 and 8 worker threads
    // (HYBRIDEM_THREADS is read per parallel region, so setting it
    // between runs is effective).
    let previous = std::env::var("HYBRIDEM_THREADS").ok();
    std::env::set_var("HYBRIDEM_THREADS", "1");
    let serial = run(&pipe);
    std::env::set_var("HYBRIDEM_THREADS", "8");
    let parallel = run(&pipe);
    match previous {
        Some(v) => std::env::set_var("HYBRIDEM_THREADS", v),
        None => std::env::remove_var("HYBRIDEM_THREADS"),
    }
    assert_eq!(
        serial, parallel,
        "drift artefact changed with HYBRIDEM_THREADS"
    );

    // Schema round trip + the drift claims themselves.
    let report = DriftRuntimeReport::from_json(&Json::parse(&serial).unwrap())
        .expect("artefact matches the DriftRuntimeReport schema");
    report.validate().expect("artefact invariants");
    report
        .validate_recovery()
        .expect("adaptive recovers, frozen does not");

    // Spell the headline claim out explicitly rather than trusting
    // validate_recovery alone: after the π/4 step and the CFO pulse
    // the adaptive family is back within 2× of its pre-drift BER over
    // the final window, the frozen family is ≥ 4× worse, and every
    // adaptive link logged a trigger→swap cycle with nonzero modelled
    // latency.
    for scenario in ["phase-step", "cfo-drift"] {
        let row = |family: &str| {
            report
                .rows
                .iter()
                .find(|r| r.family == family && r.trajectory == scenario)
                .unwrap_or_else(|| panic!("missing row {family}/{scenario}"))
        };
        let adaptive = row("adaptive-hybrid");
        let frozen = row("frozen-ann");
        let post = |r: &hybridem::core::runtime::DriftRow| {
            r.window_ber(r.frames - RECOVERY_WINDOW, r.frames)
        };
        let base_a = adaptive.window_ber(0, adaptive.baseline_frames);
        assert!(
            post(adaptive) <= 2.0 * base_a + 2e-3,
            "{scenario}: adaptive must re-converge ({:.3e} vs baseline {:.3e})",
            post(adaptive),
            base_a
        );
        let base_f = frozen.window_ber(0, frozen.baseline_frames);
        assert!(
            post(frozen) >= 4.0 * base_f,
            "{scenario}: frozen must stay broken ({:.3e} vs baseline {:.3e})",
            post(frozen),
            base_f
        );
        for link in 0..report.links {
            assert!(
                adaptive.retrain_events.iter().any(|e| e.link == link),
                "{scenario}: adaptive link {link} must log a retrain cycle"
            );
        }
        assert!(
            adaptive
                .retrain_events
                .iter()
                .all(|e| e.latency_frames >= 1 && e.swap_frame < adaptive.frames),
            "{scenario}: swaps happen mid-stream with modelled latency"
        );
        assert_eq!(frozen.retrains, 0, "frozen family never retrains");
    }
}
