//! Integration: extraction on a *conventional* decision rule recovers
//! the conventional receiver exactly — the cleanest validity check of
//! the centroid pipeline, and a property-based sweep over rotations.

use hybridem::comm::channel::{Awgn, Channel, ChannelChain};
use hybridem::comm::constellation::Constellation;
use hybridem::comm::linksim::{simulate_link, LinkSpec};
use hybridem::comm::snr::noise_sigma;
use hybridem::core::extraction::{extract_from_decider, ExtractionConfig};
use hybridem::core::hybrid::HybridDemapper;
use proptest::prelude::*;

#[test]
fn extracted_qam_centroids_reach_theoretical_ber() {
    // Extract from the exact 16-QAM ML rule, demap with the extracted
    // centroids, compare to the closed-form curve.
    let qam = Constellation::qam_gray(16);
    let es_n0 = hybridem::comm::snr::ebn0_to_esn0_db(6.0, 4);
    let sigma = noise_sigma(es_n0, 1.0) as f32;
    let cfg = ExtractionConfig::new(192, 4.0 / 3.0);
    let report = extract_from_decider(|y| qam.nearest(y), 4, &cfg, &qam);
    assert!(report.missing_labels.is_empty());

    let hybrid = HybridDemapper::from_extraction(&report, sigma);
    let channel = Awgn::new(sigma);
    let r = simulate_link(&LinkSpec::new(
        &qam,
        &channel as &dyn Channel,
        &hybrid,
        400_000,
        13,
    ));
    let theory = hybridem::comm::theory::ber_qam16_gray(es_n0);
    assert!(
        r.bit_errors.consistent_with(theory, 4.4),
        "extracted-centroid BER {} vs theory {theory}",
        r.ber()
    );
}

#[test]
fn rotated_decider_compensates_rotated_channel() {
    // The hybrid mechanism in isolation: extract from a rotated ML
    // rule, run over the matching rotated channel, reach the unrotated
    // baseline BER.
    let theta = std::f32::consts::FRAC_PI_4;
    let qam = Constellation::qam_gray(16);
    let es_n0 = hybridem::comm::snr::ebn0_to_esn0_db(8.0, 4);
    let sigma = noise_sigma(es_n0, 1.0) as f32;
    let rotated_rule = qam.rotated(theta);
    let cfg = ExtractionConfig::new(192, 4.0 / 3.0);
    let report = extract_from_decider(|y| rotated_rule.nearest(y), 4, &cfg, &qam);

    let hybrid = HybridDemapper::from_extraction(&report, sigma);
    let channel = ChannelChain::phase_then_awgn(theta, es_n0);
    let r = simulate_link(&LinkSpec::new(
        &qam,
        &channel as &dyn Channel,
        &hybrid,
        400_000,
        17,
    ));
    let theory = hybridem::comm::theory::ber_qam16_gray(es_n0);
    assert!(
        r.bit_errors.consistent_with(theory, 4.4),
        "compensated BER {} vs baseline {theory}",
        r.ber()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any rotation angle, extraction from the rotated rule yields
    /// centroids whose nearest-rotated-point label is their own label
    /// (the Voronoi property survives sampling).
    #[test]
    fn extraction_label_consistency_under_rotation(theta in -3.1f32..3.1) {
        let qam = Constellation::qam_gray(16);
        let rotated = qam.rotated(theta);
        let cfg = ExtractionConfig::new(96, 4.0 / 3.0);
        let report = extract_from_decider(|y| rotated.nearest(y), 4, &cfg, &qam);
        prop_assert!(report.missing_labels.is_empty());
        for (u, c) in report.centroids.iter().enumerate() {
            prop_assert_eq!(rotated.nearest(*c), u, "label {} misplaced", u);
        }
        prop_assert!(report.voronoi_disagreement < 0.08);
    }

    /// Max-log demapping on extracted centroids never flips clean
    /// (noise-free) symbol decisions, whatever the rotation.
    #[test]
    fn clean_symbols_always_decode(theta in -0.7f32..0.7) {
        let qam = Constellation::qam_gray(16);
        let rotated = qam.rotated(theta);
        let cfg = ExtractionConfig::new(96, 4.0 / 3.0);
        let report = extract_from_decider(|y| rotated.nearest(y), 4, &cfg, &qam);
        let hybrid = HybridDemapper::from_extraction(&report, 0.1);
        use hybridem::comm::demapper::Demapper;
        let mut bits = [0u8; 4];
        for u in 0..16 {
            hybrid.hard_decide(rotated.point(u), &mut bits);
            let mut label = 0usize;
            for &b in &bits {
                label = (label << 1) | b as usize;
            }
            prop_assert_eq!(label, u);
        }
    }
}
