//! Integration: the hybrid extraction against the classical data-aided
//! baseline (pilot conditional means). On a pure phase-offset channel
//! both must compensate; the comparison isolates what the learned
//! decision regions contribute beyond a constellation shift.

use hybridem::comm::channel::{Channel, ChannelChain};
use hybridem::comm::linksim::{simulate_link, LinkSpec};
use hybridem::core::config::SystemConfig;
use hybridem::core::hybrid::HybridDemapper;
use hybridem::core::pilot_centroids::estimate_from_pilots;
use hybridem::core::pipeline::HybridPipeline;

#[test]
fn pilot_baseline_and_extraction_both_compensate_rotation() {
    let theta = std::f32::consts::FRAC_PI_4;
    let mut cfg = SystemConfig::fast_test();
    cfg.e2e_steps = 2500;
    cfg.batch_size = 256;
    cfg.retrain_steps = 800;
    cfg.grid_n = 96;
    let snr_es = cfg.es_n0_db();
    let sigma = cfg.sigma();

    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();
    let learned = pipe.constellation();

    // Baseline: conditional means of pilots through the live channel.
    let mut live = ChannelChain::phase_then_awgn(theta, snr_es);
    let pilot_constellation = estimate_from_pilots(&learned, &mut live, 64_000, 5);
    let pilot_demapper = HybridDemapper::from_centroids(pilot_constellation, sigma);

    // Paper's route: retrain the ANN, re-extract.
    let mut live = ChannelChain::phase_then_awgn(theta, snr_es);
    let _ = pipe.retrain(&mut live);
    let extracted_demapper = pipe.hybrid_demapper().unwrap();

    let channel = ChannelChain::phase_then_awgn(theta, snr_es);
    let symbols = 150_000;
    let ber_pilot = simulate_link(&LinkSpec::new(
        &learned,
        &channel as &dyn Channel,
        &pilot_demapper,
        symbols,
        31,
    ))
    .ber();
    let ber_extracted = simulate_link(&LinkSpec::new(
        &learned,
        &channel as &dyn Channel,
        extracted_demapper,
        symbols,
        32,
    ))
    .ber();

    // Both compensate the rotation: an uncompensated receiver sits
    // near BER 0.3; both of these must be an order of magnitude below.
    assert!(ber_pilot < 0.05, "pilot baseline failed: {ber_pilot}");
    assert!(ber_extracted < 0.05, "extraction failed: {ber_extracted}");
    // And they land in the same class (within 2× of each other): for a
    // pure rotation the ANN cannot beat the matched-constellation
    // baseline, and extraction should not trail it badly either.
    let ratio = ber_extracted / ber_pilot.max(1e-6);
    assert!(
        (0.3..4.0).contains(&ratio),
        "pilot {ber_pilot} vs extracted {ber_extracted}"
    );
}
