//! Cross-crate integration: the full hybrid flow from training to
//! deployment, asserting the paper's qualitative claims end to end.

use hybridem::comm::channel::Awgn;
use hybridem::comm::snr::ebn0_to_esn0_db;
use hybridem::comm::theory::ber_qam16_gray;
use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::{HybridPipeline, Phase};

fn trained_pipeline(snr_db: f64) -> HybridPipeline {
    let mut cfg = SystemConfig::fast_test().at_snr(snr_db);
    cfg.e2e_steps = 2500;
    cfg.batch_size = 256;
    cfg.grid_n = 96;
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();
    pipe
}

#[test]
fn fig2_point_all_three_receivers_on_one_level() {
    // One Fig. 2 operating point at 8 dB: conventional, AE and hybrid
    // must land in the same BER class, near the closed-form curve.
    let pipe = trained_pipeline(8.0);
    assert_eq!(pipe.phase(), Phase::Inference);
    let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());
    let points = pipe.evaluate_three(&channel, 200_000, 1);
    let theory = ber_qam16_gray(ebn0_to_esn0_db(8.0, 4));

    let conventional = points[0].ber;
    let ae = points[1].ber;
    let hybrid = points[2].ber;
    // Conventional matches theory within Monte-Carlo confidence.
    assert!(
        points[0].bit_errors as f64 > 50.0,
        "need errors for a meaningful comparison"
    );
    assert!(
        (conventional / theory - 1.0).abs() < 0.25,
        "conventional {conventional} vs theory {theory}"
    );
    // The learned system tracks the conventional one (paper Fig. 2).
    assert!(
        ae < conventional * 2.0,
        "ae {ae} vs conventional {conventional}"
    );
    assert!(hybrid < ae * 1.6, "hybrid {hybrid} vs ae {ae}");
    // Mutual information is near one bit per bit at this SNR.
    assert!(points[1].mi > 0.9, "AE MI {}", points[1].mi);
}

#[test]
fn learned_constellation_is_sane() {
    let pipe = trained_pipeline(8.0);
    let c = pipe.constellation();
    assert_eq!(c.size(), 16);
    assert!((c.avg_energy() - 1.0).abs() < 1e-4, "power constraint");
    // A converged 16-point constellation at 8 dB has a minimum distance
    // in the same class as 16-QAM's (0.632); allow a generous floor.
    assert!(c.min_distance() > 0.3, "min distance {}", c.min_distance());
}

#[test]
fn extraction_is_deterministic() {
    let a = trained_pipeline(8.0);
    let b = trained_pipeline(8.0);
    let ra = a.extraction_report().unwrap();
    let rb = b.extraction_report().unwrap();
    assert_eq!(ra.centroids.len(), rb.centroids.len());
    for (x, y) in ra.centroids.iter().zip(&rb.centroids) {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "bit-identical replay");
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}

#[test]
fn centroid_voronoi_consistency_is_tight_after_training() {
    let pipe = trained_pipeline(8.0);
    let report = pipe.extraction_report().unwrap();
    // The paper's premise: the trained demapper's decision regions act
    // like a Voronoi diagram of the extracted centroids.
    assert!(
        report.voronoi_disagreement < 0.25,
        "disagreement {}",
        report.voronoi_disagreement
    );
    assert!(report.missing_labels.len() <= 2);
}
