//! Integration: the Table-1 adaptation loop — π/4 phase offset breaks
//! the receivers, monitored pilots trigger a retrain, retraining
//! restores performance near the baseline.

use hybridem::comm::channel::{Channel, ChannelChain};
use hybridem::comm::demapper::Demapper;
use hybridem::core::adapt::{AdaptThresholds, AdaptationController, Recommendation};
use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::mathkit::rng::{Rng64, Xoshiro256pp};

fn trained(snr_db: f64) -> HybridPipeline {
    let mut cfg = SystemConfig::fast_test().at_snr(snr_db);
    cfg.e2e_steps = 2500;
    cfg.batch_size = 256;
    cfg.retrain_steps = 800;
    cfg.grid_n = 96;
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();
    pipe
}

/// Sends pilot frames through the channel, returns (tx, rx) bits
/// decided by the pipeline's hybrid demapper.
fn pilot_round(
    pipe: &HybridPipeline,
    channel: &mut dyn Channel,
    rng: &mut Xoshiro256pp,
    n_symbols: usize,
) -> (Vec<u8>, Vec<u8>) {
    let constellation = pipe.constellation();
    let hybrid = pipe.hybrid_demapper().unwrap();
    let m = constellation.bits_per_symbol();
    let mut tx = Vec::with_capacity(n_symbols * m);
    let mut syms = Vec::with_capacity(n_symbols);
    for _ in 0..n_symbols {
        let u = (rng.next_u64() >> (64 - m)) as usize;
        for k in 0..m {
            tx.push(((u >> (m - 1 - k)) & 1) as u8);
        }
        syms.push(constellation.point(u));
    }
    channel.transmit(&mut syms, rng);
    let mut rx = vec![0u8; n_symbols * m];
    hybrid.hard_decide_block(&syms, &mut rx);
    (tx, rx)
}

#[test]
fn table1_loop_detect_retrain_recover() {
    let theta = std::f32::consts::FRAC_PI_4;
    let mut pipe = trained(8.0);
    let es = pipe.config().es_n0_db();
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let mut controller = AdaptationController::new(AdaptThresholds::default());

    // Healthy channel: no trigger.
    let mut clean = ChannelChain::phase_then_awgn(0.0, es);
    for _ in 0..4 {
        let (tx, rx) = pilot_round(&pipe, &mut clean, &mut rng, 512);
        controller.observe_pilot_bits(&tx, &rx);
    }
    assert_eq!(controller.recommendation(), Recommendation::Continue);
    assert!(controller.is_healthy());

    // Phase jump: trigger within a few pilot rounds.
    controller.reset_after_retrain(); // clear healthy history
    let mut rotated = ChannelChain::phase_then_awgn(theta, es);
    let mut triggered = false;
    for _ in 0..8 {
        let (tx, rx) = pilot_round(&pipe, &mut rotated, &mut rng, 512);
        controller.observe_pilot_bits(&tx, &rx);
        if controller.recommendation() == Recommendation::Retrain {
            triggered = true;
            break;
        }
    }
    assert!(triggered, "π/4 offset must trigger a retrain");

    // Retrain and verify recovery (Table 1's after-retraining rows).
    let before = pipe.evaluate_three(&rotated, 60_000, 7)[2].ber;
    let mut live = ChannelChain::phase_then_awgn(theta, es);
    let report = pipe.retrain(&mut live);
    assert!(report.final_loss < report.initial_loss * 0.5);
    let after = pipe.evaluate_three(&rotated, 60_000, 8)[2].ber;
    assert!(
        after < before * 0.25,
        "hybrid BER must recover: {before} → {after}"
    );
    // Post-retrain pilots look healthy again.
    controller.reset_after_retrain();
    let mut live = ChannelChain::phase_then_awgn(theta, es);
    for _ in 0..4 {
        let (tx, rx) = pilot_round(&pipe, &mut live, &mut rng, 512);
        controller.observe_pilot_bits(&tx, &rx);
    }
    assert_eq!(controller.recommendation(), Recommendation::Continue);
}

#[test]
fn fig3_regions_rotate_with_retraining() {
    let theta = std::f32::consts::FRAC_PI_4;
    let mut pipe = trained(8.0);
    let es = pipe.config().es_n0_db();
    let before = pipe.extraction_report().unwrap().clone();

    let mut live = ChannelChain::phase_then_awgn(theta, es);
    let _ = pipe.retrain(&mut live);
    let after = pipe.extraction_report().unwrap();

    // Mean angular displacement of confident centroids ≈ θ.
    let mut rot = 0.0f64;
    let mut n = 0;
    for (b, a) in before.centroids.iter().zip(&after.centroids) {
        if b.abs() > 0.4 && a.abs() > 0.4 {
            let mut d = (a.arg() - b.arg()) as f64;
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            rot += d;
            n += 1;
        }
    }
    let mean = rot / n as f64;
    assert!(
        (mean - std::f64::consts::FRAC_PI_4).abs() < 0.2,
        "centroids should rotate by ≈π/4, got {mean:.3} rad over {n} centroids"
    );
}
