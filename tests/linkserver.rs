//! Serving-fabric acceptance (DESIGN.md §12): the aggregate artefact
//! of a [`LinkServer`] run is byte-identical across worker counts and
//! batch sizes — per-session RNG streams, bit-exact block demapping
//! and integer slab-order folds make the report a pure function of the
//! submitted work — and a thousand-link mixed-backend fleet drains
//! with bounded queues.

use hybridem::comm::constellation::Constellation;
use hybridem::comm::demapper::MaxLogMap;
use hybridem::comm::trajectory::{ChannelState, Trajectory};
use hybridem::core::server::{Admit, LinkServer, ServerCfg, SessionCfg};
use hybridem::fixed::{QFormat, QuantSpec, Rounding};
use hybridem::fpga::graph::compile;
use hybridem::mathkit::json::ToJson;
use hybridem::mathkit::rng::Xoshiro256pp;
use hybridem::nn::model::MlpSpec;
use std::sync::Arc;

/// A server with the paper's two serving backends: the conventional
/// QAM-16 max-log kernel and a compiled integer `QuantizedGraph`.
fn mixed_server(cfg: ServerCfg) -> (LinkServer, [hybridem::core::server::BackendId; 2]) {
    let qam = Constellation::qam_gray(16);
    let mut server = LinkServer::new(cfg);
    let maxlog =
        server.register_backend(qam.clone(), Arc::new(MaxLogMap::new(qam.clone(), 0.2)) as _);
    let model = MlpSpec::paper_demapper().build(&mut Xoshiro256pp::seed_from_u64(3));
    let q = |fmt: QFormat| QuantSpec {
        format: fmt,
        rounding: Rounding::Nearest,
    };
    let graph = compile(
        &model,
        &[
            q(QFormat::signed(8, 5)),
            q(QFormat::signed(8, 4)),
            q(QFormat::signed(8, 4)),
            q(QFormat::unsigned(8, 8)),
        ],
    );
    let graph_id = server.register_backend(qam, Arc::new(graph) as _);
    (server, [maxlog, graph_id])
}

/// Opens a mixed fleet (alternating backends, two frame geometries,
/// noisy channels), submits a staggered frame load, serves it, and
/// returns the serialised aggregate.
fn serve_fleet(cfg: ServerCfg, links: u64) -> String {
    let (mut server, backends) = mixed_server(cfg);
    let ids: Vec<_> = (0..links)
        .map(|i| {
            let mut scfg = SessionCfg::new(
                backends[(i % 2) as usize],
                Trajectory::constant("awgn", ChannelState::clean(6.0 + (i % 5) as f64), 1),
                0xF1EE7 + i,
            );
            scfg.frame_symbols = if i % 3 == 0 { 48 } else { 32 };
            scfg.pilot_symbols = 8;
            server.open_session(scfg)
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        server.submit(id, 1 + (i % 4) as u32).unwrap();
    }
    server.serve();
    // Queue one more frame on every session about to close: closing
    // with work still queued exercises the dropped-frame accounting
    // inside the pinned artefact.
    for &id in ids.iter().step_by(7) {
        server.submit(id, 1).unwrap();
    }
    for &id in ids.iter().step_by(7) {
        let stats = server.close_session(id).unwrap();
        assert_eq!(stats.dropped_frames, 1, "queued frame dropped at close");
    }
    // Mid-stream backend migration ahead of the second wave: survivors
    // swap batch groups, so the byte-identity claim covers sessions
    // that changed demapper mid-stream.
    for (i, &id) in ids.iter().enumerate().skip(1).step_by(7) {
        server.switch_backend(id, backends[(i + 1) % 2]).unwrap();
    }
    for &id in ids.iter().skip(1).step_by(7) {
        server.submit(id, 2).unwrap();
    }
    server.serve();
    let report = server.aggregate();
    report.validate().unwrap();
    assert_eq!(
        report.submitted_frames,
        report.frames + report.shed_frames + report.dropped_frames + report.pending_frames,
        "frame conservation"
    );
    report.to_json().to_string_pretty()
}

#[test]
fn aggregate_is_byte_identical_across_worker_counts() {
    let cfg = |workers| ServerCfg {
        workers,
        queue_cap: 16,
        batch_links: 8,
    };
    let one = serve_fleet(cfg(1), 61);
    assert_eq!(one, serve_fleet(cfg(2), 61));
    assert_eq!(one, serve_fleet(cfg(5), 61));
}

#[test]
fn aggregate_is_byte_identical_across_batch_sizes() {
    let cfg = |batch_links| ServerCfg {
        workers: 4,
        queue_cap: 16,
        batch_links,
    };
    let unbatched = serve_fleet(cfg(1), 47);
    assert_eq!(unbatched, serve_fleet(cfg(3), 47));
    assert_eq!(unbatched, serve_fleet(cfg(256), 47));
}

#[test]
fn thousand_link_fleet_drains_with_bounded_queues() {
    let (mut server, backends) = mixed_server(ServerCfg {
        workers: 4,
        queue_cap: 2,
        batch_links: 64,
    });
    let ids: Vec<_> = (0..1024u64)
        .map(|i| {
            let mut scfg = SessionCfg::new(
                backends[(i % 2) as usize],
                Trajectory::constant("clean", ChannelState::clean(f64::INFINITY), 1),
                i,
            );
            scfg.frame_symbols = 16;
            scfg.pilot_symbols = 4;
            server.open_session(scfg)
        })
        .collect();
    // Oversubmit: cap 2, ask for 3 → the third submit sheds, and the
    // queue bound holds for every link.
    for &id in &ids {
        assert_eq!(server.submit(id, 1).unwrap(), Admit::Accepted);
        assert_eq!(server.submit(id, 1).unwrap(), Admit::Accepted);
        assert_eq!(server.submit(id, 1).unwrap(), Admit::Shed);
        assert_eq!(server.pending(id).unwrap(), 2);
    }
    assert_eq!(server.serve(), 1024 * 2);
    for &id in &ids {
        assert_eq!(server.pending(id).unwrap(), 0, "queues fully drained");
    }
    let agg = server.aggregate();
    agg.validate().unwrap();
    assert_eq!(agg.frames, 1024 * 2);
    assert_eq!(agg.shed_frames, 1024);
    assert_eq!(agg.submitted_frames, 1024 * 3);
    assert_eq!(agg.dropped_frames, 0);
    assert_eq!(agg.pending_frames, 0);
    assert_eq!(
        agg.submitted_frames,
        agg.frames + agg.shed_frames + agg.dropped_frames + agg.pending_frames,
        "frame conservation"
    );
    assert_eq!(agg.sessions_open, 1024);
    // Noiseless max-log sessions demap perfectly; the untrained graph
    // backend is expected to be wrong, but errors never exceed bits.
    assert!(agg.payload_bit_errors <= agg.payload_bits);
    if server.cfg().workers > 1 {
        // With 1024 links over 4 workers some stealing is effectively
        // certain; a zero here would mean the pool static-partitioned.
        assert!(server.rounds() >= 2);
    }
}
