//! Thread-count determinism of the equalizer-runtime artefact
//! (DESIGN.md §14): the `equalizer` bench scenario — an unequalized
//! max-log link and a blind equalized link riding a two-ray ISI onset
//! — serialises to identical bytes at any `HYBRIDEM_THREADS`. The
//! adaptive FIR is the first receiver whose *datapath* carries
//! feedback state, so this pins the per-link-instance contract: each
//! link owns a private equalizer and adaptation is a pure fold over
//! its sample stream.
//!
//! This test mutates `HYBRIDEM_THREADS` between runs, so it lives
//! alone in its own test binary: `std::env::set_var` while other
//! tests' worker threads call `getenv` is a data race on glibc. With a
//! single `#[test]` in the process there are no concurrent readers
//! outside the serial points where the variable changes.

use hybridem::comm::constellation::Constellation;
use hybridem::comm::demapper::MaxLogMap;
use hybridem::comm::equalizer::EqualizerConfig;
use hybridem::comm::snr::noise_sigma;
use hybridem::comm::trajectory::{ChannelState, Taps, Trajectory};
use hybridem::core::runtime::{
    run_drift_campaign, DriftCampaignSpec, DriftFamily, DriftScenario, FamilyRole, LinkParams,
    OnlineLink, OnlineLinkSpec,
};
use hybridem::mathkit::json::ToJson;

fn spec() -> DriftCampaignSpec<'static> {
    let es = 12.0;
    let qam = Constellation::qam_gray(4);
    let sigma = noise_sigma(es, 1.0) as f32;
    let clean = ChannelState::clean(es);
    let isi = clean.with_taps(Taps::two_ray(0.4, 0.35, 1));
    let scenario = DriftScenario {
        trajectory: Trajectory::new("two-ray-onset")
            .hold(20, clean)
            .hold(80, isi),
        baseline_frames: 20,
        drift_end_frame: 20,
        adaptive_recovers: Some(true),
        frozen_recovers: Some(false),
    };
    let params = LinkParams {
        pilot_symbols: 0,
        ..Default::default()
    };
    let link_spec = {
        let params = params.clone();
        move |traj: &Trajectory, seed: u64| OnlineLinkSpec {
            trajectory: traj.clone(),
            seed,
            params: params.clone(),
        }
    };
    let fixed_spec = link_spec.clone();
    let fixed_qam = qam.clone();
    let eq_qam = qam;
    DriftCampaignSpec {
        name: "equalizer-threads".to_string(),
        families: vec![
            DriftFamily {
                name: "unequalized".to_string(),
                role: FamilyRole::Frozen,
                build: Box::new(move |traj, seed| {
                    OnlineLink::fixed(
                        fixed_spec(traj, seed),
                        fixed_qam.clone(),
                        Box::new(MaxLogMap::new(fixed_qam.clone(), sigma)),
                    )
                }),
            },
            DriftFamily {
                name: "equalized".to_string(),
                role: FamilyRole::Equalized,
                build: Box::new(move |traj, seed| {
                    OnlineLink::equalized(
                        link_spec(traj, seed),
                        eq_qam.clone(),
                        Box::new(MaxLogMap::new(eq_qam.clone(), sigma)),
                        EqualizerConfig::default(),
                    )
                }),
            },
        ],
        scenarios: vec![scenario],
        links: 3,
        params,
        seed: 77,
    }
}

#[test]
fn equalizer_artefact_bytes_identical_across_thread_counts() {
    // Per-link RNG streams, a private equalizer per link, and
    // link-order row pooling make the report a pure function of
    // (spec, seed): 1 worker thread and 8 worker threads must
    // serialise to the same bytes (HYBRIDEM_THREADS is read per
    // parallel region, so setting it between runs is effective).
    let previous = std::env::var("HYBRIDEM_THREADS").ok();
    let s = spec();
    let baseline = run_drift_campaign(&s);
    baseline.validate().unwrap();
    let baseline = baseline.to_json().to_string_pretty();
    for threads in ["1", "8"] {
        std::env::set_var("HYBRIDEM_THREADS", threads);
        let run = run_drift_campaign(&s).to_json().to_string_pretty();
        assert_eq!(
            run, baseline,
            "equalizer artefact changed with HYBRIDEM_THREADS={threads}"
        );
    }
    match previous {
        Some(v) => std::env::set_var("HYBRIDEM_THREADS", v),
        None => std::env::remove_var("HYBRIDEM_THREADS"),
    }
}
