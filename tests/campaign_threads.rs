//! Thread-count determinism of campaign artefacts (DESIGN.md §8).
//!
//! This test mutates `HYBRIDEM_THREADS` between campaign runs, so it
//! lives alone in its own test binary: `std::env::set_var` while other
//! tests' worker threads call `getenv` is a data race on glibc. With a
//! single `#[test]` in the process there are no concurrent readers
//! outside the serial points where the variable changes.

use hybridem::comm::campaign::{
    run_campaign, CampaignSpec, ChannelScenario, DemapperFamily, EarlyStop,
};
use hybridem::comm::constellation::Constellation;
use hybridem::mathkit::json::ToJson;

fn spec() -> CampaignSpec<'static> {
    let mut spec = CampaignSpec::new(
        vec![DemapperFamily::maxlog_es_n0(Constellation::qam_gray(16))],
        vec![ChannelScenario::awgn_es_n0()],
        vec![6.0, 12.0],
        31,
    );
    spec.stop = EarlyStop {
        target_bit_errors: 100,
        max_symbols_per_point: 65_536,
        first_round_symbols: 4_096,
        growth: 4,
    };
    spec.tasks = 12;
    spec
}

#[test]
fn artefact_bytes_identical_across_thread_counts() {
    // Fixed `tasks` ⇒ the artefact is a pure function of (spec, seed):
    // 1 worker thread and 8 worker threads must serialise to the same
    // bytes (HYBRIDEM_THREADS is read per parallel region, so setting
    // it between runs is effective).
    let previous = std::env::var("HYBRIDEM_THREADS").ok();
    let baseline = run_campaign(&spec()).to_json().to_string_pretty();
    for threads in ["1", "8"] {
        std::env::set_var("HYBRIDEM_THREADS", threads);
        let run = run_campaign(&spec()).to_json().to_string_pretty();
        assert_eq!(
            run, baseline,
            "campaign artefact changed with HYBRIDEM_THREADS={threads}"
        );
    }
    match previous {
        Some(v) => std::env::set_var("HYBRIDEM_THREADS", v),
        None => std::env::remove_var("HYBRIDEM_THREADS"),
    }
}
