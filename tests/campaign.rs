//! Campaign-engine statistical test suite (DESIGN.md §8).
//!
//! Three pillars:
//!
//! 1. **Theory anchoring** — campaign BER points for the max-log
//!    receiver must be statistically consistent (Wilson-CI based, not
//!    fixed epsilon) with the closed-form Gray QPSK/16-QAM curves,
//!    through both the block demap path and the per-symbol reference
//!    path.
//! 2. **Determinism** — the serialised artefact is byte-for-byte
//!    identical across thread counts at a fixed task count, and an
//!    early-stopped point equals the uncapped run truncated at the
//!    same round boundary.
//! 3. **Zero-observation hygiene** — a zero-budget campaign emits
//!    finite numbers only (no `null` in the JSON artefact).

use hybridem::comm::campaign::{
    run_campaign, CampaignReport, CampaignSpec, ChannelScenario, DemapperFamily, EarlyStop,
};
use hybridem::comm::channel::Awgn;
use hybridem::comm::constellation::Constellation;
use hybridem::comm::demapper::{Demapper, MaxLogMap};
use hybridem::comm::linksim::{LinkSim, LinkSpec};
use hybridem::comm::snr::noise_sigma;
use hybridem::comm::theory::{ber_qam16_gray, ber_qpsk_gray};
use hybridem::mathkit::complex::C32;
use hybridem::mathkit::json::{FromJson, Json, ToJson};
use hybridem::mathkit::stats::ErrorCounter;

/// Forces the default per-symbol `llrs` loop for `demap_block`,
/// turning any campaign into a test of the per-symbol reference path.
struct PerSymbol<D: Demapper>(D);

impl<D: Demapper> Demapper for PerSymbol<D> {
    fn bits_per_symbol(&self) -> usize {
        self.0.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        self.0.llrs(y, out);
    }
    // demap_block intentionally NOT overridden: the trait default
    // loops `llrs` symbol by symbol.
}

/// Max-log family that demaps through the per-symbol path (grid SNR =
/// Es/N0 in dB, like `DemapperFamily::maxlog_es_n0`).
fn maxlog_per_symbol_family(constellation: Constellation) -> DemapperFamily<'static> {
    let c = constellation.clone();
    DemapperFamily::new(
        "maxlog-per-symbol",
        constellation,
        Box::new(move |snr| {
            let sigma = noise_sigma(snr, 1.0) as f32;
            Box::new(PerSymbol(MaxLogMap::new(c.clone(), sigma)))
        }),
    )
}

/// Early-stop policy for the golden tests: enough errors for tight
/// intervals, bounded total work.
fn golden_stop() -> EarlyStop {
    EarlyStop {
        target_bit_errors: 250,
        max_symbols_per_point: 300_000,
        first_round_symbols: 8_192,
        growth: 4,
    }
}

/// Asserts every point of `report` is statistically consistent with
/// `theory(snr)` at z = 3.9 (two-sided ≈ 1e-4 per point, so the whole
/// suite stays deterministic-seed stable).
fn assert_matches_theory(report: &CampaignReport, theory: impl Fn(f64) -> f64) {
    assert!(!report.points.is_empty());
    for p in &report.points {
        let mut c = ErrorCounter::new();
        c.record(p.bit_errors, p.bits);
        let t = theory(p.snr_db);
        assert!(
            c.consistent_with(t, 3.9),
            "{}/{} at {} dB: sim {} ({} errs / {} bits) vs theory {t}",
            p.family,
            p.scenario,
            p.snr_db,
            p.ber,
            p.bit_errors,
            p.bits
        );
    }
}

#[test]
fn qpsk_campaign_matches_theory_block_and_per_symbol() {
    // Both demap paths in one campaign, against the exact QPSK curve
    // over a 4-point Es/N0 grid.
    let qpsk = Constellation::qam_gray(4);
    let mut spec = CampaignSpec::new(
        vec![
            DemapperFamily::maxlog_es_n0(qpsk.clone()),
            maxlog_per_symbol_family(qpsk),
        ],
        vec![ChannelScenario::awgn_es_n0()],
        vec![2.0, 4.0, 6.0, 8.0],
        2024,
    );
    spec.stop = golden_stop();
    spec.tasks = 16;
    let report = run_campaign(&spec);
    report.validate().expect("artefact invariants");
    assert_matches_theory(&report, ber_qpsk_gray);
    // Early stopping must have kicked in at the low-SNR end (high BER
    // ⇒ the first round already exceeds the error target).
    assert!(report.points[0].stopped_early, "2 dB must stop early");
    assert!(
        report.points[0].symbols < report.points[3].symbols,
        "low SNR must spend fewer trials than high SNR"
    );
}

#[test]
fn qam16_campaign_matches_theory_block_and_per_symbol() {
    let qam = Constellation::qam_gray(16);
    let mut spec = CampaignSpec::new(
        vec![
            DemapperFamily::maxlog_es_n0(qam.clone()),
            maxlog_per_symbol_family(qam),
        ],
        vec![ChannelScenario::awgn_es_n0()],
        vec![8.0, 11.0, 14.0],
        7,
    );
    spec.stop = golden_stop();
    spec.tasks = 16;
    let report = run_campaign(&spec);
    report.validate().expect("artefact invariants");
    assert_matches_theory(&report, ber_qam16_gray);
}

fn determinism_spec(seed: u64) -> CampaignSpec<'static> {
    let mut spec = CampaignSpec::new(
        vec![DemapperFamily::maxlog_es_n0(Constellation::qam_gray(16))],
        vec![ChannelScenario::awgn_es_n0()],
        vec![6.0, 12.0],
        seed,
    );
    spec.stop = EarlyStop {
        target_bit_errors: 100,
        max_symbols_per_point: 65_536,
        first_round_symbols: 4_096,
        growth: 4,
    };
    spec.tasks = 12;
    spec
}

// The HYBRIDEM_THREADS=1-vs-8 byte-identity test lives in its own
// binary (`tests/campaign_threads.rs`): mutating the process
// environment while sibling tests' worker threads call `getenv` is a
// data race on glibc, so that test must not share a process with
// anything else.

#[test]
fn early_stop_equals_uncapped_run_truncated_at_the_round_boundary() {
    // Run one campaign point with early stopping, then replay the
    // same (spec, seed) uncapped (error target unreachable) through
    // the public round schedule, truncated after the same number of
    // rounds: counts must agree exactly.
    let spec = determinism_spec(55);
    let report = run_campaign(&spec);
    let p = &report.points[0]; // 6 dB: stops before the cap
    assert!(p.stopped_early, "6 dB point must stop early");
    let total_rounds = spec.stop.round_schedule(spec.block_len).count() as u32;
    assert!(p.rounds < total_rounds, "early stop must skip rounds");

    let qam = Constellation::qam_gray(16);
    let sigma = noise_sigma(p.snr_db, 1.0) as f32;
    let channel = Awgn::from_es_n0_db(p.snr_db);
    let demapper = MaxLogMap::new(qam.clone(), sigma);
    let link = LinkSpec {
        constellation: &qam,
        channel: &channel,
        demapper: &demapper,
        symbols: 0,
        block_len: spec.block_len,
        seed: p.seed,
    };
    let mut sim = LinkSim::new(&link, spec.tasks);
    for blocks in spec
        .stop
        .round_schedule(spec.block_len)
        .take(p.rounds as usize)
    {
        sim.run_round(blocks);
    }
    let r = sim.result();
    assert_eq!(r.bit_errors.errors(), p.bit_errors);
    assert_eq!(r.bit_errors.trials(), p.bits);
    assert_eq!(r.symbol_errors.errors(), p.symbol_errors);
    assert_eq!(r.symbol_errors.trials(), p.symbols);
    assert_eq!(r.mi.mi().to_bits(), p.mi.to_bits());
}

#[test]
fn artefact_schema_round_trip_and_zero_budget_hygiene() {
    // Zero budget: all-zero counts, finite rates, interval (0, 1), no
    // `null` anywhere in the serialised artefact, schema re-loadable.
    let mut spec = determinism_spec(3);
    spec.stop.max_symbols_per_point = 0;
    let report = run_campaign(&spec);
    report.validate().expect("zero-budget artefact invariants");
    let text = report.to_json().to_string_pretty();
    assert!(!text.contains("null"), "NaN leaked into artefact:\n{text}");
    let back = CampaignReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    back.validate().expect("reloaded artefact invariants");
    assert_eq!(back.to_json().to_string_pretty(), text, "round-trip drift");
    for p in &back.points {
        assert_eq!((p.symbols, p.bits, p.rounds), (0, 0, 0));
        assert_eq!(p.ber_ci, (0.0, 1.0));
    }
}
