//! Thread-count determinism of the backend-switch artefact
//! (DESIGN.md §13): the `backend_switch` scenario — links riding an
//! SNR ramp while the controller walks the registry's cost ladder —
//! serialises to identical bytes at any `HYBRIDEM_THREADS`.
//!
//! This test mutates `HYBRIDEM_THREADS` between runs, so it lives
//! alone in its own test binary: `std::env::set_var` while other
//! tests' worker threads call `getenv` is a data race on glibc. With a
//! single `#[test]` in the process there are no concurrent readers
//! outside the serial points where the variable changes.

use hybridem::comm::trajectory::{ChannelState, Trajectory};
use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::core::registry::switch_registry;
use hybridem::core::runtime::{run_switch_campaign, LinkParams, SwitchCampaignSpec, SwitchPolicy};
use hybridem::mathkit::json::ToJson;
use std::sync::Arc;

fn spec() -> SwitchCampaignSpec {
    let mut pipe = HybridPipeline::new(SystemConfig::fast_test().at_snr(8.0));
    pipe.e2e_train();
    pipe.extract_centroids();
    let registry = Arc::new(switch_registry(&pipe, &[]));
    // A ramp across the max-log/hybrid selection threshold (≈13.1 dB
    // Es/N0 at the 2e-2 target) and back — enough to force switches
    // in both directions without the full bench-bin ladder.
    let low = ChannelState::clean(12.7);
    let high = ChannelState::clean(14.5);
    let trajectory = Trajectory::new("switch-threads-ramp")
        .hold(12, low)
        .ramp(16, high)
        .hold(16, high)
        .ramp(16, low)
        .hold(20, low);
    SwitchCampaignSpec {
        name: "switch-threads".to_string(),
        registry,
        trajectory,
        links: 5,
        params: LinkParams::default(),
        policy: SwitchPolicy {
            ber_target: 2e-2,
            window_frames: 4,
            min_dwell_frames: 4,
            initial_es_n0_db: 12.7,
            ..SwitchPolicy::default()
        },
        seed: 77,
    }
}

#[test]
fn switch_artefact_bytes_identical_across_thread_counts() {
    // Per-link RNG streams, per-link SNR estimators, and link-order
    // row collection make the report a pure function of (spec, seed):
    // 1 worker thread and 8 worker threads must serialise to the same
    // bytes (HYBRIDEM_THREADS is read per parallel region, so setting
    // it between runs is effective).
    let previous = std::env::var("HYBRIDEM_THREADS").ok();
    let s = spec();
    let baseline = run_switch_campaign(&s);
    baseline.validate().unwrap();
    let baseline = baseline.to_json().to_string_pretty();
    for threads in ["1", "8"] {
        std::env::set_var("HYBRIDEM_THREADS", threads);
        let run = run_switch_campaign(&s).to_json().to_string_pretty();
        assert_eq!(
            run, baseline,
            "backend-switch artefact changed with HYBRIDEM_THREADS={threads}"
        );
    }
    match previous {
        Some(v) => std::env::set_var("HYBRIDEM_THREADS", v),
        None => std::env::remove_var("HYBRIDEM_THREADS"),
    }
}
