//! Workspace smoke test — catches manifest/facade regressions fast.
//!
//! The full e2e suite trains for minutes; this file asserts in seconds
//! that (a) every facade re-export resolves, and (b) the quickstart
//! path — `SystemConfig::fast_test()` → `HybridPipeline` →
//! `extract_centroids()` — actually runs. A broken member manifest or
//! facade rename fails here long before the slow suites run.

use std::time::{Duration, Instant};

/// Every workspace crate is reachable through the facade. This is a
/// compile-time check dressed as a test: if a re-export disappears,
/// this file stops building.
#[test]
fn facade_reexports_resolve() {
    // mathkit
    let c = hybridem::mathkit::complex::C32::new(1.0, -1.0);
    assert_eq!(c.norm_sqr(), 2.0);
    let _ = hybridem::mathkit::matrix::Matrix::<f32>::zeros(2, 2);
    // fixed
    let q = hybridem::fixed::QFormat::signed(8, 6);
    assert_eq!(q.total_bits, 8);
    // parallel
    let doubled = hybridem::parallel::par_iter::par_map(&[1, 2, 3], |x| x * 2);
    assert_eq!(doubled, vec![2, 4, 6]);
    // nn
    let spec = hybridem::nn::model::MlpSpec::paper_demapper();
    assert_eq!(spec.mac_count(), 352);
    // geom
    let p = hybridem::geom::polygon::Polygon::new(vec![
        hybridem::mathkit::vec2::Vec2::new(0.0, 0.0),
        hybridem::mathkit::vec2::Vec2::new(1.0, 0.0),
        hybridem::mathkit::vec2::Vec2::new(0.0, 1.0),
    ]);
    assert!((p.signed_area() - 0.5).abs() < 1e-12);
    // comm
    let qam = hybridem::comm::constellation::Constellation::qam_gray(16);
    assert_eq!(qam.bits_per_symbol(), 4);
    // fpga
    let usage = hybridem::fpga::resources::ResourceUsage::zero();
    assert_eq!(usage.dsp, 0);
    // core
    let cfg = hybridem::core::config::SystemConfig::paper_default();
    cfg.validate();
}

/// The quickstart pipeline runs end to end on a tiny budget. Mirrors
/// the `src/lib.rs` doctest so a regression is caught by `--tests`
/// runs that skip doctests.
#[test]
fn quickstart_pipeline_extracts_centroids_quickly() {
    let mut cfg = hybridem::core::config::SystemConfig::fast_test();
    cfg.e2e_steps = 40;
    cfg.batch_size = 32;
    cfg.grid_n = 32;

    let t0 = Instant::now();
    let mut pipe = hybridem::core::pipeline::HybridPipeline::new(cfg);
    pipe.e2e_train();
    let report = pipe.extract_centroids();
    let elapsed = t0.elapsed();

    assert_eq!(report.centroids.len(), 16);
    // Second-scale budget: generous enough for a loaded debug-mode CI
    // runner, tight enough to flag an accidental full-budget train.
    assert!(
        elapsed < Duration::from_secs(30),
        "smoke pipeline took {elapsed:?}; budget regression?"
    );
}
