//! End-to-end QAT acceptance (DESIGN.md §9): the W8 QAT-quantised
//! integer graph tracks the float ANN at the operating point, W4 is
//! visibly degraded — the BER-vs-bitwidth shape the campaign artefact
//! exposes — and the per-symbol and block views of the deployed graph
//! agree bit-exactly inside a real link simulation.

use hybridem::comm::channel::{Awgn, Channel};
use hybridem::comm::linksim::{simulate_link, LinkSpec};
use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::core::qat::{qat_quantized_demapper, QatConfig};

fn trained_pipeline() -> HybridPipeline {
    let mut cfg = SystemConfig::fast_test();
    cfg.e2e_steps = 2500;
    cfg.batch_size = 256;
    cfg.snr_db = 8.0;
    let mut pipe = HybridPipeline::new(cfg);
    let loss = pipe.e2e_train();
    assert!(loss < 0.2, "E2E training must converge: loss {loss}");
    pipe
}

#[test]
fn w8_tracks_float_and_w4_degrades() {
    let pipe = trained_pipeline();
    let constellation = pipe.constellation();
    let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());
    let symbols = 120_000u64;

    let ber_of = |demapper: &dyn hybridem::comm::demapper::Demapper| {
        let spec = LinkSpec::new(
            &constellation,
            &channel as &dyn Channel,
            demapper,
            symbols,
            23,
        );
        simulate_link(&spec).ber()
    };

    let ber_float = ber_of(pipe.ann_demapper());

    let graph_at = |bits: u32| {
        let mut qcfg = QatConfig::at_bits(bits);
        qcfg.steps = 300;
        qat_quantized_demapper(&pipe, &qcfg)
    };
    let g8 = graph_at(8);
    let g4 = graph_at(4);
    let ber_w8 = ber_of(&g8);
    let ber_w4 = ber_of(&g4);
    eprintln!("BER: float {ber_float:.4e}, W8 {ber_w8:.4e}, W4 {ber_w4:.4e}");

    // The paper's claim: 8-bit fixed point is essentially free. The
    // envelope is generous (reduced training budget, finite trials)
    // but pins the qualitative shape deterministically.
    assert!(
        ber_w8 < ber_float * 1.6 + 2e-4,
        "W8 QAT must track the float ANN: float {ber_float:.4e}, W8 {ber_w8:.4e}"
    );
    // And 4-bit must visibly break down.
    assert!(
        ber_w4 > ber_w8 * 1.3,
        "W4 must be visibly degraded: W8 {ber_w8:.4e}, W4 {ber_w4:.4e}"
    );
    assert!(
        ber_w4 > ber_float * 1.3,
        "W4 must be visibly degraded vs float: float {ber_float:.4e}, W4 {ber_w4:.4e}"
    );
}

#[test]
fn deployed_graph_is_deterministic_and_block_consistent() {
    let pipe = trained_pipeline();
    let mut qcfg = QatConfig::at_bits(6);
    qcfg.steps = 100;
    let g_a = qat_quantized_demapper(&pipe, &qcfg);
    let g_b = qat_quantized_demapper(&pipe, &qcfg);

    // QAT + compile is a pure function of (pipeline, config).
    use hybridem::comm::demapper::Demapper;
    use hybridem::mathkit::complex::C32;
    use hybridem::mathkit::rng::Xoshiro256pp;
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let ys: Vec<C32> = (0..257)
        .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
        .collect();
    let mut out_a = vec![0f32; ys.len() * 4];
    let mut out_b = vec![0f32; ys.len() * 4];
    g_a.demap_block(&ys, &mut out_a);
    g_b.demap_block(&ys, &mut out_b);
    for (a, b) in out_a.iter().zip(&out_b) {
        assert_eq!(a.to_bits(), b.to_bits(), "deployment must be deterministic");
    }

    // Block view ≡ per-symbol view, bit for bit, on the deployed graph.
    let mut single = [0f32; 4];
    for (s, &y) in ys.iter().enumerate() {
        g_a.llrs(y, &mut single);
        for k in 0..4 {
            assert_eq!(out_a[s * 4 + k].to_bits(), single[k].to_bits());
        }
    }
}
