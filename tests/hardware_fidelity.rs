//! Integration: the simulated FPGA datapaths are faithful stand-ins —
//! the quantised designs reproduce the float receivers' decisions, and
//! the Table-2 hardware relationships hold for a *trained* system.

use hybridem::comm::channel::{Awgn, Channel};
use hybridem::comm::demapper::Demapper;
use hybridem::comm::linksim::{simulate_link, LinkSpec};
use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::fpga::builder::{build_inference_design, DeployConfig};
use hybridem::fpga::demapper_accel::SoftDemapperConfig;
use hybridem::fpga::device::DeviceModel;
use hybridem::fpga::power::PowerModel;
use hybridem::fpga::trainer::{TrainerConfig, TrainerDesign};
use hybridem::mathkit::complex::C32;
use hybridem::mathkit::rng::Xoshiro256pp;

fn trained() -> HybridPipeline {
    let mut cfg = SystemConfig::fast_test();
    cfg.e2e_steps = 2000;
    cfg.batch_size = 256;
    cfg.grid_n = 96;
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();
    pipe
}

fn calibration(pipe: &HybridPipeline, n: usize) -> Vec<C32> {
    let sigma = pipe.config().sigma();
    let c = pipe.constellation();
    let mut rng = Xoshiro256pp::seed_from_u64(11);
    (0..n)
        .map(|i| {
            let p = c.point(i % 16);
            C32::new(
                p.re + sigma * rng.normal_f32(),
                p.im + sigma * rng.normal_f32(),
            )
        })
        .collect()
}

#[test]
fn quantised_inference_agrees_with_float_decisions() {
    let pipe = trained();
    let design = build_inference_design(
        pipe.ann_demapper().model(),
        &calibration(&pipe, 1024),
        &DeployConfig::default(),
    );
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut llr = [0f32; 4];
    for y in calibration(&pipe, 2000) {
        let hw = design.process_iq(y);
        pipe.ann_demapper().llrs(y, &mut llr);
        for k in 0..4 {
            // The pipeline demapper is a logits head, so the deployed
            // graph emits signed quantised logits (DESIGN.md §9).
            // Hard decisions: hw logit > 0 ⇔ float LLR < 0.
            let hw_bit = hw[k] > 0.0;
            let f_bit = llr[k] < 0.0;
            // Skip marginal samples where 8-bit quantisation may flip
            // (±0.25 in logit units ≈ the old ±0.05 probability band).
            if hw[k].abs() > 0.25 {
                total += 1;
                agree += usize::from(hw_bit == f_bit);
            }
        }
    }
    let rate = agree as f64 / total as f64;
    assert!(rate > 0.995, "decision agreement {rate} over {total} bits");
}

#[test]
fn hardware_demapper_ber_matches_software_hybrid() {
    let pipe = trained();
    let sigma = pipe.config().sigma();
    let hybrid_sw = pipe.hybrid_demapper().unwrap();
    // The bit-exact accelerator is itself a `Demapper` — its block path
    // drives the link simulator directly.
    let hw = hybrid_sw
        .to_hardware(SoftDemapperConfig::paper_default())
        .accel;

    let constellation = pipe.constellation();
    let channel = Awgn::new(sigma);
    let symbols = 150_000;
    let sw_ber = simulate_link(&LinkSpec::new(
        &constellation,
        &channel as &dyn Channel,
        hybrid_sw,
        symbols,
        3,
    ))
    .ber();
    let hw_ber = simulate_link(&LinkSpec::new(
        &constellation,
        &channel as &dyn Channel,
        &hw,
        symbols,
        3,
    ))
    .ber();
    // 8-bit coordinates cost a few percent at most.
    assert!(
        hw_ber < sw_ber * 1.25 + 1e-4,
        "hardware BER {hw_ber} vs software {sw_ber}"
    );
}

#[test]
fn table2_relationships_for_trained_system() {
    let pipe = trained();
    let power = PowerModel::default();
    let device = DeviceModel::zu3eg();

    let hybrid = pipe
        .hybrid_demapper()
        .unwrap()
        .to_hardware(SoftDemapperConfig::paper_default())
        .report(&power);
    let inference = build_inference_design(
        pipe.ann_demapper().model(),
        &calibration(&pipe, 512),
        &DeployConfig::default(),
    )
    .report(&power);
    let trainer = TrainerDesign::new(TrainerConfig::paper_default()).report(&power);

    // Everything fits the paper's part.
    assert!(device.fits(&hybrid.usage));
    assert!(device.fits(&inference.usage));
    assert!(device.fits(&trainer.usage));

    // Paper's Table-2 anchors.
    assert_eq!(inference.usage.dsp, 352);
    assert_eq!(hybrid.usage.dsp, 1);
    assert!((inference.usage.bram36 - 18.5).abs() < 1e-9);

    // Orderings and rough magnitudes.
    let r = hybrid.ratios_vs(&inference);
    assert!(r.dsp >= 350.0);
    assert!(r.lut > 3.0, "LUT ratio {}", r.lut);
    assert!(r.power > 4.0, "power ratio {}", r.power);
    assert!(r.energy > 20.0, "energy ratio {}", r.energy);
    assert!(r.throughput > 4.0, "throughput ratio {}", r.throughput);
    assert!(trainer.usage.ff > inference.usage.ff);
    assert!(trainer.usage.bram36 > inference.usage.bram36);
    assert!(trainer.latency_s > inference.latency_s);
    assert!(trainer.power_w > hybrid.power_w * 5.0);
}
