//! A three-line BER waterfall campaign (README quickstart): max-log
//! demapping of Gray 16-QAM over AWGN, swept across an Es/N0 grid
//! with statistical early stopping, printed as Markdown and JSON.
//!
//! Run with `cargo run --release --example waterfall_campaign`.

use hybridem::comm::campaign::{run_campaign, CampaignSpec, ChannelScenario, DemapperFamily};
use hybridem::comm::constellation::Constellation;
use hybridem::mathkit::json::ToJson;

fn main() {
    // The three quickstart lines: describe the matrix, run it, print.
    let spec = CampaignSpec::new(
        vec![DemapperFamily::maxlog_es_n0(Constellation::qam_gray(16))],
        vec![ChannelScenario::awgn_es_n0()],
        vec![6.0, 10.0, 14.0],
        42,
    );
    let report = run_campaign(&spec);
    println!("{}", report.markdown_table());

    // Each point carries its own Wilson interval and stop diagnostics;
    // the full artefact serialises deterministically.
    println!("{}", report.to_json().to_string_pretty());
}
