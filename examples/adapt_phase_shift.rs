//! The paper's adaptability case study (Fig. 3 / Table 1): train over
//! AWGN, hit the system with a π/4 phase offset, watch both the AE and
//! the hybrid demapper fail, retrain the demapper ANN only, re-extract
//! centroids, and watch both recover — without touching the
//! transmitter.
//!
//! ```sh
//! cargo run --release --example adapt_phase_shift
//! ```

use hybridem::comm::channel::ChannelChain;
use hybridem::core::config::SystemConfig;
use hybridem::core::eval::markdown_table;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::core::viz::ascii_regions_with_centroids;

fn main() {
    let theta = std::f32::consts::FRAC_PI_4;
    let mut cfg = SystemConfig::paper_default();
    cfg.snr_db = 8.0;
    let es_n0 = cfg.es_n0_db();

    println!(
        "== adaptability: π/4 phase offset at SNR {} dB ==",
        cfg.snr_db
    );
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let report = pipe.extract_centroids();

    println!("\nDecision regions BEFORE retraining ('*' marks centroids):");
    println!("{}", ascii_regions_with_centroids(&report, 48));

    // The live channel now rotates by π/4.
    let rotated = ChannelChain::phase_then_awgn(theta, es_n0);
    let before = pipe.evaluate_three(&rotated, 200_000, 31);
    println!("BER on the rotated channel BEFORE retraining:");
    println!("{}", markdown_table(&before));

    // Phase 2: retrain the demapper from pilots through the live
    // channel (the mapper constellation stays frozen), then re-extract.
    let mut live = ChannelChain::phase_then_awgn(theta, es_n0);
    let rt = pipe.retrain(&mut live);
    println!(
        "Retraining: loss {:.3} → {:.3} over {} steps",
        rt.initial_loss, rt.final_loss, rt.steps
    );

    let report = pipe.extraction_report().unwrap();
    println!("\nDecision regions AFTER retraining (rotated by π/4):");
    println!("{}", ascii_regions_with_centroids(report, 48));

    let after = pipe.evaluate_three(&rotated, 200_000, 32);
    println!("BER on the rotated channel AFTER retraining:");
    println!("{}", markdown_table(&after));

    let baseline = hybridem::comm::theory::ber_qam16_gray(es_n0);
    println!("No-offset baseline (closed form): {baseline:.4e}");
    println!("\nTable-1 shape: before retraining both ANN and centroid");
    println!("receivers sit near BER ≈ 0.3; after retraining they approach");
    println!("the no-offset baseline — the phase shift is compensated.");
}
