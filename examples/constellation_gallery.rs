//! Constellation gallery: train the autoencoder at several SNRs and
//! display how the learned constellation and its decision regions
//! change with noise level (the per-SNR training the paper performs
//! before Fig. 2).
//!
//! ```sh
//! cargo run --release --example constellation_gallery
//! ```

use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::core::viz::{ascii_constellation, ascii_regions};

fn main() {
    println!("== learned constellations across SNR ==");
    for &snr in &[-2.0f64, 4.0, 8.0, 12.0] {
        let mut cfg = SystemConfig::paper_default().at_snr(snr);
        // A gallery needs speed more than polish.
        cfg.e2e_steps = 2500;
        cfg.grid_n = 96;
        let mut pipe = HybridPipeline::new(cfg);
        let loss = pipe.e2e_train();
        let report = pipe.extract_centroids();
        let c = pipe.constellation();
        println!("\n--- SNR (Eb/N0) = {snr} dB | BCE loss {loss:.3} ---");
        println!(
            "constellation (min distance {:.3}, Gray penalty {:.2}):",
            c.min_distance(),
            c.gray_penalty()
        );
        println!("{}", ascii_constellation(c.points(), 1.6, 20));
        println!("decision regions:");
        println!("{}", ascii_regions(&report.grid, 40));
        println!(
            "extraction: {} missing, Voronoi disagreement {:.2}%",
            report.missing_labels.len(),
            100.0 * report.voronoi_disagreement
        );
    }
    println!("\nAt low SNR the optimiser spreads points unevenly (power is");
    println!("spent on separating cluster groups); at high SNR the layout");
    println!("approaches a lattice — the behaviour reported for trainable");
    println!("constellations in the paper's references [1, 4].");
}
