//! FPGA implementation study (the paper's Table 2): build the three
//! hardware designs — AE-inference, AE-training and the hybrid
//! soft-demapper — on the modelled Xilinx ZU3EG, and print latency,
//! throughput, resources, power and energy per symbol.
//!
//! ```sh
//! cargo run --release --example hardware_report
//! ```

use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::fpga::builder::{build_inference_design, DeployConfig};
use hybridem::fpga::demapper_accel::SoftDemapperConfig;
use hybridem::fpga::device::DeviceModel;
use hybridem::fpga::power::PowerModel;
use hybridem::fpga::reconfig::{compare, DutyCycle, ReconfigModel};
use hybridem::fpga::trainer::{TrainerConfig, TrainerDesign};
use hybridem::fpga::ImplReport;
use hybridem::mathkit::rng::Xoshiro256pp;

fn main() {
    let mut cfg = SystemConfig::paper_default();
    cfg.snr_db = 8.0;
    let sigma = cfg.sigma();

    println!("== FPGA implementation study (modelled ZU3EG) ==\n");
    println!("Training the autoencoder once to obtain deployable weights …");
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let extraction = pipe.extract_centroids();

    // Calibration samples for activation range analysis: noisy symbols
    // at the operating point.
    let constellation = pipe.constellation();
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let calibration: Vec<_> = (0..2048)
        .map(|i| {
            let p = constellation.point(i % 16);
            hybridem::mathkit::complex::C32::new(
                p.re + sigma * rng.normal_f32(),
                p.im + sigma * rng.normal_f32(),
            )
        })
        .collect();

    let power = PowerModel::default();
    let device = DeviceModel::zu3eg();

    // Design 1: the hybrid soft demapper on extracted centroids.
    let hybrid = pipe
        .hybrid_demapper()
        .unwrap()
        .to_hardware(SoftDemapperConfig::paper_default());
    let r_hybrid = hybrid.report(&power);

    // Design 2: the demapper ANN as a quantised inference engine.
    let inference = build_inference_design(
        pipe.ann_demapper().model(),
        &calibration,
        &DeployConfig::default(),
    );
    let r_inference = inference.report(&power);

    // Design 3: the on-chip trainer.
    let trainer = TrainerDesign::new(TrainerConfig::paper_default());
    let r_trainer = trainer.report(&power);

    println!(
        "\n{}",
        ImplReport::markdown_table(&[r_hybrid.clone(), r_inference.clone(), r_trainer.clone(),])
    );

    for (name, r) in [
        ("hybrid", &r_hybrid),
        ("AE-inference", &r_inference),
        ("AE-training", &r_trainer),
    ] {
        let (l, f, d, b) = device.utilization(&r.usage);
        println!(
            "{name:13} fits ZU3EG: {} (LUT {:.1}%, FF {:.1}%, DSP {:.1}%, BRAM {:.1}%)",
            device.fits(&r.usage),
            l * 100.0,
            f * 100.0,
            d * 100.0,
            b * 100.0
        );
    }

    let ratios = r_hybrid.ratios_vs(&r_inference);
    println!("\nHybrid vs AE-inference (paper: 352× DSP, ~10× LUT, ~10× power, ~50× energy):");
    println!(
        "  DSP {:.0}×, LUT {:.1}×, power {:.1}×, energy/symbol {:.0}×, throughput {:.1}×",
        ratios.dsp, ratios.lut, ratios.power, ratios.energy, ratios.throughput
    );

    // The §III-D reconfiguration argument, quantified.
    let duty = DutyCycle::paper_scale();
    let rc = compare(
        &r_inference,
        &r_trainer,
        &duty,
        &ReconfigModel::default(),
        0.06, // idle trainer leakage if co-resident
    );
    println!(
        "\nReconfiguration economics (retrain every {}s, {} samples):",
        duty.period_s, duty.retrain_samples
    );
    println!(
        "  training duty {:.2}%, reconfig overhead {:.4}%,",
        100.0 * rc.training_duty,
        100.0 * rc.reconfig_overhead
    );
    println!(
        "  avg power: time-shared FPGA {:.3} W vs co-resident {:.3} W",
        rc.fpga_avg_power_w, rc.coresident_avg_power_w
    );

    println!(
        "\nExtraction quality: Voronoi disagreement {:.2}% over a {}² grid",
        100.0 * extraction.voronoi_disagreement,
        extraction.grid.nx()
    );
    println!("\nReconfiguration story: training uses ≈ the whole DSP column, but");
    println!("runs rarely; on an FPGA the same fabric is time-shared between the");
    println!("trainer and {}× cheaper always-on inference.", ratios.dsp);
}
