//! Closed-loop link adaptation: a long-running link whose channel
//! changes mid-stream; the adaptation controller watches pilot BER and
//! ECC corrected-flip counts (paper §II-C) and triggers demapper
//! retraining automatically.
//!
//! ```sh
//! cargo run --release --example link_adaptation
//! ```

use hybridem::comm::channel::{Channel, ChannelChain};
use hybridem::comm::demapper::Demapper;
use hybridem::comm::ecc::{ConvCode, Viterbi};
use hybridem::core::adapt::{AdaptThresholds, AdaptationController, Recommendation};
use hybridem::core::config::SystemConfig;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::mathkit::rng::{Rng64, Xoshiro256pp};

fn main() {
    let mut cfg = SystemConfig::paper_default();
    cfg.snr_db = 8.0;
    cfg.retrain_steps = 1200;
    let es_n0 = cfg.es_n0_db();

    println!("== closed-loop adaptation demo ==");
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();

    let mut controller = AdaptationController::new(AdaptThresholds::default());
    let code = ConvCode::new();
    let viterbi = Viterbi::new();
    let mut rng = Xoshiro256pp::seed_from_u64(2024);

    // The channel drifts: epochs of (phase offset, label).
    let epochs: [(f32, &str); 3] = [
        (0.0, "clean AWGN"),
        (std::f32::consts::FRAC_PI_4, "π/4 phase jump"),
        (0.6, "further drift to 0.6 rad"),
    ];

    for (theta, label) in epochs {
        println!("\n--- channel epoch: {label} (θ = {theta:.3} rad) ---");
        let mut channel = ChannelChain::phase_then_awgn(theta, es_n0);
        // Stream frames until the controller is satisfied or retrains.
        for frame in 0..40 {
            let (pilot_tx, pilot_rx, corrected, code_bits) =
                transmit_frame(&pipe, &mut channel, &code, &viterbi, &mut rng);
            controller.observe_pilot_bits(&pilot_tx, &pilot_rx);
            controller.observe_ecc(corrected, code_bits);

            if controller.recommendation() == Recommendation::Retrain {
                let pilot_ber = hybridem::comm::metrics::count_bit_errors(&pilot_tx, &pilot_rx)
                    as f64
                    / pilot_tx.len() as f64;
                println!(
                    "  frame {frame:2}: RETRAIN triggered (pilot BER ≈ {pilot_ber:.3}, \
                     ECC flips {corrected}/{code_bits})"
                );
                let mut live = ChannelChain::phase_then_awgn(theta, es_n0);
                let rt = pipe.retrain(&mut live);
                println!(
                    "  retrained: loss {:.3} → {:.3}; centroids re-extracted",
                    rt.initial_loss, rt.final_loss
                );
                controller.reset_after_retrain();
            } else if frame % 10 == 0 {
                println!("  frame {frame:2}: healthy={}", controller.is_healthy());
            }
        }
    }
    println!(
        "\ncontroller triggered {} retrains across {} channel epochs",
        controller.retrains_triggered(),
        epochs.len()
    );
}

/// Transmits one frame: a pilot block (known bits) plus a
/// convolutionally-coded payload; returns pilot tx/rx bits and the
/// ECC's corrected-flip statistics.
fn transmit_frame(
    pipe: &HybridPipeline,
    channel: &mut dyn Channel,
    code: &ConvCode,
    viterbi: &Viterbi,
    rng: &mut Xoshiro256pp,
) -> (Vec<u8>, Vec<u8>, u64, u64) {
    let constellation = pipe.constellation();
    let hybrid = pipe.hybrid_demapper().expect("deployed");
    let m = constellation.bits_per_symbol();

    // Pilot block: 128 known symbols.
    let mut pilot_tx_bits = Vec::with_capacity(128 * m);
    let mut pilot_syms = Vec::with_capacity(128);
    for _ in 0..128 {
        let u = (rng.next_u64() >> (64 - m)) as usize;
        for k in 0..m {
            pilot_tx_bits.push(((u >> (m - 1 - k)) & 1) as u8);
        }
        pilot_syms.push(constellation.point(u));
    }
    channel.transmit(&mut pilot_syms, rng);
    let mut pilot_rx_bits = vec![0u8; 128 * m];
    hybrid.hard_decide_block(&pilot_syms, &mut pilot_rx_bits);

    // Payload: 128 data bits, rate-1/2 convolutional code, soft decode.
    let mut payload = vec![0u8; 128];
    rng.fill_bits(&mut payload);
    let coded = code.encode(&payload);
    // Pack code bits into symbols (pad with zeros to a whole symbol).
    let mut syms = Vec::with_capacity(coded.len().div_ceil(m));
    let mut chunk = Vec::with_capacity(m);
    for &b in &coded {
        chunk.push(b);
        if chunk.len() == m {
            syms.push(constellation.point(hybridem::comm::bits::pack_bits(&chunk)));
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        while chunk.len() < m {
            chunk.push(0);
        }
        syms.push(constellation.point(hybridem::comm::bits::pack_bits(&chunk)));
    }
    channel.transmit(&mut syms, rng);
    let outcome = viterbi.decode_demapped(code, hybrid, &syms, coded.len());
    (
        pilot_tx_bits,
        pilot_rx_bits,
        outcome.corrected,
        coded.len() as u64,
    )
}
