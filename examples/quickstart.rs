//! Quickstart: train the autoencoder, extract centroids, compare the
//! three receivers of the paper on a clean AWGN channel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybridem::comm::channel::Awgn;
use hybridem::core::config::SystemConfig;
use hybridem::core::eval::markdown_table;
use hybridem::core::pipeline::HybridPipeline;
use hybridem::core::viz::ascii_constellation;

fn main() {
    // The paper's case study at SNR (Eb/N0) = 8 dB, with a training
    // budget that finishes in a few seconds.
    let mut cfg = SystemConfig::paper_default();
    cfg.snr_db = 8.0;
    println!("== hybridem quickstart ==");
    println!(
        "16-QAM-order autoencoder, demapper {:?}, SNR {} dB (Eb/N0)",
        cfg.demapper.dims, cfg.snr_db
    );

    // Phase 1: end-to-end training over the abstract AWGN channel.
    let mut pipe = HybridPipeline::new(cfg);
    let loss = pipe.e2e_train();
    println!("\nE2E training done, tail BCE loss = {loss:.4}");
    println!("\nLearned constellation (labels are symbol indices):");
    println!(
        "{}",
        ascii_constellation(pipe.constellation().points(), 1.6, 24)
    );

    // Phase 3 entry: sample decision regions, extract centroids.
    let report = pipe.extract_centroids();
    println!(
        "Extraction: {} centroids, {} missing regions, Voronoi disagreement {:.2}%",
        report.centroids.len(),
        report.missing_labels.len(),
        100.0 * report.voronoi_disagreement
    );

    // Compare the paper's three receivers on the operating channel.
    let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());
    let points = pipe.evaluate_three(&channel, 400_000, 7);
    println!("\nBER comparison ({} symbols/receiver):", 400_000);
    println!("{}", markdown_table(&points));

    let theory = hybridem::comm::theory::ber_qam16_gray(pipe.config().es_n0_db());
    println!("Closed-form Gray 16-QAM BER at this SNR: {theory:.4e}");
    println!("\nThe hybrid receiver demaps with the conventional max-log");
    println!("algorithm on the extracted centroids — same BER class as the");
    println!("ANN, at a fraction of the hardware cost (see hardware_report).");
}
