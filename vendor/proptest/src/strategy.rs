//! Strategies: deterministic input generators for property tests.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64 over an FNV-hashed seed).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name so failures are reproducible.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// An input generator; the stand-in equivalent of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, resampling (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generates a value, then samples from the strategy it maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(rng.next_u64()) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = u128::from(rng.next_u64()) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
}

/// Value types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly centred values; upstream samples wilder
        // distributions, but the workspace only uses numeric ranges for
        // floats where distribution shape matters.
        (rng.next_f64() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.next_f64() - 0.5) * 2.0e6) as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T` — `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length specification for [`crate::collection::vec`].
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// The strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&y));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (0u32..10)
            .prop_map(|v| v * 2)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_flat_map(|v| 0u32..v + 1);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) <= 18);
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::from_name("sizes");
        let s = crate::collection::vec(0u8..2, 3..6);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::from_name("det");
            (0..5).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_name("det");
            (0..5).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
