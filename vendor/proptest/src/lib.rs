//! Minimal, API-compatible stand-in for the
//! [proptest](https://crates.io/crates/proptest) property-testing
//! framework.
//!
//! The hybridem build environment has no network route to a crates.io
//! mirror, so the workspace vendors this small local crate under the
//! same package name. It implements the subset of the proptest 1.x API
//! used by the workspace property tests: numeric range strategies,
//! `any::<T>()`, tuple strategies, `proptest::collection::vec`,
//! `Just`, `prop_oneof!`, the `prop_map` / `prop_filter` /
//! `prop_flat_map` combinators, `ProptestConfig::with_cases`, the
//! `proptest!` test macro and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream: inputs are sampled from a deterministic
//! per-test RNG (seeded from the test name), there is **no shrinking**,
//! and the default case count is 64 (override with the
//! `PROPTEST_CASES` environment variable or `ProptestConfig::with_cases`).
//! In a connected environment, replace the `proptest` entry in the root
//! `[workspace.dependencies]` with `proptest = "1"`; no test-source
//! changes are required.

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration.

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` sampled inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, TestRng, VecStrategy};

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize`, `Range<usize>` or
    /// `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Re-exported for `VecStrategy::generate` signatures.
    pub use crate::strategy::TestRng as _TestRng;

    #[allow(dead_code)]
    fn _assert_usable(rng: &mut TestRng) {
        let _ = vec(0u8..2, 3).sample(rng);
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expands the items inside a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::strategy::TestRng::from_name(stringify!($name));
            // Like upstream, `prop_assume!`-rejected samples do not count
            // as executed cases: resample until `cases` bodies have run,
            // within a bounded rejection budget.
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(100).max(1_000);
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "property {} rejected too many samples ({} attempts for {} cases); \
                     loosen the prop_assume! precondition or the strategies",
                    stringify!($name),
                    attempts,
                    config.cases,
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )*
                let ran = (|| -> bool { $body; true })();
                if ran {
                    executed += 1;
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current sampled case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return false;
        }
    };
}

/// Picks uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
