//! Minimal, API-compatible stand-in for the [criterion](https://crates.io/crates/criterion)
//! statistics-driven benchmark harness.
//!
//! The hybridem build environment has no network route to a crates.io
//! mirror, so the workspace vendors this small local crate under the same
//! package name. It implements the subset of the criterion 0.5 API used by
//! the `hybridem-bench` benches — `Criterion`, benchmark groups, `Bencher`,
//! `BenchmarkId`, `Throughput`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — with a simple warmup + timed-batch measurement
//! loop instead of criterion's full statistical machinery. Results are
//! printed as `group/bench  time: [median] (throughput)` lines.
//!
//! In a connected environment, replace the `criterion` entry in the root
//! `[workspace.dependencies]` with `criterion = "0.5"`; no bench source
//! changes are required.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark decodes this many bytes per iteration.
    BytesDecimal(u64),
}

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    measured: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the elapsed wall-clock time.
    ///
    /// The routine is warmed up first, then run in timed batches whose size
    /// is chosen so one batch takes roughly a millisecond.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and batch-size calibration: grow the batch until it costs
        // at least ~1 ms (or a growth cap is hit, for very slow routines).
        let mut batch: u64 = 1;
        let mut once = Duration::ZERO;
        for _ in 0..20 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            once = t0.elapsed();
            if once >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }

        // Measurement: run timed batches until the per-bench budget is
        // spent, keeping the total elapsed time and iteration count.
        let budget = measurement_budget();
        let mut total = once;
        let mut iters = batch;
        while total < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.measured = total;
        self.iters = iters;
    }

    /// Like [`Bencher::iter`] but the routine receives the batch size; the
    /// measured time is the closure's own report.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 10;
        self.measured = routine(iters);
        self.iters = iters;
    }
}

fn measurement_budget() -> Duration {
    // HYBRIDEM_BENCH_MS overrides the per-benchmark measurement budget;
    // the default keeps a full `cargo bench` run in CI-friendly territory.
    let ms = std::env::var("HYBRIDEM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API compatibility; the
    /// stand-in harness sizes batches by time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput so results are
    /// also reported in elements (or bytes) per second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            measured: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs `routine` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            measured: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finalises the group (prints a trailing blank line).
    pub fn finish(self) {
        println!();
    }

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let _ = &self.criterion; // group mutably borrows the harness, as upstream does
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.measured / (b.iters.min(u32::MAX as u64) as u32)
        };
        let mut line = format!(
            "{}/{}  time: [{}]",
            self.name,
            id.id,
            fmt_duration(per_iter)
        );
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  thrpt: [{:.4} Melem/s]", n as f64 / secs / 1e6));
                    }
                    Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                        line.push_str(&format!(
                            "  thrpt: [{:.4} MiB/s]",
                            n as f64 / secs / (1024.0 * 1024.0)
                        ));
                    }
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }

    /// Parses command-line arguments (accepted for API compatibility;
    /// `cargo bench` passes `--bench`, which the stand-in ignores).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints the final summary (no-op in the stand-in harness).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
            criterion.final_summary();
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $(
                $target(&mut criterion);
            )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.throughput(Throughput::Elements(100));
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
