//! Property-based tests of the numeric substrate.

use hybridem_mathkit::complex::C64;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::{Rng64, SplitMix64, Xoshiro256pp};
use hybridem_mathkit::special::{log_sum_exp, max_log, qfunc, sigmoid};
use hybridem_mathkit::stats::{wilson_interval, ErrorCounter, Welford};
use hybridem_mathkit::vec2::Vec2;
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e3f64..1e3).prop_filter("nonzero-ish", |v| v.abs() > 1e-9)
}

fn small_matrix() -> impl Strategy<Value = Matrix<f64>> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn complex_field_axioms(ar in finite_f64(), ai in finite_f64(),
                            br in finite_f64(), bi in finite_f64()) {
        let a = C64::new(ar, ai);
        let b = C64::new(br, bi);
        // Commutativity.
        prop_assert!((a + b - (b + a)).abs() < 1e-9);
        prop_assert!((a * b - (b * a)).abs() < 1e-6);
        // Multiplicative inverse (b ≠ 0 by strategy).
        let recip = C64::one() / b;
        prop_assert!((b * recip - C64::one()).abs() < 1e-9);
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6 * a.abs() * b.abs() + 1e-9);
    }

    #[test]
    fn complex_rotation_is_isometric(r in finite_f64(), i in finite_f64(),
                                     theta in -10.0f64..10.0) {
        let z = C64::new(r, i);
        let w = z.rotate(theta);
        prop_assert!((w.abs() - z.abs()).abs() < 1e-6 * z.abs().max(1.0));
        // Rotating back recovers the original.
        let back = w.rotate(-theta);
        prop_assert!((back - z).abs() < 1e-6 * z.abs().max(1.0));
    }

    #[test]
    fn matrix_transpose_respects_products(a in small_matrix(), b in small_matrix()) {
        prop_assume!(a.cols() == b.rows());
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        // Tolerance scales with the summation magnitude, not the result
        // (entries up to 100 can cancel to a tiny output).
        let tol = 1e-10 * a.max_abs() * b.max_abs() * a.cols() as f64 + 1e-12;
        for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
            prop_assert!((x - y).abs() <= tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn matmul_distributes_over_axpy(a in small_matrix(), k in -10.0f64..10.0) {
        // (A + kA)·I = (1+k)·A
        let n = a.cols();
        let eye = Matrix::eye(n);
        let mut a2 = a.clone();
        a2.axpy(k, &a);
        let prod = a2.matmul(&eye);
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - (1.0 + k) * y).abs() < 1e-6 * y.abs().max(1.0));
        }
    }

    #[test]
    fn vec2_cross_antisymmetric(ax in finite_f64(), ay in finite_f64(),
                                bx in finite_f64(), by in finite_f64()) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        prop_assert!((a.cross(b) + b.cross(a)).abs() < 1e-6 * (a.norm() * b.norm()).max(1.0));
        // Cauchy–Schwarz: |a·b| ≤ |a||b|.
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-6);
    }

    #[test]
    fn sigmoid_monotone_and_bounded(x in -700.0f64..700.0, dx in 0.001f64..10.0) {
        let a = sigmoid(x);
        let b = sigmoid(x + dx);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b >= a);
    }

    #[test]
    fn qfunc_monotone_decreasing(x in -6.0f64..6.0, dx in 0.01f64..3.0) {
        prop_assert!(qfunc(x + dx) < qfunc(x));
        prop_assert!((0.0..=1.0).contains(&qfunc(x)));
    }

    #[test]
    fn log_sum_exp_bounds(xs in proptest::collection::vec(-50.0f64..50.0, 1..10)) {
        let lse = log_sum_exp(&xs);
        let ml = max_log(&xs);
        // max ≤ LSE ≤ max + ln n.
        prop_assert!(lse >= ml - 1e-9);
        prop_assert!(lse <= ml + (xs.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e3f64..1e3, 2..50)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    #[test]
    fn welford_merge_any_split(xs in proptest::collection::vec(-100.0f64..100.0, 2..40),
                               split in 0usize..40) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7);
    }

    #[test]
    fn wilson_interval_contains_rate(errors in 0u64..1000, extra in 0u64..100_000) {
        let trials = errors + extra;
        prop_assume!(trials > 0);
        let mut c = ErrorCounter::new();
        c.record(errors, trials);
        let (lo, hi) = c.wilson_interval(1.96);
        prop_assert!(lo <= c.rate() + 1e-12);
        prop_assert!(hi >= c.rate() - 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
    }

    #[test]
    fn error_counter_merge_commutative_and_associative(
        triples in proptest::collection::vec((0u64..1000, 0u64..100_000), 1..6),
    ) {
        // Counters built from (errors, extra-trials) pairs merged in
        // any grouping/order give identical totals and rates.
        let counters: Vec<ErrorCounter> = triples.iter().map(|&(e, extra)| {
            let mut c = ErrorCounter::new();
            c.record(e, e + extra);
            c
        }).collect();
        // Left fold.
        let mut fwd = ErrorCounter::new();
        for c in &counters {
            fwd.merge(c);
        }
        // Reverse fold.
        let mut rev = ErrorCounter::new();
        for c in counters.iter().rev() {
            rev.merge(c);
        }
        // Pairwise tree fold.
        let mut layer = counters.clone();
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|ch| {
                let mut a = ch[0];
                if let Some(b) = ch.get(1) {
                    a.merge(b);
                }
                a
            }).collect();
        }
        for other in [&rev, &layer[0]] {
            prop_assert_eq!(fwd.errors(), other.errors());
            prop_assert_eq!(fwd.trials(), other.trials());
            prop_assert_eq!(fwd.rate().to_bits(), other.rate().to_bits());
        }
    }

    #[test]
    fn wilson_width_shrinks_with_trials(
        errors in 0u64..500, extra in 0u64..10_000, scale in 2u64..50,
    ) {
        // Same observed rate, `scale`× the evidence ⇒ a strictly
        // narrower interval that still contains the rate.
        let trials = errors + extra;
        prop_assume!(trials > 0);
        let (lo1, hi1) = wilson_interval(errors, trials, 1.96);
        let (lo2, hi2) = wilson_interval(errors * scale, trials * scale, 1.96);
        prop_assert!(hi2 - lo2 < hi1 - lo1,
            "width must shrink: [{lo1}, {hi1}] → [{lo2}, {hi2}]");
        let p = errors as f64 / trials as f64;
        prop_assert!(lo2 <= p + 1e-12 && p <= hi2 + 1e-12);
    }

    #[test]
    fn wilson_degrades_gracefully_at_the_edges(trials in 0u64..100_000, z in 0.5f64..5.0) {
        // Zero errors: lo pinned at exactly 0 (the implementation pins
        // the edge, no float residue), hi a proper sub-1 bound once
        // any trial ran. Zero trials: the maximally uninformative
        // (0, 1). Never NaN, whatever the inputs.
        let (lo, hi) = wilson_interval(0, trials, z);
        prop_assert_eq!(lo, 0.0);
        prop_assert!(hi.is_finite());
        if trials == 0 {
            prop_assert_eq!(hi, 1.0);
        } else {
            prop_assert!(hi > 0.0 && hi < 1.0);
        }
        // All-errors mirror image: hi pinned at exactly 1.
        let (lo_all, hi_all) = wilson_interval(trials.max(1), trials.max(1), z);
        prop_assert_eq!(hi_all, 1.0);
        prop_assert!(lo_all > 0.0 && lo_all < 1.0);
    }

    #[test]
    fn rng_streams_are_reproducible_and_distinct(seed in any::<u64>(), i in 0u64..100, j in 0u64..100) {
        prop_assume!(i != j);
        let mut a1 = Xoshiro256pp::stream(seed, i);
        let mut a2 = Xoshiro256pp::stream(seed, i);
        let mut b = Xoshiro256pp::stream(seed, j);
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&xs, &ys);
        prop_assert_ne!(&xs, &zs);
    }

    #[test]
    fn splitmix_derive_is_deterministic(seed in any::<u64>(), idx in any::<u64>()) {
        prop_assert_eq!(SplitMix64::derive(seed, idx), SplitMix64::derive(seed, idx));
    }

    #[test]
    fn uniform_in_range(seed in any::<u64>(), lo in -1e3f64..0.0, width in 0.001f64..1e3) {
        let mut g = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..50 {
            let v = g.range_f64(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
        }
    }
}
