//! Portable fixed-width SIMD lanes with runtime width dispatch.
//!
//! The workspace's hot integer/float kernels (the MVAU block datapath,
//! the max-log point-outer demapper) are written once, generic over a
//! compile-time lane count `N`, against the chunked-lane type
//! [`Simd<T, N>`] — a plain `[T; N]` whose `#[inline(always)]`
//! elementwise ops the LLVM autovectorizer lowers to one vector
//! instruction each. No nightly features and no intrinsics: the
//! portable scalar form *is* the specification, so results are
//! bit-exact at every width (including the scalar remainder loops the
//! kernels keep for non-multiple lengths).
//!
//! Width selection is a *runtime* decision behind the [`LaneWidth`]
//! probe: [`dispatch`] monomorphises the caller's [`SimdKernel`] at
//! N = 4/8/16 inside `#[target_feature]` trampolines (AVX2 for ×8,
//! AVX-512 for ×16 on x86-64), so a plain portable build — **without**
//! `-C target-cpu=native` — still executes AVX2/AVX-512 code on hosts
//! that have it, and falls back to 128-bit (SSE2/NEON) lanes anywhere
//! else. Correctness never depends on the probe: every path computes
//! the same elementwise arithmetic in the same order (DESIGN.md §11).

use std::sync::OnceLock;

/// The widest lane count [`dispatch`] will select (AVX-512: 16 × i32).
pub const MAX_LANES: usize = 16;

/// A runtime-selected SIMD width, in 32-bit lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LaneWidth {
    /// 128-bit vectors (SSE2 / NEON baseline): 4 × i32/f32.
    X4,
    /// 256-bit vectors (AVX2): 8 × i32/f32.
    X8,
    /// 512-bit vectors (AVX-512F/BW/DQ/VL): 16 × i32/f32.
    X16,
}

impl LaneWidth {
    /// Number of 32-bit lanes.
    pub const fn lanes(self) -> usize {
        match self {
            LaneWidth::X4 => 4,
            LaneWidth::X8 => 8,
            LaneWidth::X16 => 16,
        }
    }

    /// The widest width this host can execute, probed once per
    /// process. `HYBRIDEM_LANES=4|8|16` caps the selection (useful for
    /// A/B timing and for exercising narrower code paths); it can
    /// never raise it above what the CPU supports.
    pub fn detect() -> LaneWidth {
        static DETECTED: OnceLock<LaneWidth> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            let hw = probe_hardware();
            // Strict shared parsing (crate::env): "+8" or " 4 " fall
            // back to the hardware probe instead of being honoured.
            let cap = std::env::var("HYBRIDEM_LANES")
                .ok()
                .as_deref()
                .and_then(crate::env::parse_count);
            match cap {
                Some(4) => LaneWidth::X4,
                Some(8) => hw.min(LaneWidth::X8),
                Some(16) => hw,
                _ => hw,
            }
        })
    }

    /// Every width this host can execute, narrowest first — the sweep
    /// the bit-exactness property tests run over.
    pub fn supported() -> Vec<LaneWidth> {
        let mut v = vec![LaneWidth::X4];
        let top = probe_hardware();
        if top >= LaneWidth::X8 {
            v.push(LaneWidth::X8);
        }
        if top >= LaneWidth::X16 {
            v.push(LaneWidth::X16);
        }
        v
    }
}

#[cfg(target_arch = "x86_64")]
fn probe_hardware() -> LaneWidth {
    if is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx512bw")
        && is_x86_feature_detected!("avx512dq")
        && is_x86_feature_detected!("avx512vl")
    {
        LaneWidth::X16
    } else if is_x86_feature_detected!("avx2") {
        LaneWidth::X8
    } else {
        LaneWidth::X4
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn probe_hardware() -> LaneWidth {
    // 128-bit NEON/SSE2-class baseline; wider portable lanes bring no
    // benefit without matching hardware vectors.
    LaneWidth::X4
}

/// A width-generic SIMD computation: implementors capture their inputs
/// and write the kernel body once in `run::<N>()`. [`dispatch`]
/// monomorphises it at the probed width inside a `#[target_feature]`
/// trampoline so the body vectorises with the host's full ISA.
pub trait SimdKernel {
    /// Result of the kernel.
    type Output;
    /// The kernel body, generic over the lane count.
    fn run<const N: usize>(self) -> Self::Output;
}

/// Runs `k` at the probed [`LaneWidth`].
#[inline]
pub fn dispatch<K: SimdKernel>(k: K) -> K::Output {
    dispatch_at(LaneWidth::detect(), k)
}

/// Runs `k` at an explicit width (clamped to what the host supports —
/// the trampolines must not execute unavailable instructions). Used by
/// the property tests to prove bit-exactness across every width.
#[inline]
pub fn dispatch_at<K: SimdKernel>(width: LaneWidth, k: K) -> K::Output {
    match width.min(probe_hardware()) {
        // SAFETY: probe_hardware() confirmed the trampoline's target
        // features are available on this CPU.
        LaneWidth::X16 => unsafe { run16(k) },
        LaneWidth::X8 => unsafe { run8(k) },
        LaneWidth::X4 => k.run::<4>(),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run8<K: SimdKernel>(k: K) -> K::Output {
    k.run::<8>()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(
    enable = "avx512f",
    enable = "avx512bw",
    enable = "avx512dq",
    enable = "avx512vl"
)]
unsafe fn run16<K: SimdKernel>(k: K) -> K::Output {
    k.run::<16>()
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn run8<K: SimdKernel>(k: K) -> K::Output {
    k.run::<8>()
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn run16<K: SimdKernel>(k: K) -> K::Output {
    k.run::<16>()
}

/// A chunk of `N` lanes of `T` — the portable stand-in for `i32x8` /
/// `f32x8`-style vector registers. All ops are elementwise, lane `i`
/// of the result depending only on lane `i` of the operands, so a
/// kernel written over `Simd` chunks plus a scalar remainder loop is
/// bit-identical to its scalar reference at any `N`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct Simd<T, const N: usize>(pub [T; N]);

macro_rules! simd_common {
    ($t:ty) => {
        impl<const N: usize> Simd<$t, N> {
            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: $t) -> Self {
                Self([v; N])
            }

            /// Loads the first `N` elements of `s`.
            ///
            /// # Panics
            /// Panics if `s.len() < N`.
            #[inline(always)]
            pub fn load(s: &[$t]) -> Self {
                Self(s[..N].try_into().unwrap())
            }

            /// Stores the lanes into the first `N` elements of `d`.
            ///
            /// # Panics
            /// Panics if `d.len() < N`.
            #[inline(always)]
            pub fn store(self, d: &mut [$t]) {
                d[..N].copy_from_slice(&self.0);
            }

            /// Lanewise sum.
            #[inline(always)]
            #[allow(clippy::should_implement_trait)] // method-call style is the lane-op idiom
            pub fn add(self, o: Self) -> Self {
                let mut r = self.0;
                for (a, b) in r.iter_mut().zip(o.0) {
                    *a += b;
                }
                Self(r)
            }

            /// Lanewise product.
            #[inline(always)]
            #[allow(clippy::should_implement_trait)] // method-call style is the lane-op idiom
            pub fn mul(self, o: Self) -> Self {
                let mut r = self.0;
                for (a, b) in r.iter_mut().zip(o.0) {
                    *a *= b;
                }
                Self(r)
            }

            /// Lanewise `self + a * b` — the MAC step of the integer
            /// datapaths (and an FMA candidate for floats).
            #[inline(always)]
            pub fn mul_add(self, a: Self, b: Self) -> Self {
                self.add(a.mul(b))
            }

            /// Lanewise minimum, keeping `self` on ties: exactly the
            /// `if o < self { o } else { self }` update of the scalar
            /// running-minimum loops it replaces.
            #[inline(always)]
            pub fn min(self, o: Self) -> Self {
                let mut r = self.0;
                for (a, b) in r.iter_mut().zip(o.0) {
                    if b < *a {
                        *a = b;
                    }
                }
                Self(r)
            }

            /// Lanewise maximum, keeping `self` on ties.
            #[inline(always)]
            pub fn max(self, o: Self) -> Self {
                let mut r = self.0;
                for (a, b) in r.iter_mut().zip(o.0) {
                    if b > *a {
                        *a = b;
                    }
                }
                Self(r)
            }
        }
    };
}

macro_rules! simd_int {
    ($t:ty) => {
        impl<const N: usize> Simd<$t, N> {
            /// Lanewise clamp into `[lo, hi]` — the saturation step of
            /// a fixed-point cast.
            #[inline(always)]
            pub fn clamp(self, lo: $t, hi: $t) -> Self {
                let mut r = self.0;
                for a in r.iter_mut() {
                    *a = (*a).clamp(lo, hi);
                }
                Self(r)
            }

            /// Lanewise arithmetic shift right (truncate-toward-−∞,
            /// i.e. `Rounding::Truncate`). `s` must be < the lane width.
            #[inline(always)]
            #[allow(clippy::should_implement_trait)] // method-call style is the lane-op idiom
            pub fn shr(self, s: u32) -> Self {
                let mut r = self.0;
                for a in r.iter_mut() {
                    *a >>= s;
                }
                Self(r)
            }

            /// Lanewise shift left.
            #[inline(always)]
            #[allow(clippy::should_implement_trait)] // method-call style is the lane-op idiom
            pub fn shl(self, s: u32) -> Self {
                let mut r = self.0;
                for a in r.iter_mut() {
                    *a <<= s;
                }
                Self(r)
            }

            /// Lanewise round-to-nearest right shift, ties away from
            /// zero — bit-identical to
            /// `hybridem_fixed::Rounding::Nearest::shift_right` for
            /// `1 ≤ s < lane width − 1`. Branchless (sign-mask
            /// absolute value, round, restore sign) so the lowering is
            /// a handful of vector ops instead of per-lane branches —
            /// exact because callers keep |x| well below the type's
            /// maximum (no `abs` overflow).
            #[inline(always)]
            pub fn round_shr_nearest(self, s: u32) -> Self {
                let half = 1 << (s - 1);
                let mut r = self.0;
                for a in r.iter_mut() {
                    let m = *a >> (<$t>::BITS - 1);
                    let mag = (*a ^ m) - m;
                    let rounded = (mag + half) >> s;
                    *a = (rounded ^ m) - m;
                }
                Self(r)
            }

            /// Lanewise `max(0, x)` — the ReLU pre-cast step.
            #[inline(always)]
            pub fn relu(self) -> Self {
                let mut r = self.0;
                for a in r.iter_mut() {
                    *a = (*a).max(0);
                }
                Self(r)
            }
        }
    };
}

simd_common!(i32);
simd_common!(i64);
simd_common!(f32);
simd_int!(i32);
simd_int!(i64);

impl<const N: usize> Simd<f32, N> {
    /// Lanewise difference.
    #[inline(always)]
    #[allow(clippy::should_implement_trait)] // method-call style is the lane-op idiom
    pub fn sub(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a -= b;
        }
        Self(r)
    }
}

impl<const N: usize> Simd<i32, N> {
    /// Widens each lane to `i64` and stores — the fast-path epilogue's
    /// hand-off to the 64-bit raw-value world.
    ///
    /// # Panics
    /// Panics if `d.len() < N`.
    #[inline(always)]
    pub fn store_widened(self, d: &mut [i64]) {
        for (slot, a) in d[..N].iter_mut().zip(self.0) {
            *slot = a as i64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_width_ordering_and_lanes() {
        assert!(LaneWidth::X4 < LaneWidth::X8);
        assert!(LaneWidth::X8 < LaneWidth::X16);
        assert_eq!(LaneWidth::X4.lanes(), 4);
        assert_eq!(LaneWidth::X8.lanes(), 8);
        assert_eq!(LaneWidth::X16.lanes(), 16);
        assert!(LaneWidth::detect().lanes() <= MAX_LANES);
    }

    #[test]
    fn supported_is_prefix_closed() {
        let s = LaneWidth::supported();
        assert_eq!(s[0], LaneWidth::X4);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.contains(&LaneWidth::detect()) || LaneWidth::detect() <= *s.last().unwrap());
    }

    struct SumSquares<'a>(&'a [f32]);
    impl SimdKernel for SumSquares<'_> {
        type Output = f32;
        fn run<const N: usize>(self) -> f32 {
            // Per-chunk-then-remainder, accumulated in slice order per
            // lane, summed lane-major: deterministic at any width only
            // because the test fixes the reduction order below.
            let mut acc = [0f32; MAX_LANES];
            let chunks = self.0.chunks_exact(N);
            let rem = chunks.remainder();
            for c in chunks {
                let v = Simd::<f32, N>::load(c);
                for (a, x) in acc.iter_mut().zip(v.mul(v).0) {
                    *a += x;
                }
            }
            let mut tail = 0f32;
            for &x in rem {
                tail += x * x;
            }
            acc[..N].iter().sum::<f32>() + tail
        }
    }

    #[test]
    fn dispatch_runs_at_every_supported_width() {
        let xs: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let reference: f32 = xs.iter().map(|x| x * x).sum::<f32>();
        for w in LaneWidth::supported() {
            let got = dispatch_at(w, SumSquares(&xs));
            // Chunked summation reassociates, so allow float slack.
            assert!(
                (got - reference).abs() / reference < 1e-5,
                "width {w:?}: {got} vs {reference}"
            );
        }
        let got = dispatch(SumSquares(&xs));
        assert!((got - reference).abs() / reference < 1e-5);
    }

    #[test]
    fn integer_ops_match_scalar_semantics() {
        let a = Simd::<i32, 4>([7, -7, 5, -3]);
        assert_eq!(a.round_shr_nearest(1).0, [4, -4, 3, -2]);
        assert_eq!(a.shr(1).0, [3, -4, 2, -2]);
        assert_eq!(a.relu().0, [7, 0, 5, 0]);
        assert_eq!(a.clamp(-4, 4).0, [4, -4, 4, -3]);
        assert_eq!(a.shl(2).0, [28, -28, 20, -12]);
        let b = Simd::<i32, 4>::splat(2);
        assert_eq!(a.mul(b).0, [14, -14, 10, -6]);
        assert_eq!(a.add(b).0, [9, -5, 7, -1]);
        assert_eq!(
            b.mul_add(a, Simd::<i32, 4>::splat(10)).0,
            [72, -68, 52, -28]
        );
    }

    #[test]
    fn round_shr_nearest_matches_fixed_rounding() {
        // Exhaustive small-range check against the scalar definition
        // (ties away from zero), mirroring Rounding::Nearest.
        for s in 1..8u32 {
            for raw in -1000i64..1000 {
                let half = 1i64 << (s - 1);
                let want = if raw >= 0 {
                    (raw + half) >> s
                } else {
                    -((-raw + half) >> s)
                };
                let got = Simd::<i64, 4>::splat(raw).round_shr_nearest(s).0[0];
                assert_eq!(got, want, "raw={raw} s={s}");
            }
        }
    }

    #[test]
    fn min_max_keep_self_on_ties() {
        let a = Simd::<f32, 4>([1.0, 2.0, 3.0, 4.0]);
        let b = Simd::<f32, 4>([1.0, 0.0, 9.0, 4.0]);
        assert_eq!(a.min(b).0, [1.0, 0.0, 3.0, 4.0]);
        assert_eq!(a.max(b).0, [1.0, 2.0, 9.0, 4.0]);
        // NaN in the incoming operand never replaces a finite lane
        // (matches `if b < a { b }`).
        let n = Simd::<f32, 4>::splat(f32::NAN);
        assert_eq!(a.min(n).0, a.0);
    }

    #[test]
    fn load_store_round_trip() {
        let src = [1i32, 2, 3, 4, 5];
        let v = Simd::<i32, 4>::load(&src);
        let mut dst = [0i32; 5];
        v.store(&mut dst);
        assert_eq!(dst, [1, 2, 3, 4, 0]);
        let mut wide = [0i64; 4];
        v.store_widened(&mut wide);
        assert_eq!(wide, [1, 2, 3, 4]);
    }
}
