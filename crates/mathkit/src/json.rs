//! From-scratch JSON tree, serialiser and recursive-descent parser.
//!
//! The workspace ships trained-model checkpoints, experiment artefacts
//! and hardware reports as JSON, but builds in an offline environment
//! with no third-party crates. This module is the dependency-free
//! replacement: a [`Json`] value tree, a writer (compact and pretty), a
//! strict parser, and the [`ToJson`] / [`FromJson`] conversion traits
//! implemented by the snapshot and report types across the workspace.
//!
//! Object key order is preserved (insertion order), so serialisation is
//! deterministic — important for byte-identical experiment artefacts
//! under fixed seeds.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point). `i128` storage
    /// covers the full `u64` and `i64` ranges exactly, so seeds and
    /// counters round-trip without precision loss.
    Int(i128),
    /// A floating-point number. Non-finite values serialise as `null`,
    /// matching the behaviour of mainstream JSON emitters.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error produced by JSON parsing or [`FromJson`] conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each element with [`ToJson`].
    pub fn array<T: ToJson, I: IntoIterator<Item = T>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field, reporting the key on failure.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }

    /// The numeric value as `f64` (accepts `Int` and `Float`).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(x) => Ok(*x),
            Json::Null => Ok(f64::NAN), // non-finite floats serialise as null
            other => Err(type_err("number", other)),
        }
    }

    /// The numeric value as `i128`, rejecting fractional floats.
    pub fn as_i128(&self) -> Result<i128, JsonError> {
        match self {
            Json::Int(i) => Ok(*i),
            Json::Float(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Ok(*x as i128),
            other => Err(type_err("integer", other)),
        }
    }

    /// The numeric value as `i64`, rejecting fractional floats and
    /// out-of-range integers.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        let i = self.as_i128()?;
        i64::try_from(i).map_err(|_| JsonError::new(format!("{i} out of range for i64")))
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_err("string", other)),
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_err("array", other)),
        }
    }

    /// Compact single-line serialisation.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty two-space-indented serialisation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; trailing non-whitespace is an error.
    /// Nesting deeper than 128 containers is rejected with an error
    /// (rather than overflowing the stack on corrupted input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn type_err(wanted: &str, got: &Json) -> JsonError {
    let kind = match got {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Int(_) => "integer",
        Json::Float(_) => "float",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    };
    JsonError::new(format!("expected {wanted}, found {kind}"))
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() {
        // Keep a float marker (decimal point or exponent) so the value
        // parses back as Float, whatever its magnitude.
        if x.abs() < 1.0e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x:e}"));
        }
    } else {
        // Rust's shortest round-trip formatting.
        out.push_str(&x.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

/// Maximum container nesting accepted by the parser; corrupted or
/// hostile input past this depth gets a `JsonError` instead of a
/// stack overflow.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{what}`")))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Json::Null),
            Some(b't') if self.eat_lit("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting deeper than 128 containers"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let r = self.array_inner();
        self.depth -= 1;
        r
    }

    fn array_inner(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let r = self.object_inner();
        self.depth -= 1;
        r
    }

    fn object_inner(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "{")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', ":")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "\"")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_lit("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // A plain `as f64` widening would serialise 0.1f32 as
        // 0.10000000149011612. Going through f32's shortest decimal
        // representation keeps artefacts readable and diffable while
        // still casting back to the identical f32.
        if self.is_finite() {
            Json::Float(
                self.to_string()
                    .parse::<f64>()
                    .expect("f32 display is valid f64"),
            )
        } else {
            Json::Float(f64::from(*self))
        }
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_f64()? as f32)
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }

        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_i128()?;
                <$t>::try_from(i)
                    .map_err(|_| JsonError::new(format!(
                        "{i} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            arr => Err(JsonError::new(format!(
                "expected a 2-element array, found {} elements",
                arr.len()
            ))),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|x| x.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|x| x.to_json()).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

/// Implements [`ToJson`] for a struct by listing its fields; each
/// field serialises under its own name, in declaration order.
///
/// ```
/// struct Point {
///     x: f64,
///     y: f64,
/// }
/// hybridem_mathkit::impl_to_json!(Point { x, y });
///
/// use hybridem_mathkit::json::ToJson;
/// let j = Point { x: 1.0, y: 2.0 }.to_json();
/// assert_eq!(j.to_string_compact(), r#"{"x":1.0,"y":2.0}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::object([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

/// Serialises any [`ToJson`] value as a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Serialises any [`ToJson`] value as pretty-printed JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses a JSON string into any [`FromJson`] type.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "round-trip failed for {text}");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x\n\"y\""}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\n\"y\"");
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn f32_round_trip_is_exact() {
        let xs: Vec<f32> = vec![0.1, -1.5e-8, 3.4e38, 7.0, std::f32::consts::PI];
        let text = to_string(&xs);
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn object_field_access_and_errors() {
        let v = Json::parse(r#"{"n": 3}"#).unwrap();
        assert_eq!(u32::from_json(v.field("n").unwrap()).unwrap(), 3);
        assert!(v.field("missing").is_err());
        assert!(v.field("n").unwrap().as_str().is_err());
        assert!(Json::parse("{broken").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let hostile = "[".repeat(100_000);
        assert!(Json::parse(&hostile).is_err());
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
        // 100 levels (within the limit) still parse.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn malformed_surrogate_pairs_error_instead_of_panicking() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(Json::parse("\"\\uD800\\u0041\"").is_err());
        // High surrogate with no second escape at all.
        assert!(Json::parse("\"\\uD800x\"").is_err());
        // Lone low surrogate.
        assert!(Json::parse("\"\\uDC00\"").is_err());
        // A valid pair still decodes.
        assert_eq!(
            Json::parse("\"\\uD83D\\uDE00\"").unwrap().as_str().unwrap(),
            "😀"
        );
    }

    #[test]
    fn full_u64_range_round_trips_exactly() {
        for v in [0u64, 1, i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX] {
            let text = to_string(&v);
            let back: u64 = from_str(&text).unwrap();
            assert_eq!(v, back, "u64 {v} failed to round-trip via {text}");
        }
        // Out-of-range rejections still work.
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u8>("256").is_err());
    }

    #[test]
    fn large_integer_valued_floats_stay_floats() {
        for x in [1.0e16f64, -3.0e18, 1.0e15, 123.0] {
            let v = Json::Float(x);
            let back = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(back, v, "float {x} re-parsed as a different variant");
        }
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        let restored: f64 = from_str("null").unwrap();
        assert!(restored.is_nan());
    }
}
