//! 2-D points/vectors (double precision) for the geometry substrate.
//!
//! Decision-region extraction interprets the demapper's I/Q input plane
//! geometrically; [`Vec2`] is the coordinate type used by hulls,
//! polygons and Voronoi cells in `hybridem-geom`.

use crate::complex::C64;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D point or vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec2 {
    /// Horizontal component (in-phase axis).
    pub x: f64,
    /// Vertical component (quadrature axis).
    pub y: f64,
}

impl Vec2 {
    /// Builds `(x, y)`.
    #[inline(always)]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin.
    #[inline(always)]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Dot product.
    #[inline(always)]
    pub fn dot(self, o: Self) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    /// Positive when `o` is counter-clockwise from `self`.
    #[inline(always)]
    pub fn cross(self, o: Self) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Squared distance to another point.
    #[inline(always)]
    pub fn dist_sqr(self, o: Self) -> f64 {
        (self - o).norm_sqr()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Self) -> f64 {
        self.dist_sqr(o).sqrt()
    }

    /// Unit vector in the same direction; returns the zero vector for the
    /// zero input rather than dividing by zero.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            Self::zero()
        } else {
            self / n
        }
    }

    /// Counter-clockwise perpendicular.
    #[inline(always)]
    pub fn perp(self) -> Self {
        Self::new(-self.y, self.x)
    }

    /// Linear interpolation `self + t·(o − self)`.
    #[inline]
    pub fn lerp(self, o: Self, t: f64) -> Self {
        self + (o - self) * t
    }

    /// Midpoint with another point.
    #[inline]
    pub fn midpoint(self, o: Self) -> Self {
        self.lerp(o, 0.5)
    }

    /// Converts to a complex sample (x→re, y→im).
    #[inline]
    pub fn to_complex(self) -> C64 {
        C64::new(self.x, self.y)
    }

    /// Converts from a complex sample.
    #[inline]
    pub fn from_complex(c: C64) -> Self {
        Self::new(c.re, c.im)
    }
}

impl Add for Vec2 {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, k: f64) -> Self {
        Self::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Vec2 {
    type Output = Self;
    #[inline(always)]
    fn div(self, k: f64) -> Self {
        Self::new(self.x / k, self.y / k)
    }
}

impl Neg for Vec2 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y)
    }
}

impl AddAssign for Vec2 {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl SubAssign for Vec2 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    Ccw,
    /// Clockwise turn.
    Cw,
    /// The three points are collinear (within `eps`).
    Collinear,
}

/// Robust-enough orientation predicate for the scales used here
/// (unit-power constellations, |coord| ≲ 4).
pub fn orientation(a: Vec2, b: Vec2, c: Vec2, eps: f64) -> Orientation {
    let v = (b - a).cross(c - a);
    if v > eps {
        Orientation::Ccw
    } else if v < -eps {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn norms_and_distances() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dist(Vec2::zero()), 5.0);
        assert_eq!(a.normalized().norm(), 1.0);
        assert_eq!(Vec2::zero().normalized(), Vec2::zero());
    }

    #[test]
    fn perp_is_orthogonal_and_ccw() {
        let a = Vec2::new(2.0, 1.0);
        assert_eq!(a.dot(a.perp()), 0.0);
        assert!(a.cross(a.perp()) > 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn orientation_predicate() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Vec2::new(0.0, 1.0), 1e-12),
            Orientation::Ccw
        );
        assert_eq!(
            orientation(a, b, Vec2::new(0.0, -1.0), 1e-12),
            Orientation::Cw
        );
        assert_eq!(
            orientation(a, b, Vec2::new(2.0, 0.0), 1e-12),
            Orientation::Collinear
        );
    }

    #[test]
    fn complex_round_trip() {
        let v = Vec2::new(0.25, -1.5);
        assert_eq!(Vec2::from_complex(v.to_complex()), v);
    }
}
