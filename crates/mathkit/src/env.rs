//! Strict parsing for workspace environment knobs.
//!
//! Every `HYBRIDEM_*` count variable (`HYBRIDEM_THREADS`,
//! `HYBRIDEM_LANES`, the bench budget vars) is parsed by the one rule
//! in [`parse_count`]. The rule is deliberately stricter than
//! `str::parse::<u64>`: `parse` accepts a leading `+` and callers used
//! to pre-`trim`, so `"+8"` and `" 4 "` silently configured worker
//! pools while the SIMD lane cap's ad-hoc matcher rejected both —
//! the same value string meant different things to different crates.
//! One strict, shared parser makes a malformed value mean "fall back
//! to the default" *everywhere*, and makes that contract testable in
//! exactly one place.

/// Parses a count-valued environment variable strictly: `Some(n)` only
/// when `value` is entirely ASCII digits, fits in a `u64`, and is
/// ≥ 1. Rejected (→ `None`): the empty string, `"0"` (and `"00"`…),
/// any whitespace, a leading `+` or `-`, fractions, and garbage.
pub fn parse_count(value: &str) -> Option<u64> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    value.parse::<u64>().ok().filter(|&n| n >= 1)
}

/// [`parse_count`] for an optional value (the common
/// `std::env::var(..).ok().as_deref()` shape), narrowed to `usize`.
/// Counts above `usize::MAX` are rejected rather than truncated.
pub fn parse_count_opt(value: Option<&str>) -> Option<usize> {
    value
        .and_then(parse_count)
        .and_then(|n| usize::try_from(n).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_plain_positive_integers() {
        assert_eq!(parse_count("1"), Some(1));
        assert_eq!(parse_count("8"), Some(8));
        assert_eq!(parse_count("4096"), Some(4096));
        assert_eq!(parse_count("007"), Some(7), "leading zeros are digits");
    }

    #[test]
    fn rejects_zero_signs_whitespace_and_garbage() {
        assert_eq!(parse_count(""), None, "empty");
        assert_eq!(parse_count("0"), None, "zero");
        assert_eq!(parse_count("00"), None, "zero in disguise");
        assert_eq!(parse_count("+8"), None, "leading plus");
        assert_eq!(parse_count("-2"), None, "negative");
        assert_eq!(parse_count(" 4 "), None, "whitespace");
        assert_eq!(parse_count("4 "), None, "trailing whitespace");
        assert_eq!(parse_count("3.5"), None, "fractional");
        assert_eq!(parse_count("many"), None, "non-numeric");
        assert_eq!(parse_count("1e3"), None, "scientific notation");
    }

    #[test]
    fn rejects_overflow_instead_of_wrapping() {
        assert_eq!(parse_count("18446744073709551616"), None, "u64::MAX + 1");
        assert_eq!(parse_count("18446744073709551615"), Some(u64::MAX));
    }

    #[test]
    fn opt_narrows_to_usize() {
        assert_eq!(parse_count_opt(Some("12")), Some(12));
        assert_eq!(parse_count_opt(Some("+12")), None);
        assert_eq!(parse_count_opt(None), None);
    }
}
