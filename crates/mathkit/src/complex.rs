//! Complex numbers for the I/Q signal plane.
//!
//! A transmitted constellation point, a received noisy sample and a
//! channel coefficient are all values of [`Complex`]. The type is a
//! plain `#[repr(C)]` pair so slices of symbols can be reinterpreted as
//! interleaved I/Q buffers without copying.

use crate::real::Real;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` over a [`Real`] scalar.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    /// Real (in-phase) component.
    pub re: T,
    /// Imaginary (quadrature) component.
    pub im: T,
}

/// Single-precision complex sample, the workhorse of the simulator.
pub type C32 = Complex<f32>;
/// Double-precision complex sample, used where accumulation error matters.
pub type C64 = Complex<f64>;

impl<T: Real> Complex<T> {
    /// Builds `re + j·im`.
    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// The multiplicative identity.
    #[inline(always)]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// Unit phasor `e^{jθ}`.
    #[inline]
    pub fn from_angle(theta: T) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Polar constructor `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: T, theta: T) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Squared magnitude `re² + im²` — the Euclidean distance metric used
    /// by every demapper in this workspace.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Phase angle in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> T {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    #[inline(always)]
    pub fn scale(self, k: T) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Rotates by angle `theta` (multiplication by `e^{jθ}`).
    #[inline]
    pub fn rotate(self, theta: T) -> Self {
        self * Self::from_angle(theta)
    }

    /// Squared Euclidean distance to `other`.
    #[inline(always)]
    pub fn dist_sqr(self, other: Self) -> T {
        (self - other).norm_sqr()
    }

    /// Both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Widens to double precision.
    #[inline]
    pub fn to_c64(self) -> C64 {
        C64::new(self.re.to_f64(), self.im.to_f64())
    }
}

impl C64 {
    /// Narrows to single precision.
    #[inline]
    pub fn to_c32(self) -> C32 {
        C32::new(self.re as f32, self.im as f32)
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> std::fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= T::ZERO {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

/// Mean of a slice of complex samples.
pub fn mean<T: Real>(xs: &[Complex<T>]) -> Complex<T> {
    if xs.is_empty() {
        return Complex::zero();
    }
    let mut acc = Complex::zero();
    for &x in xs {
        acc += x;
    }
    acc.scale(T::ONE / T::from_usize(xs.len()))
}

/// Average power `E[|x|²]` of a slice of complex samples.
pub fn avg_power<T: Real>(xs: &[Complex<T>]) -> T {
    if xs.is_empty() {
        return T::ZERO;
    }
    let mut acc = T::ZERO;
    for &x in xs {
        acc += x.norm_sqr();
    }
    acc / T::from_usize(xs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a - a, C64::zero());
        assert_eq!(a * C64::one(), a);
        let q = (a / b) * b;
        assert!((q - a).abs() < EPS);
    }

    #[test]
    fn conj_mul_gives_norm() {
        let a = C64::new(3.0, -4.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
        assert!((a.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn rotation_preserves_magnitude_and_shifts_phase() {
        let a = C64::from_polar(2.0, 0.3);
        let r = a.rotate(std::f64::consts::FRAC_PI_4);
        assert!((r.abs() - 2.0).abs() < EPS);
        assert!((r.arg() - (0.3 + std::f64::consts::FRAC_PI_4)).abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(1.7, -2.1);
        assert!((z.abs() - 1.7).abs() < EPS);
        assert!((z.arg() + 2.1).abs() < EPS);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = C32::new(0.5, -0.25);
        let b = C32::new(-1.0, 2.0);
        assert_eq!(a.dist_sqr(b), b.dist_sqr(a));
        assert_eq!(a.dist_sqr(a), 0.0);
    }

    #[test]
    fn mean_and_power() {
        let xs = [C64::new(1.0, 0.0), C64::new(-1.0, 0.0), C64::new(0.0, 2.0)];
        let m = mean(&xs);
        assert!((m.re - 0.0).abs() < EPS && (m.im - 2.0 / 3.0).abs() < EPS);
        assert!((avg_power(&xs) - (1.0 + 1.0 + 4.0) / 3.0).abs() < EPS);
        assert_eq!(mean::<f64>(&[]), C64::zero());
        assert_eq!(avg_power::<f64>(&[]), 0.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1+2j");
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1-2j");
    }
}
