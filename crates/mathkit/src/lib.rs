//! # hybridem-mathkit
//!
//! Numeric substrate shared by the whole `hybridem` workspace:
//!
//! - [`real::Real`] — a minimal float abstraction over `f32`/`f64`;
//! - [`complex::Complex`] — complex numbers (the I/Q plane of the
//!   communication system);
//! - [`vec2::Vec2`] — 2-D points used by the geometry crate;
//! - [`matrix::Matrix`] — dense row-major matrices backing the neural
//!   network library;
//! - [`stats`] — streaming statistics, binomial confidence intervals for
//!   Monte-Carlo bit-error-rate estimation, histograms;
//! - [`special`] — `erf`/`erfc`/Gaussian Q function (closed-form BER
//!   baselines), numerically stable sigmoid/softplus/log-sum-exp;
//! - [`rng`] — deterministic, splittable random number generation
//!   (SplitMix64 seeding, xoshiro256++ streams, Gaussian sampling);
//! - [`simd`] — portable fixed-width SIMD lanes with runtime width
//!   dispatch (the substrate of the MVAU and demapper block kernels);
//! - [`json`] — from-scratch JSON tree, parser and serialiser backing
//!   model checkpoints and experiment artefacts.
//!
//! Everything here is dependency-free and deterministic so that
//! higher-level experiments are exactly reproducible across thread
//! counts and platforms.

#![warn(missing_docs)]

pub mod complex;
pub mod env;
pub mod json;
pub mod linsolve;
pub mod matrix;
pub mod real;
pub mod rng;
pub mod simd;
pub mod special;
pub mod stats;
pub mod vec2;

pub use complex::{Complex, C32, C64};
pub use matrix::Matrix;
pub use real::Real;
pub use rng::{Rng64, SplitMix64, Xoshiro256pp};
pub use vec2::Vec2;
