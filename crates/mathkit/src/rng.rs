//! Deterministic, splittable random number generation.
//!
//! Reproducibility is a hard requirement for the experiments in this
//! workspace: a BER point must not depend on thread count or platform.
//! We therefore implement the two small, well-known generators used by
//! most scientific stacks ourselves instead of depending on a crate
//! whose stream may change between versions:
//!
//! - [`SplitMix64`] — Steele et al.'s 64-bit mixer, used to derive
//!   uncorrelated seeds for parallel workers;
//! - [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ 1.0, the
//!   general-purpose stream generator.
//!
//! Gaussian variates come from the Marsaglia polar method, which is
//! branch-heavy but exact (no tail truncation) — AWGN tail behaviour is
//! precisely what drives high-SNR BER.

/// Convenience trait implemented by all RNGs in this module.
pub trait Rng64 {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: mantissa precision of f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 random bits.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift reduction
    /// (unbiased enough for simulation workloads; `n` ≤ 2³² here).
    #[inline]
    fn below(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        (((self.next_u64() >> 32) * n as u64) >> 32) as u32
    }

    /// A uniformly random bit.
    #[inline]
    fn bit(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Fills a slice with uniformly random bits (0/1 bytes).
    fn fill_bits(&mut self, out: &mut [u8]) {
        let mut buf = 0u64;
        let mut avail = 0u32;
        for b in out.iter_mut() {
            if avail == 0 {
                buf = self.next_u64();
                avail = 64;
            }
            *b = (buf & 1) as u8;
            buf >>= 1;
            avail -= 1;
        }
    }
}

/// SplitMix64 — a tiny mixing generator. Its main role here is turning
/// `(experiment seed, worker index)` pairs into well-separated seeds for
/// [`Xoshiro256pp`] streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives a child seed for worker `index`, well separated from other
    /// indices (golden-ratio jumps through the SplitMix sequence).
    pub fn derive(seed: u64, index: u64) -> u64 {
        let mut sm = Self::new(seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
        sm.next_u64()
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — the workhorse stream generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the state through SplitMix64 as recommended by the authors
    /// (guarantees a non-zero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Independent stream for a parallel worker: equivalent to seeding
    /// from `SplitMix64::derive(seed, index)`.
    pub fn stream(seed: u64, index: u64) -> Self {
        Self::seed_from_u64(SplitMix64::derive(seed, index))
    }

    /// Standard-normal variate via the Marsaglia polar method.
    pub fn normal_f64(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Standard-normal `f32` variate.
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        self.normal_f64() as f32
    }

    /// A pair of independent standard normals (both polar outputs).
    pub fn normal_pair_f64(&mut self) -> (f64, f64) {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                return (u * k, v * k);
            }
        }
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference values computed from the public-domain C source of
        // xoshiro256++ 1.0 with state {1, 2, 3, 4}.
        let mut g = Xoshiro256pp { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // From the public-domain reference implementation, seed = 0.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(g.next_u64(), 0x6E789E6AA1B965F4);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256pp::stream(42, 3);
        let mut b = Xoshiro256pp::stream(42, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::stream(42, 4);
        // Different stream indices should diverge immediately.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_unit_interval() {
        let mut g = Xoshiro256pp::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut g = Xoshiro256pp::seed_from_u64(1);
        let mut counts = [0u32; 16];
        for _ in 0..160_000 {
            counts[g.below(16) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut g = Xoshiro256pp::seed_from_u64(123);
        let n = 200_000;
        let (mut m, mut v) = (0.0, 0.0);
        for _ in 0..n {
            let x = g.normal_f64();
            m += x;
            v += x * x;
        }
        let mean = m / n as f64;
        let var = v / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_pair_components_uncorrelated() {
        let mut g = Xoshiro256pp::seed_from_u64(5);
        let n = 100_000;
        let mut cov = 0.0;
        for _ in 0..n {
            let (a, b) = g.normal_pair_f64();
            cov += a * b;
        }
        assert!((cov / n as f64).abs() < 0.02);
    }

    #[test]
    fn fill_bits_balanced() {
        let mut g = Xoshiro256pp::seed_from_u64(99);
        let mut buf = vec![0u8; 100_000];
        g.fill_bits(&mut buf);
        let ones: u64 = buf.iter().map(|&b| b as u64).sum();
        assert!(buf.iter().all(|&b| b <= 1));
        assert!((ones as f64 - 50_000.0).abs() < 1_000.0);
    }
}
