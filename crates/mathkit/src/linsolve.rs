//! Small dense linear solves (f64).
//!
//! The centroid-refinement step of the extraction pipeline solves a
//! damped Gauss–Newton normal system of a few dozen unknowns; this
//! module provides the required Gaussian elimination with partial
//! pivoting. Sizes are tiny (≤ 2·M for M ≤ 256 sites), so no blocking
//! or pivd-growth heroics are needed.

use crate::matrix::Matrix;

/// Solves `A·x = b` in place via Gaussian elimination with partial
/// pivoting. Returns `None` if the matrix is numerically singular.
pub fn solve(a: &Matrix<f64>, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square system required");
    assert_eq!(b.len(), n, "rhs length");
    // Augmented copy.
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = m[(col, col)].abs();
        for r in (col + 1)..n {
            let v = m[(r, col)].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(piv, c)];
                m[(piv, c)] = tmp;
            }
            x.swap(col, piv);
        }
        // Eliminate below.
        let d = m[(col, col)];
        for r in (col + 1)..n {
            let f = m[(r, col)] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m[(col, c)];
                m[(r, c)] -= f * v;
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in (col + 1)..n {
            acc -= m[(col, c)] * x[c];
        }
        x[col] = acc / m[(col, col)];
    }
    Some(x)
}

/// Solves the regularised least-squares problem
/// `min ‖J·x − r‖² + λ‖x‖²` via the normal equations
/// `(JᵀJ + λI)·x = Jᵀr`, with `J` given row by row.
pub fn solve_least_squares(
    rows: &[Vec<f64>],
    rhs: &[f64],
    n_unknowns: usize,
    lambda: f64,
) -> Option<Vec<f64>> {
    assert_eq!(rows.len(), rhs.len());
    let mut jtj = Matrix::zeros(n_unknowns, n_unknowns);
    let mut jtr = vec![0.0; n_unknowns];
    for (row, &r) in rows.iter().zip(rhs) {
        assert_eq!(row.len(), n_unknowns, "jacobian row width");
        for i in 0..n_unknowns {
            if row[i] == 0.0 {
                continue;
            }
            jtr[i] += row[i] * r;
            for j in 0..n_unknowns {
                jtj[(i, j)] += row[i] * row[j];
            }
        }
    }
    for i in 0..n_unknowns {
        jtj[(i, i)] += lambda;
    }
    solve(&jtj, &jtr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn random_round_trip() {
        // A·x for a known x, then solve and compare.
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 1234u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = next();
            }
            a[(r, r)] += 4.0; // diagonally dominant ⇒ well-conditioned
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.5).collect();
        let mut b = vec![0.0; n];
        for r in 0..n {
            for c in 0..n {
                b[r] += a[(r, c)] * x_true[c];
            }
        }
        let x = solve(&a, &b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2x + 1 from noisy-free samples: exact recovery.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let rhs: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let x = solve_least_squares(&rows, &rhs, 2, 1e-9).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn regularisation_controls_null_space() {
        // One equation, two unknowns: the λ‖x‖² term picks the
        // minimum-norm solution.
        let rows = vec![vec![1.0, 1.0]];
        let rhs = vec![2.0];
        let x = solve_least_squares(&rows, &rhs, 2, 1e-6).unwrap();
        assert!((x[0] - x[1]).abs() < 1e-6, "symmetric split");
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }
}
