//! Special functions and numerically careful primitives.
//!
//! The closed-form AWGN bit-error-rate baselines used to validate the
//! Monte-Carlo link simulator need the Gaussian Q function; demapper
//! LLR post-processing needs stable sigmoid/softplus/log-sum-exp.

/// Error function `erf(x)`, Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5·10⁻⁷ — ample for BER baselines that are
/// compared against Monte-Carlo noise).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x) = erfc(x/√2)/2`.
pub fn qfunc(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Numerically stable logistic sigmoid `1/(1+e^{−x})`.
///
/// Evaluates the exponential of a non-positive argument only, so it
/// never overflows; this is the reference implementation the FPGA
/// sigmoid LUT is checked against.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `f32` sigmoid used in the hot neural-network path.
#[inline]
pub fn sigmoid_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse sigmoid (logit). Saturates rather than returning ±∞ for
/// inputs at the boundary.
pub fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-300, 1.0 - 1e-16);
    (p / (1.0 - p)).ln()
}

/// Numerically stable `ln(1 + e^x)` (softplus).
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Stable `ln(Σ e^{x_i})` over a slice. Returns `-inf` for an empty
/// slice (the sum of zero exponentials).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// The max-log approximation `max_i x_i` of [`log_sum_exp`]; exposed so
/// tests can quantify the sub-optimality gap exploited by the paper's
/// suboptimal demapper.
pub fn max_log(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Jacobian logarithm correction: `ln(e^a + e^b) = max(a,b) + ln(1+e^{−|a−b|})`.
pub fn jacobian_log(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if !m.is_finite() {
        return m;
    }
    m + softplus(-(a - b).abs()) - 0.0_f64.max(-(a - b).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_points() {
        // Values from standard tables.
        assert!((erf(0.0) - 0.0).abs() < 1e-7);
        assert!((erf(0.5) - 0.5204999).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
    }

    #[test]
    fn qfunc_reference_points() {
        assert!((qfunc(0.0) - 0.5).abs() < 1e-7);
        assert!((qfunc(1.0) - 0.1586553).abs() < 1e-6);
        assert!((qfunc(3.0) - 1.349898e-3).abs() < 1e-6);
        // Symmetry: Q(-x) = 1 - Q(x).
        assert!((qfunc(-1.3) - (1.0 - qfunc(1.3))).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_stability_and_symmetry() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!((sigmoid(500.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-500.0) > 0.0);
        assert!(sigmoid(-500.0) < 1e-100);
        for &x in &[0.1, 1.0, 3.5, 10.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &x in &[-5.0, -0.5, 0.0, 2.5] {
            assert!((logit(sigmoid(x)) - x).abs() < 1e-9);
        }
        assert!(logit(0.0).is_finite());
        assert!(logit(1.0).is_finite());
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(0.0) - 2.0f64.ln()).abs() < 1e-12);
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) > 0.0);
        assert!(softplus(-100.0) < 1e-40);
    }

    #[test]
    fn log_sum_exp_matches_naive_and_is_stable() {
        let xs = [0.5f64, -1.0, 2.0];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
        // Large inputs would overflow a naive implementation.
        let big = [1000.0, 1000.0];
        assert!((log_sum_exp(&big) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn max_log_lower_bounds_log_sum_exp() {
        let xs = [0.3, 0.1, -0.7, 1.2];
        assert!(max_log(&xs) <= log_sum_exp(&xs));
        assert!((log_sum_exp(&xs) - max_log(&xs)) <= (xs.len() as f64).ln());
    }

    #[test]
    fn jacobian_log_exact() {
        for &(a, b) in &[(0.0f64, 0.0f64), (1.0, -2.0), (-3.0, 5.0)] {
            let exact = (a.exp() + b.exp()).ln();
            assert!((jacobian_log(a, b) - exact).abs() < 1e-9, "{a},{b}");
        }
    }
}
