//! Streaming statistics and Monte-Carlo error counters.
//!
//! BER points in the paper's Fig. 2 / Table 1 are binomial estimates;
//! [`ErrorCounter`] tracks them together with a Wilson confidence
//! interval so experiments can report how trustworthy each point is and
//! tests can assert against closed-form theory without flakiness.

/// Wilson score interval for a binomial proportion: `errors` successes
/// in `trials` trials at `z` standard-normal quantiles (z = 1.96 ⇒
/// 95 %). Well-behaved even at zero observed errors, unlike the naive
/// normal interval.
///
/// Zero-observation contract: with `trials == 0` the maximally
/// uninformative interval `(0, 1)` is returned — never NaN — so
/// campaign artefacts stay JSON-clean whatever the trial budget.
///
/// This is the single Wilson implementation in the workspace;
/// [`ErrorCounter::wilson_interval`] and the campaign engine's
/// per-point confidence intervals both delegate here.
pub fn wilson_interval(errors: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // At the edges `centre ∓ half` is analytically 0 (resp. 1) but the
    // sqrt path leaves ±1e-17-ish residue; pin the bounds exactly so
    // "rate inside its interval" holds without tolerances.
    let lo = if errors == 0 {
        0.0
    } else {
        (centre - half).max(0.0)
    };
    let hi = if errors == trials {
        1.0
    } else {
        (centre + half).min(1.0)
    };
    (lo, hi)
}

/// Welford's online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel reduction), Chan et al.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += d * other.n as f64 / n as f64;
        self.n = n;
    }
}

/// Binomial error counter with Wilson-score confidence intervals —
/// the unit of account of every BER simulation in the workspace.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErrorCounter {
    errors: u64,
    trials: u64,
}

impl ErrorCounter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `errors` errors out of `trials` trials.
    pub fn record(&mut self, errors: u64, trials: u64) {
        self.errors += errors;
        self.trials += trials;
    }

    /// Records a single binary outcome.
    pub fn push(&mut self, error: bool) {
        self.record(u64::from(error), 1);
    }

    /// Total error count.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Total trial count.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate of the error rate.
    ///
    /// Zero-observation contract: returns exactly `0.0` (never NaN)
    /// when no trials ran, so downstream JSON artefacts and adaptation
    /// thresholds see a finite number. Use [`ErrorCounter::trials`] to
    /// distinguish "no errors observed" from "nothing measured".
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.errors as f64 / self.trials as f64
        }
    }

    /// Wilson score interval at `z` standard normal quantiles
    /// (z = 1.96 ⇒ 95 %) — delegates to [`wilson_interval`].
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.errors, self.trials, z)
    }

    /// True if `rate` lies inside the Wilson interval at the given `z`.
    pub fn consistent_with(&self, rate: f64, z: f64) -> bool {
        let (lo, hi) = self.wilson_interval(z);
        rate >= lo && rate <= hi
    }

    /// Merges another counter (parallel reduction).
    pub fn merge(&mut self, other: &ErrorCounter) {
        self.errors += other.errors;
        self.trials += other.trials;
    }
}

/// Fixed-bin histogram over `[lo, hi)`; out-of-range samples are clamped
/// into the edge bins so mass is never silently dropped.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Histogram with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0 && hi > lo, "invalid histogram range");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            count: 0,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        let n = self.bins.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * n as f64) as isize).clamp(0, n as isize - 1) as usize;
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Empirical probability mass of bin `i`.
    pub fn mass(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bins[i] as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.population_variance() - 4.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let empty = Welford::new();
        let mut b = a.clone();
        b.merge(&empty);
        assert_eq!(b.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn error_counter_rate_and_merge() {
        let mut a = ErrorCounter::new();
        a.record(3, 100);
        let mut b = ErrorCounter::new();
        b.record(7, 900);
        a.merge(&b);
        assert_eq!(a.errors(), 10);
        assert_eq!(a.trials(), 1000);
        assert!((a.rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let mut c = ErrorCounter::new();
        c.record(13, 1000);
        let (lo, hi) = c.wilson_interval(1.96);
        assert!(lo < c.rate() && c.rate() < hi);
        assert!(lo > 0.0 && hi < 1.0);
        assert!(c.consistent_with(0.013, 1.96));
        assert!(!c.consistent_with(0.5, 1.96));
    }

    #[test]
    fn wilson_interval_zero_errors_is_proper() {
        let mut c = ErrorCounter::new();
        c.record(0, 1000);
        let (lo, hi) = c.wilson_interval(1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
        // No trials at all: the maximally uninformative interval.
        assert_eq!(ErrorCounter::new().wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    fn zero_trial_contract_is_finite() {
        // The documented zero-observation contract: rate 0, interval
        // (0, 1), nothing NaN.
        let c = ErrorCounter::new();
        assert_eq!(c.rate(), 0.0);
        assert!(c.rate().is_finite());
        assert_eq!(c.wilson_interval(1.96), (0.0, 1.0));
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn free_wilson_matches_counter_method() {
        let mut c = ErrorCounter::new();
        c.record(17, 4321);
        assert_eq!(c.wilson_interval(2.5), wilson_interval(17, 4321, 2.5));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.1, 0.3, 0.6, 0.9, -5.0, 5.0] {
            h.push(x);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.mass(0) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }
}
