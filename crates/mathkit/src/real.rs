//! Minimal floating-point abstraction.
//!
//! The workspace uses `f32` for neural-network compute (matches the
//! paper's PyTorch default and the FPGA quantisation source) and `f64`
//! for geometry and statistics accumulation. [`Real`] is the small trait
//! that lets shared containers ([`crate::matrix::Matrix`],
//! [`crate::complex::Complex`]) serve both.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar usable by the generic numeric containers.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Two.
    const TWO: Self;
    /// The circle constant π.
    const PI: Self;
    /// Machine epsilon.
    const EPSILON: Self;

    /// Lossless widening to `f64` (lossy for exotic `f64` values only).
    fn to_f64(self) -> f64;
    /// Narrowing conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Conversion from `usize` (exact for small values).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// `self^n` for integer `n`.
    fn powi(self, n: i32) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Two-argument arctangent.
    fn atan2(self, other: Self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Maximum of two values (NaN-propagating like `f64::max` is not;
    /// this follows the std semantics of preferring the non-NaN input).
    fn maximum(self, other: Self) -> Self;
    /// Minimum of two values.
    fn minimum(self, other: Self) -> Self;
    /// True if the value is finite.
    fn is_finite(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty, $pi:expr, $eps:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const TWO: Self = 2.0;
            const PI: Self = $pi;
            const EPSILON: Self = $eps;

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn atan2(self, other: Self) -> Self {
                <$t>::atan2(self, other)
            }
            #[inline(always)]
            fn tanh(self) -> Self {
                <$t>::tanh(self)
            }
            #[inline(always)]
            fn maximum(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn minimum(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32, std::f32::consts::PI, f32::EPSILON);
impl_real!(f64, std::f64::consts::PI, f64::EPSILON);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_smoke<T: Real>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert!((T::PI.to_f64() - std::f64::consts::PI).abs() < 1e-6);
        assert_eq!(T::from_f64(2.0), T::TWO);
        assert_eq!(T::from_usize(2), T::TWO);
        assert!((T::TWO.sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert_eq!((-T::ONE).abs(), T::ONE);
        assert_eq!(T::ONE.maximum(T::TWO), T::TWO);
        assert_eq!(T::ONE.minimum(T::TWO), T::ONE);
        assert!(T::ONE.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
    }

    #[test]
    fn f32_impl() {
        generic_smoke::<f32>();
    }

    #[test]
    fn f64_impl() {
        generic_smoke::<f64>();
    }

    #[test]
    fn trig_round_trip() {
        let x = 0.3_f64;
        assert!((x.sin().atan2(x.cos()) - x).abs() < 1e-12);
    }
}
