//! Dense row-major matrices.
//!
//! This is the storage type behind the neural-network library: a batch
//! of activations is a `(batch × features)` matrix, a dense layer's
//! weights are `(out × in)`. Only the operations the workspace actually
//! needs are provided, implemented with cache-friendly loop orders (the
//! `ikj` matmul) so that training the paper's autoencoder is fast enough
//! to run inside unit tests.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::real::Real;

/// Dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> Matrix<T> {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds from nested rows (convenience for tests).
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major backing slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow of one row.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Reshapes to `rows × cols` in place, reusing the backing
    /// allocation whenever its capacity suffices. Element values are
    /// unspecified afterwards — this is the scratch-buffer primitive of
    /// the allocation-free inference path, whose kernels overwrite
    /// every element before reading it.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, T::ZERO);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(T) -> T) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary combination into a new matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Self, mut f: impl FnMut(T, T) -> T) -> Self {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += k * other` (axpy), reusing the allocation.
    pub fn axpy(&mut self, k: T, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_inplace(&mut self, k: T) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Matrix product `self · other` with the cache-friendly `ikj`
    /// loop order.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product writing into a pre-allocated output (hot path of
    /// the training loop — avoids reallocating every step).
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul output shape");
        out.fill_zero();
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == T::ZERO {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
    }

    /// `self · otherᵀ` without materialising the transpose.
    pub fn matmul_transpose_b(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows, other.rows);
        self.matmul_transpose_b_into(other, &mut out);
        out
    }

    /// `self · otherᵀ` writing into a pre-sized output (the inference
    /// hot path — same accumulation order as
    /// [`Matrix::matmul_transpose_b`], so results are bit-identical).
    pub fn matmul_transpose_b_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b dimension mismatch"
        );
        out.resize_to(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = T::ZERO;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
    }

    /// `selfᵀ · other` without materialising the transpose (the weight
    /// gradient `xᵀ·δ` of a dense layer).
    pub fn transpose_a_matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul dimension mismatch"
        );
        let mut out = Self::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == T::ZERO {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Sum over rows, producing a length-`cols` vector (bias gradients).
    pub fn col_sums(&self) -> Vec<T> {
        let mut out = vec![T::ZERO; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        let mut acc = T::ZERO;
        for &v in &self.data {
            acc += v * v;
        }
        acc.sqrt()
    }

    /// Maximum absolute element (zero for an empty matrix).
    pub fn max_abs(&self) -> T {
        let mut m = T::ZERO;
        for &v in &self.data {
            m = m.maximum(v.abs());
        }
        m
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Real> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T: Real> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<T: ToJson> ToJson for Matrix<T> {
    fn to_json(&self) -> Json {
        Json::object([
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("data", self.data.to_json()),
        ])
    }
}

impl<T: FromJson> FromJson for Matrix<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let rows = usize::from_json(v.field("rows")?)?;
        let cols = usize::from_json(v.field("cols")?)?;
        let data = Vec::<T>::from_json(v.field("data")?)?;
        if data.len() != rows * cols {
            return Err(JsonError::new(format!(
                "matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(Matrix::<f64>::eye(2)[(1, 1)], 1.0);
        assert_eq!(Matrix::<f64>::eye(2)[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn from_vec_length_checked() {
        let _ = Matrix::<f32>::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::<f64>::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 4.0]]);
        let i3 = Matrix::eye(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::<f32>::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn fused_transposed_products_match_explicit() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::<f64>::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
        assert_eq!(a.transpose_a_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::<f64>::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::<f64>::from_rows(&[&[2.0, -2.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 0.0]]));
        a.scale_inplace(2.0);
        assert_eq!(a, Matrix::from_rows(&[&[4.0, 0.0]]));
    }

    #[test]
    fn col_sums_and_norms() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.col_sums(), vec![4.0, 2.0]);
        assert!((a.frobenius_norm() - (1.0f64 + 4.0 + 9.0 + 16.0).sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(|x| x.abs()), Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = Matrix::<f64>::from_rows(&[&[3.0, 1.0]]);
        assert_eq!(
            a.zip_map(&b, |x, y| x + y),
            Matrix::from_rows(&[&[4.0, -1.0]])
        );
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::<f64>::from_rows(&[&[3.0], &[4.0]]);
        let mut out = Matrix::full(1, 1, 99.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out[(0, 0)], 11.0);
    }
}
