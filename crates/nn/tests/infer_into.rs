//! The batched inference contract behind the block demapper:
//! `Sequential::infer_into` matches row-by-row `infer` to f32 equality,
//! and the scratch-buffer path allocates nothing once warmed.

use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::model::{Activation, InferScratch, MlpSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator with a per-thread allocation counter: integration
/// tests run on their own threads, so counting thread-locally isolates
/// the measured region from the harness and from other tests.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn random_batch(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut x = Matrix::zeros(rows, cols);
    for v in x.as_mut_slice() {
        *v = rng.normal_f32();
    }
    x
}

#[test]
fn batched_infer_into_matches_row_by_row_infer_exactly() {
    for (seed, spec) in [
        (1u64, MlpSpec::paper_demapper()),
        (2, MlpSpec::paper_demapper_logits()),
        (
            3,
            MlpSpec {
                dims: vec![2, 8, 8, 3],
                hidden: Activation::Tanh,
                output: Activation::Sigmoid,
            },
        ),
    ] {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let model = spec.build(&mut rng);
        let x = random_batch(37, model.input_dim(), seed + 100);

        let mut scratch = InferScratch::new();
        let mut batched = Matrix::zeros(0, 0);
        model.infer_into(&x, &mut batched, &mut scratch);
        assert_eq!(batched.shape(), (x.rows(), model.output_dim()));

        for r in 0..x.rows() {
            let row = Matrix::from_vec(1, x.cols(), x.row(r).to_vec());
            let single = model.infer(&row);
            for (k, (&b, &s)) in batched.row(r).iter().zip(single.row(0)).enumerate() {
                assert_eq!(
                    b.to_bits(),
                    s.to_bits(),
                    "row {r} col {k}: batched {b} vs single {s}"
                );
            }
        }
    }
}

#[test]
fn infer_into_allocates_nothing_after_warmup() {
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let model = MlpSpec::paper_demapper_logits().build(&mut rng);
    let x = random_batch(256, 2, 10);

    let mut scratch = InferScratch::new();
    let mut out = Matrix::zeros(0, 0);
    // Warm-up: buffers grow to their high-water mark.
    model.infer_into(&x, &mut out, &mut scratch);

    let before = allocations();
    for _ in 0..10 {
        model.infer_into(&x, &mut out, &mut scratch);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm infer_into must not allocate ({} allocations in 10 passes)",
        after - before
    );

    // Smaller batches reuse the warm buffers too.
    let small = random_batch(16, 2, 11);
    model.infer_into(&small, &mut out, &mut scratch);
    let before = allocations();
    model.infer_into(&small, &mut out, &mut scratch);
    assert_eq!(allocations() - before, 0, "shrunk batch must not allocate");
}
