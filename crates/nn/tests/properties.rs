//! Property-based tests of the neural-network library: gradient
//! correctness over random topologies, optimiser behaviour, and
//! serialisation stability.

use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::grad_check::{check_input_grads, check_model_grads};
use hybridem_nn::loss::{bce, bce_with_logits, cross_entropy_logits, mse};
use hybridem_nn::model::{Activation, MlpSpec};
use hybridem_nn::Sequential;
use proptest::prelude::*;

fn random_batch(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.normal_f32() * 0.6;
    }
    m
}

fn binary_targets(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    random_batch(rows, cols, seed).map(|v| f32::from(v > 0.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gradients_correct_for_random_topologies(
        hidden in 2usize..12,
        depth in 1usize..3,
        act in 0usize..3,
        seed in 0u64..1000,
    ) {
        let hidden_act = [Activation::Relu, Activation::Sigmoid, Activation::Tanh][act];
        let mut dims = vec![2usize];
        for _ in 0..depth {
            dims.push(hidden);
        }
        dims.push(3);
        let spec = MlpSpec {
            dims,
            hidden: hidden_act,
            output: Activation::Linear,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut model = spec.build(&mut rng);
        let x = random_batch(4, 2, seed + 1);
        let t = binary_targets(4, 3, seed + 2);
        let report = check_model_grads(&mut model, &x, |z| bce_with_logits(z, &t), 1e-3);
        // ReLU topologies: an activation can sit near its kink, where
        // f32 central differences straddle the non-differentiable point;
        // allow a wider envelope there (a real gradient bug shows up as
        // errors of order 1).
        let tol = if hidden_act == Activation::Relu { 0.12 } else { 5e-2 };
        prop_assert!(report.max_rel_error < tol,
            "rel err {} for seed {}", report.max_rel_error, seed);
    }

    #[test]
    fn input_gradients_correct(seed in 0u64..1000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let x = random_batch(3, 2, seed + 10);
        let t = binary_targets(3, 4, seed + 11);
        let report = check_input_grads(&mut model, &x, |z| bce_with_logits(z, &t), 1e-3);
        prop_assert!(report.max_rel_error < 5e-2, "rel err {}", report.max_rel_error);
    }

    #[test]
    fn loss_gradients_match_numeric(seed in 0u64..500, loss_kind in 0usize..3) {
        // Direct central-difference check of each loss's own gradient.
        let z = random_batch(2, 4, seed);
        let t = binary_targets(2, 4, seed + 1);
        let labels = [0usize, 3];
        let f = |z: &Matrix<f32>| -> (f32, Matrix<f32>) {
            match loss_kind {
                0 => bce_with_logits(z, &t),
                1 => mse(z, &t),
                _ => cross_entropy_logits(z, &labels),
            }
        };
        let (_, g) = f(&z);
        let eps = 1e-3f32;
        for k in 0..z.len() {
            let mut zp = z.clone();
            zp.as_mut_slice()[k] += eps;
            let mut zm = z.clone();
            zm.as_mut_slice()[k] -= eps;
            let (lp, _) = f(&zp);
            let (lm, _) = f(&zm);
            let num = (lp - lm) / (2.0 * eps);
            let ana = g.as_slice()[k];
            prop_assert!((num - ana).abs() < 2e-2 * ana.abs().max(1.0),
                "coord {}: numeric {} vs analytic {}", k, num, ana);
        }
    }

    #[test]
    fn bce_forms_agree(seed in 0u64..500) {
        let z = random_batch(3, 4, seed);
        let t = binary_targets(3, 4, seed + 1);
        let p = z.map(hybridem_mathkit::special::sigmoid_f32);
        let (l1, _) = bce(&p, &t);
        let (l2, _) = bce_with_logits(&z, &t);
        prop_assert!((l1 - l2).abs() < 1e-4, "{l1} vs {l2}");
    }

    #[test]
    fn snapshot_round_trip_bit_exact(seed in any::<u64>(), rows in 1usize..6) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut model = MlpSpec::paper_demapper().build(&mut rng);
        let x = random_batch(rows, 2, seed ^ 0xABCD);
        let y1 = model.forward(&x);
        let json = model.to_json();
        let restored = Sequential::from_json(&json).unwrap();
        let y2 = restored.infer(&x);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn forward_and_infer_agree(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut model = MlpSpec::paper_demapper().build(&mut rng);
        let x = random_batch(5, 2, seed ^ 0x1234);
        let a = model.forward(&x);
        let b = model.infer(&x);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn gradient_step_reduces_loss_on_small_problems(seed in 0u64..200) {
        use hybridem_nn::optim::Optimizer;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let spec = MlpSpec {
            dims: vec![2, 6, 2],
            hidden: Activation::Tanh,
            output: Activation::Linear,
        };
        let mut model = spec.build(&mut rng);
        let x = random_batch(8, 2, seed + 5);
        let t = binary_targets(8, 2, seed + 6);
        let mut opt = hybridem_nn::Sgd::new(0.05);
        let (first, _) = bce_with_logits(&model.forward(&x), &t);
        for _ in 0..50 {
            model.zero_grad();
            let z = model.forward(&x);
            let (_, g) = bce_with_logits(&z, &t);
            model.backward(&g);
            opt.step(&mut model.params_mut());
        }
        let (last, _) = bce_with_logits(&model.forward(&x), &t);
        prop_assert!(last < first + 1e-6, "loss should not increase: {first} → {last}");
    }
}
