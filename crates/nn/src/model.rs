//! Layer stacks and model snapshots.
//!
//! [`Sequential`] chains layers into the demapper MLP; [`MlpSpec`] is
//! the declarative description used across the workspace (the paper's
//! demapper is `MlpSpec::paper_demapper()` = `2→16→16→4`,
//! ReLU/ReLU/Sigmoid — see DESIGN.md §5 for why the 352-DSP figure in
//! the paper's Table 2 pins down this topology). Snapshots serialise to
//! JSON through [`hybridem_mathkit::json`] so trained models can be
//! checkpointed, shipped to the FPGA builder, and reloaded in tests.

use crate::layer::{Layer, Param};
use crate::layers::{Dense, FakeQuant, Relu, Sigmoid, Tanh};
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_mathkit::json::{FromJson, Json, JsonError, ToJson};
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;

/// Hidden/output activation choice for [`MlpSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation (linear / logits output).
    Linear,
}

/// Declarative MLP description.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpSpec {
    /// Layer widths, `dims[0]` = input features, last = output features.
    pub dims: Vec<usize>,
    /// Activation after each hidden dense layer.
    pub hidden: Activation,
    /// Activation after the final dense layer.
    pub output: Activation,
}

impl MlpSpec {
    /// The paper's demapper: 2 inputs (I/Q), hidden widths 16 and 16,
    /// 4 outputs (bit probabilities); ReLU hidden, sigmoid output.
    pub fn paper_demapper() -> Self {
        Self {
            dims: vec![2, 16, 16, 4],
            hidden: Activation::Relu,
            output: Activation::Sigmoid,
        }
    }

    /// Same topology but with a linear (logit) output, for training with
    /// the fused BCE-with-logits loss.
    pub fn paper_demapper_logits() -> Self {
        Self {
            output: Activation::Linear,
            ..Self::paper_demapper()
        }
    }

    /// Total multiply–accumulate operations of one forward pass — the
    /// quantity that pins the DSP count of a fully parallel FPGA
    /// implementation (352 for the paper's demapper).
    pub fn mac_count(&self) -> usize {
        self.dims.windows(2).map(|w| w[0] * w[1]).sum()
    }

    /// Builds the runtime model with fresh initialisation (He for ReLU
    /// stacks, Xavier otherwise).
    pub fn build(&self, rng: &mut Xoshiro256pp) -> Sequential {
        assert!(self.dims.len() >= 2, "need at least input and output dims");
        let init = match self.hidden {
            Activation::Relu => crate::init::Init::HeUniform,
            _ => crate::init::Init::XavierUniform,
        };
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let n = self.dims.len() - 1;
        for (i, w) in self.dims.windows(2).enumerate() {
            layers.push(Box::new(Dense::new(w[0], w[1], init, rng)));
            let act = if i + 1 == n { self.output } else { self.hidden };
            match act {
                Activation::Relu => layers.push(Box::new(Relu::new())),
                Activation::Sigmoid => layers.push(Box::new(Sigmoid::new())),
                Activation::Tanh => layers.push(Box::new(Tanh::new())),
                Activation::Linear => {}
            }
        }
        Sequential::new(layers, self.dims[0])
    }
}

/// Reusable ping-pong activation buffers for [`Sequential::infer_into`].
///
/// After one warm-up pass at a given batch size the buffers have grown
/// to their high-water mark and subsequent passes allocate nothing —
/// the property the block demapper's Monte-Carlo hot loop relies on.
pub struct InferScratch {
    ping: Matrix<f32>,
    pong: Matrix<f32>,
}

impl InferScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            ping: Matrix::zeros(0, 0),
            pong: Matrix::zeros(0, 0),
        }
    }
}

impl Default for InferScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A chain of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    input_dim: usize,
}

impl Sequential {
    /// Builds from boxed layers; `input_dim` is the expected feature
    /// count of the input batch.
    pub fn new(layers: Vec<Box<dyn Layer>>, input_dim: usize) -> Self {
        Self { layers, input_dim }
    }

    /// Expected input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output feature count.
    pub fn output_dim(&self) -> usize {
        let mut d = self.input_dim;
        for l in &self.layers {
            d = l.output_dim(d);
        }
        d
    }

    /// Number of layers (including activations).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Immutable view of the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Matrix<f32>) -> Matrix<f32> {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x);
        }
        x
    }

    /// Pure inference pass (no caches touched): safe to call from
    /// shared references across threads. Allocates fresh buffers per
    /// call; batch hot loops should hold an [`InferScratch`] and use
    /// [`Sequential::infer_into`] instead.
    pub fn infer(&self, input: &Matrix<f32>) -> Matrix<f32> {
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = InferScratch::new();
        self.infer_into(input, &mut out, &mut scratch);
        out
    }

    /// Allocation-free inference: runs the whole stack writing into
    /// `out`, ping-ponging intermediate activations through `scratch`.
    /// All buffers are reshaped with [`Matrix::resize_to`], so once
    /// they have been warmed at a batch size nothing allocates. The
    /// arithmetic is bit-identical to [`Sequential::infer`] (which is
    /// implemented on top of this method).
    pub fn infer_into(
        &self,
        input: &Matrix<f32>,
        out: &mut Matrix<f32>,
        scratch: &mut InferScratch,
    ) {
        match self.layers.len() {
            0 => {
                out.resize_to(input.rows(), input.cols());
                out.as_mut_slice().copy_from_slice(input.as_slice());
            }
            1 => self.layers[0].infer_into(input, out),
            n => {
                let InferScratch { ping, pong } = scratch;
                let (mut src, mut dst) = (ping, pong);
                self.layers[0].infer_into(input, src);
                for l in &self.layers[1..n - 1] {
                    l.infer_into(src, dst);
                    std::mem::swap(&mut src, &mut dst);
                }
                self.layers[n - 1].infer_into(src, out);
            }
        }
    }

    /// Backward pass; returns ∂L/∂input.
    pub fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32> {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// All trainable parameters in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Read-only parameters in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Serialisable snapshot of architecture and weights.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot {
            input_dim: self.input_dim,
            layers: self
                .layers
                .iter()
                .map(|l| match l.name() {
                    "dense" => {
                        let ps = l.params();
                        LayerSnapshot::Dense {
                            weight: ps[0].value.clone(),
                            bias: ps[1].value.clone(),
                        }
                    }
                    "relu" => LayerSnapshot::Relu,
                    "sigmoid" => LayerSnapshot::Sigmoid,
                    "tanh" => LayerSnapshot::Tanh,
                    "fake_quant" => LayerSnapshot::FakeQuant {
                        spec: l
                            .quant_spec()
                            .expect("fake_quant layer must expose its QuantSpec"),
                    },
                    other => panic!("unsnapshotable layer {other}"),
                })
                .collect(),
        }
    }

    /// JSON round-trip helpers.
    pub fn to_json(&self) -> String {
        hybridem_mathkit::json::to_string(&self.snapshot())
    }

    /// Restores a model from JSON produced by [`Sequential::to_json`].
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let snap: ModelSnapshot = hybridem_mathkit::json::from_str(json)?;
        Ok(Self::from_snapshot(snap))
    }

    /// Rebuilds a model from a snapshot.
    pub fn from_snapshot(snap: ModelSnapshot) -> Self {
        let layers: Vec<Box<dyn Layer>> = snap
            .layers
            .into_iter()
            .map(|l| -> Box<dyn Layer> {
                match l {
                    LayerSnapshot::Dense { weight, bias } => {
                        Box::new(Dense::from_parts(weight, bias))
                    }
                    LayerSnapshot::Relu => Box::new(Relu::new()),
                    LayerSnapshot::Sigmoid => Box::new(Sigmoid::new()),
                    LayerSnapshot::Tanh => Box::new(Tanh::new()),
                    LayerSnapshot::FakeQuant { spec } => Box::new(FakeQuant::new(spec)),
                }
            })
            .collect();
        Self::new(layers, snap.input_dim)
    }
}

/// Rebuilds a float model as a quantisation-aware one: a
/// [`FakeQuant`] cast is inserted at every tensor boundary of the
/// deployed integer datapath — in front of the first layer (the
/// input/ADC format) and after each dense layer's activation (the
/// layer's activation format). `boundaries` therefore holds
/// `dense_count + 1` specs, in datapath order. Weights stay in f32;
/// the FPGA graph compiler (DESIGN.md §9) quantises them at deploy
/// time and reads the boundary specs back out of the model via
/// [`Layer::quant_spec`].
///
/// # Panics
/// Panics if `model` already contains fake-quantisation layers or if
/// `boundaries` does not match the dense-layer count.
pub fn insert_fake_quant(model: &Sequential, boundaries: &[QuantSpec]) -> Sequential {
    let snap = model.snapshot();
    assert!(
        !snap
            .layers
            .iter()
            .any(|l| matches!(l, LayerSnapshot::FakeQuant { .. })),
        "model is already quantisation-aware"
    );
    let dense_count = snap
        .layers
        .iter()
        .filter(|l| matches!(l, LayerSnapshot::Dense { .. }))
        .count();
    assert_eq!(
        boundaries.len(),
        dense_count + 1,
        "need one boundary spec per dense layer plus the input"
    );

    let mut qat = Vec::with_capacity(snap.layers.len() + boundaries.len());
    qat.push(LayerSnapshot::FakeQuant {
        spec: boundaries[0],
    });
    let mut di = 0usize;
    let mut iter = snap.layers.into_iter().peekable();
    while let Some(l) = iter.next() {
        let is_dense = matches!(l, LayerSnapshot::Dense { .. });
        qat.push(l);
        if is_dense {
            // The boundary sits after the dense layer's activation.
            if matches!(
                iter.peek(),
                Some(LayerSnapshot::Relu | LayerSnapshot::Sigmoid | LayerSnapshot::Tanh)
            ) {
                qat.push(iter.next().unwrap());
            }
            di += 1;
            qat.push(LayerSnapshot::FakeQuant {
                spec: boundaries[di],
            });
        }
    }
    Sequential::from_snapshot(ModelSnapshot {
        input_dim: snap.input_dim,
        layers: qat,
    })
}

/// Reads the fake-quantisation boundary specs back out of a QAT model
/// (one per [`FakeQuant`] layer, in layer order). Empty for a plain
/// float model.
pub fn boundary_specs(model: &Sequential) -> Vec<QuantSpec> {
    model
        .layers()
        .iter()
        .filter_map(|l| l.quant_spec())
        .collect()
}

/// One serialised layer.
#[derive(Clone, Debug)]
pub enum LayerSnapshot {
    /// Dense layer weights (`out × in`) and bias (`1 × out`).
    Dense {
        /// Weight matrix.
        weight: Matrix<f32>,
        /// Bias row vector.
        bias: Matrix<f32>,
    },
    /// ReLU activation.
    Relu,
    /// Sigmoid activation.
    Sigmoid,
    /// Tanh activation.
    Tanh,
    /// Straight-through fake-quantisation boundary (QAT).
    FakeQuant {
        /// The fixed-point cast the layer simulates.
        spec: QuantSpec,
    },
}

/// A serialised model: architecture plus weights.
#[derive(Clone, Debug)]
pub struct ModelSnapshot {
    /// Expected input feature count.
    pub input_dim: usize,
    /// Layers in application order.
    pub layers: Vec<LayerSnapshot>,
}

impl ToJson for Activation {
    fn to_json(&self) -> Json {
        let name = match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Linear => "linear",
        };
        name.to_json()
    }
}

impl FromJson for Activation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "relu" => Ok(Activation::Relu),
            "sigmoid" => Ok(Activation::Sigmoid),
            "tanh" => Ok(Activation::Tanh),
            "linear" => Ok(Activation::Linear),
            other => Err(JsonError::new(format!("unknown activation `{other}`"))),
        }
    }
}

hybridem_mathkit::impl_to_json!(MlpSpec {
    dims,
    hidden,
    output
});

impl FromJson for MlpSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            dims: Vec::from_json(v.field("dims")?)?,
            hidden: Activation::from_json(v.field("hidden")?)?,
            output: Activation::from_json(v.field("output")?)?,
        })
    }
}

impl ToJson for LayerSnapshot {
    fn to_json(&self) -> Json {
        match self {
            LayerSnapshot::Dense { weight, bias } => Json::object([
                ("kind", "dense".to_json()),
                ("weight", weight.to_json()),
                ("bias", bias.to_json()),
            ]),
            LayerSnapshot::Relu => Json::object([("kind", "relu".to_json())]),
            LayerSnapshot::Sigmoid => Json::object([("kind", "sigmoid".to_json())]),
            LayerSnapshot::Tanh => Json::object([("kind", "tanh".to_json())]),
            LayerSnapshot::FakeQuant { spec } => Json::object([
                ("kind", "fake_quant".to_json()),
                ("total_bits", spec.format.total_bits.to_json()),
                ("frac_bits", spec.format.frac_bits.to_json()),
                ("signed", spec.format.signed.to_json()),
                ("rounding", rounding_name(spec.rounding).to_json()),
            ]),
        }
    }
}

fn rounding_name(r: Rounding) -> &'static str {
    match r {
        Rounding::Truncate => "truncate",
        Rounding::Nearest => "nearest",
        Rounding::NearestEven => "nearest_even",
    }
}

fn rounding_from_name(name: &str) -> Result<Rounding, JsonError> {
    match name {
        "truncate" => Ok(Rounding::Truncate),
        "nearest" => Ok(Rounding::Nearest),
        "nearest_even" => Ok(Rounding::NearestEven),
        other => Err(JsonError::new(format!("unknown rounding `{other}`"))),
    }
}

impl FromJson for LayerSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.field("kind")?.as_str()? {
            "dense" => Ok(LayerSnapshot::Dense {
                weight: Matrix::from_json(v.field("weight")?)?,
                bias: Matrix::from_json(v.field("bias")?)?,
            }),
            "relu" => Ok(LayerSnapshot::Relu),
            "sigmoid" => Ok(LayerSnapshot::Sigmoid),
            "tanh" => Ok(LayerSnapshot::Tanh),
            "fake_quant" => {
                let total = u32::from_json(v.field("total_bits")?)?;
                let frac = u32::from_json(v.field("frac_bits")?)?;
                let signed = bool::from_json(v.field("signed")?)?;
                let format = if signed {
                    QFormat::signed(total, frac)
                } else {
                    QFormat::unsigned(total, frac)
                };
                Ok(LayerSnapshot::FakeQuant {
                    spec: QuantSpec {
                        format,
                        rounding: rounding_from_name(v.field("rounding")?.as_str()?)?,
                    },
                })
            }
            other => Err(JsonError::new(format!("unknown layer kind `{other}`"))),
        }
    }
}

hybridem_mathkit::impl_to_json!(ModelSnapshot { input_dim, layers });

impl FromJson for ModelSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            input_dim: usize::from_json(v.field("input_dim")?)?,
            layers: Vec::from_json(v.field("layers")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::bce_with_logits;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn paper_demapper_shape_and_macs() {
        let spec = MlpSpec::paper_demapper();
        assert_eq!(spec.mac_count(), 2 * 16 + 16 * 16 + 16 * 4);
        assert_eq!(spec.mac_count(), 352); // pins the Table-2 DSP count
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let mut model = spec.build(&mut rng);
        assert_eq!(model.input_dim(), 2);
        assert_eq!(model.output_dim(), 4);
        let y = model.forward(&Matrix::zeros(5, 2));
        assert_eq!(y.shape(), (5, 4));
        // Sigmoid output is a probability.
        assert!(y.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn parameter_count() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let model = MlpSpec::paper_demapper().build(&mut rng);
        // Weights 352 + biases 16+16+4 = 388.
        assert_eq!(model.num_parameters(), 388);
    }

    #[test]
    fn json_round_trip_preserves_outputs() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut model = MlpSpec::paper_demapper().build(&mut rng);
        let x = Matrix::from_rows(&[&[0.3f32, -0.8], &[1.0, 0.1]]);
        let y1 = model.forward(&x);
        let json = model.to_json();
        let mut restored = Sequential::from_json(&json).unwrap();
        let y2 = restored.forward(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn learns_xor() {
        // The canonical non-linear sanity check for backprop.
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let spec = MlpSpec {
            dims: vec![2, 16, 1],
            hidden: Activation::Tanh,
            output: Activation::Linear,
        };
        let mut model = spec.build(&mut rng);
        let x = Matrix::from_rows(&[&[0.0f32, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let t = Matrix::from_rows(&[&[0.0f32], &[1.0], &[1.0], &[0.0]]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..800 {
            model.zero_grad();
            let z = model.forward(&x);
            let (l, g) = bce_with_logits(&z, &t);
            model.backward(&g);
            opt.step(&mut model.params_mut());
            last = l;
        }
        assert!(last < 0.05, "XOR loss did not converge: {last}");
        let probs = model
            .forward(&x)
            .map(hybridem_mathkit::special::sigmoid_f32);
        assert!(probs[(0, 0)] < 0.5 && probs[(3, 0)] < 0.5);
        assert!(probs[(1, 0)] > 0.5 && probs[(2, 0)] > 0.5);
    }

    #[test]
    fn insert_fake_quant_places_one_boundary_per_tensor() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let specs: Vec<QuantSpec> = [(8u32, 5u32), (8, 4), (8, 4), (10, 4)]
            .iter()
            .map(|&(t, f)| QuantSpec {
                format: QFormat::signed(t, f),
                rounding: Rounding::Nearest,
            })
            .collect();
        let qat = insert_fake_quant(&model, &specs);
        assert_eq!(crate::model::boundary_specs(&qat), specs);
        assert_eq!(qat.input_dim(), 2);
        assert_eq!(qat.output_dim(), 4);
        // dense,relu,dense,relu,dense + 4 fake_quant boundaries.
        assert_eq!(qat.depth(), 9);
        // Boundary order: input cast first, output cast last.
        assert_eq!(qat.layers()[0].name(), "fake_quant");
        assert_eq!(qat.layers()[qat.depth() - 1].name(), "fake_quant");
    }

    #[test]
    #[should_panic(expected = "already quantisation-aware")]
    fn insert_fake_quant_rejects_double_insertion() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let spec = QuantSpec {
            format: QFormat::signed(8, 4),
            rounding: Rounding::Nearest,
        };
        let qat = insert_fake_quant(&model, &[spec; 4]);
        let _ = insert_fake_quant(&qat, &[spec; 4]);
    }

    #[test]
    fn qat_json_round_trip_preserves_specs_and_outputs() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let specs = vec![
            QuantSpec {
                format: QFormat::signed(8, 5),
                rounding: Rounding::Nearest,
            },
            QuantSpec {
                format: QFormat::signed(6, 3),
                rounding: Rounding::Truncate,
            },
            QuantSpec {
                format: QFormat::unsigned(6, 6),
                rounding: Rounding::NearestEven,
            },
            QuantSpec {
                format: QFormat::signed(12, 6),
                rounding: Rounding::Nearest,
            },
        ];
        let mut qat = insert_fake_quant(&model, &specs);
        let json = qat.to_json();
        let mut restored = Sequential::from_json(&json).unwrap();
        assert_eq!(crate::model::boundary_specs(&restored), specs);
        let x = Matrix::from_rows(&[&[0.37f32, -0.92], &[1.4, 0.05]]);
        let a = qat.forward(&x);
        let b = restored.forward(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let x = Matrix::zeros(3, 2);
        let t = Matrix::zeros(3, 4);
        let z = model.forward(&x);
        let (_, g) = bce_with_logits(&z, &t);
        model.backward(&g);
        assert!(model.params().iter().any(|p| p.grad.max_abs() > 0.0));
        model.zero_grad();
        assert!(model.params().iter().all(|p| p.grad.max_abs() == 0.0));
    }
}
