//! Loss functions.
//!
//! The paper trains with **binary cross-entropy over the `m` bit
//! probabilities** (maximising bitwise mutual information). For
//! numerical robustness the E2E trainer uses the fused
//! [`bce_with_logits`] form on the pre-sigmoid outputs; a plain
//! [`bce`] on probabilities, [`mse`], and a softmax [`cross_entropy_logits`]
//! (for the symbol-wise demapper ablation) are also provided.
//!
//! Every function returns `(loss, grad)` where `grad` is ∂loss/∂input
//! with the `1/batch` factor already applied, so `loss` decreases under
//! a plain gradient step regardless of batch size.

use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::special::sigmoid_f32;

/// Binary cross-entropy on probabilities `p ∈ (0,1)` against targets
/// in `{0,1}` (mean over all entries). Inputs are clamped away from
/// {0,1} by `1e-7` to avoid infinities.
pub fn bce(p: &Matrix<f32>, target: &Matrix<f32>) -> (f32, Matrix<f32>) {
    assert_eq!(p.shape(), target.shape(), "bce shape mismatch");
    let n = p.len() as f32;
    let mut loss = 0.0f64;
    let grad = p.zip_map(target, |p, t| {
        let p = p.clamp(1e-7, 1.0 - 1e-7);
        loss += -((t as f64) * (p as f64).ln() + (1.0 - t as f64) * (1.0 - p as f64).ln());
        (-(t / p) + (1.0 - t) / (1.0 - p)) / n
    });
    ((loss / n as f64) as f32, grad)
}

/// Fused sigmoid + BCE on logits `z`: `L = mean[softplus(z) − t·z]`,
/// `∂L/∂z = (σ(z) − t)/N`. Never overflows.
pub fn bce_with_logits(z: &Matrix<f32>, target: &Matrix<f32>) -> (f32, Matrix<f32>) {
    assert_eq!(z.shape(), target.shape(), "bce_with_logits shape mismatch");
    let n = z.len() as f32;
    let mut loss = 0.0f64;
    let grad = z.zip_map(target, |z, t| {
        // softplus(z) − t·z in the standard overflow-free form
        // max(z,0) − t·z + ln(1+e^{−|z|}).
        loss += (z.max(0.0) - t * z + (1.0 + (-z.abs()).exp()).ln()) as f64;
        (sigmoid_f32(z) - t) / n
    });
    ((loss / n as f64) as f32, grad)
}

/// Mean squared error `mean[(y − t)²]`.
pub fn mse(y: &Matrix<f32>, target: &Matrix<f32>) -> (f32, Matrix<f32>) {
    assert_eq!(y.shape(), target.shape(), "mse shape mismatch");
    let n = y.len() as f32;
    let mut loss = 0.0f64;
    let grad = y.zip_map(target, |y, t| {
        let d = y - t;
        loss += (d as f64) * (d as f64);
        2.0 * d / n
    });
    ((loss / n as f64) as f32, grad)
}

/// Softmax cross-entropy on logits against integer class labels
/// (mean over the batch). Returns ∂L/∂logits.
pub fn cross_entropy_logits(z: &Matrix<f32>, labels: &[usize]) -> (f32, Matrix<f32>) {
    assert_eq!(z.rows(), labels.len(), "label count mismatch");
    let b = z.rows() as f32;
    let mut grad = Matrix::zeros(z.rows(), z.cols());
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let row = z.row(r);
        assert!(label < z.cols(), "label {label} out of range");
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = row.iter().map(|&v| (v - m).exp()).sum();
        let log_sum = m + sum.ln();
        loss += (log_sum - row[label]) as f64;
        let g = grad.row_mut(r);
        for (c, (&v, gslot)) in row.iter().zip(g.iter_mut()).enumerate() {
            let p = (v - log_sum).exp();
            *gslot = (p - f32::from(c == label)) / b;
        }
    }
    ((loss / b as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_known_value() {
        let p = Matrix::from_rows(&[&[0.9f32, 0.1]]);
        let t = Matrix::from_rows(&[&[1.0f32, 0.0]]);
        let (l, g) = bce(&p, &t);
        let expected = -(0.9f64.ln() + 0.9f64.ln()) / 2.0;
        assert!((l as f64 - expected).abs() < 1e-6);
        // Gradient signs: pull p up toward t=1, down toward t=0.
        assert!(g[(0, 0)] < 0.0);
        assert!(g[(0, 1)] > 0.0);
    }

    #[test]
    fn bce_with_logits_matches_composition() {
        let z = Matrix::from_rows(&[&[1.3f32, -0.7, 0.0, 4.0]]);
        let t = Matrix::from_rows(&[&[1.0f32, 0.0, 1.0, 0.0]]);
        let p = z.map(sigmoid_f32);
        let (l1, _) = bce(&p, &t);
        let (l2, g2) = bce_with_logits(&z, &t);
        assert!((l1 - l2).abs() < 1e-5, "{l1} vs {l2}");
        // grad wrt z from composition: (p−t)/N.
        for (i, (&pi, &ti)) in p.as_slice().iter().zip(t.as_slice()).enumerate() {
            assert!((g2.as_slice()[i] - (pi - ti) / 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_with_logits_extreme_inputs_finite() {
        let z = Matrix::from_rows(&[&[500.0f32, -500.0]]);
        let t = Matrix::from_rows(&[&[0.0f32, 1.0]]);
        let (l, g) = bce_with_logits(&z, &t);
        assert!(l.is_finite());
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
        assert!(l > 100.0); // confidently wrong ⇒ huge loss
    }

    #[test]
    fn mse_known_value_and_grad() {
        let y = Matrix::from_rows(&[&[1.0f32, 2.0]]);
        let t = Matrix::from_rows(&[&[0.0f32, 2.0]]);
        let (l, g) = mse(&y, &t);
        assert!((l - 0.5).abs() < 1e-7);
        assert_eq!(g.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let z = Matrix::zeros(1, 4);
        let (l, g) = cross_entropy_logits(&z, &[2]);
        assert!((l - (4.0f32).ln()).abs() < 1e-6);
        // Gradient: p − onehot = 0.25 everywhere except label: −0.75.
        assert!((g[(0, 2)] + 0.75).abs() < 1e-6);
        assert!((g[(0, 0)] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let z = Matrix::from_rows(&[&[10.0f32, -10.0, -10.0]]);
        let (l, _) = cross_entropy_logits(&z, &[0]);
        assert!(l < 1e-4);
    }

    #[test]
    fn perfect_prediction_zero_loss() {
        let p = Matrix::from_rows(&[&[1.0f32 - 1e-7, 1e-7]]);
        let t = Matrix::from_rows(&[&[1.0f32, 0.0]]);
        let (l, _) = bce(&p, &t);
        assert!(l < 1e-5);
    }
}
