//! Weight initialisation.
//!
//! Xavier/Glorot for sigmoid/tanh stacks, He for ReLU stacks —
//! both in their uniform variants, drawn from the workspace's
//! deterministic xoshiro streams.

use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

/// Initialisation scheme for a dense layer's weight matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// Uniform `±√(6/(fan_in+fan_out))` (Glorot & Bengio 2010).
    XavierUniform,
    /// Uniform `±√(6/fan_in)` (He et al. 2015), suited to ReLU.
    HeUniform,
    /// Uniform `±scale·0.5/√fan_in`-free plain range, for embeddings and
    /// tests: `±scale`.
    Uniform(f32),
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Samples a `rows × cols` matrix; `rows` is treated as `fan_out`,
    /// `cols` as `fan_in` (the dense-layer weight convention `W: out×in`).
    pub fn sample(&self, rows: usize, cols: usize, rng: &mut Xoshiro256pp) -> Matrix<f32> {
        let bound = match self {
            Init::XavierUniform => (6.0 / (rows + cols) as f64).sqrt(),
            Init::HeUniform => (6.0 / cols.max(1) as f64).sqrt(),
            Init::Uniform(s) => *s as f64,
            Init::Zeros => 0.0,
        };
        let mut m = Matrix::zeros(rows, cols);
        if bound > 0.0 {
            for v in m.as_mut_slice() {
                *v = rng.range_f64(-bound, bound) as f32;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_respected() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let m = Init::XavierUniform.sample(16, 2, &mut rng);
        let bound = (6.0f32 / 18.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        let h = Init::HeUniform.sample(4, 16, &mut rng);
        let hb = (6.0f32 / 16.0).sqrt();
        assert!(h.as_slice().iter().all(|v| v.abs() <= hb));
    }

    #[test]
    fn zeros_and_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        assert!(Init::Zeros
            .sample(3, 3, &mut rng)
            .as_slice()
            .iter()
            .all(|&v| v == 0.0));
        let u = Init::Uniform(0.1).sample(8, 8, &mut rng);
        assert!(u.as_slice().iter().all(|v| v.abs() <= 0.1));
        // Not all zero (vanishing probability).
        assert!(u.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(3);
        let mut b = Xoshiro256pp::seed_from_u64(3);
        assert_eq!(
            Init::XavierUniform.sample(5, 7, &mut a),
            Init::XavierUniform.sample(5, 7, &mut b)
        );
    }

    #[test]
    fn spread_is_nontrivial() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let m = Init::XavierUniform.sample(64, 64, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(var > 1e-4);
    }
}
