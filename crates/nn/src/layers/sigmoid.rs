//! Logistic sigmoid layer.

use crate::layer::Layer;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::special::sigmoid_f32;

/// Element-wise `σ(x) = 1/(1+e^{−x})`; caches its output (the backward
/// pass only needs `σ(x)·(1−σ(x))`).
#[derive(Default)]
pub struct Sigmoid {
    output: Option<Matrix<f32>>,
}

impl Sigmoid {
    /// New sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Matrix<f32>) -> Matrix<f32> {
        let out = self.infer(input);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Matrix<f32>) -> Matrix<f32> {
        input.map(sigmoid_f32)
    }

    fn infer_into(&self, input: &Matrix<f32>, out: &mut Matrix<f32>) {
        out.resize_to(input.rows(), input.cols());
        for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = sigmoid_f32(x);
        }
    }

    fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32> {
        let y = self.output.as_ref().expect("backward before forward");
        grad_out.zip_map(y, |g, y| g * y * (1.0 - y))
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_reference_values() {
        let mut l = Sigmoid::new();
        let y = l.forward(&Matrix::from_rows(&[&[0.0, 100.0, -100.0]]));
        assert!((y[(0, 0)] - 0.5).abs() < 1e-7);
        assert!((y[(0, 1)] - 1.0).abs() < 1e-6);
        assert!(y[(0, 2)] >= 0.0 && y[(0, 2)] < 1e-6);
    }

    #[test]
    fn backward_peak_at_zero() {
        let mut l = Sigmoid::new();
        let _ = l.forward(&Matrix::from_rows(&[&[0.0]]));
        let g = l.backward(&Matrix::from_rows(&[&[1.0]]));
        assert!((g[(0, 0)] - 0.25).abs() < 1e-7); // σ'(0) = 1/4
    }

    #[test]
    fn saturated_gradient_vanishes() {
        let mut l = Sigmoid::new();
        let _ = l.forward(&Matrix::from_rows(&[&[50.0]]));
        let g = l.backward(&Matrix::from_rows(&[&[1.0]]));
        assert!(g[(0, 0)].abs() < 1e-6);
    }
}
