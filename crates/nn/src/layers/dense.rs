//! Fully-connected layer `y = x·Wᵀ + b`.

use crate::init::Init;
use crate::layer::{Layer, Param};
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;

/// Dense layer with weights stored `out × in` (the row of `W` is the
/// fan-in of one output neuron — also the layout a folded MVAU consumes
/// row by row on the FPGA side).
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix<f32>>,
}

impl Dense {
    /// New dense layer with the given initialisation for the weights and
    /// zero bias.
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Xoshiro256pp) -> Self {
        Self {
            weight: Param::new(init.sample(out_dim, in_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Builds from explicit weight (`out × in`) and bias (`1 × out`)
    /// matrices (deserialisation, tests, FPGA export round-trips).
    pub fn from_parts(weight: Matrix<f32>, bias: Matrix<f32>) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weight.rows(), "bias length must equal out_dim");
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// The weight matrix (`out × in`).
    pub fn weight(&self) -> &Matrix<f32> {
        &self.weight.value
    }

    /// The bias row vector (`1 × out`).
    pub fn bias(&self) -> &Matrix<f32> {
        &self.bias.value
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Matrix<f32>) -> Matrix<f32> {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Matrix<f32>) -> Matrix<f32> {
        let mut out = Matrix::zeros(input.rows(), self.out_dim());
        self.infer_into(input, &mut out);
        out
    }

    fn infer_into(&self, input: &Matrix<f32>, out: &mut Matrix<f32>) {
        assert_eq!(input.cols(), self.in_dim(), "dense input width");
        input.matmul_transpose_b_into(&self.weight.value, out);
        let bias = self.bias.value.row(0);
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
    }

    fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32> {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_out.rows(), input.rows(), "batch mismatch");
        assert_eq!(grad_out.cols(), self.out_dim(), "grad width");
        // dW (out×in) = grad_outᵀ · input
        let dw = grad_out.transpose_a_matmul(input);
        self.weight.grad.axpy(1.0, &dw);
        // db = column sums of grad_out
        let db = grad_out.col_sums();
        for (g, d) in self.bias.grad.as_mut_slice().iter_mut().zip(db) {
            *g += d;
        }
        // dX (batch×in) = grad_out · W
        grad_out.matmul(&self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.in_dim());
        self.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_2x3() -> Dense {
        Dense::from_parts(
            Matrix::from_rows(&[&[1.0, 2.0], &[0.0, -1.0], &[0.5, 0.5]]),
            Matrix::from_rows(&[&[0.1, 0.2, 0.3]]),
        )
    }

    #[test]
    fn forward_known_values() {
        let mut l = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (2, 3));
        // Row 0: [1+2, −1, 1]+b = [3.1, −0.8, 1.3]
        assert!((y[(0, 0)] - 3.1).abs() < 1e-6);
        assert!((y[(0, 1)] + 0.8).abs() < 1e-6);
        assert!((y[(0, 2)] - 1.3).abs() < 1e-6);
        // Row 1: [2, 0, 1]+b
        assert!((y[(1, 0)] - 2.1).abs() < 1e-6);
    }

    #[test]
    fn backward_shapes_and_accumulation() {
        let mut l = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        let _ = l.forward(&x);
        let g = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let gx = l.backward(&g);
        assert_eq!(gx.shape(), (1, 2));
        // dX = g·W = first row of W.
        assert_eq!(gx.as_slice(), &[1.0, 2.0]);
        // dW row 0 = x, other rows zero; db = g.
        assert_eq!(l.params()[0].grad.row(0), &[1.0, -1.0]);
        assert_eq!(l.params()[0].grad.row(1), &[0.0, 0.0]);
        assert_eq!(l.params()[1].grad.as_slice(), &[1.0, 0.0, 0.0]);
        // Accumulation across a second backward.
        let _ = l.forward(&x);
        let _ = l.backward(&g);
        assert_eq!(l.params()[0].grad.row(0), &[2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "dense input width")]
    fn input_width_checked() {
        let mut l = layer_2x3();
        let _ = l.forward(&Matrix::zeros(1, 5));
    }

    #[test]
    fn output_dim_reports() {
        let l = layer_2x3();
        assert_eq!(l.output_dim(2), 3);
        assert_eq!(l.in_dim(), 2);
        assert_eq!(l.out_dim(), 3);
    }
}
