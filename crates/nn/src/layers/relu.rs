//! Rectified linear unit.

use crate::layer::Layer;
use hybridem_mathkit::matrix::Matrix;

/// Element-wise `max(0, x)`; caches the activation mask for backward.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    shape: (usize, usize),
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Matrix<f32>) -> Matrix<f32> {
        let mask: Vec<bool> = input.as_slice().iter().map(|&x| x > 0.0).collect();
        let out = self.infer(input);
        self.mask = Some(mask);
        self.shape = input.shape();
        out
    }

    fn infer(&self, input: &Matrix<f32>) -> Matrix<f32> {
        input.map(|x| if x > 0.0 { x } else { 0.0 })
    }

    fn infer_into(&self, input: &Matrix<f32>, out: &mut Matrix<f32>) {
        out.resize_to(input.rows(), input.cols());
        for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = if x > 0.0 { x } else { 0.0 };
        }
    }

    fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32> {
        let mask = self.mask.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), self.shape, "relu grad shape");
        let mut g = grad_out.clone();
        for (v, &m) in g.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut l = Relu::new();
        let y = l.forward(&Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut l = Relu::new();
        let _ = l.forward(&Matrix::from_rows(&[&[-1.0, 0.5, 2.0]]));
        let g = l.backward(&Matrix::from_rows(&[&[10.0, 10.0, 10.0]]));
        assert_eq!(g.as_slice(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient convention at the kink: 0.
        let mut l = Relu::new();
        let _ = l.forward(&Matrix::from_rows(&[&[0.0]]));
        let g = l.backward(&Matrix::from_rows(&[&[1.0]]));
        assert_eq!(g.as_slice(), &[0.0]);
    }
}
