//! Straight-through fake quantisation for quantisation-aware training.
//!
//! A [`FakeQuant`] layer simulates one fixed-point cast of the deployed
//! integer datapath *inside the f32 training graph*: the forward pass
//! quantises and immediately dequantises every activation through a
//! [`QuantSpec`], so downstream layers see exactly the rounding and
//! saturation noise the hardware will inject. The backward pass is the
//! clipped straight-through estimator (STE): quantisation is a
//! staircase with zero gradient almost everywhere, so the gradient is
//! passed through unchanged where the input lies inside the
//! representable range and zeroed where the forward pass saturated —
//! the standard QAT rule (DESIGN.md §9).

use crate::layer::Layer;
use hybridem_fixed::QuantSpec;
use hybridem_mathkit::matrix::Matrix;

/// Quantise–dequantise layer with a straight-through backward pass.
pub struct FakeQuant {
    spec: QuantSpec,
    /// Cached by `forward`: true where the input was inside the
    /// representable range (gradient passes), false where it saturated.
    pass: Option<Vec<bool>>,
    shape: (usize, usize),
}

impl FakeQuant {
    /// New fake-quantisation layer for one tensor boundary.
    pub fn new(spec: QuantSpec) -> Self {
        Self {
            spec,
            pass: None,
            shape: (0, 0),
        }
    }

    /// The quantisation plan this layer simulates.
    pub fn spec(&self) -> QuantSpec {
        self.spec
    }

    /// One element through the quantise→dequantise round trip.
    #[inline]
    fn fake_quantize(&self, x: f32) -> f32 {
        self.spec.dequantize(self.spec.quantize(x))
    }
}

impl Layer for FakeQuant {
    fn name(&self) -> &'static str {
        "fake_quant"
    }

    fn forward(&mut self, input: &Matrix<f32>) -> Matrix<f32> {
        let lo = self.spec.format.min_value() as f32;
        let hi = self.spec.format.max_value() as f32;
        self.pass = Some(
            input
                .as_slice()
                .iter()
                .map(|&x| (lo..=hi).contains(&x))
                .collect(),
        );
        self.shape = input.shape();
        self.infer(input)
    }

    fn infer(&self, input: &Matrix<f32>) -> Matrix<f32> {
        input.map(|x| self.fake_quantize(x))
    }

    fn infer_into(&self, input: &Matrix<f32>, out: &mut Matrix<f32>) {
        out.resize_to(input.rows(), input.cols());
        for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = self.fake_quantize(x);
        }
    }

    fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32> {
        let pass = self.pass.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), self.shape, "fake_quant grad shape");
        let mut g = grad_out.clone();
        for (v, &p) in g.as_mut_slice().iter_mut().zip(pass) {
            if !p {
                *v = 0.0;
            }
        }
        g
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }

    fn quant_spec(&self) -> Option<QuantSpec> {
        Some(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_fixed::{QFormat, Rounding};

    fn spec_q4_4() -> QuantSpec {
        QuantSpec {
            format: QFormat::signed(8, 4),
            rounding: Rounding::Nearest,
        }
    }

    #[test]
    fn forward_snaps_to_grid() {
        let mut l = FakeQuant::new(spec_q4_4());
        let y = l.forward(&Matrix::from_rows(&[&[0.30f32, -1.27, 0.0]]));
        // Resolution 1/16: every output is a multiple of 0.0625.
        for &v in y.as_slice() {
            assert_eq!(v, (v * 16.0).round() / 16.0);
        }
        assert!((y[(0, 0)] - 0.3125).abs() < 1e-7);
    }

    #[test]
    fn forward_saturates_at_format_bounds() {
        let mut l = FakeQuant::new(spec_q4_4());
        let y = l.forward(&Matrix::from_rows(&[&[100.0f32, -100.0]]));
        assert_eq!(y[(0, 0)], 127.0 / 16.0);
        assert_eq!(y[(0, 1)], -8.0);
    }

    #[test]
    fn backward_is_straight_through_inside_range() {
        let mut l = FakeQuant::new(spec_q4_4());
        let _ = l.forward(&Matrix::from_rows(&[&[0.3f32, -2.0, 5.0]]));
        let g = l.backward(&Matrix::from_rows(&[&[1.0f32, 2.0, 3.0]]));
        assert_eq!(g.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn backward_clips_gradient_where_saturated() {
        let mut l = FakeQuant::new(spec_q4_4());
        let _ = l.forward(&Matrix::from_rows(&[&[100.0f32, 0.5, -100.0]]));
        let g = l.backward(&Matrix::from_rows(&[&[1.0f32, 1.0, 1.0]]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn infer_paths_agree_bitwise() {
        let l = FakeQuant::new(spec_q4_4());
        let x = Matrix::from_rows(&[&[0.31f32, -0.77], &[1.23, -4.56]]);
        let a = l.infer(&x);
        let mut b = Matrix::zeros(0, 0);
        l.infer_into(&x, &mut b);
        for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn exposes_its_spec() {
        let l = FakeQuant::new(spec_q4_4());
        assert_eq!(l.quant_spec(), Some(spec_q4_4()));
        assert_eq!(l.output_dim(7), 7);
    }
}
