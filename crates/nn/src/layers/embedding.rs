//! Symbol embedding — the transmitter table.
//!
//! The paper's mapper is "a trainable embedding layer with 16 inputs
//! and two outputs": a table of `M` rows (one per symbol) and `dim`
//! columns (2: the I/Q coordinates). The forward pass is a row gather,
//! the backward pass a row scatter-add. Because its input is a batch of
//! symbol indices rather than a float matrix, it lives outside the
//! [`crate::layer::Layer`] trait and is composed explicitly by the
//! neural mapper in `hybridem-core`.

use crate::layer::Param;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;

/// Trainable lookup table `M × dim`.
pub struct Embedding {
    table: Param,
    cached_indices: Option<Vec<usize>>,
}

impl Embedding {
    /// New table with entries drawn uniformly from `±scale`. The paper's
    /// mapper starts from random points and lets power normalisation
    /// plus training shape the constellation.
    pub fn new(num_symbols: usize, dim: usize, scale: f32, rng: &mut Xoshiro256pp) -> Self {
        let init = crate::init::Init::Uniform(scale);
        Self {
            table: Param::new(init.sample(num_symbols, dim, rng)),
            cached_indices: None,
        }
    }

    /// Builds from an explicit table (e.g. seeding with Gray 16-QAM).
    pub fn from_table(table: Matrix<f32>) -> Self {
        Self {
            table: Param::new(table),
            cached_indices: None,
        }
    }

    /// Number of symbols (table rows).
    pub fn num_symbols(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension (table columns).
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// The raw (un-normalised) table.
    pub fn table(&self) -> &Matrix<f32> {
        &self.table.value
    }

    /// Gathers rows for a batch of symbol indices.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn forward(&mut self, indices: &[usize]) -> Matrix<f32> {
        let mut out = Matrix::zeros(indices.len(), self.dim());
        for (r, &idx) in indices.iter().enumerate() {
            assert!(idx < self.num_symbols(), "symbol index {idx} out of range");
            out.row_mut(r).copy_from_slice(self.table.value.row(idx));
        }
        self.cached_indices = Some(indices.to_vec());
        out
    }

    /// Scatter-adds the batch gradient back into table rows.
    pub fn backward(&mut self, grad_out: &Matrix<f32>) {
        let indices = self
            .cached_indices
            .as_ref()
            .expect("backward before forward");
        assert_eq!(grad_out.rows(), indices.len(), "batch mismatch");
        assert_eq!(grad_out.cols(), self.dim(), "grad width");
        for (r, &idx) in indices.iter().enumerate() {
            for (g, &go) in self.table.grad.row_mut(idx).iter_mut().zip(grad_out.row(r)) {
                *g += go;
            }
        }
    }

    /// The parameter slot (for optimisers).
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.table
    }

    /// Read-only parameter access.
    pub fn param(&self) -> &Param {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_3x2() -> Embedding {
        Embedding::from_table(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[-1.0, -1.0],
        ]))
    }

    #[test]
    fn gather_rows() {
        let mut e = table_3x2();
        let y = e.forward(&[2, 0, 2]);
        assert_eq!(y.row(0), &[-1.0, -1.0]);
        assert_eq!(y.row(1), &[1.0, 0.0]);
        assert_eq!(y.row(2), &[-1.0, -1.0]);
    }

    #[test]
    fn scatter_add_gradients() {
        let mut e = table_3x2();
        let _ = e.forward(&[1, 1, 0]);
        e.backward(&Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        // Row 1 accumulates two contributions, row 0 one, row 2 none.
        assert_eq!(e.param().grad.row(1), &[4.0, 6.0]);
        assert_eq!(e.param().grad.row(0), &[5.0, 6.0]);
        assert_eq!(e.param().grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        let mut e = table_3x2();
        let _ = e.forward(&[3]);
    }

    #[test]
    fn random_init_within_scale() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let e = Embedding::new(16, 2, 0.7, &mut rng);
        assert_eq!(e.num_symbols(), 16);
        assert_eq!(e.dim(), 2);
        assert!(e.table().as_slice().iter().all(|v| v.abs() <= 0.7));
    }
}
