//! Average-power normalisation of the constellation table.
//!
//! The paper's mapper ends with "an average power normalization layer":
//! with equiprobable symbols the transmitted power is the mean squared
//! norm of the *table* entries, so the table is scaled by
//! `1/√P̄`, `P̄ = (1/M) Σ_j ‖x_j‖²`, giving `E[‖x‖²] = 1` exactly.
//!
//! The backward pass uses the full Jacobian (the scale itself depends on
//! every entry):
//!
//! `∂L/∂x_j = g_j/√P̄ − x_j · (Σ_i ⟨g_i, x_i⟩) / (M·P̄^{3/2})`
//!
//! which is what lets E2E training trade power between symbols while
//! keeping the constraint active.

use hybridem_mathkit::matrix::Matrix;

/// Normalises a table to unit average row power. Stateless apart from
/// the forward cache.
#[derive(Default)]
pub struct PowerNorm {
    cached_input: Option<Matrix<f32>>,
    cached_power: f32,
}

impl PowerNorm {
    /// New normalisation layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average row power of a table.
    pub fn avg_power(table: &Matrix<f32>) -> f32 {
        if table.rows() == 0 {
            return 0.0;
        }
        let sum: f32 = table.as_slice().iter().map(|v| v * v).sum();
        sum / table.rows() as f32
    }

    /// Forward: `y = x/√P̄`.
    ///
    /// # Panics
    /// Panics on an all-zero table (power 0 cannot be normalised).
    pub fn forward(&mut self, table: &Matrix<f32>) -> Matrix<f32> {
        let p = Self::avg_power(table);
        assert!(p > 0.0, "cannot power-normalise an all-zero table");
        self.cached_input = Some(table.clone());
        self.cached_power = p;
        table.map(|v| v / p.sqrt())
    }

    /// Backward: full Jacobian as documented on the module.
    pub fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32> {
        let x = self.cached_input.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), x.shape(), "power-norm grad shape");
        let p = self.cached_power;
        let m = x.rows() as f32;
        let inner: f32 = grad_out
            .as_slice()
            .iter()
            .zip(x.as_slice())
            .map(|(&g, &xi)| g * xi)
            .sum();
        let s1 = 1.0 / p.sqrt();
        let s2 = inner / (m * p * p.sqrt());
        grad_out.zip_map(x, |g, xi| g * s1 - xi * s2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_unit_average_power() {
        let mut pn = PowerNorm::new();
        let t = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let y = pn.forward(&t);
        assert!((PowerNorm::avg_power(&y) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!(y[(0, 1)] == 0.0 && y[(1, 0)] == 0.0);
        assert!(y[(0, 0)] > 0.0 && y[(1, 1)] > 0.0);
    }

    #[test]
    fn forward_is_scale_invariant() {
        let mut pn = PowerNorm::new();
        let t = Matrix::from_rows(&[&[1.0, 2.0], &[-0.5, 0.25]]);
        let y1 = pn.forward(&t);
        let y2 = pn.forward(&t.map(|v| v * 7.5));
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_orthogonal_to_scaling_direction() {
        // The normalised output is invariant to scaling the input, so
        // the pullback of any gradient must be orthogonal to x.
        let mut pn = PowerNorm::new();
        let t = Matrix::from_rows(&[&[1.0, 2.0], &[-0.5, 0.25]]);
        let _ = pn.forward(&t);
        let g = Matrix::from_rows(&[&[0.3, -0.7], &[0.2, 0.9]]);
        let gx = pn.backward(&g);
        let dot: f32 = gx
            .as_slice()
            .iter()
            .zip(t.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!(
            dot.abs() < 1e-5,
            "directional derivative along x must vanish, got {dot}"
        );
    }

    #[test]
    #[should_panic(expected = "all-zero table")]
    fn zero_table_rejected() {
        let mut pn = PowerNorm::new();
        let _ = pn.forward(&Matrix::zeros(4, 2));
    }
}
