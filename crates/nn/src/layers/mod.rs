//! Concrete layers.
//!
//! [`Dense`], [`Relu`], [`Sigmoid`] and [`Tanh`] compose into the
//! demapper MLP; [`FakeQuant`] injects straight-through fixed-point
//! casts for quantisation-aware training; [`Embedding`] + [`PowerNorm`]
//! form the transmitter-side mapper (symbol index → power-normalised
//! constellation point). The mapper pair has a different input type
//! (symbol indices), so it is used directly rather than through the
//! [`crate::layer::Layer`] trait.

mod dense;
mod embedding;
mod fake_quant;
mod power_norm;
mod relu;
mod sigmoid;
mod tanh;

pub use dense::Dense;
pub use embedding::Embedding;
pub use fake_quant::FakeQuant;
pub use power_norm::PowerNorm;
pub use relu::Relu;
pub use sigmoid::Sigmoid;
pub use tanh::Tanh;
