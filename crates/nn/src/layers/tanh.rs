//! Hyperbolic tangent layer (used by ablation topologies).

use crate::layer::Layer;
use hybridem_mathkit::matrix::Matrix;

/// Element-wise `tanh(x)`; caches its output.
#[derive(Default)]
pub struct Tanh {
    output: Option<Matrix<f32>>,
}

impl Tanh {
    /// New tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Matrix<f32>) -> Matrix<f32> {
        let out = self.infer(input);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Matrix<f32>) -> Matrix<f32> {
        input.map(|x| x.tanh())
    }

    fn infer_into(&self, input: &Matrix<f32>, out: &mut Matrix<f32>) {
        out.resize_to(input.rows(), input.cols());
        for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = x.tanh();
        }
    }

    fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32> {
        let y = self.output.as_ref().expect("backward before forward");
        grad_out.zip_map(y, |g, y| g * (1.0 - y * y))
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_odd_function() {
        let mut l = Tanh::new();
        let y = l.forward(&Matrix::from_rows(&[&[1.0, -1.0, 0.0]]));
        assert!((y[(0, 0)] + y[(0, 1)]).abs() < 1e-7);
        assert_eq!(y[(0, 2)], 0.0);
    }

    #[test]
    fn backward_unit_slope_at_zero() {
        let mut l = Tanh::new();
        let _ = l.forward(&Matrix::from_rows(&[&[0.0]]));
        let g = l.backward(&Matrix::from_rows(&[&[2.0]]));
        assert!((g[(0, 0)] - 2.0).abs() < 1e-7);
    }
}
