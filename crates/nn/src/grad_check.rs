//! Numerical gradient verification.
//!
//! Every analytic backward pass in this crate is checked against
//! central differences. The helpers here perturb each parameter (and
//! optionally each input) of a model under an arbitrary scalar loss and
//! report the worst relative error, so test failures point directly at
//! the offending coordinate.

use crate::model::Sequential;
use hybridem_mathkit::matrix::Matrix;

/// Result of a gradient check.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Largest relative error across all checked coordinates.
    pub max_rel_error: f64,
    /// Number of coordinates checked.
    pub checked: usize,
}

/// Relative error between analytic and numeric derivatives with the
/// usual `|a−n| / max(1, |a|, |n|)` normalisation.
fn rel_err(analytic: f64, numeric: f64) -> f64 {
    (analytic - numeric).abs() / analytic.abs().max(numeric.abs()).max(1.0)
}

/// Checks model parameter gradients for a scalar loss.
///
/// `loss_fn(output)` must return `(loss, ∂loss/∂output)`; the model's
/// backward pass then produces analytic parameter gradients that are
/// compared against central differences of the loss.
pub fn check_model_grads<F>(
    model: &mut Sequential,
    input: &Matrix<f32>,
    loss_fn: F,
    eps: f32,
) -> GradCheckReport
where
    F: Fn(&Matrix<f32>) -> (f32, Matrix<f32>),
{
    // Analytic pass.
    model.zero_grad();
    let out = model.forward(input);
    let (_, grad_out) = loss_fn(&out);
    let _ = model.backward(&grad_out);
    let analytic: Vec<Vec<f32>> = model
        .params()
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();

    // Numeric pass per coordinate.
    let mut max_rel = 0.0f64;
    let mut checked = 0usize;
    for (pi, grads) in analytic.iter().enumerate() {
        for (k, &a) in grads.iter().enumerate() {
            let orig = model.params_mut()[pi].value.as_mut_slice()[k];
            model.params_mut()[pi].value.as_mut_slice()[k] = orig + eps;
            let (lp, _) = loss_fn(&model.forward(input));
            model.params_mut()[pi].value.as_mut_slice()[k] = orig - eps;
            let (lm, _) = loss_fn(&model.forward(input));
            model.params_mut()[pi].value.as_mut_slice()[k] = orig;
            let numeric = (lp as f64 - lm as f64) / (2.0 * eps as f64);
            max_rel = max_rel.max(rel_err(a as f64, numeric));
            checked += 1;
        }
    }
    GradCheckReport {
        max_rel_error: max_rel,
        checked,
    }
}

/// Checks the gradient a model propagates to its *input* (needed by the
/// E2E autoencoder, where the demapper's input gradient flows through
/// the channel into the mapper).
pub fn check_input_grads<F>(
    model: &mut Sequential,
    input: &Matrix<f32>,
    loss_fn: F,
    eps: f32,
) -> GradCheckReport
where
    F: Fn(&Matrix<f32>) -> (f32, Matrix<f32>),
{
    model.zero_grad();
    let out = model.forward(input);
    let (_, grad_out) = loss_fn(&out);
    let analytic = model.backward(&grad_out);

    let mut max_rel = 0.0f64;
    let mut checked = 0usize;
    let mut x = input.clone();
    for k in 0..x.len() {
        let orig = x.as_slice()[k];
        x.as_mut_slice()[k] = orig + eps;
        let (lp, _) = loss_fn(&model.forward(&x));
        x.as_mut_slice()[k] = orig - eps;
        let (lm, _) = loss_fn(&model.forward(&x));
        x.as_mut_slice()[k] = orig;
        let numeric = (lp as f64 - lm as f64) / (2.0 * eps as f64);
        max_rel = max_rel.max(rel_err(analytic.as_slice()[k] as f64, numeric));
        checked += 1;
    }
    GradCheckReport {
        max_rel_error: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{bce_with_logits, cross_entropy_logits, mse};
    use crate::model::{Activation, MlpSpec};
    use hybridem_mathkit::rng::Xoshiro256pp;

    /// f32 central differences on a composed model are good to ~1e-2
    /// relative; analytic bugs produce errors of order 1.
    const TOL: f64 = 2e-2;

    fn smooth_input(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        // Inputs away from ReLU kinks for clean numerics.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = (rng.normal_f64() * 0.7) as f32;
        }
        m
    }

    #[test]
    fn dense_sigmoid_stack_with_mse() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let spec = MlpSpec {
            dims: vec![3, 5, 2],
            hidden: Activation::Sigmoid,
            output: Activation::Sigmoid,
        };
        let mut model = spec.build(&mut rng);
        let x = smooth_input(4, 3, 1);
        let t = smooth_input(4, 2, 2).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let rep = check_model_grads(&mut model, &x, |y| mse(y, &t), 1e-3);
        assert!(rep.max_rel_error < TOL, "rel err {}", rep.max_rel_error);
        assert_eq!(rep.checked, 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn paper_demapper_with_bce_logits() {
        let mut rng = Xoshiro256pp::seed_from_u64(20);
        let mut model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let x = smooth_input(6, 2, 3);
        let t = smooth_input(6, 4, 4).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let rep = check_model_grads(&mut model, &x, |z| bce_with_logits(z, &t), 1e-3);
        assert!(rep.max_rel_error < TOL, "rel err {}", rep.max_rel_error);
    }

    #[test]
    fn tanh_stack_with_cross_entropy() {
        let mut rng = Xoshiro256pp::seed_from_u64(30);
        let spec = MlpSpec {
            dims: vec![2, 6, 4],
            hidden: Activation::Tanh,
            output: Activation::Linear,
        };
        let mut model = spec.build(&mut rng);
        let x = smooth_input(5, 2, 5);
        let labels = [0usize, 3, 1, 2, 3];
        let rep = check_model_grads(&mut model, &x, |z| cross_entropy_logits(z, &labels), 1e-3);
        assert!(rep.max_rel_error < TOL, "rel err {}", rep.max_rel_error);
    }

    #[test]
    fn input_gradient_for_autoencoder_path() {
        let mut rng = Xoshiro256pp::seed_from_u64(40);
        let mut model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let x = smooth_input(5, 2, 6);
        let t = smooth_input(5, 4, 7).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let rep = check_input_grads(&mut model, &x, |z| bce_with_logits(z, &t), 1e-3);
        assert!(rep.max_rel_error < TOL, "rel err {}", rep.max_rel_error);
        assert_eq!(rep.checked, 10);
    }
}
