//! # hybridem-nn
//!
//! A from-scratch neural-network library with manual backpropagation —
//! the training substrate for the paper's autoencoder.
//!
//! The paper trains a tiny system: a mapper (embedding of 16 symbols
//! into the complex plane + average-power normalisation) and a demapper
//! MLP (`2 → 16 → 16 → 4`, ReLU/ReLU/Sigmoid) with binary cross-entropy
//! loss and a first-order optimiser. Rather than binding to an ML
//! framework, this crate implements exactly that machinery:
//!
//! - [`layer::Layer`] and the [`layers`] module — dense, ReLU, sigmoid,
//!   tanh for batched `Matrix<f32>` activations, plus the two special
//!   transmitter-side layers: [`layers::Embedding`] (symbol index →
//!   point) and [`layers::PowerNorm`] (average-power constraint over the
//!   constellation table);
//! - [`loss`] — BCE (probability and fused-logit forms), MSE, softmax
//!   cross-entropy;
//! - [`optim`] — SGD (+momentum) and Adam;
//! - [`model::Sequential`] — layer stacks with JSON-snapshot round-trips;
//! - [`grad_check`] — central-difference gradient verification used by
//!   the test-suite on every layer and loss;
//! - [`init`] / [`schedule`] — Xavier/He initialisation and learning
//!   rate schedules.
//!
//! Everything is deterministic given a seed, and fast enough that full
//! E2E training runs inside unit tests.

#![warn(missing_docs)]

pub mod grad_check;
pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod schedule;

pub use layer::{Layer, Param};
pub use model::{MlpSpec, Sequential};
pub use optim::{Adam, Optimizer, Sgd};
