//! First-order optimisers.
//!
//! The paper's training loop is standard stochastic gradient descent on
//! a tiny model; we provide plain SGD (with optional momentum) and Adam
//! (the PyTorch default the authors would have used). Optimiser state
//! is keyed by parameter position, so the same optimiser instance must
//! always be fed the same parameter list in the same order — which is
//! what [`crate::model::Sequential::params_mut`] guarantees.

use crate::layer::Param;

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step to the given parameters (and clears
    /// nothing — call [`Param::zero_grad`] between steps via the model).
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `β`: `v ← βv + g; w ← w − lr·v`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0,1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() < params.len() {
            for p in params[self.velocity.len()..].iter() {
                self.velocity.push(vec![0.0; p.len()]);
            }
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            debug_assert_eq!(p.len(), v.len(), "optimiser state shape drift");
            if self.momentum == 0.0 {
                for (w, &g) in p.value.as_mut_slice().iter_mut().zip(p.grad.as_slice()) {
                    *w -= self.lr * g;
                }
            } else {
                for ((w, &g), vel) in p
                    .value
                    .as_mut_slice()
                    .iter_mut()
                    .zip(p.grad.as_slice())
                    .zip(v.iter_mut())
                {
                    *vel = self.momentum * *vel + g;
                    *w -= self.lr * *vel;
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the standard defaults β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Fully parameterised constructor.
    pub fn with_params(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        while self.m.len() < params.len() {
            let p = &params[self.m.len()];
            self.m.push(vec![0.0; p.len()]);
            self.v.push(vec![0.0; p.len()]);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t.min(1 << 24) as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t.min(1 << 24) as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            debug_assert_eq!(p.len(), m.len(), "optimiser state shape drift");
            for (((w, &g), mi), vi) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::matrix::Matrix;

    /// Minimises f(w) = ‖w − target‖² with the given optimiser.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = [1.0f32, -2.0, 0.5];
        let mut p = Param::new(Matrix::zeros(1, 3));
        for _ in 0..steps {
            p.zero_grad();
            for (g, (&w, &t)) in p
                .grad
                .as_mut_slice()
                .iter_mut()
                .zip(p.value.as_slice().iter().zip(&target))
            {
                *g = 2.0 * (w - t);
            }
            opt.step(&mut [&mut p]);
        }
        p.value
            .as_slice()
            .iter()
            .zip(&target)
            .map(|(&w, &t)| (w - t) * (w - t))
            .sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(minimise(&mut opt, 200) < 1e-8);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.02, 0.9);
        assert!(minimise(&mut opt, 300) < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        assert!(minimise(&mut opt, 500) < 1e-6);
    }

    #[test]
    fn sgd_single_step_is_exact() {
        let mut p = Param::new(Matrix::from_rows(&[&[1.0f32]]));
        p.grad.as_mut_slice()[0] = 2.0;
        let mut opt = Sgd::new(0.5);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice()[0], 0.0);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }
}
