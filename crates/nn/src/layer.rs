//! The layer abstraction.
//!
//! A [`Layer`] transforms a batch of activations (`batch × features`
//! [`Matrix<f32>`]) and, given the loss gradient with respect to its
//! output, produces the gradient with respect to its input while
//! accumulating parameter gradients into [`Param`] slots. Layers cache
//! whatever they need from the forward pass; the contract is strictly
//! "one `forward`, then at most one `backward` for that forward".

use hybridem_mathkit::matrix::Matrix;

/// A trainable tensor: value and accumulated gradient, always the same
/// shape. Optimisers walk `Vec<&mut Param>` collections.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix<f32>,
    /// Accumulated gradient (zeroed by [`Param::zero_grad`]).
    pub grad: Matrix<f32>,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Matrix<f32>) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// A differentiable transformation of batched activations.
pub trait Layer: Send + Sync {
    /// Human-readable kind, used by snapshots and reports.
    fn name(&self) -> &'static str;

    /// Forward pass. Must cache anything `backward` needs.
    fn forward(&mut self, input: &Matrix<f32>) -> Matrix<f32>;

    /// Pure inference pass: identical arithmetic to `forward` but
    /// without mutating caches, so trained models can be shared across
    /// threads behind `&self` (the link simulator's demapper path).
    fn infer(&self, input: &Matrix<f32>) -> Matrix<f32>;

    /// Pure inference writing into a caller-provided buffer. `out` is
    /// reshaped via [`Matrix::resize_to`], so a warm buffer is reused
    /// without allocating — the primitive behind the block demapper's
    /// allocation-free batch path. The default delegates to
    /// [`Layer::infer`] (and therefore allocates); the built-in layers
    /// override it with in-place kernels that are bit-identical to
    /// their `infer`.
    fn infer_into(&self, input: &Matrix<f32>, out: &mut Matrix<f32>) {
        *out = self.infer(input);
    }

    /// Backward pass for the most recent `forward`: receives ∂L/∂output,
    /// returns ∂L/∂input, accumulating parameter gradients.
    fn backward(&mut self, grad_out: &Matrix<f32>) -> Matrix<f32>;

    /// Mutable access to the layer's parameters (empty by default).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Read-only access to the layer's parameters (empty by default).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Output feature count for a given input feature count.
    fn output_dim(&self, input_dim: usize) -> usize;

    /// The fixed-point cast this layer simulates, when it is a
    /// fake-quantisation boundary ([`crate::layers::FakeQuant`]). The
    /// FPGA graph compiler reads these to reconstruct the integer
    /// datapath formats a QAT model was trained against; all other
    /// layers report `None`.
    fn quant_spec(&self) -> Option<hybridem_fixed::QuantSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_wraps_and_zeroes() {
        let mut p = Param::new(Matrix::from_rows(&[&[1.0f32, 2.0]]));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        p.grad.as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(p.value.as_slice(), &[1.0, 2.0]);
    }
}
