//! Learning-rate schedules.
//!
//! Retraining on live channels (the paper's step 2) benefits from a
//! decaying rate: start aggressive to track the channel change, settle
//! to refine. These are pure functions of the step index so training
//! remains replayable.

/// A learning-rate schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// `lr · decay^{⌊step/every⌋}`.
    StepDecay {
        /// Initial rate.
        lr: f32,
        /// Multiplicative factor applied every `every` steps.
        decay: f32,
        /// Interval in steps.
        every: u64,
    },
    /// Cosine annealing from `lr` to `min_lr` over `total` steps, then
    /// flat at `min_lr`.
    Cosine {
        /// Initial rate.
        lr: f32,
        /// Final rate.
        min_lr: f32,
        /// Annealing horizon in steps.
        total: u64,
    },
}

impl LrSchedule {
    /// Rate at a given step (0-based).
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { lr, decay, every } => {
                let k = (step / every.max(1)) as i32;
                lr * decay.powi(k)
            }
            LrSchedule::Cosine { lr, min_lr, total } => {
                if total == 0 || step >= total {
                    return min_lr;
                }
                let t = step as f32 / total as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(10_000), 0.01);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            lr: 0.1,
            decay: 0.5,
            every: 100,
        };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(99), 0.1);
        assert!((s.at(100) - 0.05).abs() < 1e-9);
        assert!((s.at(250) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = LrSchedule::Cosine {
            lr: 0.1,
            min_lr: 0.001,
            total: 100,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(100) - 0.001).abs() < 1e-9);
        assert!((s.at(1000) - 0.001).abs() < 1e-9);
        let mut last = s.at(0);
        for step in 1..=100 {
            let v = s.at(step);
            assert!(v <= last + 1e-7, "cosine must be non-increasing");
            last = v;
        }
        // Midpoint is the average of the endpoints.
        assert!((s.at(50) - (0.1 + 0.001) / 2.0).abs() < 1e-3);
    }
}
