//! Golden reduction: a **constant** trajectory is the static channel
//! (DESIGN.md §10).
//!
//! `TrajectoryChannel` lowers each frame's parameter state to the
//! existing static stages and omits identity-valued stages entirely,
//! so holding one state forever must reproduce today's channels
//! **bit-for-bit**: the received streams are compared `to_bits()`
//! symbol by symbol under both per-symbol and block transmission, and
//! the Monte-Carlo BER engine must count exactly the same errors
//! through either channel (per-symbol and block demap paths share the
//! engine — DESIGN.md §7).

use hybridem_comm::channel::{
    Awgn, Cfo, Channel, ChannelChain, IqImbalance, PhaseOffset, TappedDelayLine,
};
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::MaxLogMap;
use hybridem_comm::linksim::{simulate_link, LinkSpec};
use hybridem_comm::snr::noise_sigma;
use hybridem_comm::trajectory::{ChannelState, Taps, Trajectory, TrajectoryChannel};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;

const FRAME: usize = 64;

/// Transmits `total` unit symbols through both channels with identical
/// RNG streams and the given chunking, asserting bit-identical output.
fn assert_streams_identical(
    label: &str,
    mut scripted: TrajectoryChannel,
    static_channel: &mut dyn Channel,
    chunk: usize,
    total: usize,
) {
    let mut ra = Xoshiro256pp::seed_from_u64(0xFEED);
    let mut rb = Xoshiro256pp::seed_from_u64(0xFEED);
    let mut sent = 0usize;
    while sent < total {
        let n = chunk.min(total - sent);
        let mut a = vec![C32::new(0.6, -0.8); n];
        let mut b = a.clone();
        scripted.transmit(&mut a, &mut ra);
        static_channel.transmit(&mut b, &mut rb);
        for (k, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.re.to_bits(),
                y.re.to_bits(),
                "{label}: chunk {chunk}, symbol {} re",
                sent + k
            );
            assert_eq!(
                x.im.to_bits(),
                y.im.to_bits(),
                "{label}: chunk {chunk}, symbol {} im",
                sent + k
            );
        }
        sent += n;
    }
}

/// Reduction cases: (label, constant state, equivalent static channel).
fn cases() -> Vec<(&'static str, ChannelState, Box<dyn Channel>)> {
    let es = 9.0f64;
    vec![
        (
            "awgn",
            ChannelState::clean(es),
            Box::new(Awgn::from_es_n0_db(es)),
        ),
        (
            "phase+awgn",
            ChannelState::clean(es).with_phase(std::f32::consts::FRAC_PI_4),
            Box::new(ChannelChain::phase_then_awgn(
                std::f32::consts::FRAC_PI_4,
                es,
            )),
        ),
        (
            "cfo+awgn",
            ChannelState::clean(es).with_cfo(3e-4),
            Box::new(ChannelChain::new(vec![
                Box::new(Cfo::new(3e-4)),
                Box::new(Awgn::from_es_n0_db(es)),
            ])),
        ),
        (
            "iq+awgn",
            ChannelState::clean(es).with_iq(0.05, 0.05),
            Box::new(ChannelChain::new(vec![
                Box::new(IqImbalance::new(0.05, 0.05)),
                Box::new(Awgn::from_es_n0_db(es)),
            ])),
        ),
        (
            "phase-noiseless",
            ChannelState::clean(f64::INFINITY).with_phase(0.3),
            Box::new(PhaseOffset::new(0.3)),
        ),
        // Constant taps reduce to the static delay line — including
        // its memory across frame boundaries and the clone+reset the
        // BER engine performs per task (DESIGN.md §14).
        (
            "tdl+awgn",
            ChannelState::clean(es).with_taps(Taps::two_ray(0.4, 0.35, 1)),
            Box::new(ChannelChain::new(vec![
                Box::new(TappedDelayLine::two_ray(0.4, 0.35, 1)),
                Box::new(Awgn::from_es_n0_db(es)),
            ])),
        ),
        (
            "tdl-noiseless",
            ChannelState::clean(f64::INFINITY).with_taps(Taps::exponential(5, 1.5)),
            Box::new(TappedDelayLine::exponential(5, 1.5)),
        ),
        // Phase applies transmitter-side, *before* the channel memory:
        // the lowering order phase → tdl must match the manual chain.
        (
            "phase+tdl+awgn",
            ChannelState::clean(es)
                .with_phase(0.3)
                .with_taps(Taps::two_ray(0.4, 0.35, 1)),
            Box::new(ChannelChain::new(vec![
                Box::new(PhaseOffset::new(0.3)),
                Box::new(TappedDelayLine::two_ray(0.4, 0.35, 1)),
                Box::new(Awgn::from_es_n0_db(es)),
            ])),
        ),
    ]
}

#[test]
fn constant_trajectory_streams_are_byte_identical_per_symbol() {
    for (label, state, mut static_channel) in cases() {
        let scripted = TrajectoryChannel::new(Trajectory::constant(label, state, 8), FRAME);
        // Symbol-at-a-time: every transmit call is one symbol, frame
        // boundaries crossed 7 times (CFO state must persist).
        assert_streams_identical(label, scripted, static_channel.as_mut(), 1, 8 * FRAME);
    }
}

#[test]
fn constant_trajectory_streams_are_byte_identical_in_blocks() {
    for (label, state, mut static_channel) in cases() {
        // Block length 100 is deliberately no divisor of the frame
        // length: every block straddles a frame boundary and gets
        // split internally.
        let scripted = TrajectoryChannel::new(Trajectory::constant(label, state, 8), FRAME);
        assert_streams_identical(label, scripted, static_channel.as_mut(), 100, 8 * FRAME);
    }
}

#[test]
fn constant_trajectory_ber_equals_static_channel_ber() {
    // The whole Monte-Carlo engine (block demap path, task-split RNG
    // streams, channel clone+reset per task) must see no difference.
    let es = 9.0;
    let qam = Constellation::qam_gray(16);
    let sigma = noise_sigma(es, 1.0) as f32;
    let demapper = MaxLogMap::new(qam.clone(), sigma);
    for (label, state, static_channel) in cases() {
        let scripted = TrajectoryChannel::new(Trajectory::constant(label, state, 1_000_000), FRAME);
        let spec_s = LinkSpec::new(&qam, &scripted, &demapper, 60_000, 77);
        let spec_c = LinkSpec::new(&qam, static_channel.as_ref(), &demapper, 60_000, 77);
        let rs = simulate_link(&spec_s);
        let rc = simulate_link(&spec_c);
        assert_eq!(
            rs.bit_errors.errors(),
            rc.bit_errors.errors(),
            "{label}: bit errors diverge"
        );
        assert_eq!(
            rs.symbol_errors.errors(),
            rc.symbol_errors.errors(),
            "{label}: symbol errors diverge"
        );
        assert_eq!(
            rs.mi.mi().to_bits(),
            rc.mi.mi().to_bits(),
            "{label}: MI diverges"
        );
    }
}

#[test]
fn per_symbol_demap_of_scripted_stream_matches_block_demap() {
    // Per-symbol and block demapping of the *same* scripted stream are
    // bit-exact (the frame stream reduction holds on both paths).
    use hybridem_comm::demapper::Demapper;
    let es = 9.0;
    let qam = Constellation::qam_gray(16);
    let demapper = MaxLogMap::new(qam.clone(), noise_sigma(es, 1.0) as f32);
    let mut scripted = TrajectoryChannel::new(
        Trajectory::constant("awgn", ChannelState::clean(es).with_phase(0.2), 16),
        FRAME,
    );
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let mut block = vec![C32::new(0.35, 0.95); 4 * FRAME];
    scripted.transmit(&mut block, &mut rng);
    let mut block_llrs = vec![0f32; block.len() * 4];
    demapper.demap_block(&block, &mut block_llrs);
    let mut single = [0f32; 4];
    for (i, &y) in block.iter().enumerate() {
        demapper.llrs(y, &mut single);
        for k in 0..4 {
            assert_eq!(
                single[k].to_bits(),
                block_llrs[i * 4 + k].to_bits(),
                "symbol {i} bit {k}"
            );
        }
    }
}
