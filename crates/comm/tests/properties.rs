//! Property-based tests of the communication substrate.

use hybridem_comm::bits::{bit_of, gray, gray_inverse, hamming_distance, pack_bits, unpack_bits};
use hybridem_comm::campaign::EarlyStop;
use hybridem_comm::channel::{Awgn, Cfo, Channel, ChannelChain, IqImbalance, PhaseOffset};
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::{Demapper, ExactLogMap, HardNearest, MaxLogMap};
use hybridem_comm::ecc::{ConvCode, Hamming74, Viterbi};
use hybridem_comm::trajectory::{ChannelState, Taps, Trajectory};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_mathkit::simd::LaneWidth;
use proptest::prelude::*;

proptest! {
    #[test]
    fn pack_unpack_inverse(idx in 0usize..65536, m in 1usize..16) {
        let idx = idx & ((1 << m) - 1);
        let mut bits = vec![0u8; m];
        unpack_bits(idx, m, &mut bits);
        prop_assert_eq!(pack_bits(&bits), idx);
        for (k, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bit_of(idx, m, k), b);
        }
    }

    #[test]
    fn round_schedule_covers_the_cap_exactly(
        max_symbols in 0u64..10_000_000,
        first in 1u64..100_000,
        growth in 1u32..8,
        block_len in 1usize..2048,
    ) {
        // The campaign round schedule is a pure function of
        // (stop, block_len): rounds are non-empty, grow geometrically
        // until the final (possibly truncated) round, and sum to
        // exactly ceil(max_symbols / block_len) blocks.
        let stop = EarlyStop {
            target_bit_errors: 100,
            max_symbols_per_point: max_symbols,
            first_round_symbols: first,
            growth,
        };
        let rounds: Vec<u64> = stop.round_schedule(block_len).collect();
        let cap_blocks = max_symbols.div_ceil(block_len as u64);
        prop_assert_eq!(rounds.iter().sum::<u64>(), cap_blocks);
        prop_assert!(rounds.iter().all(|&b| b > 0));
        let nominal_first = first.div_ceil(block_len as u64).max(1);
        let mut expected = nominal_first;
        for (i, &b) in rounds.iter().enumerate() {
            if i + 1 < rounds.len() {
                prop_assert_eq!(b, expected, "round {} not geometric", i);
            } else {
                prop_assert!(b <= expected, "final round may only truncate");
            }
            expected = expected.saturating_mul(u64::from(growth));
        }
        // Determinism: re-collecting gives the same schedule.
        prop_assert_eq!(rounds, stop.round_schedule(block_len).collect::<Vec<u64>>());
    }

    #[test]
    fn gray_bijective_with_unit_steps(n in 0usize..100_000) {
        prop_assert_eq!(gray_inverse(gray(n)), n);
        prop_assert_eq!(hamming_distance(gray(n), gray(n + 1)), 1);
    }

    #[test]
    fn qam_rotation_commutes_with_nearest(theta in -3.2f32..3.2, u in 0usize..16) {
        // Rotating both the constellation and the query point preserves
        // the decision.
        let qam = Constellation::qam_gray(16);
        let rot = qam.rotated(theta);
        let y = qam.point(u).scale(0.9);
        prop_assert_eq!(qam.nearest(y), rot.nearest(y.rotate(theta)));
    }

    #[test]
    fn maxlog_hard_decisions_equal_nearest_symbol(
        re in -1.6f32..1.6, im in -1.6f32..1.6, sigma in 0.05f32..0.5
    ) {
        // The max-log bit decisions are exactly the bits of the nearest
        // point (the global min dominates both per-bit minima).
        let qam = Constellation::qam_gray(16);
        let demapper = MaxLogMap::new(qam.clone(), sigma);
        let hard = HardNearest::new(qam.clone());
        let y = C32::new(re, im);
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        demapper.hard_decide(y, &mut a);
        hard.hard_decide(y, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn exact_and_maxlog_agree_confidently(
        re in -1.6f32..1.6, im in -1.6f32..1.6
    ) {
        // Wherever the exact demapper is confident (|LLR| > 1), the
        // max-log sign agrees.
        let sigma = 0.25f32;
        let qam = Constellation::qam_gray(16);
        let exact = ExactLogMap::new(qam.clone(), sigma);
        let ml = MaxLogMap::new(qam, sigma);
        let y = C32::new(re, im);
        let mut le = [0f32; 4];
        let mut lm = [0f32; 4];
        exact.llrs(y, &mut le);
        ml.llrs(y, &mut lm);
        for k in 0..4 {
            if le[k].abs() > 1.0 {
                prop_assert_eq!(le[k] > 0.0, lm[k] > 0.0, "bit {}", k);
            }
        }
    }

    #[test]
    fn llr_antisymmetric_under_point_reflection(re in -1.5f32..1.5, im in -1.5f32..1.5) {
        // Gray square QAM is symmetric under (I,Q) → (−I,−Q) with the
        // sign bits of both axes flipped: the axis-polarity LLRs negate,
        // the amplitude LLRs are unchanged.
        let sigma = 0.2f32;
        let qam = Constellation::qam_gray(16);
        let d = MaxLogMap::new(qam, sigma);
        let mut l1 = [0f32; 4];
        let mut l2 = [0f32; 4];
        d.llrs(C32::new(re, im), &mut l1);
        d.llrs(C32::new(-re, -im), &mut l2);
        prop_assert!((l1[0] + l2[0]).abs() < 1e-3, "I-sign bit antisymmetric");
        prop_assert!((l1[2] + l2[2]).abs() < 1e-3, "Q-sign bit antisymmetric");
        prop_assert!((l1[1] - l2[1]).abs() < 1e-3, "I-amplitude bit symmetric");
        prop_assert!((l1[3] - l2[3]).abs() < 1e-3, "Q-amplitude bit symmetric");
    }

    #[test]
    fn demap_block_bit_exact_with_per_symbol_loop(
        len in 0usize..40,
        theta in -3.2f32..3.2,
        sigma in 0.05f32..0.5,
        seed in any::<u64>(),
    ) {
        // The block-demapping contract: for every conventional demapper
        // family, `demap_block` equals a per-symbol `llrs` loop to the
        // bit, across block lengths (incl. 0 and 1) and rotated
        // centroid sets (the hybrid use-case).
        let centroids = Constellation::qam_gray(16).rotated(theta);
        let demappers: Vec<Box<dyn Demapper>> = vec![
            Box::new(ExactLogMap::new(centroids.clone(), sigma)),
            Box::new(MaxLogMap::new(centroids.clone(), sigma)),
            Box::new(HardNearest::new(centroids.clone())),
        ];
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let ys: Vec<C32> = (0..len)
            .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
            .collect();
        for d in &demappers {
            let m = d.bits_per_symbol();
            let mut block = vec![0f32; ys.len() * m];
            d.demap_block(&ys, &mut block);
            let mut single = vec![0f32; m];
            for (s, &y) in ys.iter().enumerate() {
                d.llrs(y, &mut single);
                for k in 0..m {
                    prop_assert_eq!(
                        block[s * m + k].to_bits(),
                        single[k].to_bits(),
                        "symbol {} bit {}: block {} vs per-symbol {}",
                        s, k, block[s * m + k], single[k]
                    );
                }
            }
            // Block hard decisions follow the same LLR signs.
            let mut hard_block = vec![0u8; ys.len() * m];
            d.hard_decide_block(&ys, &mut hard_block);
            for (b, &l) in hard_block.iter().zip(&block) {
                prop_assert_eq!(*b, u8::from(l < 0.0));
            }
        }
    }

    #[test]
    fn deterministic_channels_preserve_energy_statistics(
        theta in -3.0f32..3.0, seed in any::<u64>()
    ) {
        // Phase rotation is an isometry on every sample.
        let mut ch = PhaseOffset::new(theta);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut block = vec![C32::new(0.7, -0.3); 32];
        ch.transmit(&mut block, &mut rng);
        for y in &block {
            prop_assert!((y.abs() - C32::new(0.7, -0.3).abs()).abs() < 1e-5);
        }
    }

    #[test]
    fn channel_chain_equals_manual_composition(theta in -1.0f32..1.0, seed in any::<u64>()) {
        let mut chain = ChannelChain::phase_then_awgn(theta, 10.0);
        let mut manual_rot = PhaseOffset::new(theta);
        let mut manual_awgn = Awgn::from_es_n0_db(10.0);
        let mut a = vec![C32::new(1.0, 0.25); 16];
        let mut b = a.clone();
        let mut rng1 = Xoshiro256pp::seed_from_u64(seed);
        let mut rng2 = Xoshiro256pp::seed_from_u64(seed);
        chain.transmit(&mut a, &mut rng1);
        manual_rot.transmit(&mut b, &mut rng2);
        manual_awgn.transmit(&mut b, &mut rng2);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.re - y.re).abs() < 1e-6 && (x.im - y.im).abs() < 1e-6);
        }
    }

    #[test]
    fn cfo_reset_restores_initial_state(delta in -0.5f32..0.5, n in 1usize..64, seed in any::<u64>()) {
        let mut ch = Cfo::new(delta);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut first = vec![C32::new(1.0, 0.0); n];
        ch.transmit(&mut first, &mut rng);
        ch.reset();
        let mut second = vec![C32::new(1.0, 0.0); n];
        ch.transmit(&mut second, &mut rng);
        for (a, b) in first.iter().zip(&second) {
            prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn iq_imbalance_is_linear_over_reals(eps in -0.2f32..0.2, phi in -0.3f32..0.3,
                                         k in -2.0f32..2.0) {
        // y(k·x) = k·y(x) for real scaling (the map is R-linear).
        let mut ch = IqImbalance::new(eps, phi);
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let x = C32::new(0.6, -0.8);
        let mut a = vec![x];
        let mut b = vec![x.scale(k)];
        ch.transmit(&mut a, &mut rng);
        ch.transmit(&mut b, &mut rng);
        prop_assert!((b[0].re - k * a[0].re).abs() < 1e-4);
        prop_assert!((b[0].im - k * a[0].im).abs() < 1e-4);
    }

    #[test]
    fn hamming_corrects_any_single_error(msg in 0u8..16, pos in 0usize..7) {
        let code = Hamming74::new();
        let d = [msg >> 3 & 1, msg >> 2 & 1, msg >> 1 & 1, msg & 1];
        let mut c = code.encode_block(&d);
        c[pos] ^= 1;
        let (dec, fixed) = code.decode_block(&c);
        prop_assert_eq!(dec, d);
        prop_assert!(fixed);
    }

    #[test]
    fn viterbi_decodes_clean_streams(bits in proptest::collection::vec(0u8..2, 1..128)) {
        let code = ConvCode::new();
        let vit = Viterbi::new();
        let tx = code.encode(&bits);
        let out = vit.decode_hard(&code, &tx);
        prop_assert_eq!(out.bits, bits);
        prop_assert_eq!(out.corrected, 0);
    }

    #[test]
    fn trajectory_states_never_go_non_finite(
        script in proptest::collection::vec(
            (
                (
                    any::<bool>(),   // ramp (true) or hold (false)
                    1u64..12,        // segment frames
                    prop_oneof![     // Es/N0: finite or noiseless
                        Just(f64::INFINITY),
                        -10.0f64..40.0,
                    ],
                ),
                (
                    -3.2f32..3.2,    // phase
                    -0.01f32..0.01,  // CFO rate
                    0u8..3,          // taps preset selector
                ),
            ),
            1..8,
        ),
    ) {
        // Regression territory for the lerp NaN bug: a ramp between a
        // noiseless (INFINITY) endpoint and a finite one once computed
        // INF − INF inside the interpolation. The contract is that a
        // ramp with any non-finite endpoint degenerates to holding its
        // start, so *no* script — however it mixes INFINITY holds,
        // INFINITY→finite ramps and finite→INFINITY ramps — may ever
        // produce a NaN field. `es_n0_db` must stay finite-or-+INF;
        // every other field must stay strictly finite.
        let mut traj = Trajectory::new("prop");
        for &((ramp, frames, snr), (phase, cfo, tap_sel)) in &script {
            let taps = match tap_sel {
                0 => Taps::none(),
                1 => Taps::two_ray(0.4, 0.35, 1),
                _ => Taps::exponential(4, 1.0),
            };
            let state = ChannelState::clean(snr)
                .with_phase(phase)
                .with_cfo(cfo)
                .with_taps(taps);
            // A ramp needs a segment to start from: the first segment
            // of any script is always a hold.
            traj = if ramp && !traj.segments.is_empty() {
                traj.ramp(frames, state)
            } else {
                traj.hold(frames, state)
            };
        }
        for frame in 0..traj.total_frames() {
            let s = traj.state_at(frame);
            prop_assert!(
                s.es_n0_db.is_finite() || s.es_n0_db == f64::INFINITY,
                "frame {}: es_n0_db {}", frame, s.es_n0_db
            );
            prop_assert!(s.phase_rad.is_finite(), "frame {}: phase", frame);
            prop_assert!(s.cfo_rad_per_sym.is_finite(), "frame {}: cfo", frame);
            prop_assert!(s.iq_epsilon.is_finite() && s.iq_phi.is_finite(),
                         "frame {}: iq", frame);
            prop_assert!(s.interference_sigma.is_finite(), "frame {}: interference", frame);
            prop_assert!(
                s.taps.as_slice().iter().all(|c| c.is_finite()),
                "frame {}: taps {:?}", frame, s.taps
            );
        }
    }

    #[test]
    fn viterbi_corrected_count_bounded_by_flips(
        bits in proptest::collection::vec(0u8..2, 16..64),
        flips in proptest::collection::vec(0usize..128, 0..4),
    ) {
        let code = ConvCode::new();
        let vit = Viterbi::new();
        let clean = code.encode(&bits);
        let mut rx = clean.clone();
        let mut actual_flips = std::collections::BTreeSet::new();
        for &f in &flips {
            let pos = f % rx.len();
            // Count each position once (two flips cancel).
            if !actual_flips.insert(pos) {
                actual_flips.remove(&pos);
            }
            rx[pos] ^= 1;
        }
        let out = vit.decode_hard(&code, &rx);
        if out.bits == bits {
            // Correct decode: the survivor equals the clean codeword, so
            // the corrected count equals the number of flipped positions.
            prop_assert_eq!(out.corrected, actual_flips.len() as u64);
        }
    }
}

proptest! {
    // The width sweep re-runs every length at every supported lane
    // width; a handful of random point sets suffices because the
    // kernel is deterministic per (width, input).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn maxlog_block_bit_exact_at_every_lane_width(
        theta in -3.2f32..3.2,
        sigma in 0.05f32..0.5,
        seed in any::<u64>(),
    ) {
        // The SIMD tile kernel's contract (DESIGN.md §11): demapping is
        // bit-identical at every lane width the host supports — chunk
        // lanes plus the scalar remainder compute exactly the scalar
        // reference — across lengths that exercise empty blocks, pure
        // remainders (1, 7), one full tile (256) and a multi-tile
        // stream with a trailing remainder (4097).
        let centroids = Constellation::qam_gray(16).rotated(theta);
        let maxlog = MaxLogMap::new(centroids, sigma);
        let m = maxlog.bits_per_symbol();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let all: Vec<C32> = (0..4097)
            .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
            .collect();
        for &len in &[0usize, 1, 7, 256, 4097] {
            let ys = &all[..len];
            let mut reference = vec![0f32; len * m];
            let mut single = vec![0f32; m];
            for (s, &y) in ys.iter().enumerate() {
                maxlog.llrs(y, &mut single);
                reference[s * m..(s + 1) * m].copy_from_slice(&single);
            }
            for width in LaneWidth::supported() {
                let mut block = vec![0f32; len * m];
                maxlog.demap_block_at(width, ys, &mut block);
                for (i, (b, r)) in block.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        b.to_bits(), r.to_bits(),
                        "len {} width {:?} llr {}: {} vs {}", len, width, i, b, r
                    );
                }
            }
        }
    }
}
