//! Scripted time-varying channels: the drift-scenario DSL.
//!
//! The paper's adaptation story (§II-C) is about channels that *move*:
//! pilot monitoring detects the drift, retraining follows. Everything
//! else in this crate models a channel frozen in time; a
//! [`Trajectory`] scripts how the impairment parameters evolve over
//! **frame time** as a sequence of piecewise-linear [`Segment`]s, and
//! [`TrajectoryChannel`] replays the script as an ordinary
//! [`Channel`]: each frame's parameter set is *lowered* to the
//! existing static stage implementations ([`PhaseOffset`], [`Cfo`],
//! [`IqImbalance`], [`TappedDelayLine`], [`RayleighBlockFading`],
//! [`Awgn`]), so a constant trajectory is **bit-identical** to today's
//! static channels (the golden reduction tests pin this).
//!
//! Determinism contract (DESIGN.md §10): the state at frame `f` is a
//! pure function of `(trajectory, f)`; the received stream is a pure
//! function of `(trajectory, frame_symbols, rng seed, block
//! partitioning at frame boundaries)`. Identity-valued stages are
//! omitted from the lowering — they would otherwise perturb both the
//! RNG stream and float bit patterns — and stateful stages (CFO phase,
//! fading draws, delay-line memory) are carried across re-lowerings
//! instead of rebuilt: a CFO rate change folds the accumulated phase
//! into the static rotation term, the fading process survives any
//! re-lowering that does not change its coherence length, and the
//! tapped delay line keeps its symbol memory unless the taps change.

use crate::channel::{
    Awgn, Cfo, Channel, ChannelChain, IqImbalance, PhaseOffset, RayleighBlockFading,
    TappedDelayLine,
};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;

/// Maximum FIR length a [`ChannelState`] can carry. Bounded so the
/// state stays `Copy` (segment interpolation and artefact plumbing
/// pass it by value everywhere).
pub const MAX_TAPS: usize = 8;

/// A bounded, by-value FIR impulse response for the frequency-selective
/// path of a [`ChannelState`]. The empty value ([`Taps::none`]) is the
/// identity: it lowers to no stage at all, like every other identity
/// parameter. Like `fading_block`, taps are **discrete** — a ramp
/// segment holds its start taps rather than interpolating coefficients
/// (a "half-way" channel between two echo profiles is not physically
/// meaningful frame-by-frame, and interpolating would force a stage
/// rebuild — and a delay-line restart — every frame of the ramp).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Taps {
    coef: [C32; MAX_TAPS],
    len: u8,
}

impl Taps {
    /// The identity (no ISI): lowers to no stage.
    pub const fn none() -> Self {
        Self {
            coef: [C32 { re: 0.0, im: 0.0 }; MAX_TAPS],
            len: 0,
        }
    }

    /// Taps from a slice (tap 0 first, as produced by the
    /// [`TappedDelayLine`] presets).
    ///
    /// # Panics
    /// Panics when `taps` has more than [`MAX_TAPS`] entries or a
    /// non-finite coefficient.
    pub fn from_slice(taps: &[C32]) -> Self {
        assert!(
            taps.len() <= MAX_TAPS,
            "at most {MAX_TAPS} channel taps, got {}",
            taps.len()
        );
        assert!(taps.iter().all(|t| t.is_finite()), "taps must be finite");
        let mut coef = [C32::zero(); MAX_TAPS];
        coef[..taps.len()].copy_from_slice(taps);
        Self {
            coef,
            len: taps.len() as u8,
        }
    }

    /// The unit-power two-ray preset of
    /// [`TappedDelayLine::two_ray`], by value.
    pub fn two_ray(echo_gain: f32, echo_phase: f32, delay: usize) -> Self {
        Self::from_slice(TappedDelayLine::two_ray(echo_gain, echo_phase, delay).taps())
    }

    /// The unit-power exponential-decay preset of
    /// [`TappedDelayLine::exponential`], by value.
    pub fn exponential(num_taps: usize, decay: f32) -> Self {
        Self::from_slice(TappedDelayLine::exponential(num_taps, decay).taps())
    }

    /// True for the identity value (no stage lowered).
    pub fn is_identity(&self) -> bool {
        self.len == 0
    }

    /// The coefficients, tap 0 first.
    pub fn as_slice(&self) -> &[C32] {
        &self.coef[..self.len as usize]
    }

    fn stage(&self) -> Option<TappedDelayLine> {
        (!self.is_identity()).then(|| TappedDelayLine::new(self.as_slice().to_vec()))
    }
}

/// One frame's channel parameters. Identity values (`0.0` angles and
/// mismatches, `fading_block == 0`, `taps == Taps::none()`,
/// `interference_sigma == 0.0`, `es_n0_db == f64::INFINITY`) lower to
/// *no stage at all*, which is what makes constant trajectories reduce
/// bit-exactly to the static channels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelState {
    /// AWGN level as Es/N0 in dB at unit symbol energy
    /// (`f64::INFINITY` ⇒ noiseless).
    pub es_n0_db: f64,
    /// Static phase rotation in radians (the paper's π/4 case study).
    pub phase_rad: f32,
    /// Carrier-frequency offset in radians per symbol.
    pub cfo_rad_per_sym: f32,
    /// IQ amplitude mismatch ε.
    pub iq_epsilon: f32,
    /// IQ phase mismatch φ in radians.
    pub iq_phi: f32,
    /// Block Rayleigh fading coherence length in symbols (0 ⇒ off).
    /// Discrete: a ramp segment holds its start value.
    pub fading_block: usize,
    /// Frequency-selective impulse response ([`Taps::none`] ⇒ no ISI).
    /// Discrete like `fading_block`: a ramp segment holds its start
    /// taps, and the delay-line memory survives re-lowerings that do
    /// not change the taps (the way CFO phase survives rate-unrelated
    /// changes).
    pub taps: Taps,
    /// Per-dimension σ of burst interference, added *after* the
    /// thermal AWGN and invisible to [`Channel::noise_sigma`] — the
    /// receiver is not told about the burst.
    pub interference_sigma: f32,
}

impl ChannelState {
    /// AWGN-only state at the given Es/N0.
    pub fn clean(es_n0_db: f64) -> Self {
        Self {
            es_n0_db,
            phase_rad: 0.0,
            cfo_rad_per_sym: 0.0,
            iq_epsilon: 0.0,
            iq_phi: 0.0,
            fading_block: 0,
            taps: Taps::none(),
            interference_sigma: 0.0,
        }
    }

    /// Copy with a static phase offset.
    pub fn with_phase(mut self, theta: f32) -> Self {
        self.phase_rad = theta;
        self
    }

    /// Copy with a CFO rate.
    pub fn with_cfo(mut self, rad_per_sym: f32) -> Self {
        self.cfo_rad_per_sym = rad_per_sym;
        self
    }

    /// Copy with IQ imbalance parameters.
    pub fn with_iq(mut self, epsilon: f32, phi: f32) -> Self {
        self.iq_epsilon = epsilon;
        self.iq_phi = phi;
        self
    }

    /// Copy with block Rayleigh fading of the given coherence length.
    pub fn with_fading(mut self, block: usize) -> Self {
        self.fading_block = block;
        self
    }

    /// Copy with a frequency-selective impulse response.
    pub fn with_taps(mut self, taps: Taps) -> Self {
        self.taps = taps;
        self
    }

    /// Copy with burst interference of the given per-dimension σ.
    pub fn with_interference(mut self, sigma: f32) -> Self {
        self.interference_sigma = sigma;
        self
    }
}

/// One piecewise segment: `frames` frames interpolating linearly from
/// `start` toward `end`. Frame offset `k` within the segment gets the
/// parameters at `t = k / frames` — `end` itself is attained at the
/// segment's closing boundary, i.e. by the first frame of whatever
/// follows (a hold segment has `start == end`, so the distinction
/// vanishes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Duration in frames (> 0).
    pub frames: u64,
    /// Parameters at the segment's first frame.
    pub start: ChannelState,
    /// Parameters approached over the segment.
    pub end: ChannelState,
}

// Segment interpolation. Equal endpoints return `a` verbatim (no float
// round-trip), so hold segments are exact. A ramp with a **non-finite**
// endpoint cannot interpolate — `INF + (b − INF)·t` is NaN, which once
// leaked out of here as a NaN noise σ mid-ramp — so it degenerates to a
// hold: the segment keeps its start value for every interior frame
// (t < 1) and the end value is attained, as for every segment, at the
// closing boundary by the first frame of whatever follows.
fn lerp64(a: f64, b: f64, t: f64) -> f64 {
    if a == b || !a.is_finite() || !b.is_finite() {
        a
    } else {
        a + (b - a) * t
    }
}

fn lerp32(a: f32, b: f32, t: f64) -> f32 {
    if a == b || !a.is_finite() || !b.is_finite() {
        a
    } else {
        a + (b - a) * t as f32
    }
}

impl Segment {
    fn state_at(&self, offset: u64) -> ChannelState {
        if self.start == self.end {
            return self.start;
        }
        let t = offset as f64 / self.frames as f64;
        ChannelState {
            es_n0_db: lerp64(self.start.es_n0_db, self.end.es_n0_db, t),
            phase_rad: lerp32(self.start.phase_rad, self.end.phase_rad, t),
            cfo_rad_per_sym: lerp32(self.start.cfo_rad_per_sym, self.end.cfo_rad_per_sym, t),
            iq_epsilon: lerp32(self.start.iq_epsilon, self.end.iq_epsilon, t),
            iq_phi: lerp32(self.start.iq_phi, self.end.iq_phi, t),
            fading_block: self.start.fading_block,
            taps: self.start.taps,
            interference_sigma: lerp32(
                self.start.interference_sigma,
                self.end.interference_sigma,
                t,
            ),
        }
    }
}

/// A deterministic, seed-free scenario script over frame time.
///
/// Build fluently: [`Trajectory::new`] then chained
/// [`Trajectory::hold`]/[`Trajectory::ramp`] calls. Past its last
/// scripted frame a trajectory extends indefinitely with its final
/// state, so a runtime may stream longer than the script.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Scenario label used in artefacts.
    pub name: String,
    /// The script, in playback order.
    pub segments: Vec<Segment>,
}

impl Trajectory {
    /// Empty script with a label; add segments with
    /// [`Trajectory::hold`] / [`Trajectory::ramp`].
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            segments: Vec::new(),
        }
    }

    /// A single-segment script holding `state` for `frames` frames —
    /// the constant trajectory of the golden reduction tests.
    pub fn constant(name: impl Into<String>, state: ChannelState, frames: u64) -> Self {
        Self::new(name).hold(frames, state)
    }

    /// Appends a constant segment.
    ///
    /// # Panics
    /// Panics if `frames == 0`.
    pub fn hold(mut self, frames: u64, state: ChannelState) -> Self {
        assert!(frames > 0, "segment must last at least one frame");
        self.segments.push(Segment {
            frames,
            start: state,
            end: state,
        });
        self
    }

    /// Appends a linear ramp from the previous segment's end state to
    /// `to`.
    ///
    /// # Panics
    /// Panics if `frames == 0` or the trajectory has no segment yet
    /// (a ramp needs a starting state).
    pub fn ramp(mut self, frames: u64, to: ChannelState) -> Self {
        assert!(frames > 0, "segment must last at least one frame");
        let from = self
            .segments
            .last()
            .expect("ramp needs a preceding segment to start from")
            .end;
        self.segments.push(Segment {
            frames,
            start: from,
            end: to,
        });
        self
    }

    /// Total scripted frames.
    pub fn total_frames(&self) -> u64 {
        self.segments.iter().map(|s| s.frames).sum()
    }

    /// The parameter state of frame `frame` — a pure function of
    /// `(self, frame)`. Frames past the script hold the final state.
    ///
    /// # Panics
    /// Panics if the trajectory has no segments.
    pub fn state_at(&self, frame: u64) -> ChannelState {
        assert!(!self.segments.is_empty(), "trajectory has no segments");
        let mut start = 0u64;
        for seg in &self.segments {
            if frame < start + seg.frames {
                return seg.state_at(frame - start);
            }
            start += seg.frames;
        }
        self.segments.last().unwrap().end
    }
}

/// The lowered stage set of one parameter state. Stages apply in the
/// workspace's canonical order — deterministic impairments first,
/// noise last, interference after the noise it hides in — and
/// identity-valued stages are omitted entirely (see module docs).
#[derive(Clone)]
struct Stages {
    phase: Option<PhaseOffset>,
    cfo: Option<Cfo>,
    iq: Option<IqImbalance>,
    tdl: Option<TappedDelayLine>,
    fading: Option<RayleighBlockFading>,
    awgn: Option<Awgn>,
    interference: Option<Awgn>,
}

impl Stages {
    fn lower(state: &ChannelState, carry_phase: f32) -> Self {
        Self {
            phase: phase_stage(state.phase_rad + carry_phase),
            cfo: (state.cfo_rad_per_sym != 0.0).then(|| Cfo::new(state.cfo_rad_per_sym)),
            iq: (state.iq_epsilon != 0.0 || state.iq_phi != 0.0)
                .then(|| IqImbalance::new(state.iq_epsilon, state.iq_phi)),
            tdl: state.taps.stage(),
            fading: (state.fading_block > 0).then(|| RayleighBlockFading::new(state.fading_block)),
            awgn: awgn_stage(state.es_n0_db),
            interference: (state.interference_sigma > 0.0)
                .then(|| Awgn::new(state.interference_sigma)),
        }
    }

    fn apply(&mut self, block: &mut [C32], rng: &mut Xoshiro256pp) {
        if let Some(s) = &mut self.phase {
            s.transmit(block, rng);
        }
        if let Some(s) = &mut self.cfo {
            s.transmit(block, rng);
        }
        if let Some(s) = &mut self.iq {
            s.transmit(block, rng);
        }
        if let Some(s) = &mut self.tdl {
            s.transmit(block, rng);
        }
        if let Some(s) = &mut self.fading {
            s.transmit(block, rng);
        }
        if let Some(s) = &mut self.awgn {
            s.transmit(block, rng);
        }
        if let Some(s) = &mut self.interference {
            s.transmit(block, rng);
        }
    }
}

fn phase_stage(theta: f32) -> Option<PhaseOffset> {
    (theta != 0.0).then(|| PhaseOffset::new(theta))
}

fn awgn_stage(es_n0_db: f64) -> Option<Awgn> {
    es_n0_db.is_finite().then(|| Awgn::from_es_n0_db(es_n0_db))
}

/// A [`Trajectory`] played back as a stateful [`Channel`].
///
/// The playhead advances one frame per `frame_symbols` transmitted
/// symbols, independent of how the caller partitions blocks (a block
/// spanning a frame boundary is split internally). When the frame's
/// state differs from the previous frame's the stage set is re-lowered
/// incrementally:
///
/// - stateless stages (rotation, IQ, AWGN) are rebuilt from the new
///   parameters;
/// - a CFO stage survives unless its *rate* changed, in which case its
///   accumulated phase is folded into the static rotation term before
///   the new-rate stage starts from zero;
/// - a fading stage survives unless its coherence length changed;
/// - a tapped-delay-line stage survives — with its per-symbol memory —
///   unless the taps themselves changed.
///
/// A constant trajectory therefore lowers exactly once and is
/// bit-identical to the equivalent static channel (golden reduction
/// tests).
#[derive(Clone)]
pub struct TrajectoryChannel {
    traj: Trajectory,
    frame_symbols: usize,
    frame: u64,
    offset: usize,
    state: ChannelState,
    carry_phase: f32,
    stages: Stages,
}

impl TrajectoryChannel {
    /// Playback of `traj` at `frame_symbols` symbols per frame.
    ///
    /// # Panics
    /// Panics if `frame_symbols == 0` or the trajectory is empty.
    pub fn new(traj: Trajectory, frame_symbols: usize) -> Self {
        assert!(frame_symbols > 0, "frame length must be positive");
        let state = traj.state_at(0);
        Self {
            traj,
            frame_symbols,
            frame: 0,
            offset: 0,
            state,
            carry_phase: 0.0,
            stages: Stages::lower(&state, 0.0),
        }
    }

    /// The script being played.
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    /// Current frame index (advances every `frame_symbols` symbols).
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Symbols per frame.
    pub fn frame_symbols(&self) -> usize {
        self.frame_symbols
    }

    /// The parameter state currently lowered.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Total phase the playhead has accumulated beyond the scripted
    /// static offset: folded-in carry from past CFO-rate changes plus
    /// the live CFO stage's running phase.
    pub fn accumulated_phase(&self) -> f32 {
        self.carry_phase + self.stages.cfo.as_ref().map_or(0.0, Cfo::phase)
    }

    /// Freezes the *current* conditions into a static [`ChannelChain`]
    /// — what the runtime retrains against. The CFO **rate** is folded
    /// into its accumulated rotation (retraining sees a snapshot, not
    /// a moving target); fading and interference are included fresh.
    pub fn snapshot_static(&self) -> ChannelChain {
        let mut stages: Vec<Box<dyn Channel>> = Vec::new();
        let theta = self.state.phase_rad + self.accumulated_phase();
        if let Some(p) = phase_stage(theta) {
            stages.push(Box::new(p));
        }
        if self.state.iq_epsilon != 0.0 || self.state.iq_phi != 0.0 {
            stages.push(Box::new(IqImbalance::new(
                self.state.iq_epsilon,
                self.state.iq_phi,
            )));
        }
        if let Some(tdl) = self.state.taps.stage() {
            stages.push(Box::new(tdl));
        }
        if self.state.fading_block > 0 {
            stages.push(Box::new(RayleighBlockFading::new(self.state.fading_block)));
        }
        if let Some(a) = awgn_stage(self.state.es_n0_db) {
            stages.push(Box::new(a));
        }
        if self.state.interference_sigma > 0.0 {
            stages.push(Box::new(Awgn::new(self.state.interference_sigma)));
        }
        ChannelChain::new(stages)
    }

    fn advance_frame(&mut self) {
        self.frame += 1;
        let new = self.traj.state_at(self.frame);
        if new == self.state {
            return;
        }
        // CFO rate change: bank the accumulated phase so the rotation
        // is continuous across the re-lowering.
        if new.cfo_rad_per_sym != self.state.cfo_rad_per_sym {
            if let Some(cfo) = &self.stages.cfo {
                self.carry_phase += cfo.phase();
            }
            self.stages.cfo = (new.cfo_rad_per_sym != 0.0).then(|| Cfo::new(new.cfo_rad_per_sym));
        }
        self.stages.phase = phase_stage(new.phase_rad + self.carry_phase);
        self.stages.iq = (new.iq_epsilon != 0.0 || new.iq_phi != 0.0)
            .then(|| IqImbalance::new(new.iq_epsilon, new.iq_phi));
        if new.taps != self.state.taps {
            self.stages.tdl = new.taps.stage();
        }
        if new.fading_block != self.state.fading_block {
            self.stages.fading =
                (new.fading_block > 0).then(|| RayleighBlockFading::new(new.fading_block));
        }
        self.stages.awgn = awgn_stage(new.es_n0_db);
        self.stages.interference =
            (new.interference_sigma > 0.0).then(|| Awgn::new(new.interference_sigma));
        self.state = new;
    }
}

impl Channel for TrajectoryChannel {
    fn transmit(&mut self, block: &mut [C32], rng: &mut Xoshiro256pp) {
        let mut done = 0usize;
        while done < block.len() {
            let n = (self.frame_symbols - self.offset).min(block.len() - done);
            self.stages.apply(&mut block[done..done + n], rng);
            done += n;
            self.offset += n;
            if self.offset == self.frame_symbols {
                self.offset = 0;
                self.advance_frame();
            }
        }
    }

    fn noise_sigma(&self) -> f32 {
        // Thermal noise only: burst interference is deliberately not
        // part of the receiver's channel-state information.
        self.stages.awgn.as_ref().map_or(0.0, Channel::noise_sigma)
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        self.frame = 0;
        self.offset = 0;
        self.carry_phase = 0.0;
        self.state = self.traj.state_at(0);
        self.stages = Stages::lower(&self.state, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(7)
    }

    #[test]
    fn state_at_interpolates_and_holds_past_end() {
        let t = Trajectory::new("ramp")
            .hold(10, ChannelState::clean(14.0))
            .ramp(10, ChannelState::clean(4.0))
            .hold(5, ChannelState::clean(4.0));
        assert_eq!(t.total_frames(), 25);
        assert_eq!(t.state_at(0).es_n0_db, 14.0);
        assert_eq!(t.state_at(9).es_n0_db, 14.0);
        // Ramp frame offsets k = 0..10 map to t = k/10.
        assert_eq!(t.state_at(10).es_n0_db, 14.0);
        assert!((t.state_at(15).es_n0_db - 9.0).abs() < 1e-12);
        assert_eq!(t.state_at(20).es_n0_db, 4.0);
        // Past the script: final state forever.
        assert_eq!(t.state_at(1_000_000).es_n0_db, 4.0);
    }

    #[test]
    fn infinite_snr_ramps_never_nan() {
        let t = Trajectory::new("phase-in")
            .hold(2, ChannelState::clean(f64::INFINITY))
            .ramp(8, ChannelState::clean(f64::INFINITY).with_phase(0.8));
        let mid = t.state_at(6);
        assert!(mid.es_n0_db.is_infinite());
        assert!(mid.phase_rad > 0.0 && mid.phase_rad < 0.8);
    }

    #[test]
    fn constant_trajectory_lowers_once_and_matches_static_awgn() {
        let state = ChannelState::clean(10.0);
        let mut tc = TrajectoryChannel::new(Trajectory::constant("awgn", state, 4), 32);
        let mut stat = Awgn::from_es_n0_db(10.0);
        let mut a = vec![C32::new(1.0, -1.0); 200];
        let mut b = a.clone();
        let (mut r1, mut r2) = (rng(), rng());
        tc.transmit(&mut a, &mut r1); // crosses several frame boundaries
        stat.transmit(&mut b, &mut r2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        assert_eq!(tc.frame(), 6);
        assert!((tc.noise_sigma() - stat.noise_sigma()).abs() == 0.0);
    }

    #[test]
    fn cfo_rate_change_keeps_phase_continuous() {
        let rate = 0.01f32;
        let t = Trajectory::new("cfo-pulse")
            .hold(1, ChannelState::clean(f64::INFINITY).with_cfo(rate))
            .hold(3, ChannelState::clean(f64::INFINITY));
        let mut tc = TrajectoryChannel::new(t, 10);
        let mut block = vec![C32::new(1.0, 0.0); 40];
        tc.transmit(&mut block, &mut rng());
        // During frame 0 the phase advances by `rate` per symbol; from
        // frame 1 on the accumulated 10·rate is frozen as a static
        // rotation.
        for (k, y) in block.iter().take(10).enumerate() {
            assert!((y.arg() - k as f32 * rate).abs() < 1e-5, "symbol {k}");
        }
        for y in block.iter().skip(10) {
            assert!((y.arg() - 10.0 * rate).abs() < 1e-5);
        }
        assert!((tc.accumulated_phase() - 10.0 * rate).abs() < 1e-6);
    }

    #[test]
    fn fading_survives_unrelated_relowering() {
        // SNR changes at frame 1 while fading (coherence 64 > frame
        // length) stays on: the fading coefficient must persist across
        // the re-lowering instead of being redrawn.
        let t = Trajectory::new("fade-ramp")
            .hold(1, ChannelState::clean(20.0).with_fading(64))
            .hold(3, ChannelState::clean(10.0).with_fading(64));
        let mut tc = TrajectoryChannel::new(t, 16);
        let mut block = vec![C32::new(1.0, 0.0); 48];
        // Noiseless probe of the fading coefficient: disable AWGN by
        // comparing angles instead — transmit, then check the fading
        // draw did not change at the frame-1 boundary by correlating
        // symbols 0 and 17 (same coherence block, different frames).
        let mut r = rng();
        tc.transmit(&mut block, &mut r);
        // Deterministic replay with a fresh channel that never
        // re-lowers: same seed, constant trajectory at 20 dB.
        let t2 = Trajectory::constant("fade", ChannelState::clean(20.0).with_fading(64), 4);
        let mut tc2 = TrajectoryChannel::new(t2, 16);
        let mut block2 = vec![C32::new(1.0, 0.0); 48];
        tc2.transmit(&mut block2, &mut rng());
        // First frame identical (same state, same stream) …
        for k in 0..16 {
            assert_eq!(block[k].re.to_bits(), block2[k].re.to_bits(), "symbol {k}");
        }
        // … and the fading coefficient itself (arg of a noisier
        // symbol changes, but the coherence draw consumed the same
        // RNG values: had the stage been rebuilt, `remaining` would
        // reset and a *new* pair would be drawn at symbol 16, visibly
        // desynchronising every later draw).
        assert_eq!(tc.frame(), 3);
    }

    #[test]
    fn snapshot_freezes_cfo_into_static_rotation() {
        let rate = 0.002f32;
        let t = Trajectory::constant("cfo", ChannelState::clean(12.0).with_cfo(rate), 8);
        let mut tc = TrajectoryChannel::new(t, 25);
        let mut block = vec![C32::new(1.0, 0.0); 50];
        tc.transmit(&mut block, &mut rng());
        let frozen = tc.snapshot_static();
        // The snapshot's rotation equals the accumulated phase, and it
        // contains no live CFO: two transmissions rotate identically.
        let mut a = vec![C32::new(1.0, 0.0)];
        let mut b = vec![C32::new(1.0, 0.0)];
        let mut f1 = frozen.clone();
        let mut f2 = frozen;
        f1.transmit(&mut a, &mut rng());
        f2.transmit(&mut b, &mut rng());
        // 12 dB AWGN jitters the angle a little; compare against the
        // expected accumulated rotation loosely.
        let expect = tc.accumulated_phase();
        assert!(
            (a[0].arg() - expect).abs() < 0.3,
            "{} vs {}",
            a[0].arg(),
            expect
        );
        assert!((b[0].arg() - expect).abs() < 0.3);
    }

    #[test]
    fn reset_rewinds_to_frame_zero() {
        let t = Trajectory::new("step")
            .hold(1, ChannelState::clean(f64::INFINITY))
            .hold(1, ChannelState::clean(f64::INFINITY).with_phase(1.0));
        let mut tc = TrajectoryChannel::new(t, 4);
        let mut block = vec![C32::new(1.0, 0.0); 8];
        tc.transmit(&mut block, &mut rng());
        assert!(block[0].arg().abs() < 1e-6);
        assert!((block[4].arg() - 1.0).abs() < 1e-5);
        tc.reset();
        assert_eq!(tc.frame(), 0);
        let mut again = vec![C32::new(1.0, 0.0)];
        tc.transmit(&mut again, &mut rng());
        assert!(again[0].arg().abs() < 1e-6, "reset must rewind the script");
    }

    #[test]
    fn boxed_clone_preserves_playhead() {
        let t = Trajectory::new("step")
            .hold(1, ChannelState::clean(f64::INFINITY))
            .hold(3, ChannelState::clean(f64::INFINITY).with_phase(0.5));
        let mut tc = TrajectoryChannel::new(t, 4);
        let mut block = vec![C32::new(1.0, 0.0); 4];
        tc.transmit(&mut block, &mut rng());
        let mut cloned = tc.box_clone();
        let mut probe = vec![C32::new(1.0, 0.0)];
        cloned.transmit(&mut probe, &mut rng());
        assert!((probe[0].arg() - 0.5).abs() < 1e-5, "clone mid-script");
    }

    #[test]
    fn ramp_from_infinite_snr_holds_instead_of_nan() {
        // Regression: `INF + (b − INF)·t` is NaN; a ramp leaving the
        // noiseless state must hold INF for every interior frame and
        // land on the finite endpoint at the closing boundary.
        let t = Trajectory::new("snr-in")
            .hold(2, ChannelState::clean(f64::INFINITY))
            .ramp(8, ChannelState::clean(10.0))
            .hold(2, ChannelState::clean(10.0));
        for f in 0..16 {
            let s = t.state_at(f);
            assert!(!s.es_n0_db.is_nan(), "frame {f} interpolated to NaN");
        }
        assert!(t.state_at(5).es_n0_db.is_infinite());
        assert_eq!(t.state_at(10).es_n0_db, 10.0);
        // And the lowered noise σ stays finite all the way through.
        let mut tc = TrajectoryChannel::new(t, 4);
        let mut block = vec![C32::new(1.0, 0.0); 64];
        tc.transmit(&mut block, &mut rng());
        assert!(block.iter().all(|y| y.is_finite()), "NaN escaped lowering");
        assert!(tc.noise_sigma().is_finite());
    }

    #[test]
    fn ramp_into_infinite_snr_holds_finite_start() {
        let t = Trajectory::new("snr-out")
            .hold(1, ChannelState::clean(6.0))
            .ramp(4, ChannelState::clean(f64::INFINITY));
        assert_eq!(t.state_at(3).es_n0_db, 6.0);
        assert!(t.state_at(5).es_n0_db.is_infinite());
    }

    #[test]
    fn taps_hold_discrete_on_ramps_and_delay_line_survives() {
        // A ramp that only moves the SNR must neither interpolate the
        // taps nor restart the delay-line memory at re-lowerings.
        let taps = Taps::two_ray(0.4, 0.0, 1);
        let t = Trajectory::new("isi-snr-ramp")
            .hold(1, ChannelState::clean(f64::INFINITY).with_taps(taps))
            .ramp(3, ChannelState::clean(40.0).with_taps(taps));
        // Discrete hold: mid-ramp state carries the start taps verbatim.
        assert_eq!(t.state_at(2).taps, taps);
        // Survival: a noiseless frame boundary with an SNR change must
        // keep the echo of the last pre-boundary symbol. Compare with a
        // static TDL fed the same stream: outputs of the *deterministic*
        // part must agree at the frame-1 first symbol (noise at 40 dB is
        // tiny; use a noiseless end state instead for exactness).
        let t = Trajectory::new("isi-phase-step")
            .hold(1, ChannelState::clean(f64::INFINITY).with_taps(taps))
            .hold(
                3,
                ChannelState::clean(f64::INFINITY)
                    .with_phase(0.5)
                    .with_taps(taps),
            );
        let mut tc = TrajectoryChannel::new(t, 4);
        let mut block = vec![
            C32::one(),
            C32::zero(),
            C32::zero(),
            C32::zero(),
            C32::zero(),
            C32::zero(),
            C32::zero(),
            C32::zero(),
        ];
        tc.transmit(&mut block, &mut rng());
        // Impulse at symbol 0: taps [h0, h1] put h1·1 at symbol 1 and
        // nothing after; had the delay line restarted at the frame-1
        // re-lowering nothing would change here, so probe the boundary
        // instead: impulse at symbol 3 (last of frame 0) echoes into
        // symbol 4 (first of frame 1).
        let mut tc2 = TrajectoryChannel::new(
            Trajectory::new("isi-phase-step-2")
                .hold(1, ChannelState::clean(f64::INFINITY).with_taps(taps))
                .hold(
                    3,
                    ChannelState::clean(f64::INFINITY)
                        .with_phase(0.5)
                        .with_taps(taps),
                ),
            4,
        );
        let mut boundary = vec![
            C32::zero(),
            C32::zero(),
            C32::zero(),
            C32::one(),
            C32::zero(),
            C32::zero(),
            C32::zero(),
            C32::zero(),
        ];
        tc2.transmit(&mut boundary, &mut rng());
        let h = TappedDelayLine::two_ray(0.4, 0.0, 1);
        let h1 = h.taps()[1];
        // Echo survives the re-lowering. Phase applies *before* the
        // delay line (transmitter-side), so the frame-0 impulse echoes
        // unrotated; a rebuilt delay line would emit zero here.
        assert!(
            boundary[4].dist_sqr(h1) < 1e-10,
            "delay-line memory lost across re-lowering: got {:?}, want {h1:?}",
            boundary[4],
        );
    }

    #[test]
    fn constant_taps_trajectory_matches_static_delay_line() {
        let taps = Taps::exponential(5, 1.5);
        let state = ChannelState::clean(f64::INFINITY).with_taps(taps);
        let mut tc = TrajectoryChannel::new(Trajectory::constant("isi", state, 4), 16);
        let mut stat = TappedDelayLine::new(taps.as_slice().to_vec());
        let mut a: Vec<C32> = (0..64).map(|k| C32::from_angle(k as f32 * 0.37)).collect();
        let mut b = a.clone();
        tc.transmit(&mut a, &mut rng());
        stat.transmit(&mut b, &mut rng());
        for (k, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "symbol {k}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "symbol {k}");
        }
    }

    #[test]
    fn snapshot_includes_delay_line() {
        let taps = Taps::two_ray(0.3, 0.2, 2);
        let state = ChannelState::clean(f64::INFINITY).with_taps(taps);
        let tc = TrajectoryChannel::new(Trajectory::constant("isi", state, 2), 8);
        let mut snap = tc.snapshot_static();
        let mut block = vec![C32::one(), C32::zero(), C32::zero(), C32::zero()];
        snap.transmit(&mut block, &mut rng());
        let h = TappedDelayLine::two_ray(0.3, 0.2, 2);
        assert!(block[2].dist_sqr(h.taps()[2]) < 1e-12, "snapshot lost ISI");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_length_segments_rejected() {
        let _ = Trajectory::new("bad").hold(0, ChannelState::clean(10.0));
    }

    #[test]
    #[should_panic(expected = "preceding segment")]
    fn leading_ramp_rejected() {
        let _ = Trajectory::new("bad").ramp(4, ChannelState::clean(10.0));
    }
}
