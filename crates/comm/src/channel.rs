//! Channel models.
//!
//! Channels are composable, stateful block transforms on complex
//! samples. The paper's evaluation uses exactly two: AWGN (the abstract
//! E2E-training channel) and AWGN plus a **fixed π/4 phase offset** (the
//! "real" channel that the demapper must adapt to). CFO, IQ imbalance
//! and block Rayleigh fading extend the adaptation studies.
//!
//! Ordering matters: deterministic impairments (rotation, CFO, IQ) are
//! applied to the transmitted symbol, noise is added last —
//! [`ChannelChain`] applies its stages in construction order.

use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;

/// A (possibly stateful) channel. Cloning yields an independent channel
/// with the same initial state, which is how the parallel link
/// simulator gives each Monte-Carlo task its own instance.
pub trait Channel: Send + Sync {
    /// Applies the channel to a block of symbols in place.
    fn transmit(&mut self, block: &mut [C32], rng: &mut Xoshiro256pp);

    /// Per-dimension AWGN σ contributed by this channel (0 for
    /// noise-free impairments). Receivers use it as channel-state
    /// information for LLR scaling.
    fn noise_sigma(&self) -> f32 {
        0.0
    }

    /// Clones into a boxed trait object (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn Channel>;

    /// Resets internal state (phase accumulators, fading draws).
    fn reset(&mut self) {}
}

impl Clone for Box<dyn Channel> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Additive white Gaussian noise with per-dimension standard deviation σ.
#[derive(Clone, Debug)]
pub struct Awgn {
    sigma: f32,
}

impl Awgn {
    /// AWGN with per-dimension σ.
    pub fn new(sigma: f32) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { sigma }
    }

    /// AWGN for a given Es/N0 in dB at unit symbol energy.
    pub fn from_es_n0_db(es_n0_db: f64) -> Self {
        Self::new(crate::snr::noise_sigma(es_n0_db, 1.0) as f32)
    }
}

impl Channel for Awgn {
    fn transmit(&mut self, block: &mut [C32], rng: &mut Xoshiro256pp) {
        if self.sigma == 0.0 {
            return;
        }
        for y in block {
            let (n_re, n_im) = rng.normal_pair_f64();
            y.re += self.sigma * n_re as f32;
            y.im += self.sigma * n_im as f32;
        }
    }

    fn noise_sigma(&self) -> f32 {
        self.sigma
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }
}

/// Static phase rotation `y = x·e^{jθ}` — the paper's channel-change
/// case study (θ = π/4).
#[derive(Clone, Debug)]
pub struct PhaseOffset {
    theta: f32,
    rot: C32,
}

impl PhaseOffset {
    /// Rotation by `theta` radians.
    pub fn new(theta: f32) -> Self {
        Self {
            theta,
            rot: C32::from_angle(theta),
        }
    }

    /// The rotation angle.
    pub fn theta(&self) -> f32 {
        self.theta
    }
}

impl Channel for PhaseOffset {
    fn transmit(&mut self, block: &mut [C32], _rng: &mut Xoshiro256pp) {
        for y in block {
            *y *= self.rot;
        }
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }
}

/// Carrier-frequency offset: phase advancing by `delta` radians per
/// symbol (a slowly rotating constellation — the drift scenario for the
/// adaptation controller).
#[derive(Clone, Debug)]
pub struct Cfo {
    delta: f32,
    phase: f32,
}

impl Cfo {
    /// CFO advancing `delta` radians per symbol.
    pub fn new(delta: f32) -> Self {
        Self { delta, phase: 0.0 }
    }

    /// Phase accumulated so far (radians, wrapped to ±π). The
    /// trajectory runtime folds this into a static [`PhaseOffset`]
    /// when a scripted segment changes the CFO rate, so the rotation
    /// stays continuous across the re-lowering.
    pub fn phase(&self) -> f32 {
        self.phase
    }
}

impl Channel for Cfo {
    fn transmit(&mut self, block: &mut [C32], _rng: &mut Xoshiro256pp) {
        for y in block {
            *y = y.rotate(self.phase);
            self.phase += self.delta;
            if self.phase > std::f32::consts::PI {
                self.phase -= 2.0 * std::f32::consts::PI;
            }
        }
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        self.phase = 0.0;
    }
}

/// Transmitter IQ imbalance: `y = α·x + β·conj(x)` with
/// `α = cos(φ/2) + j·ε·sin(φ/2)`, `β = ε·cos(φ/2) − j·sin(φ/2)`,
/// ε the amplitude mismatch and φ the phase mismatch.
#[derive(Clone, Debug)]
pub struct IqImbalance {
    alpha: C32,
    beta: C32,
}

impl IqImbalance {
    /// Imbalance with amplitude mismatch `epsilon` (e.g. 0.05) and
    /// phase mismatch `phi` radians (e.g. 0.05).
    pub fn new(epsilon: f32, phi: f32) -> Self {
        let (c, s) = ((phi / 2.0).cos(), (phi / 2.0).sin());
        Self {
            alpha: C32::new(c, epsilon * s),
            beta: C32::new(epsilon * c, -s),
        }
    }
}

impl Channel for IqImbalance {
    fn transmit(&mut self, block: &mut [C32], _rng: &mut Xoshiro256pp) {
        for y in block {
            *y = self.alpha * *y + self.beta * y.conj();
        }
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }
}

/// Block Rayleigh fading: a complex Gaussian coefficient held constant
/// for `block_len` symbols, then redrawn (unit average power).
#[derive(Clone, Debug)]
pub struct RayleighBlockFading {
    block_len: usize,
    remaining: usize,
    coeff: C32,
}

impl RayleighBlockFading {
    /// Fading with coherence length `block_len` symbols.
    pub fn new(block_len: usize) -> Self {
        assert!(block_len > 0);
        Self {
            block_len,
            remaining: 0,
            coeff: C32::one(),
        }
    }
}

impl Channel for RayleighBlockFading {
    fn transmit(&mut self, block: &mut [C32], rng: &mut Xoshiro256pp) {
        for y in block {
            if self.remaining == 0 {
                let (a, b) = rng.normal_pair_f64();
                // CN(0,1): each dimension has variance 1/2.
                self.coeff = C32::new(
                    (a * std::f64::consts::FRAC_1_SQRT_2) as f32,
                    (b * std::f64::consts::FRAC_1_SQRT_2) as f32,
                );
                self.remaining = self.block_len;
            }
            *y *= self.coeff;
            self.remaining -= 1;
        }
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        self.remaining = 0;
        self.coeff = C32::one();
    }
}

/// Frequency-selective (ISI) channel: a complex FIR tapped delay line
/// `y[n] = Σ_k h_k · x[n−k]` with per-symbol memory that persists
/// across blocks, frames and [`Channel::box_clone`] — the multipath
/// scenario family of the group's equalizer follow-on work
/// (arXiv 2304.06987, 2402.15288).
///
/// Presets are **unit-power normalised** (`Σ|h_k|² = 1`) so the
/// average symbol energy — and with it every Es/N0 ↔ σ conversion —
/// is preserved through the channel. Both presets keep the main tap
/// dominant (minimum phase), so a causal zero-delay FIR equalizer can
/// invert them (see `equalizer`).
#[derive(Clone, Debug)]
pub struct TappedDelayLine {
    taps: Vec<C32>,
    // Circular delay line of past inputs; `pos` points at the slot the
    // *next* input overwrites. line[pos−1−k mod L] = x[n−1−k].
    line: Vec<C32>,
    pos: usize,
}

impl TappedDelayLine {
    /// FIR channel with the given impulse response (`taps[0]` is the
    /// main tap). Taps are used as given — call
    /// [`TappedDelayLine::normalized`] or use a preset for unit power.
    ///
    /// # Panics
    /// Panics when `taps` is empty or carries a non-finite coefficient.
    pub fn new(taps: Vec<C32>) -> Self {
        assert!(!taps.is_empty(), "a delay line needs at least one tap");
        assert!(
            taps.iter().all(|t| t.is_finite()),
            "delay-line taps must be finite"
        );
        let line = vec![C32::zero(); taps.len()];
        Self { taps, line, pos: 0 }
    }

    /// `new(taps)` scaled to unit power (`Σ|h_k|² = 1`).
    ///
    /// # Panics
    /// Panics on empty, non-finite or all-zero taps.
    pub fn normalized(taps: Vec<C32>) -> Self {
        let power: f32 = taps.iter().map(|t| t.norm_sqr()).sum();
        assert!(power > 0.0, "cannot normalise all-zero taps");
        let scale = power.sqrt().recip();
        Self::new(taps.into_iter().map(|t| t.scale(scale)).collect())
    }

    /// Two-ray multipath preset: a unit main tap plus one echo of
    /// amplitude `echo_gain` rotated by `echo_phase` radians, `delay`
    /// symbols later — the canonical frequency-selective onset of the
    /// drift suite. Unit-power normalised.
    ///
    /// # Panics
    /// Panics unless `0 < |echo_gain| < 1` (the main ray must dominate
    /// — minimum phase) and `delay ≥ 1`.
    pub fn two_ray(echo_gain: f32, echo_phase: f32, delay: usize) -> Self {
        assert!(
            echo_gain.abs() > 0.0 && echo_gain.abs() < 1.0,
            "two-ray echo must satisfy 0 < |gain| < 1"
        );
        assert!(delay >= 1, "the echo needs at least one symbol of delay");
        let mut taps = vec![C32::zero(); delay + 1];
        taps[0] = C32::one();
        taps[delay] = C32::from_angle(echo_phase).scale(echo_gain);
        Self::normalized(taps)
    }

    /// Exponential-decay power-delay profile: `num_taps` real taps with
    /// `|h_k|² ∝ e^{−k/decay}`, unit-power normalised — the dense-ISI
    /// counterpart of the two-ray preset.
    ///
    /// # Panics
    /// Panics unless `num_taps ≥ 1` and `decay > 0`.
    pub fn exponential(num_taps: usize, decay: f32) -> Self {
        assert!(num_taps >= 1, "profile needs at least one tap");
        assert!(decay > 0.0, "decay constant must be positive");
        let taps = (0..num_taps)
            .map(|k| C32::new((-(k as f32) / (2.0 * decay)).exp(), 0.0))
            .collect();
        Self::normalized(taps)
    }

    /// The impulse response (`taps()[0]` is the main tap).
    pub fn taps(&self) -> &[C32] {
        &self.taps
    }
}

impl Channel for TappedDelayLine {
    fn transmit(&mut self, block: &mut [C32], _rng: &mut Xoshiro256pp) {
        let len = self.taps.len();
        if len == 1 {
            let h0 = self.taps[0];
            for y in block {
                *y = h0 * *y;
            }
            return;
        }
        for y in block {
            let x = *y;
            let mut acc = self.taps[0] * x;
            // taps[k] (k ≥ 1) multiplies x[n−k], stored k−1 steps
            // behind the write cursor.
            for (k, &h) in self.taps.iter().enumerate().skip(1) {
                let idx = (self.pos + len - k) % len;
                acc += h * self.line[idx];
            }
            self.line[self.pos] = x;
            self.pos = (self.pos + 1) % len;
            *y = acc;
        }
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        self.line.fill(C32::zero());
        self.pos = 0;
    }
}

/// Sequential composition of channels.
pub struct ChannelChain {
    stages: Vec<Box<dyn Channel>>,
}

impl ChannelChain {
    /// Chain applying `stages` in order.
    pub fn new(stages: Vec<Box<dyn Channel>>) -> Self {
        Self { stages }
    }

    /// The paper's evaluation channel: phase offset θ then AWGN at the
    /// given Es/N0.
    pub fn phase_then_awgn(theta: f32, es_n0_db: f64) -> Self {
        Self::new(vec![
            Box::new(PhaseOffset::new(theta)),
            Box::new(Awgn::from_es_n0_db(es_n0_db)),
        ])
    }
}

impl Clone for ChannelChain {
    fn clone(&self) -> Self {
        Self {
            stages: self.stages.clone(),
        }
    }
}

impl Channel for ChannelChain {
    fn transmit(&mut self, block: &mut [C32], rng: &mut Xoshiro256pp) {
        for s in &mut self.stages {
            s.transmit(block, rng);
        }
    }

    fn noise_sigma(&self) -> f32 {
        // Independent noise sources add in variance.
        self.stages
            .iter()
            .map(|s| s.noise_sigma() * s.noise_sigma())
            .sum::<f32>()
            .sqrt()
    }

    fn box_clone(&self) -> Box<dyn Channel> {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        for s in &mut self.stages {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::complex::avg_power;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(1234)
    }

    #[test]
    fn awgn_statistics() {
        let mut ch = Awgn::new(0.5);
        let mut r = rng();
        let n = 100_000;
        let mut block = vec![C32::zero(); n];
        ch.transmit(&mut block, &mut r);
        let mean_re: f64 = block.iter().map(|c| c.re as f64).sum::<f64>() / n as f64;
        let var_re: f64 = block.iter().map(|c| (c.re as f64).powi(2)).sum::<f64>() / n as f64;
        let var_im: f64 = block.iter().map(|c| (c.im as f64).powi(2)).sum::<f64>() / n as f64;
        assert!(mean_re.abs() < 0.01);
        assert!((var_re - 0.25).abs() < 0.01, "var {var_re}");
        assert!((var_im - 0.25).abs() < 0.01);
    }

    #[test]
    fn awgn_zero_sigma_is_identity() {
        let mut ch = Awgn::new(0.0);
        let mut block = vec![C32::new(1.0, -2.0); 10];
        ch.transmit(&mut block, &mut rng());
        assert!(block.iter().all(|&c| c == C32::new(1.0, -2.0)));
    }

    #[test]
    fn phase_offset_rotates_exactly() {
        let mut ch = PhaseOffset::new(std::f32::consts::FRAC_PI_2);
        let mut block = vec![C32::new(1.0, 0.0)];
        ch.transmit(&mut block, &mut rng());
        assert!(block[0].re.abs() < 1e-6);
        assert!((block[0].im - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cfo_accumulates_phase() {
        let delta = 0.01f32;
        let mut ch = Cfo::new(delta);
        let mut block = vec![C32::new(1.0, 0.0); 100];
        ch.transmit(&mut block, &mut rng());
        // Symbol k is rotated by k·delta.
        for (k, y) in block.iter().enumerate() {
            let expected = k as f32 * delta;
            assert!((y.arg() - expected).abs() < 1e-4, "symbol {k}");
        }
        ch.reset();
        let mut one = vec![C32::new(1.0, 0.0)];
        ch.transmit(&mut one, &mut rng());
        assert!(one[0].arg().abs() < 1e-6, "reset clears phase");
    }

    #[test]
    fn iq_imbalance_zero_params_is_identity() {
        let mut ch = IqImbalance::new(0.0, 0.0);
        let mut block = vec![C32::new(0.3, 0.7)];
        ch.transmit(&mut block, &mut rng());
        assert!((block[0].re - 0.3).abs() < 1e-6);
        assert!((block[0].im - 0.7).abs() < 1e-6);
    }

    #[test]
    fn iq_imbalance_distorts_asymmetrically() {
        let mut ch = IqImbalance::new(0.1, 0.1);
        let mut a = vec![C32::new(1.0, 0.0)];
        let mut b = vec![C32::new(0.0, 1.0)];
        ch.transmit(&mut a, &mut rng());
        ch.transmit(&mut b, &mut rng());
        // Image leakage: |y| differs between the two axes.
        assert!((a[0].abs() - b[0].abs()).abs() > 1e-3);
    }

    #[test]
    fn rayleigh_unit_average_power_and_coherence() {
        let mut ch = RayleighBlockFading::new(50);
        let mut r = rng();
        let n = 100_000;
        let mut block = vec![C32::new(1.0, 0.0); n];
        ch.transmit(&mut block, &mut r);
        let p = avg_power(&block) as f64;
        assert!((p - 1.0).abs() < 0.05, "avg fading power {p}");
        // Within a coherence block the coefficient is constant.
        assert_eq!(block[0], block[49]);
        assert_ne!(block[0], block[50]);
    }

    #[test]
    fn chain_composes_and_reports_sigma() {
        let mut ch = ChannelChain::phase_then_awgn(std::f32::consts::FRAC_PI_4, 10.0);
        assert!((ch.noise_sigma() - crate::snr::noise_sigma(10.0, 1.0) as f32).abs() < 1e-6);
        let mut block = vec![C32::new(1.0, 0.0); 1000];
        ch.transmit(&mut block, &mut rng());
        // Mean direction should be ≈ π/4.
        let mean = hybridem_mathkit::complex::mean(&block);
        assert!((mean.arg() - std::f32::consts::FRAC_PI_4).abs() < 0.05);
    }

    #[test]
    fn boxed_clone_is_independent() {
        let mut a: Box<dyn Channel> = Box::new(Cfo::new(0.1));
        let b = a.clone();
        let mut block = vec![C32::new(1.0, 0.0); 10];
        a.transmit(&mut block, &mut rng());
        // Clone retains initial state.
        let mut block2 = vec![C32::new(1.0, 0.0)];
        let mut b = b;
        b.transmit(&mut block2, &mut rng());
        assert!(block2[0].arg().abs() < 1e-6);
    }

    #[test]
    fn delay_line_impulse_response_matches_taps() {
        let taps = vec![C32::new(0.8, 0.0), C32::new(0.0, 0.5), C32::new(-0.3, 0.1)];
        let mut ch = TappedDelayLine::new(taps.clone());
        let mut block = vec![C32::zero(); 6];
        block[0] = C32::one();
        ch.transmit(&mut block, &mut rng());
        for (k, &h) in taps.iter().enumerate() {
            assert!(block[k].dist_sqr(h) < 1e-12, "tap {k}");
        }
        assert!(block[3].norm_sqr() < 1e-12);
    }

    #[test]
    fn delay_line_memory_spans_blocks() {
        // Feeding an impulse split across two transmit() calls must give
        // the same output as one call: the delay line carries state.
        let mut a = TappedDelayLine::two_ray(0.5, 0.3, 2);
        let mut b = a.clone();
        let mut whole = vec![C32::one(), C32::zero(), C32::zero(), C32::zero()];
        a.transmit(&mut whole, &mut rng());
        let mut first = vec![C32::one(), C32::zero()];
        let mut second = vec![C32::zero(), C32::zero()];
        b.transmit(&mut first, &mut rng());
        b.transmit(&mut second, &mut rng());
        let split: Vec<C32> = first.into_iter().chain(second).collect();
        for (i, (w, s)) in whole.iter().zip(&split).enumerate() {
            assert_eq!(w, s, "symbol {i}");
        }
    }

    #[test]
    fn delay_line_clone_preserves_and_reset_clears_state() {
        let mut ch = TappedDelayLine::two_ray(0.4, 0.0, 1);
        let mut primed = vec![C32::one()];
        ch.transmit(&mut primed, &mut rng());
        // Clone mid-stream: both must emit the echo of the primed symbol.
        let mut cl = ch.box_clone();
        let mut next = vec![C32::zero()];
        cl.transmit(&mut next, &mut rng());
        assert!(next[0].norm_sqr() > 0.1, "clone lost delay-line state");
        // Reset forgets the primed symbol entirely.
        ch.reset();
        let mut after = vec![C32::zero()];
        ch.transmit(&mut after, &mut rng());
        assert!(after[0].norm_sqr() < 1e-12, "reset left residual state");
    }

    #[test]
    fn delay_line_presets_are_unit_power() {
        for ch in [
            TappedDelayLine::two_ray(0.4, 1.0, 3),
            TappedDelayLine::exponential(6, 2.0),
        ] {
            let p: f32 = ch.taps().iter().map(|t| t.norm_sqr()).sum();
            assert!((p - 1.0).abs() < 1e-5, "tap power {p}");
            // Main tap dominates every echo (minimum phase, causally invertible).
            let main = ch.taps()[0].norm_sqr();
            for t in &ch.taps()[1..] {
                assert!(main > t.norm_sqr());
            }
        }
    }
}
