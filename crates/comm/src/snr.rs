//! SNR bookkeeping.
//!
//! The paper reports SNR as symbol-energy to noise-density ratio
//! `Es/N0` over a complex AWGN channel. With unit average symbol energy
//! (`Es = 1`, guaranteed by the mapper's power normalisation) and noise
//! variance σ² **per real dimension**, `N0 = 2σ²`, so
//! `σ = sqrt(1 / (2 · 10^(SNR_dB/10)))`.

/// Converts dB to the linear power ratio.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB.
#[inline]
pub fn linear_to_db(lin: f64) -> f64 {
    10.0 * lin.log10()
}

/// Per-dimension noise standard deviation for a given Es/N0 (dB) and
/// average symbol energy `es` (1.0 for normalised constellations).
pub fn noise_sigma(es_n0_db: f64, es: f64) -> f64 {
    (es / (2.0 * db_to_linear(es_n0_db))).sqrt()
}

/// Es/N0 (dB) → Eb/N0 (dB) for `m` bits per symbol (no coding).
pub fn esn0_to_ebn0_db(es_n0_db: f64, m: usize) -> f64 {
    es_n0_db - linear_to_db(m as f64)
}

/// Eb/N0 (dB) → Es/N0 (dB) for `m` bits per symbol (no coding).
pub fn ebn0_to_esn0_db(eb_n0_db: f64, m: usize) -> f64 {
    eb_n0_db + linear_to_db(m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for &db in &[-10.0, 0.0, 3.0, 12.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_linear(0.0) - 1.0).abs() < 1e-12);
        assert!((db_to_linear(3.0) - 1.9952623).abs() < 1e-6);
    }

    #[test]
    fn sigma_at_zero_db() {
        // Es/N0 = 1 ⇒ σ² = 1/2 per dimension.
        let s = noise_sigma(0.0, 1.0);
        assert!((s * s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sigma_decreases_with_snr() {
        assert!(noise_sigma(10.0, 1.0) < noise_sigma(0.0, 1.0));
        assert!(noise_sigma(0.0, 1.0) < noise_sigma(-10.0, 1.0));
    }

    #[test]
    fn es_eb_conversions() {
        // 16-QAM: 4 bits ⇒ 10·log10(4) ≈ 6.02 dB apart.
        let es = 12.0;
        let eb = esn0_to_ebn0_db(es, 4);
        assert!((es - eb - 6.0206).abs() < 1e-3);
        assert!((ebn0_to_esn0_db(eb, 4) - es).abs() < 1e-12);
    }
}
