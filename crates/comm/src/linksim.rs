//! End-to-end link simulation: the Monte-Carlo BER engine.
//!
//! One simulation transmits random symbols from a constellation through
//! a channel, demaps each channel block with one
//! [`Demapper::demap_block`] call (no per-symbol virtual dispatch, no
//! per-symbol allocation — see DESIGN.md §7), and counts bit and symbol
//! errors plus bitwise mutual information. Parallel execution reuses
//! the deterministic task-splitting Monte-Carlo runner, so every
//! BER point in EXPERIMENTS.md is exactly reproducible from its seed.
//!
//! Two entry points share one engine:
//!
//! - [`simulate_link`] — one-shot: the whole symbol budget in a single
//!   pass;
//! - [`LinkSim`] — resumable: blocks arrive in caller-chosen rounds on
//!   a [`RoundRunner`], which is how the campaign engine
//!   ([`crate::campaign`]) implements statistical early stopping
//!   without giving up determinism (DESIGN.md §8).

use crate::channel::Channel;
use crate::constellation::Constellation;
use crate::demapper::Demapper;
use crate::metrics::BitwiseMiEstimator;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};
use hybridem_mathkit::stats::ErrorCounter;
use hybridem_parallel::montecarlo::{MonteCarloPlan, RoundRunner};

/// Everything needed to run one link simulation.
pub struct LinkSpec<'a> {
    /// Transmitter codebook (points indexed by bit label).
    pub constellation: &'a Constellation,
    /// Channel prototype; each parallel task clones and resets it.
    pub channel: &'a dyn Channel,
    /// Receiver demapper.
    pub demapper: &'a dyn Demapper,
    /// Total number of symbols to simulate (rounded up to whole blocks).
    pub symbols: u64,
    /// Symbols per transmitted block (also the granularity at which
    /// stateful channels see contiguous streams).
    pub block_len: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl<'a> LinkSpec<'a> {
    /// Convenience constructor with the default block length (256).
    pub fn new(
        constellation: &'a Constellation,
        channel: &'a dyn Channel,
        demapper: &'a dyn Demapper,
        symbols: u64,
        seed: u64,
    ) -> Self {
        Self {
            constellation,
            channel,
            demapper,
            symbols,
            block_len: 256,
            seed,
        }
    }
}

/// Outcome of a link simulation.
#[derive(Clone, Debug)]
pub struct LinkResult {
    /// Bit-level error counter (`trials` = simulated bits).
    pub bit_errors: ErrorCounter,
    /// Symbol-level error counter (`trials` = simulated symbols).
    pub symbol_errors: ErrorCounter,
    /// Bitwise mutual information estimate across all bit positions.
    pub mi: BitwiseMiEstimator,
}

impl LinkResult {
    /// Bit error rate. Zero-observation contract: `0.0` (never NaN)
    /// when no bits were simulated — check
    /// `self.bit_errors.trials() == 0` to tell "clean link" from
    /// "nothing measured".
    pub fn ber(&self) -> f64 {
        self.bit_errors.rate()
    }

    /// Symbol error rate. Zero-observation contract: `0.0` (never NaN)
    /// when no symbols were simulated.
    pub fn ser(&self) -> f64 {
        self.symbol_errors.rate()
    }
}

struct TaskAcc {
    channel: Box<dyn Channel>,
    bits: ErrorCounter,
    syms: ErrorCounter,
    mi: BitwiseMiEstimator,
    /// Per-task scratch, reused across blocks so the Monte-Carlo inner
    /// loop allocates nothing after the first block.
    tx_symbols: Vec<usize>,
    block: Vec<C32>,
    llrs: Vec<f32>,
}

/// Runs the simulation described by `spec` in one pass, with a task
/// count suited to the current machine (see [`MonteCarloPlan::new`];
/// fix `HYBRIDEM_THREADS` or use [`LinkSim::new`] with an explicit
/// task count for machine-independent results).
pub fn simulate_link(spec: &LinkSpec<'_>) -> LinkResult {
    // Checked again by LinkSim::new, but assert before the division so
    // a zero block length fails with the documented message rather
    // than an opaque divide-by-zero.
    assert!(spec.block_len > 0, "block length must be positive");
    let blocks = spec.symbols.div_ceil(spec.block_len as u64);
    let plan = MonteCarloPlan::new(blocks, spec.seed);
    let mut sim = LinkSim::new(spec, plan.tasks);
    sim.run_round(blocks);
    sim.result()
}

/// A resumable link simulation: the same engine as [`simulate_link`],
/// but blocks are simulated in caller-chosen **rounds** and the
/// partial result can be inspected between rounds.
///
/// Built on [`RoundRunner`], so the per-task channel state and RNG
/// stream survive across rounds: running rounds `b₁, …, b_k` blocks is
/// bit-identical to one [`simulate_link`] call of `Σ bᵢ` blocks at the
/// same task count, and a caller that stops early gets exactly the
/// prefix of the uncapped run. This is what the campaign engine's
/// statistical early stopping is built on (DESIGN.md §8).
pub struct LinkSim<'a> {
    spec: &'a LinkSpec<'a>,
    runner: RoundRunner<TaskAcc>,
}

impl<'a> LinkSim<'a> {
    /// Prepares a resumable simulation with an explicit task count
    /// (`spec.symbols` is ignored; rounds decide the budget).
    ///
    /// # Panics
    /// Panics on constellation/demapper width mismatch, widths above
    /// 16 bits/symbol, a zero block length, or zero tasks.
    pub fn new(spec: &'a LinkSpec<'a>, tasks: u32) -> Self {
        let m = spec.constellation.bits_per_symbol();
        assert_eq!(
            m,
            spec.demapper.bits_per_symbol(),
            "constellation and demapper disagree on bits/symbol"
        );
        assert!(m <= 16, "bits per symbol > 16 unsupported");
        assert!(spec.block_len > 0, "block length must be positive");
        let runner = RoundRunner::new(tasks, spec.seed, || {
            let mut channel = spec.channel.box_clone();
            channel.reset();
            TaskAcc {
                channel,
                bits: ErrorCounter::new(),
                syms: ErrorCounter::new(),
                mi: BitwiseMiEstimator::new(),
                tx_symbols: vec![0usize; spec.block_len],
                block: vec![C32::zero(); spec.block_len],
                llrs: vec![0f32; spec.block_len * m],
            }
        });
        Self { spec, runner }
    }

    /// Simulates `blocks` further blocks (each `spec.block_len`
    /// symbols), split deterministically across the task set.
    pub fn run_round(&mut self, blocks: u64) {
        let spec = self.spec;
        self.runner
            .run_round(blocks, |acc, rng| simulate_block(spec, acc, rng));
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u32 {
        self.runner.rounds()
    }

    /// Symbols simulated so far (`blocks × block_len`).
    pub fn symbols(&self) -> u64 {
        self.runner.trials() * self.spec.block_len as u64
    }

    /// Snapshot of the accumulated result, reduced in task order (so
    /// the floating-point MI sum is bit-stable across thread counts).
    /// Cheap relative to a round; callable between rounds.
    pub fn result(&self) -> LinkResult {
        self.runner.fold(
            |acc| LinkResult {
                bit_errors: acc.bits,
                symbol_errors: acc.syms,
                mi: acc.mi.clone(),
            },
            |total, part| {
                total.bit_errors.merge(&part.bit_errors);
                total.symbol_errors.merge(&part.symbol_errors);
                total.mi.merge(&part.mi);
            },
        )
    }
}

fn simulate_block(spec: &LinkSpec<'_>, acc: &mut TaskAcc, rng: &mut Xoshiro256pp) {
    let m = spec.constellation.bits_per_symbol();
    for (s, y) in acc.tx_symbols.iter_mut().zip(acc.block.iter_mut()) {
        *s = (rng.next_u64() >> (64 - m)) as usize;
        *y = spec.constellation.point(*s);
    }
    acc.channel.transmit(&mut acc.block, rng);

    // One block demap per channel block: no per-symbol virtual dispatch
    // in the hottest loop of the workspace.
    spec.demapper.demap_block(&acc.block, &mut acc.llrs);

    for (&u, llr) in acc.tx_symbols.iter().zip(acc.llrs.chunks_exact(m)) {
        let mut sym_err = false;
        for (k, &l) in llr.iter().enumerate() {
            let tx_bit = spec.constellation.bit(u, k);
            let rx_bit = u8::from(l < 0.0);
            let err = tx_bit != rx_bit;
            sym_err |= err;
            acc.bits.push(err);
            acc.mi.push(tx_bit, l);
        }
        acc.syms.push(sym_err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Awgn, ChannelChain};
    use crate::demapper::{ExactLogMap, HardNearest, MaxLogMap};
    use crate::snr::noise_sigma;
    use crate::theory::{ber_qam16_gray, ber_qpsk_gray};

    fn qam16() -> Constellation {
        Constellation::qam_gray(16)
    }

    #[test]
    fn noiseless_link_is_error_free() {
        let c = qam16();
        let awgn = Awgn::new(0.0);
        let demapper = MaxLogMap::new(c.clone(), 0.1);
        let spec = LinkSpec::new(&c, &awgn, &demapper, 10_000, 1);
        let r = simulate_link(&spec);
        assert_eq!(r.bit_errors.errors(), 0);
        assert_eq!(r.symbol_errors.errors(), 0);
        assert!(r.bit_errors.trials() >= 40_000);
        // Clean LLRs carry the full bit of information.
        assert!(r.mi.mi() > 0.999);
    }

    #[test]
    fn qam16_maxlog_matches_theory() {
        let c = qam16();
        for &snr in &[4.0f64, 8.0] {
            let sigma = noise_sigma(snr, 1.0) as f32;
            let channel = Awgn::new(sigma);
            let demapper = MaxLogMap::new(c.clone(), sigma);
            let spec = LinkSpec::new(&c, &channel, &demapper, 400_000, 42);
            let r = simulate_link(&spec);
            let theory = ber_qam16_gray(snr);
            assert!(
                r.bit_errors.consistent_with(theory, 3.9),
                "snr {snr}: sim {} vs theory {theory}",
                r.ber()
            );
        }
    }

    #[test]
    fn qpsk_exact_demapper_matches_theory() {
        let c = Constellation::qam_gray(4);
        let snr = 6.0;
        let sigma = noise_sigma(snr, 1.0) as f32;
        let channel = Awgn::new(sigma);
        let demapper = ExactLogMap::new(c.clone(), sigma);
        let spec = LinkSpec::new(&c, &channel, &demapper, 400_000, 7);
        let r = simulate_link(&spec);
        let theory = ber_qpsk_gray(snr);
        assert!(
            r.bit_errors.consistent_with(theory, 3.9),
            "sim {} vs theory {theory}",
            r.ber()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let c = qam16();
        let sigma = noise_sigma(8.0, 1.0) as f32;
        let channel = Awgn::new(sigma);
        let demapper = MaxLogMap::new(c.clone(), sigma);
        let spec = LinkSpec::new(&c, &channel, &demapper, 50_000, 99);
        let a = simulate_link(&spec);
        let b = simulate_link(&spec);
        assert_eq!(a.bit_errors.errors(), b.bit_errors.errors());
        assert_eq!(a.symbol_errors.errors(), b.symbol_errors.errors());
    }

    #[test]
    fn uncompensated_phase_offset_destroys_the_link() {
        // The paper's Table 1 "before retraining" condition.
        let c = qam16();
        let sigma = noise_sigma(8.0, 1.0) as f32;
        let channel = ChannelChain::phase_then_awgn(std::f32::consts::FRAC_PI_4, 8.0);
        let demapper = MaxLogMap::new(c.clone(), sigma);
        let spec = LinkSpec::new(&c, &channel, &demapper, 100_000, 5);
        let r = simulate_link(&spec);
        assert!(
            r.ber() > 0.2,
            "π/4 offset must be catastrophic: {}",
            r.ber()
        );
        // MI collapses as well.
        assert!(r.mi.mi() < 0.3);
    }

    #[test]
    fn rotated_centroids_compensate_phase_offset() {
        // The paper's core claim in miniature: demapping against the
        // rotated point set restores the no-offset BER.
        let theta = std::f32::consts::FRAC_PI_4;
        let c = qam16();
        let snr = 8.0;
        let sigma = noise_sigma(snr, 1.0) as f32;
        let channel = ChannelChain::phase_then_awgn(theta, snr);
        let demapper = MaxLogMap::new(c.rotated(theta), sigma);
        let spec = LinkSpec::new(&c, &channel, &demapper, 400_000, 11);
        let r = simulate_link(&spec);
        let theory = ber_qam16_gray(snr);
        assert!(
            r.bit_errors.consistent_with(theory, 3.9),
            "compensated sim {} vs theory {theory}",
            r.ber()
        );
    }

    #[test]
    fn hard_demapper_close_to_soft_for_uncoded_ber() {
        // For uncoded transmission, hard nearest-neighbour decisions on
        // a Gray QAM equal the max-log bit decisions.
        let c = qam16();
        let snr = 6.0;
        let sigma = noise_sigma(snr, 1.0) as f32;
        let channel = Awgn::new(sigma);
        let soft = MaxLogMap::new(c.clone(), sigma);
        let hard = HardNearest::new(c.clone());
        let rs = simulate_link(&LinkSpec::new(&c, &channel, &soft, 200_000, 3));
        let rh = simulate_link(&LinkSpec::new(&c, &channel, &hard, 200_000, 3));
        assert_eq!(rs.bit_errors.errors(), rh.bit_errors.errors());
    }

    #[test]
    fn zero_symbol_budget_yields_finite_zeroes() {
        // The zero-observation contract end-to-end: no trials, no NaN.
        let c = qam16();
        let awgn = Awgn::new(0.3);
        let demapper = MaxLogMap::new(c.clone(), 0.3);
        let spec = LinkSpec::new(&c, &awgn, &demapper, 0, 1);
        let r = simulate_link(&spec);
        assert_eq!(r.bit_errors.trials(), 0);
        assert_eq!(r.ber(), 0.0);
        assert_eq!(r.ser(), 0.0);
        assert_eq!(r.mi.mi(), 0.0);
        assert!(r.ber().is_finite() && r.ser().is_finite() && r.mi.mi().is_finite());
        assert_eq!(r.bit_errors.wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    fn incremental_rounds_match_one_shot() {
        // LinkSim over rounds 8+24+32 blocks ≡ one 64-block round at
        // the same task count, bit-for-bit (round sizes divisible by
        // the task count, so per-task trial prefixes line up) —
        // including the stateful-channel case (CFO phase persists
        // across rounds within a task).
        let c = qam16();
        let sigma = noise_sigma(8.0, 1.0) as f32;
        let channel = ChannelChain::new(vec![
            Box::new(crate::channel::Cfo::new(1e-4)),
            Box::new(Awgn::new(sigma)),
        ]);
        let demapper = MaxLogMap::new(c.clone(), sigma);
        let mut spec = LinkSpec::new(&c, &channel, &demapper, 64 * 256, 77);
        spec.block_len = 256;

        let mut sim = LinkSim::new(&spec, 8);
        for blocks in [8u64, 24, 32] {
            sim.run_round(blocks);
        }
        let incremental = sim.result();
        assert_eq!(sim.rounds(), 3);
        assert_eq!(sim.symbols(), 64 * 256);

        let mut one_shot = LinkSim::new(&spec, 8);
        one_shot.run_round(64);
        let whole = one_shot.result();
        assert_eq!(incremental.bit_errors.errors(), whole.bit_errors.errors());
        assert_eq!(
            incremental.symbol_errors.errors(),
            whole.symbol_errors.errors()
        );
        assert_eq!(incremental.mi.mi().to_bits(), whole.mi.mi().to_bits());
    }

    #[test]
    #[should_panic(expected = "disagree on bits/symbol")]
    fn mismatched_widths_rejected() {
        let c = qam16();
        let c4 = Constellation::qam_gray(4);
        let channel = Awgn::new(0.1);
        let demapper = MaxLogMap::new(c4, 0.1);
        let spec = LinkSpec::new(&c, &channel, &demapper, 100, 0);
        let _ = simulate_link(&spec);
    }
}
