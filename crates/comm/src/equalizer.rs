//! Linear adaptive equalization for frequency-selective (ISI) channels.
//!
//! The repo's demappers are memoryless: they map one received sample to
//! LLRs. A [`channel::TappedDelayLine`](crate::channel::TappedDelayLine)
//! smears symbols across time, and no per-sample demapper — hybrid or
//! ANN — can undo that. This module restores the memoryless world the
//! demappers assume by placing a linear FIR equalizer ahead of them,
//! following the group's unsupervised-equalizer line of work
//! (arXiv 2304.06987, 2402.15288): the equalizer adapts **without
//! labels**, using the constant-modulus algorithm (CMA) to acquire and
//! decision-directed LMS (DD-LMS) to track once the eye is open.
//!
//! ## Adaptation paths
//!
//! - **Supervised bootstrap** ([`AdaptiveEqualizer::bootstrap_ls`]):
//!   given pilot symbols, a regularised least-squares fit of the tap
//!   vector (complex LS via re/im stacking on
//!   `mathkit::linsolve::solve_least_squares`). One call lands the
//!   equalizer at the MMSE-ish solution and resolves absolute phase.
//! - **Unsupervised** ([`AdaptiveEqualizer::equalize`]): per-symbol
//!   stochastic-gradient updates. In CMA mode the error is
//!   `e = z·(|z|² − R₂)` with `R₂ = E|a|⁴ / E|a|²` over the
//!   constellation — blind, driven only by the modulus of the output.
//!   Once the smoothed decision-error MSE drops below
//!   [`EqualizerConfig::dd_enter_mse`] the loop hands off to DD-LMS
//!   (`e = z − â`, `â` the nearest constellation point), which is
//!   unbiased at low error rates and tracks slow drift. If the eye
//!   closes again (MSE above [`EqualizerConfig::dd_exit_mse`],
//!   hysteresis) it falls back to CMA.
//!
//! CMA is blind to absolute phase up to the rotational symmetry of the
//! constellation. The drift-suite ISI presets keep the channel's main
//! tap positive-real and the equalizer starts from a unit spike on tap
//! 0, so acquisition converges to the unrotated inverse; links with
//! pilots should call `bootstrap_ls` and avoid the ambiguity entirely.
//!
//! ## Determinism contract
//!
//! Adaptation is a pure fold over the input sample stream: no RNG, no
//! time, no thread-dependent state. Two equalizers with equal configs
//! fed equal streams hold bit-identical taps. [`EqualizedDemapper`]
//! keeps its state behind a `Mutex` only to satisfy the `&self`
//! [`Demapper`] API — each runtime link owns a private instance, so
//! artefacts stay byte-identical at any `HYBRIDEM_THREADS`.

use crate::constellation::Constellation;
use crate::demapper::Demapper;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::linsolve::solve_least_squares;
use std::sync::{Arc, Mutex};

/// Step sizes and mode-handoff thresholds for [`AdaptiveEqualizer`].
#[derive(Clone, Copy, Debug)]
pub struct EqualizerConfig {
    /// FIR length of the equalizer (causal, tap 0 first).
    pub num_taps: usize,
    /// CMA step size (acquisition).
    pub mu_cma: f32,
    /// DD-LMS step size (tracking).
    pub mu_dd: f32,
    /// Hand off CMA → DD-LMS when the smoothed decision-error MSE
    /// drops below this (eye open).
    pub dd_enter_mse: f32,
    /// Fall back DD-LMS → CMA when the smoothed decision-error MSE
    /// rises above this (eye closed; must exceed `dd_enter_mse` for
    /// hysteresis).
    pub dd_exit_mse: f32,
    /// EMA weight of the decision-error MSE tracker.
    pub ema_alpha: f32,
}

impl Default for EqualizerConfig {
    fn default() -> Self {
        Self {
            num_taps: 8,
            mu_cma: 2e-3,
            mu_dd: 8e-3,
            dd_enter_mse: 0.12,
            dd_exit_mse: 0.2,
            ema_alpha: 0.02,
        }
    }
}

/// Which update rule the equalizer is currently running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EqualizerMode {
    /// Blind acquisition via the constant-modulus criterion.
    Cma,
    /// Decision-directed LMS tracking (eye open).
    DecisionDirected,
}

/// Linear FIR equalizer with CMA acquisition, DD-LMS tracking and an
/// optional supervised LS bootstrap. See the module docs for the
/// algorithm and the determinism contract.
#[derive(Clone, Debug)]
pub struct AdaptiveEqualizer {
    cfg: EqualizerConfig,
    constellation: Constellation,
    /// CMA dispersion constant `R₂ = E|a|⁴ / E|a|²`.
    r2: f32,
    taps: Vec<C32>,
    /// Circular delay line of inputs; `pos` is the slot the next input
    /// overwrites, so line[pos−1−k mod L] = y[n−1−k].
    line: Vec<C32>,
    pos: usize,
    mode: EqualizerMode,
    /// EMA of |z − â|², the handoff statistic.
    dd_mse: f32,
}

impl AdaptiveEqualizer {
    /// Fresh equalizer: unit spike on tap 0 (pass-through), CMA mode.
    ///
    /// # Panics
    /// Panics when `cfg.num_taps == 0` or the hysteresis thresholds are
    /// inverted.
    pub fn new(constellation: Constellation, cfg: EqualizerConfig) -> Self {
        assert!(cfg.num_taps >= 1, "equalizer needs at least one tap");
        assert!(
            cfg.dd_exit_mse > cfg.dd_enter_mse,
            "handoff thresholds must leave a hysteresis band"
        );
        let pts = constellation.points();
        let (mut p2, mut p4) = (0.0f64, 0.0f64);
        for p in pts {
            let n = f64::from(p.norm_sqr());
            p2 += n;
            p4 += n * n;
        }
        let r2 = (p4 / p2) as f32;
        let mut taps = vec![C32::zero(); cfg.num_taps];
        taps[0] = C32::one();
        let line = vec![C32::zero(); cfg.num_taps];
        Self {
            cfg,
            constellation,
            r2,
            taps,
            line,
            pos: 0,
            mode: EqualizerMode::Cma,
            dd_mse: 1.0,
        }
    }

    /// Current mode (CMA or decision-directed).
    pub fn mode(&self) -> EqualizerMode {
        self.mode
    }

    /// Smoothed decision-error MSE driving the CMA↔DD handoff.
    pub fn dd_mse(&self) -> f32 {
        self.dd_mse
    }

    /// Current tap vector (tap 0 first).
    pub fn taps(&self) -> &[C32] {
        &self.taps
    }

    /// Clears the delay line and the handoff statistic and returns to
    /// CMA acquisition, keeping the learned taps.
    pub fn reset_state(&mut self) {
        self.line.fill(C32::zero());
        self.pos = 0;
        self.mode = EqualizerMode::Cma;
        self.dd_mse = 1.0;
    }

    /// Equalizer output for the sample at the write cursor *after*
    /// `push` stored it: `z[n] = Σ_k w_k · y[n−k]`.
    fn filter_output(&self) -> C32 {
        let len = self.taps.len();
        let mut z = C32::zero();
        for (k, &w) in self.taps.iter().enumerate() {
            // y[n−k] sits k+1 slots behind the (advanced) cursor.
            let idx = (self.pos + len - 1 - k) % len;
            z += w * self.line[idx];
        }
        z
    }

    fn push(&mut self, y: C32) {
        self.line[self.pos] = y;
        self.pos = (self.pos + 1) % self.line.len();
    }

    /// Applies the stochastic-gradient update `w_k ← w_k − μ·e·ȳ[n−k]`.
    fn adapt(&mut self, err: C32, mu: f32) {
        let len = self.taps.len();
        for k in 0..len {
            let idx = (self.pos + len - 1 - k) % len;
            let g = err * self.line[idx].conj();
            self.taps[k] -= g.scale(mu);
        }
    }

    /// Equalizes one sample **with** unsupervised adaptation: filters,
    /// updates the taps (CMA or DD-LMS per the current mode), updates
    /// the handoff statistic, and returns the equalized sample.
    pub fn equalize_symbol(&mut self, y: C32) -> C32 {
        self.push(y);
        let z = self.filter_output();
        // Handoff statistic: decision error against the nearest point,
        // tracked in both modes so entry and exit share one signal.
        let nearest = self.constellation.point(self.constellation.nearest(z));
        let dd_err = z - nearest;
        let a = self.cfg.ema_alpha;
        self.dd_mse = (1.0 - a) * self.dd_mse + a * dd_err.norm_sqr();
        match self.mode {
            EqualizerMode::Cma => {
                let e = z.scale(z.norm_sqr() - self.r2);
                self.adapt(e, self.cfg.mu_cma);
                if self.dd_mse < self.cfg.dd_enter_mse {
                    self.mode = EqualizerMode::DecisionDirected;
                }
            }
            EqualizerMode::DecisionDirected => {
                self.adapt(dd_err, self.cfg.mu_dd);
                if self.dd_mse > self.cfg.dd_exit_mse {
                    self.mode = EqualizerMode::Cma;
                }
            }
        }
        z
    }

    /// Equalizes a block in place with unsupervised adaptation.
    pub fn equalize(&mut self, block: &mut [C32]) {
        for y in block {
            *y = self.equalize_symbol(*y);
        }
    }

    /// Supervised pilot update: equalizes `rx` in place while adapting
    /// against the known transmitted symbols `tx` (plain LMS with the
    /// DD step size). Keeps the delay line warm across the
    /// pilot/payload boundary and forces DD mode when the pilots show
    /// an open eye.
    ///
    /// # Panics
    /// Panics unless `rx.len() == tx.len()`.
    pub fn train(&mut self, rx: &mut [C32], tx: &[C32]) {
        assert_eq!(rx.len(), tx.len(), "pilot rx/tx length mismatch");
        for (y, &x) in rx.iter_mut().zip(tx) {
            self.push(*y);
            let z = self.filter_output();
            let err = z - x;
            let a = self.cfg.ema_alpha;
            self.dd_mse = (1.0 - a) * self.dd_mse + a * err.norm_sqr();
            self.adapt(err, self.cfg.mu_dd);
            *y = z;
        }
        if self.dd_mse < self.cfg.dd_enter_mse {
            self.mode = EqualizerMode::DecisionDirected;
        }
    }

    /// Supervised least-squares bootstrap: replaces the tap vector with
    /// the regularised LS fit of `Σ_k w_k·rx[n−k] ≈ tx[n]` over the
    /// pilot block (complex LS via re/im stacking, ridge `lambda`).
    /// Seeds the delay line with the trailing pilots and switches to
    /// DD mode. Returns `false` (taps untouched) when the system is
    /// singular or the pilot block is shorter than the equalizer.
    ///
    /// # Panics
    /// Panics unless `rx.len() == tx.len()`.
    pub fn bootstrap_ls(&mut self, rx: &[C32], tx: &[C32], lambda: f64) -> bool {
        assert_eq!(rx.len(), tx.len(), "pilot rx/tx length mismatch");
        let l = self.taps.len();
        if rx.len() < l {
            return false;
        }
        // Unknowns [Re w₀, Im w₀, …]; each sample contributes the real
        // and imaginary rows of Σ_k w_k·y[n−k] = x[n].
        let mut rows = Vec::with_capacity(2 * (rx.len() - l + 1));
        let mut rhs = Vec::with_capacity(rows.capacity());
        for n in (l - 1)..rx.len() {
            let mut re_row = vec![0.0f64; 2 * l];
            let mut im_row = vec![0.0f64; 2 * l];
            for k in 0..l {
                let y = rx[n - k];
                let (yr, yi) = (f64::from(y.re), f64::from(y.im));
                re_row[2 * k] = yr;
                re_row[2 * k + 1] = -yi;
                im_row[2 * k] = yi;
                im_row[2 * k + 1] = yr;
            }
            rows.push(re_row);
            rhs.push(f64::from(tx[n].re));
            rows.push(im_row);
            rhs.push(f64::from(tx[n].im));
        }
        let Some(w) = solve_least_squares(&rows, &rhs, 2 * l, lambda) else {
            return false;
        };
        for k in 0..l {
            self.taps[k] = C32::new(w[2 * k] as f32, w[2 * k + 1] as f32);
        }
        for &y in &rx[rx.len() - l..] {
            self.push(y);
        }
        self.mode = EqualizerMode::DecisionDirected;
        self.dd_mse = 0.0;
        true
    }
}

/// A [`Demapper`] that runs an [`AdaptiveEqualizer`] ahead of an inner
/// demapper: each `demap_block` equalizes the samples (adapting
/// unsupervised) and feeds the inner demapper the restored memoryless
/// stream.
///
/// The equalizer sits behind a `Mutex` because the `Demapper` API is
/// `&self`; build **one instance per link** (see
/// `core::registry::equalized`) — a shared instance fed by interleaved
/// streams would adapt on a thread-dependent sample order and break
/// the artefact determinism contract.
pub struct EqualizedDemapper {
    inner: Arc<dyn Demapper>,
    eq: Mutex<AdaptiveEqualizer>,
}

impl EqualizedDemapper {
    /// Wraps `inner` behind a fresh equalizer. The inner demapper is
    /// shared (it is stateless); the equalizer state is private to
    /// this instance.
    pub fn new(inner: Arc<dyn Demapper>, eq: AdaptiveEqualizer) -> Self {
        Self {
            inner,
            eq: Mutex::new(eq),
        }
    }

    /// Runs `f` against the equalizer state (mode inspection, pilot
    /// training, LS bootstrap).
    pub fn with_equalizer<R>(&self, f: impl FnOnce(&mut AdaptiveEqualizer) -> R) -> R {
        f(&mut self.eq.lock().expect("equalizer mutex poisoned"))
    }

    /// The wrapped demapper — for callers that equalize a buffer
    /// explicitly via [`EqualizedDemapper::with_equalizer`] and then
    /// demap it without re-running the equalizer.
    pub fn inner(&self) -> &dyn Demapper {
        self.inner.as_ref()
    }
}

impl Demapper for EqualizedDemapper {
    fn bits_per_symbol(&self) -> usize {
        self.inner.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let z = self.with_equalizer(|eq| eq.equalize_symbol(y));
        self.inner.llrs(z, out);
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        let mut zs = ys.to_vec();
        self.with_equalizer(|eq| eq.equalize(&mut zs));
        self.inner.demap_block(&zs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, TappedDelayLine};
    use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

    fn qpsk() -> Constellation {
        Constellation::qam_gray(4)
    }

    /// Random QPSK stream through a two-ray channel; returns (tx, rx).
    fn two_ray_stream(n: usize, seed: u64, echo: f32, phase: f32) -> (Vec<C32>, Vec<C32>) {
        let c = qpsk();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let tx: Vec<C32> = (0..n)
            .map(|_| c.point((rng.next_u64() & 3) as usize))
            .collect();
        let mut rx = tx.clone();
        let mut ch = TappedDelayLine::two_ray(echo, phase, 1);
        ch.transmit(&mut rx, &mut rng);
        (tx, rx)
    }

    fn tail_mse(c: &Constellation, zs: &[C32], tail: usize) -> f32 {
        let tail = &zs[zs.len() - tail..];
        tail.iter()
            .map(|&z| (z - c.point(c.nearest(z))).norm_sqr())
            .sum::<f32>()
            / tail.len() as f32
    }

    #[test]
    fn cma_then_dd_converges_blind_on_two_ray() {
        let (_, rx) = two_ray_stream(4000, 7, 0.4, 0.3);
        let mut eq = AdaptiveEqualizer::new(qpsk(), EqualizerConfig::default());
        let mut zs = rx;
        eq.equalize(&mut zs);
        assert_eq!(
            eq.mode(),
            EqualizerMode::DecisionDirected,
            "never opened the eye (dd_mse {})",
            eq.dd_mse()
        );
        let mse = tail_mse(&qpsk(), &zs, 500);
        assert!(mse < 0.02, "blind equalizer left MSE {mse}");
    }

    #[test]
    fn unsupervised_adaptation_is_deterministic() {
        let (_, rx) = two_ray_stream(2000, 11, 0.35, -0.2);
        let run = || {
            let mut eq = AdaptiveEqualizer::new(qpsk(), EqualizerConfig::default());
            let mut zs = rx.clone();
            eq.equalize(&mut zs);
            (zs, eq.taps().to_vec())
        };
        let (za, ta) = run();
        let (zb, tb) = run();
        assert_eq!(za, zb, "equalized streams differ between identical runs");
        assert_eq!(ta, tb, "tap trajectories differ between identical runs");
    }

    #[test]
    fn ls_bootstrap_inverts_channel_from_pilots() {
        let (tx, rx) = two_ray_stream(256, 3, 0.4, 0.3);
        let mut eq = AdaptiveEqualizer::new(qpsk(), EqualizerConfig::default());
        assert!(eq.bootstrap_ls(&rx, &tx, 1e-6));
        assert_eq!(eq.mode(), EqualizerMode::DecisionDirected);
        // Equalizing fresh data with the bootstrapped taps must be
        // near-perfect (noiseless channel, 8-tap inverse of a 0.4 echo
        // truncates at 0.4⁸ ≈ 6.5e-4 amplitude).
        let (_, rx2) = two_ray_stream(600, 5, 0.4, 0.3);
        let mut zs = rx2;
        eq.equalize(&mut zs);
        let mse = tail_mse(&qpsk(), &zs, 500);
        assert!(mse < 1e-3, "LS-bootstrapped equalizer left MSE {mse}");
    }

    #[test]
    fn dd_falls_back_to_cma_when_eye_closes() {
        let (_, rx) = two_ray_stream(4000, 7, 0.4, 0.0);
        let mut eq = AdaptiveEqualizer::new(qpsk(), EqualizerConfig::default());
        let mut zs = rx;
        eq.equalize(&mut zs);
        assert_eq!(eq.mode(), EqualizerMode::DecisionDirected);
        // A hostile channel flip (deep new echo the taps are wrong for)
        // must push the smoothed MSE over the exit threshold.
        let mut ch = TappedDelayLine::two_ray(0.95, 2.0, 3);
        let (tx, _) = two_ray_stream(1500, 13, 0.4, 0.0);
        let mut bad = tx;
        ch.transmit(&mut bad, &mut Xoshiro256pp::seed_from_u64(1));
        eq.equalize(&mut bad);
        assert_eq!(
            eq.mode(),
            EqualizerMode::Cma,
            "eye closed (dd_mse {}) but no CMA fallback",
            eq.dd_mse()
        );
    }

    #[test]
    fn equalized_demapper_matches_manual_pipeline() {
        use crate::demapper::MaxLogMap;
        let (_, rx) = two_ray_stream(512, 9, 0.3, 0.1);
        let c = qpsk();
        let sigma = 0.1;
        let wrapped = EqualizedDemapper::new(
            Arc::new(MaxLogMap::new(c.clone(), sigma)),
            AdaptiveEqualizer::new(c.clone(), EqualizerConfig::default()),
        );
        let mut got = vec![0.0f32; rx.len() * wrapped.bits_per_symbol()];
        wrapped.demap_block(&rx, &mut got);
        // Manual: equalize then demap.
        let mut eq = AdaptiveEqualizer::new(c.clone(), EqualizerConfig::default());
        let mut zs = rx.clone();
        eq.equalize(&mut zs);
        let inner = MaxLogMap::new(c, sigma);
        let mut want = vec![0.0f32; got.len()];
        inner.demap_block(&zs, &mut want);
        assert_eq!(got, want);
    }
}
