//! Framing: pilot preambles + payload.
//!
//! The adaptation loop of the paper periodically sends known pilot
//! symbols (§II-C). [`FrameFormat`] fixes the split between pilots and
//! payload; [`build_frame`] packs known pilot bits and payload bits
//! into one symbol block, and [`FrameRx`] splits a received block back
//! apart, producing exactly the statistics the adaptation controller
//! in `hybridem-core` consumes: pilot bit comparisons and payload
//! LLRs.

use crate::bits::pack_bits;
use crate::constellation::Constellation;
use crate::demapper::Demapper;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

/// The symbol layout of one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameFormat {
    /// Pilot symbols at the head of the frame.
    pub pilot_symbols: usize,
    /// Payload symbols following the pilots.
    pub payload_symbols: usize,
}

impl FrameFormat {
    /// A typical monitoring frame: 64 pilots + 960 payload symbols
    /// (6.25 % pilot overhead).
    pub fn default_monitoring() -> Self {
        Self {
            pilot_symbols: 64,
            payload_symbols: 960,
        }
    }

    /// Total symbols per frame.
    pub fn total_symbols(&self) -> usize {
        self.pilot_symbols + self.payload_symbols
    }

    /// Pilot overhead fraction.
    pub fn overhead(&self) -> f64 {
        self.pilot_symbols as f64 / self.total_symbols().max(1) as f64
    }
}

/// A built frame: modulated symbols plus the ground truth needed at
/// the receiver (pilot bits are known by construction).
#[derive(Clone, Debug)]
pub struct TxFrame {
    /// Modulated symbols (pilots first).
    pub symbols: Vec<C32>,
    /// The known pilot bits (MSB-first per symbol).
    pub pilot_bits: Vec<u8>,
    /// The payload bits carried.
    pub payload_bits: Vec<u8>,
    format: FrameFormat,
}

/// Builds one frame: pilots are drawn from the seeded PRNG (both ends
/// derive them from the shared seed and frame index), payload bits are
/// caller-supplied and zero-padded to a whole symbol.
pub fn build_frame(
    format: FrameFormat,
    constellation: &Constellation,
    payload_bits: &[u8],
    seed: u64,
    frame_index: u64,
) -> TxFrame {
    let m = constellation.bits_per_symbol();
    assert!(
        payload_bits.len() <= format.payload_symbols * m,
        "payload exceeds frame capacity"
    );
    let mut rng = Xoshiro256pp::stream(seed, frame_index);
    let mut symbols = Vec::with_capacity(format.total_symbols());
    let mut pilot_bits = Vec::with_capacity(format.pilot_symbols * m);

    for _ in 0..format.pilot_symbols {
        let u = (rng.next_u64() >> (64 - m)) as usize;
        for k in 0..m {
            pilot_bits.push(((u >> (m - 1 - k)) & 1) as u8);
        }
        symbols.push(constellation.point(u));
    }

    let mut padded = payload_bits.to_vec();
    padded.resize(format.payload_symbols * m, 0);
    for chunk in padded.chunks(m) {
        symbols.push(constellation.point(pack_bits(chunk)));
    }

    TxFrame {
        symbols,
        pilot_bits,
        payload_bits: padded,
        format,
    }
}

/// Receiver-side frame decomposition.
#[derive(Clone, Debug)]
pub struct FrameRx {
    /// Hard pilot-bit decisions.
    pub pilot_decisions: Vec<u8>,
    /// Payload LLRs (workspace convention: positive ⇒ bit 0).
    pub payload_llrs: Vec<f32>,
}

/// Demaps a received frame (same symbol count as the transmitted one):
/// one block hard-decide over the pilot prefix, one block demap over
/// the payload.
pub fn receive_frame(format: FrameFormat, demapper: &dyn Demapper, received: &[C32]) -> FrameRx {
    assert_eq!(received.len(), format.total_symbols(), "frame length");
    let m = demapper.bits_per_symbol();
    let (pilots, payload) = received.split_at(format.pilot_symbols);
    let mut pilot_decisions = vec![0u8; pilots.len() * m];
    demapper.hard_decide_block(pilots, &mut pilot_decisions);
    let mut payload_llrs = vec![0f32; payload.len() * m];
    demapper.demap_block(payload, &mut payload_llrs);
    FrameRx {
        pilot_decisions,
        payload_llrs,
    }
}

impl TxFrame {
    /// The frame's format.
    pub fn format(&self) -> FrameFormat {
        self.format
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Awgn, Channel};
    use crate::demapper::MaxLogMap;
    use crate::metrics::count_bit_errors;

    fn qam() -> Constellation {
        Constellation::qam_gray(16)
    }

    #[test]
    fn clean_frame_round_trip() {
        let fmt = FrameFormat {
            pilot_symbols: 8,
            payload_symbols: 16,
        };
        let payload: Vec<u8> = (0..60).map(|i| (i % 2) as u8).collect();
        let tx = build_frame(fmt, &qam(), &payload, 42, 0);
        assert_eq!(tx.symbols.len(), 24);
        assert_eq!(tx.pilot_bits.len(), 32);
        assert_eq!(tx.payload_bits.len(), 64, "padded to whole symbols");

        let demapper = MaxLogMap::new(qam(), 0.1);
        let rx = receive_frame(fmt, &demapper, &tx.symbols);
        assert_eq!(rx.pilot_decisions, tx.pilot_bits);
        // Payload LLR signs reproduce the payload bits.
        for (l, &b) in rx.payload_llrs.iter().zip(&tx.payload_bits) {
            assert_eq!(u8::from(*l < 0.0), b);
        }
    }

    #[test]
    fn pilots_are_shared_secret() {
        // Both ends derive the same pilots from (seed, frame index).
        let fmt = FrameFormat::default_monitoring();
        let a = build_frame(fmt, &qam(), &[], 7, 3);
        let b = build_frame(fmt, &qam(), &[], 7, 3);
        assert_eq!(a.pilot_bits, b.pilot_bits);
        let c = build_frame(fmt, &qam(), &[], 7, 4);
        assert_ne!(a.pilot_bits, c.pilot_bits, "frames differ");
    }

    #[test]
    fn noisy_frame_pilot_errors_track_channel() {
        let fmt = FrameFormat {
            pilot_symbols: 512,
            payload_symbols: 0,
        };
        let tx = build_frame(fmt, &qam(), &[], 5, 0);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let sigma = crate::snr::noise_sigma(8.0, 1.0) as f32;
        let mut ch = Awgn::new(sigma);
        let mut received = tx.symbols.clone();
        ch.transmit(&mut received, &mut rng);
        let demapper = MaxLogMap::new(qam(), sigma);
        let rx = receive_frame(fmt, &demapper, &received);
        let errors = count_bit_errors(&tx.pilot_bits, &rx.pilot_decisions);
        let ber = errors as f64 / tx.pilot_bits.len() as f64;
        let theory = crate::theory::ber_qam16_gray(8.0);
        assert!(
            ber < theory * 3.0 + 0.05,
            "pilot BER {ber} inconsistent with channel {theory}"
        );
    }

    #[test]
    fn overhead_accounting() {
        let fmt = FrameFormat::default_monitoring();
        assert_eq!(fmt.total_symbols(), 1024);
        assert!((fmt.overhead() - 0.0625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "payload exceeds")]
    fn oversized_payload_rejected() {
        let fmt = FrameFormat {
            pilot_symbols: 1,
            payload_symbols: 1,
        };
        let _ = build_frame(fmt, &qam(), &[0u8; 100], 0, 0);
    }
}
