//! Bit manipulation: symbol/bit packing, Gray codes, PRBS sources.
//!
//! Convention: a symbol index packs its bits **MSB first** — bit `k = 0`
//! of an `m`-bit symbol is the most significant. This matches the
//! indexing `b_k` used in the paper's LLR formula and is used
//! consistently by constellations, demappers and the autoencoder.

use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

/// Unpacks symbol `index` into `m` bits, MSB first.
#[inline]
pub fn unpack_bits(index: usize, m: usize, out: &mut [u8]) {
    debug_assert!(out.len() >= m);
    for (k, o) in out.iter_mut().enumerate().take(m) {
        *o = ((index >> (m - 1 - k)) & 1) as u8;
    }
}

/// Packs `m` bits (MSB first) into a symbol index.
#[inline]
pub fn pack_bits(bits: &[u8]) -> usize {
    let mut v = 0usize;
    for &b in bits {
        debug_assert!(b <= 1);
        v = (v << 1) | b as usize;
    }
    v
}

/// Bit `k` (MSB first) of symbol `index` with `m` bits total.
#[inline]
pub fn bit_of(index: usize, m: usize, k: usize) -> u8 {
    ((index >> (m - 1 - k)) & 1) as u8
}

/// Binary-reflected Gray code of `n`.
#[inline]
pub fn gray(n: usize) -> usize {
    n ^ (n >> 1)
}

/// Inverse Gray code (prefix-XOR by doubling shifts).
pub fn gray_inverse(g: usize) -> usize {
    let mut v = g;
    let mut s = 1;
    while s < usize::BITS as usize {
        v ^= v >> s;
        s <<= 1;
    }
    v
}

/// Number of differing bits between two words.
#[inline]
pub fn hamming_distance(a: usize, b: usize) -> u32 {
    (a ^ b).count_ones()
}

/// A seedable random bit source backed by the workspace RNG.
pub struct BitSource {
    rng: Xoshiro256pp,
}

impl BitSource {
    /// New source from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Next random bit.
    pub fn next_bit(&mut self) -> u8 {
        u8::from(self.rng.bit())
    }

    /// Fills a buffer with random bits.
    pub fn fill(&mut self, out: &mut [u8]) {
        self.rng.fill_bits(out);
    }

    /// Next `m`-bit symbol index.
    pub fn next_symbol(&mut self, m: usize) -> usize {
        (self.rng.next_u64() >> (64 - m)) as usize
    }
}

/// Maximal-length LFSR pseudo-random binary sequence generator
/// (Fibonacci form). `PRBS7` = x⁷+x⁶+1, `PRBS9` = x⁹+x⁵+1 — the
/// standard test patterns used as pilot payloads.
pub struct Prbs {
    state: u32,
    taps: u32,
    degree: u32,
}

impl Prbs {
    /// PRBS7 (period 127).
    pub fn prbs7() -> Self {
        Self::new(7, (1 << 6) | (1 << 5), 0x7F)
    }

    /// PRBS9 (period 511).
    pub fn prbs9() -> Self {
        Self::new(9, (1 << 8) | (1 << 4), 0x1FF)
    }

    /// PRBS15 (period 32767), taps x¹⁵+x¹⁴+1.
    pub fn prbs15() -> Self {
        Self::new(15, (1 << 14) | (1 << 13), 0x7FFF)
    }

    fn new(degree: u32, taps: u32, init: u32) -> Self {
        Self {
            state: init,
            taps,
            degree,
        }
    }

    /// Degree of the generating polynomial.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Next bit of the sequence.
    pub fn next_bit(&mut self) -> u8 {
        let fb = (self.state & self.taps).count_ones() & 1;
        let out = (self.state >> (self.degree - 1)) & 1;
        self.state = ((self.state << 1) | fb) & ((1 << self.degree) - 1);
        out as u8
    }

    /// Fills a buffer with sequence bits.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out {
            *b = self.next_bit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let mut bits = [0u8; 4];
        for idx in 0..16 {
            unpack_bits(idx, 4, &mut bits);
            assert_eq!(pack_bits(&bits), idx);
        }
        // MSB-first convention: 0b1000 = 8.
        unpack_bits(8, 4, &mut bits);
        assert_eq!(bits, [1, 0, 0, 0]);
        assert_eq!(bit_of(8, 4, 0), 1);
        assert_eq!(bit_of(8, 4, 3), 0);
    }

    #[test]
    fn gray_adjacent_codes_differ_in_one_bit() {
        for n in 0..255usize {
            assert_eq!(hamming_distance(gray(n), gray(n + 1)), 1);
        }
    }

    #[test]
    fn gray_is_a_bijection_with_inverse() {
        let mut seen = [false; 256];
        for n in 0..256usize {
            let g = gray(n);
            assert!(!seen[g], "gray not injective");
            seen[g] = true;
            assert_eq!(gray_inverse(g), n);
        }
    }

    #[test]
    fn prbs7_has_full_period() {
        let mut p = Prbs::prbs7();
        let mut seq = vec![0u8; 127 * 2];
        p.fill(&mut seq);
        // Period exactly 127: first and second halves identical.
        assert_eq!(&seq[..127], &seq[127..]);
        // Maximal-length property: 64 ones, 63 zeros per period.
        let ones: u32 = seq[..127].iter().map(|&b| b as u32).sum();
        assert_eq!(ones, 64);
        // And not a shorter period.
        assert_ne!(&seq[..63], &seq[63..126]);
    }

    #[test]
    fn prbs9_balance() {
        let mut p = Prbs::prbs9();
        let mut seq = vec![0u8; 511];
        p.fill(&mut seq);
        let ones: u32 = seq.iter().map(|&b| b as u32).sum();
        assert_eq!(ones, 256);
    }

    #[test]
    fn bit_source_deterministic_and_balanced() {
        let mut a = BitSource::new(5);
        let mut b = BitSource::new(5);
        let mut x = vec![0u8; 1000];
        let mut y = vec![0u8; 1000];
        a.fill(&mut x);
        b.fill(&mut y);
        assert_eq!(x, y);
        let mut src = BitSource::new(9);
        let mut ones = 0u32;
        for _ in 0..10_000 {
            ones += src.next_bit() as u32;
        }
        assert!((ones as i64 - 5000).abs() < 300);
    }

    #[test]
    fn bit_source_symbols_in_range() {
        let mut src = BitSource::new(3);
        for _ in 0..1000 {
            assert!(src.next_symbol(4) < 16);
        }
    }
}
