//! Soft demappers: received sample → per-bit LLRs.
//!
//! Convention (workspace-wide): `LLR_k = ln P(b_k=0|y) − ln P(b_k=1|y)`,
//! so **positive LLR ⇒ bit 0** and the hard decision is `b = (LLR<0)`.
//!
//! Two soft algorithms:
//!
//! - [`ExactLogMap`] — the optimal bitwise demapper
//!   `LLR_k = ln Σ_{i∈S⁰_k} e^{−‖y−c_i‖²/2σ²} − ln Σ_{i∈S¹_k} e^{−‖y−c_i‖²/2σ²}`,
//!   computed with stable log-sum-exp;
//! - [`MaxLogMap`] — the suboptimal demapper of Robertson et al. 1995
//!   used by the paper:
//!   `LLR_k = (min_{i∈S¹_k} ‖y−c_i‖² − min_{i∈S⁰_k} ‖y−c_i‖²) / 2σ²`,
//!   which replaces the exponential/logarithm pair with two running
//!   minima — the hardware-friendly form implemented by the FPGA
//!   soft-demapper accelerator.
//!
//! Both operate on any labelled point set ("centroids"): a conventional
//! constellation, or the centroids extracted from a trained demapper
//! ANN — that interchangeability is the paper's core idea.

use crate::constellation::Constellation;
use hybridem_mathkit::complex::C32;

/// A bit-level soft demapper.
pub trait Demapper: Send + Sync {
    /// Bits per symbol produced.
    fn bits_per_symbol(&self) -> usize;

    /// Writes `bits_per_symbol` LLRs for received sample `y`.
    fn llrs(&self, y: C32, out: &mut [f32]);

    /// Hard decisions derived from LLR signs (negative ⇒ bit 1).
    fn hard_decide(&self, y: C32, out: &mut [u8]) {
        let m = self.bits_per_symbol();
        let mut llr = [0f32; 16];
        assert!(m <= 16, "symbols wider than 16 bits are unsupported");
        self.llrs(y, &mut llr[..m]);
        for (b, &l) in out[..m].iter_mut().zip(&llr[..m]) {
            *b = u8::from(l < 0.0);
        }
    }
}

/// Exact bitwise log-MAP demapper.
pub struct ExactLogMap {
    constellation: Constellation,
    two_sigma_sqr: f32,
}

impl ExactLogMap {
    /// Demapper over `constellation` with per-dimension noise σ.
    pub fn new(constellation: Constellation, sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self {
            constellation,
            two_sigma_sqr: 2.0 * sigma * sigma,
        }
    }

    /// The labelled point set in use.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }
}

impl Demapper for ExactLogMap {
    fn bits_per_symbol(&self) -> usize {
        self.constellation.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let m = self.bits_per_symbol();
        debug_assert!(out.len() >= m);
        // Metric per point: −‖y−c‖²/2σ².
        let pts = self.constellation.points();
        let mut metrics = [0f64; 256];
        for (i, &c) in pts.iter().enumerate() {
            metrics[i] = -(y.dist_sqr(c) as f64) / self.two_sigma_sqr as f64;
        }
        for (k, o) in out.iter_mut().enumerate().take(m) {
            // Stable two-set log-sum-exp.
            let (mut max0, mut max1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for (i, &mi) in metrics.iter().enumerate().take(pts.len()) {
                if self.constellation.bit(i, k) == 0 {
                    max0 = max0.max(mi);
                } else {
                    max1 = max1.max(mi);
                }
            }
            let (mut s0, mut s1) = (0f64, 0f64);
            for (i, &mi) in metrics.iter().enumerate().take(pts.len()) {
                if self.constellation.bit(i, k) == 0 {
                    s0 += (mi - max0).exp();
                } else {
                    s1 += (mi - max1).exp();
                }
            }
            *o = ((max0 + s0.ln()) - (max1 + s1.ln())) as f32;
        }
    }
}

/// Suboptimal max-log demapper (Robertson et al. 1995) — the paper's
/// "conventional soft-demapping algorithm".
pub struct MaxLogMap {
    constellation: Constellation,
    inv_two_sigma_sqr: f32,
}

impl MaxLogMap {
    /// Demapper over `constellation` with per-dimension noise σ.
    pub fn new(constellation: Constellation, sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self {
            constellation,
            inv_two_sigma_sqr: 1.0 / (2.0 * sigma * sigma),
        }
    }

    /// The labelled point set in use.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Replaces the point set, keeping σ (used when new centroids are
    /// extracted after retraining).
    pub fn set_constellation(&mut self, constellation: Constellation) {
        self.constellation = constellation;
    }
}

impl Demapper for MaxLogMap {
    fn bits_per_symbol(&self) -> usize {
        self.constellation.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let m = self.bits_per_symbol();
        debug_assert!(out.len() >= m);
        // One pass: for every bit position track min distance over the
        // 0-labelled and 1-labelled subsets.
        let mut min0 = [f32::INFINITY; 16];
        let mut min1 = [f32::INFINITY; 16];
        for (i, &c) in self.constellation.points().iter().enumerate() {
            let d = y.dist_sqr(c);
            for k in 0..m {
                if self.constellation.bit(i, k) == 0 {
                    if d < min0[k] {
                        min0[k] = d;
                    }
                } else if d < min1[k] {
                    min1[k] = d;
                }
            }
        }
        for k in 0..m {
            // ln P0 − ln P1 ≈ (min over 1-set − min over 0-set)/2σ².
            out[k] = (min1[k] - min0[k]) * self.inv_two_sigma_sqr;
        }
    }
}

/// Hard nearest-neighbour decision (no soft output): the classical
/// minimum-distance symbol demapper, exposed through the same trait by
/// emitting ±1-scaled pseudo-LLRs.
pub struct HardNearest {
    constellation: Constellation,
}

impl HardNearest {
    /// Hard demapper over `constellation`.
    pub fn new(constellation: Constellation) -> Self {
        Self { constellation }
    }
}

impl Demapper for HardNearest {
    fn bits_per_symbol(&self) -> usize {
        self.constellation.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let m = self.bits_per_symbol();
        let u = self.constellation.nearest(y);
        for (k, o) in out.iter_mut().enumerate().take(m) {
            *o = if self.constellation.bit(u, k) == 0 {
                1.0
            } else {
                -1.0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bit_of;

    fn qam16() -> Constellation {
        Constellation::qam_gray(16)
    }

    #[test]
    fn clean_symbol_gives_correct_hard_decisions() {
        let sigma = 0.1;
        let exact = ExactLogMap::new(qam16(), sigma);
        let maxlog = MaxLogMap::new(qam16(), sigma);
        let hard = HardNearest::new(qam16());
        let mut bits = [0u8; 4];
        for u in 0..16 {
            let y = qam16().point(u);
            for demapper in [&exact as &dyn Demapper, &maxlog, &hard] {
                demapper.hard_decide(y, &mut bits);
                for (k, &b) in bits.iter().enumerate() {
                    assert_eq!(b, bit_of(u, 4, k), "symbol {u} bit {k}");
                }
            }
        }
    }

    #[test]
    fn maxlog_matches_exact_at_high_snr() {
        // As σ→0 the log-sum-exp is dominated by its max term, so the
        // two demappers converge.
        let sigma = 0.02f32;
        let exact = ExactLogMap::new(qam16(), sigma);
        let maxlog = MaxLogMap::new(qam16(), sigma);
        let y = C32::new(0.21, -0.43);
        let mut l1 = [0f32; 4];
        let mut l2 = [0f32; 4];
        exact.llrs(y, &mut l1);
        maxlog.llrs(y, &mut l2);
        for k in 0..4 {
            let rel = ((l1[k] - l2[k]) / l1[k].abs().max(1.0)).abs();
            assert!(rel < 1e-3, "bit {k}: exact {} vs maxlog {}", l1[k], l2[k]);
        }
    }

    #[test]
    fn maxlog_is_optimistic_about_magnitudes() {
        // |LLR_maxlog| ≥ |LLR_exact| is not universally true per-bit, but
        // the max-log llr equals exact when each subset has a single
        // dominant term. At least check same signs at moderate noise.
        let sigma = 0.3f32;
        let exact = ExactLogMap::new(qam16(), sigma);
        let maxlog = MaxLogMap::new(qam16(), sigma);
        let mut l1 = [0f32; 4];
        let mut l2 = [0f32; 4];
        let mut rng = hybridem_mathkit::rng::Xoshiro256pp::seed_from_u64(8);
        for _ in 0..200 {
            let y = C32::new(rng.normal_f32(), rng.normal_f32());
            exact.llrs(y, &mut l1);
            maxlog.llrs(y, &mut l2);
            for k in 0..4 {
                if l1[k].abs() > 0.5 {
                    assert_eq!(l1[k] > 0.0, l2[k] > 0.0, "sign flip at {y} bit {k}");
                }
            }
        }
    }

    #[test]
    fn llr_scales_inverse_with_noise_power() {
        let y = C32::new(0.1, 0.2);
        let a = MaxLogMap::new(qam16(), 0.1);
        let b = MaxLogMap::new(qam16(), 0.2);
        let mut la = [0f32; 4];
        let mut lb = [0f32; 4];
        a.llrs(y, &mut la);
        b.llrs(y, &mut lb);
        for k in 0..4 {
            assert!(
                (la[k] / lb[k] - 4.0).abs() < 1e-3,
                "σ² ratio 4 ⇒ LLR ratio 4"
            );
        }
    }

    #[test]
    fn symmetric_point_gives_zero_llr() {
        // On the I axis midway in Q, the Q-deciding bit is ambiguous.
        let maxlog = MaxLogMap::new(qam16(), 0.2);
        let mut l = [0f32; 4];
        // Centre of the constellation: first bit of each axis undecided.
        maxlog.llrs(C32::new(0.0, 0.0), &mut l);
        // The sign bits (axis polarity) must be exactly balanced.
        assert!(l[0].abs() < 1e-4);
        assert!(l[2].abs() < 1e-4);
    }

    #[test]
    fn hard_nearest_pseudo_llrs_are_unit() {
        let hard = HardNearest::new(qam16());
        let mut l = [0f32; 4];
        hard.llrs(C32::new(0.4, 0.4), &mut l);
        assert!(l.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn works_on_rotated_centroids() {
        // The hybrid use-case: demap with a rotated point set.
        let theta = std::f32::consts::FRAC_PI_4;
        let rot = qam16().rotated(theta);
        let maxlog = MaxLogMap::new(rot.clone(), 0.1);
        let mut bits = [0u8; 4];
        for u in 0..16 {
            maxlog.hard_decide(rot.point(u), &mut bits);
            for (k, &b) in bits.iter().enumerate() {
                assert_eq!(b, bit_of(u, 4, k));
            }
        }
    }
}
