//! Soft demappers: received samples → per-bit LLRs.
//!
//! Convention (workspace-wide): `LLR_k = ln P(b_k=0|y) − ln P(b_k=1|y)`,
//! so **positive LLR ⇒ bit 0** and the hard decision is `b = (LLR<0)`.
//!
//! The primary entry point is [`Demapper::demap_block`]: a whole block
//! of received samples in, one contiguous symbol-major LLR buffer out
//! (`[sym0_bit0 … sym0_bit(m−1), sym1_bit0 …]` — see DESIGN.md §7).
//! Every implementor provides a genuinely batched kernel that iterates
//! the constellation points in the *outer* loop over the whole block,
//! so the point set streams through cache once per block instead of
//! once per symbol. [`Demapper::llrs`] remains as the one-symbol
//! convenience and as the reference the property tests hold the block
//! kernels to: `demap_block` is bit-exact with a per-symbol `llrs`
//! loop.
//!
//! Two soft algorithms:
//!
//! - [`ExactLogMap`] — the optimal bitwise demapper
//!   `LLR_k = ln Σ_{i∈S⁰_k} e^{−‖y−c_i‖²/2σ²} − ln Σ_{i∈S¹_k} e^{−‖y−c_i‖²/2σ²}`,
//!   computed with stable log-sum-exp;
//! - [`MaxLogMap`] — the suboptimal demapper of Robertson et al. 1995
//!   used by the paper:
//!   `LLR_k = (min_{i∈S¹_k} ‖y−c_i‖² − min_{i∈S⁰_k} ‖y−c_i‖²) / 2σ²`,
//!   which replaces the exponential/logarithm pair with two running
//!   minima — the hardware-friendly form implemented by the FPGA
//!   soft-demapper accelerator.
//!
//! Both operate on any labelled point set ("centroids"): a conventional
//! constellation, or the centroids extracted from a trained demapper
//! ANN — that interchangeability is the paper's core idea.

use crate::constellation::Constellation;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::simd::{self, LaneWidth, Simd, SimdKernel};
use std::cell::RefCell;

/// Widest symbol (bits) the fixed stack buffers of the per-symbol
/// convenience paths support.
pub const MAX_BITS_PER_SYMBOL: usize = 16;

/// Largest labelled point set [`ExactLogMap`] supports (the size of its
/// fixed per-point metric buffer).
pub const MAX_EXACT_POINTS: usize = 256;

/// Symbols per internal tile of the point-outer block kernels. The
/// bit-major working planes of one tile (distances plus per-bit
/// min/max/sum lanes) must stay cache-resident or the point-outer
/// restructuring loses its advantage to memory traffic; at 256 symbols
/// the max-log working set is ~20 KB (L1-sized). With the vectorized
/// max-log tile kernel and its reusable thread-local scratch (the
/// per-tile allocations that once dragged long cold streams below the
/// per-symbol path are gone), block demap beats the per-symbol loop at
/// every length — ~12× at n=4096 on an AVX-512 host (pinned by the
/// `perf` gate's `max_log_block_n4096 ≥ max_log_per_symbol_n4096`
/// assert and tracked in `BENCH_demap.json`). Tiling does not affect
/// results: symbols are independent.
pub const BLOCK_TILE: usize = 256;

/// A bit-level soft demapper.
pub trait Demapper: Send + Sync {
    /// Bits per symbol produced.
    fn bits_per_symbol(&self) -> usize;

    /// Writes `bits_per_symbol` LLRs for received sample `y` — the
    /// one-symbol convenience path. Hot loops should use
    /// [`Demapper::demap_block`].
    fn llrs(&self, y: C32, out: &mut [f32]);

    /// Demaps a whole block: writes `ys.len() * bits_per_symbol` LLRs
    /// to `out` in symbol-major order
    /// (`[sym0_bit0 … sym0_bit(m−1), sym1_bit0 …]`).
    ///
    /// This is the primary receiver entry point: implementors override
    /// it with batched kernels (single N×2 ANN inference, point-outer
    /// distance loops) and the default loops [`Demapper::llrs`] so
    /// external implementations keep working unchanged. Overrides must
    /// stay bit-exact with the per-symbol loop.
    ///
    /// # Panics
    /// Panics unless `out.len() == ys.len() * bits_per_symbol()`.
    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "demap_block output buffer must hold exactly {} LLRs ({} symbols × {} bits)",
            ys.len() * m,
            ys.len(),
            m
        );
        for (y, chunk) in ys.iter().zip(out.chunks_exact_mut(m)) {
            self.llrs(*y, chunk);
        }
    }

    /// Hard decisions derived from LLR signs (negative ⇒ bit 1).
    fn hard_decide(&self, y: C32, out: &mut [u8]) {
        let m = self.bits_per_symbol();
        let mut llr = [0f32; MAX_BITS_PER_SYMBOL];
        assert!(
            m <= MAX_BITS_PER_SYMBOL,
            "hard_decide LLR buffer holds {MAX_BITS_PER_SYMBOL} bits, demapper produces {m}"
        );
        self.llrs(y, &mut llr[..m]);
        for (b, &l) in out[..m].iter_mut().zip(&llr[..m]) {
            *b = u8::from(l < 0.0);
        }
    }

    /// Block hard decisions: `ys.len() * bits_per_symbol` bits in
    /// symbol-major order, derived from [`Demapper::demap_block`].
    ///
    /// # Panics
    /// Panics unless `out.len() == ys.len() * bits_per_symbol()`.
    fn hard_decide_block(&self, ys: &[C32], out: &mut [u8]) {
        let m = self.bits_per_symbol();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "hard_decide_block output buffer must hold exactly {} bits ({} symbols × {} bits)",
            ys.len() * m,
            ys.len(),
            m
        );
        let mut llr = vec![0f32; ys.len() * m];
        self.demap_block(ys, &mut llr);
        for (b, &l) in out.iter_mut().zip(&llr) {
            *b = u8::from(l < 0.0);
        }
    }
}

/// Forwarding impl: a shared reference demaps exactly like the value
/// it borrows. This lets long-lived demappers (a trained
/// `NeuralDemapper`, say) be handed out by campaign demapper-family
/// builders as `Box<dyn Demapper + '_>` without cloning the weights.
impl<D: Demapper + ?Sized> Demapper for &D {
    fn bits_per_symbol(&self) -> usize {
        (**self).bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        (**self).llrs(y, out);
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        (**self).demap_block(ys, out);
    }

    fn hard_decide(&self, y: C32, out: &mut [u8]) {
        (**self).hard_decide(y, out);
    }

    fn hard_decide_block(&self, ys: &[C32], out: &mut [u8]) {
        (**self).hard_decide_block(ys, out);
    }
}

/// Forwarding impl: a shared-ownership handle demaps exactly like the
/// value it wraps. The backend registry (`core::registry`) hands out
/// `Arc<dyn Demapper>` so one constructed demapper can be shared by
/// campaign family builders, online links and the link server without
/// cloning state; this impl lets those handles plug straight into
/// every `&dyn Demapper` / `Box<dyn Demapper>` call site bit-exactly.
impl<D: Demapper + ?Sized> Demapper for std::sync::Arc<D> {
    fn bits_per_symbol(&self) -> usize {
        (**self).bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        (**self).llrs(y, out);
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        (**self).demap_block(ys, out);
    }

    fn hard_decide(&self, y: C32, out: &mut [u8]) {
        (**self).hard_decide(y, out);
    }

    fn hard_decide_block(&self, ys: &[C32], out: &mut [u8]) {
        (**self).hard_decide_block(ys, out);
    }
}

/// Per-bit point-subset membership, precomputed once per point set:
/// `one[i * m + k]` is true when bit `k` of label `i` is 1 (point `i`
/// belongs to subset `S¹_k`). Shared by the max-log and exact kernels
/// so the block loops never re-derive label bits in their hot paths.
#[derive(Clone, Debug)]
struct BitSubsets {
    one: Vec<bool>,
    m: usize,
}

impl BitSubsets {
    fn of(constellation: &Constellation) -> Self {
        let m = constellation.bits_per_symbol();
        let n = constellation.size();
        let mut one = vec![false; n * m];
        for i in 0..n {
            for k in 0..m {
                one[i * m + k] = constellation.bit(i, k) == 1;
            }
        }
        Self { one, m }
    }

    /// Subset row of point `i`: `row(i)[k]` ⇔ `i ∈ S¹_k`.
    #[inline]
    fn row(&self, i: usize) -> &[bool] {
        &self.one[i * self.m..(i + 1) * self.m]
    }
}

/// Exact bitwise log-MAP demapper.
pub struct ExactLogMap {
    constellation: Constellation,
    subsets: BitSubsets,
    two_sigma_sqr: f32,
}

impl ExactLogMap {
    /// Demapper over `constellation` with per-dimension noise σ.
    pub fn new(constellation: Constellation, sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(
            constellation.size() <= MAX_EXACT_POINTS,
            "ExactLogMap supports at most {MAX_EXACT_POINTS} points, constellation has {}",
            constellation.size()
        );
        Self {
            subsets: BitSubsets::of(&constellation),
            constellation,
            two_sigma_sqr: 2.0 * sigma * sigma,
        }
    }

    /// The labelled point set in use.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    #[inline]
    fn metric(&self, y: C32, c: C32) -> f64 {
        // Metric per point: −‖y−c‖²/2σ².
        -(y.dist_sqr(c) as f64) / self.two_sigma_sqr as f64
    }
}

impl Demapper for ExactLogMap {
    fn bits_per_symbol(&self) -> usize {
        self.constellation.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let m = self.bits_per_symbol();
        debug_assert!(out.len() >= m);
        let pts = self.constellation.points();
        assert!(
            pts.len() <= MAX_EXACT_POINTS,
            "ExactLogMap metric buffer holds {MAX_EXACT_POINTS} points, constellation has {}",
            pts.len()
        );
        let mut metrics = [0f64; MAX_EXACT_POINTS];
        for (i, &c) in pts.iter().enumerate() {
            metrics[i] = self.metric(y, c);
        }
        for (k, o) in out.iter_mut().enumerate().take(m) {
            // Stable two-set log-sum-exp.
            let (mut max0, mut max1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for (i, &mi) in metrics.iter().enumerate().take(pts.len()) {
                if self.subsets.row(i)[k] {
                    max1 = max1.max(mi);
                } else {
                    max0 = max0.max(mi);
                }
            }
            let (mut s0, mut s1) = (0f64, 0f64);
            for (i, &mi) in metrics.iter().enumerate().take(pts.len()) {
                if self.subsets.row(i)[k] {
                    s1 += (mi - max1).exp();
                } else {
                    s0 += (mi - max0).exp();
                }
            }
            *o = ((max0 + s0.ln()) - (max1 + s1.ln())) as f32;
        }
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "demap_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        if ys.len() <= 1 {
            // The stack-buffer path is cheaper than heap planes for a
            // lone symbol (and bit-exact by definition).
            if let Some(&y) = ys.first() {
                self.llrs(y, out);
            }
            return;
        }
        for (ys_t, out_t) in ys.chunks(BLOCK_TILE).zip(out.chunks_mut(BLOCK_TILE * m)) {
            self.demap_tile(ys_t, out_t);
        }
    }
}

impl ExactLogMap {
    /// Point-outer kernel over one cache-resident tile.
    fn demap_tile(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        let n = ys.len();
        let pts = self.constellation.points();
        assert!(
            pts.len() <= MAX_EXACT_POINTS,
            "ExactLogMap supports at most {MAX_EXACT_POINTS} points, constellation has {}",
            pts.len()
        );
        // Bit-major planes `plane[k*n + s]`: the point loop is outer, so
        // each centroid is loaded once per tile, and the inner
        // per-symbol sweeps are contiguous. Two passes keep the memory
        // footprint at O(m·n) instead of O(M·n): pass 1 finds the
        // per-subset maxima (exact max is order-insensitive), pass 2
        // recomputes the identical metrics and accumulates the shifted
        // exponentials in the same point order as the per-symbol path —
        // hence bit-exact.
        let mut max0 = vec![f64::NEG_INFINITY; m * n];
        let mut max1 = vec![f64::NEG_INFINITY; m * n];
        let mut metric = vec![0f64; n];
        for (i, &c) in pts.iter().enumerate() {
            for (mv, &y) in metric.iter_mut().zip(ys) {
                *mv = self.metric(y, c);
            }
            let row = self.subsets.row(i);
            for (k, &is_one) in row.iter().enumerate() {
                let plane = if is_one {
                    &mut max1[k * n..(k + 1) * n]
                } else {
                    &mut max0[k * n..(k + 1) * n]
                };
                for (p, &mv) in plane.iter_mut().zip(&metric) {
                    *p = p.max(mv);
                }
            }
        }
        let mut s0 = vec![0f64; m * n];
        let mut s1 = vec![0f64; m * n];
        for (i, &c) in pts.iter().enumerate() {
            for (mv, &y) in metric.iter_mut().zip(ys) {
                *mv = self.metric(y, c);
            }
            let row = self.subsets.row(i);
            for (k, &is_one) in row.iter().enumerate() {
                let (sums, maxima) = if is_one {
                    (&mut s1[k * n..(k + 1) * n], &max1[k * n..(k + 1) * n])
                } else {
                    (&mut s0[k * n..(k + 1) * n], &max0[k * n..(k + 1) * n])
                };
                for ((s, &mx), &mv) in sums.iter_mut().zip(maxima).zip(&metric) {
                    *s += (mv - mx).exp();
                }
            }
        }
        for (s, chunk) in out.chunks_exact_mut(m).enumerate() {
            for (k, o) in chunk.iter_mut().enumerate() {
                let l0 = max0[k * n + s] + s0[k * n + s].ln();
                let l1 = max1[k * n + s] + s1[k * n + s].ln();
                *o = (l0 - l1) as f32;
            }
        }
    }
}

/// Suboptimal max-log demapper (Robertson et al. 1995) — the paper's
/// "conventional soft-demapping algorithm".
pub struct MaxLogMap {
    constellation: Constellation,
    subsets: BitSubsets,
    inv_two_sigma_sqr: f32,
}

impl MaxLogMap {
    /// Demapper over `constellation` with per-dimension noise σ.
    pub fn new(constellation: Constellation, sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self {
            subsets: BitSubsets::of(&constellation),
            constellation,
            inv_two_sigma_sqr: 1.0 / (2.0 * sigma * sigma),
        }
    }

    /// The labelled point set in use.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Replaces the point set, keeping σ (used when new centroids are
    /// extracted after retraining). Rebuilds the per-bit subset masks.
    pub fn set_constellation(&mut self, constellation: Constellation) {
        self.subsets = BitSubsets::of(&constellation);
        self.constellation = constellation;
    }
}

impl Demapper for MaxLogMap {
    fn bits_per_symbol(&self) -> usize {
        self.constellation.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let m = self.bits_per_symbol();
        debug_assert!(out.len() >= m);
        assert!(
            m <= MAX_BITS_PER_SYMBOL,
            "MaxLogMap min buffers hold {MAX_BITS_PER_SYMBOL} bits, constellation has {m}"
        );
        // One pass: for every bit position track min distance over the
        // 0-labelled and 1-labelled subsets.
        let mut min0 = [f32::INFINITY; MAX_BITS_PER_SYMBOL];
        let mut min1 = [f32::INFINITY; MAX_BITS_PER_SYMBOL];
        for (i, &c) in self.constellation.points().iter().enumerate() {
            let d = y.dist_sqr(c);
            let row = self.subsets.row(i);
            for (k, &is_one) in row.iter().enumerate() {
                if is_one {
                    if d < min1[k] {
                        min1[k] = d;
                    }
                } else if d < min0[k] {
                    min0[k] = d;
                }
            }
        }
        for k in 0..m {
            // ln P0 − ln P1 ≈ (min over 1-set − min over 0-set)/2σ².
            out[k] = (min1[k] - min0[k]) * self.inv_two_sigma_sqr;
        }
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "demap_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        if ys.len() <= 1 {
            if let Some(&y) = ys.first() {
                self.llrs(y, out);
            }
            return;
        }
        for (ys_t, out_t) in ys.chunks(BLOCK_TILE).zip(out.chunks_mut(BLOCK_TILE * m)) {
            self.demap_tile(ys_t, out_t);
        }
    }
}

/// Reusable working planes of the vectorized max-log tile kernel
/// (split-component samples plus the bit-major running-min planes).
/// Thread-local so `demap_tile` allocates only on each thread's first
/// tile: per-tile `vec!` allocations were what dragged the block path
/// below the per-symbol loop on long cold streams (n ≳ 4096).
struct MaxLogScratch {
    yr: Vec<f32>,
    yi: Vec<f32>,
    min0: Vec<f32>,
    min1: Vec<f32>,
}

thread_local! {
    static MAXLOG_SCRATCH: RefCell<MaxLogScratch> = const {
        RefCell::new(MaxLogScratch {
            yr: Vec::new(),
            yi: Vec::new(),
            min0: Vec::new(),
            min1: Vec::new(),
        })
    };
}

/// The point-outer max-log tile, written once over `Simd` lanes and
/// monomorphised at the probed width by [`simd::dispatch`]. Lanes run
/// across symbols: one distance vector per chunk feeds the per-bit
/// running-min planes the subset masks select. Same distance
/// expression (`dr·dr + di·di`), point order and strict-`<` min update
/// as the scalar `llrs` loop ⇒ bit-exact at every width.
struct MaxLogTile<'a> {
    pts: &'a [C32],
    subsets: &'a BitSubsets,
    inv_two_sigma_sqr: f32,
    ys: &'a [C32],
    out: &'a mut [f32],
    scratch: &'a mut MaxLogScratch,
}

impl SimdKernel for MaxLogTile<'_> {
    type Output = ();

    fn run<const N: usize>(self) {
        let m = self.subsets.m;
        let n = self.ys.len();
        let sc = self.scratch;
        sc.yr.clear();
        sc.yr.extend(self.ys.iter().map(|y| y.re));
        sc.yi.clear();
        sc.yi.extend(self.ys.iter().map(|y| y.im));
        sc.min0.clear();
        sc.min0.resize(m * n, f32::INFINITY);
        sc.min1.clear();
        sc.min1.resize(m * n, f32::INFINITY);
        let s_vec = n - n % N;
        for (i, &c) in self.pts.iter().enumerate() {
            let row = self.subsets.row(i);
            let cr = Simd::<f32, N>::splat(c.re);
            let ci = Simd::<f32, N>::splat(c.im);
            let mut s = 0;
            while s < s_vec {
                // Distances of one symbol chunk stay in a register
                // while every bit plane consumes them.
                let dr = Simd::<f32, N>::load(&sc.yr[s..]).sub(cr);
                let di = Simd::<f32, N>::load(&sc.yi[s..]).sub(ci);
                let d = dr.mul(dr).add(di.mul(di));
                for (k, &is_one) in row.iter().enumerate() {
                    let plane = if is_one { &mut sc.min1 } else { &mut sc.min0 };
                    let p = &mut plane[k * n + s..];
                    Simd::<f32, N>::load(p).min(d).store(p);
                }
                s += N;
            }
            for s in s_vec..n {
                let dr = sc.yr[s] - c.re;
                let di = sc.yi[s] - c.im;
                let d = dr * dr + di * di;
                for (k, &is_one) in row.iter().enumerate() {
                    let p = if is_one {
                        &mut sc.min1[k * n + s]
                    } else {
                        &mut sc.min0[k * n + s]
                    };
                    if d < *p {
                        *p = d;
                    }
                }
            }
        }
        for (s, chunk) in self.out.chunks_exact_mut(m).enumerate() {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = (sc.min1[k * n + s] - sc.min0[k * n + s]) * self.inv_two_sigma_sqr;
            }
        }
    }
}

impl MaxLogMap {
    /// Point-outer kernel over one cache-resident tile, dispatched at
    /// the host's probed lane width.
    fn demap_tile(&self, ys: &[C32], out: &mut [f32]) {
        self.demap_tile_at(LaneWidth::detect(), ys, out);
    }

    fn demap_tile_at(&self, width: LaneWidth, ys: &[C32], out: &mut [f32]) {
        MAXLOG_SCRATCH.with(|sc| {
            simd::dispatch_at(
                width,
                MaxLogTile {
                    pts: self.constellation.points(),
                    subsets: &self.subsets,
                    inv_two_sigma_sqr: self.inv_two_sigma_sqr,
                    ys,
                    out,
                    scratch: &mut sc.borrow_mut(),
                },
            );
        });
    }

    /// [`Demapper::demap_block`] pinned to an explicit [`LaneWidth`] —
    /// the hook the property tests use to prove the tile kernel
    /// bit-exact at every supported width. Results never depend on
    /// `width`; hot paths should use the trait method, which dispatches
    /// at the probed width.
    ///
    /// # Panics
    /// Panics unless `out.len() == ys.len() * bits_per_symbol()`.
    pub fn demap_block_at(&self, width: LaneWidth, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "demap_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        for (ys_t, out_t) in ys.chunks(BLOCK_TILE).zip(out.chunks_mut(BLOCK_TILE * m)) {
            self.demap_tile_at(width, ys_t, out_t);
        }
    }
}

/// Hard nearest-neighbour decision (no soft output): the classical
/// minimum-distance symbol demapper, exposed through the same trait by
/// emitting ±1-scaled pseudo-LLRs.
pub struct HardNearest {
    constellation: Constellation,
}

impl HardNearest {
    /// Hard demapper over `constellation`.
    pub fn new(constellation: Constellation) -> Self {
        Self { constellation }
    }
}

impl Demapper for HardNearest {
    fn bits_per_symbol(&self) -> usize {
        self.constellation.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let m = self.bits_per_symbol();
        let u = self.constellation.nearest(y);
        for (k, o) in out.iter_mut().enumerate().take(m) {
            *o = if self.constellation.bit(u, k) == 0 {
                1.0
            } else {
                -1.0
            };
        }
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "demap_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        if ys.len() <= 1 {
            if let Some(&y) = ys.first() {
                self.llrs(y, out);
            }
            return;
        }
        for (ys_t, out_t) in ys.chunks(BLOCK_TILE).zip(out.chunks_mut(BLOCK_TILE * m)) {
            self.demap_tile(ys_t, out_t);
        }
    }
}

impl HardNearest {
    /// Point-outer kernel over one cache-resident tile.
    fn demap_tile(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        let n = ys.len();
        // Point-outer nearest search: strict `<` with first-point-wins
        // tie-breaking, exactly `Constellation::nearest`.
        let mut best_d = vec![f32::INFINITY; n];
        let mut best_u = vec![0usize; n];
        for (i, &c) in self.constellation.points().iter().enumerate() {
            for (s, &y) in ys.iter().enumerate() {
                let d = y.dist_sqr(c);
                if d < best_d[s] {
                    best_d[s] = d;
                    best_u[s] = i;
                }
            }
        }
        for (&u, chunk) in best_u.iter().zip(out.chunks_exact_mut(m)) {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = if self.constellation.bit(u, k) == 0 {
                    1.0
                } else {
                    -1.0
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bit_of;

    fn qam16() -> Constellation {
        Constellation::qam_gray(16)
    }

    #[test]
    fn clean_symbol_gives_correct_hard_decisions() {
        let sigma = 0.1;
        let exact = ExactLogMap::new(qam16(), sigma);
        let maxlog = MaxLogMap::new(qam16(), sigma);
        let hard = HardNearest::new(qam16());
        let mut bits = [0u8; 4];
        for u in 0..16 {
            let y = qam16().point(u);
            for demapper in [&exact as &dyn Demapper, &maxlog, &hard] {
                demapper.hard_decide(y, &mut bits);
                for (k, &b) in bits.iter().enumerate() {
                    assert_eq!(b, bit_of(u, 4, k), "symbol {u} bit {k}");
                }
            }
        }
    }

    #[test]
    fn maxlog_matches_exact_at_high_snr() {
        // As σ→0 the log-sum-exp is dominated by its max term, so the
        // two demappers converge.
        let sigma = 0.02f32;
        let exact = ExactLogMap::new(qam16(), sigma);
        let maxlog = MaxLogMap::new(qam16(), sigma);
        let y = C32::new(0.21, -0.43);
        let mut l1 = [0f32; 4];
        let mut l2 = [0f32; 4];
        exact.llrs(y, &mut l1);
        maxlog.llrs(y, &mut l2);
        for k in 0..4 {
            let rel = ((l1[k] - l2[k]) / l1[k].abs().max(1.0)).abs();
            assert!(rel < 1e-3, "bit {k}: exact {} vs maxlog {}", l1[k], l2[k]);
        }
    }

    #[test]
    fn maxlog_is_optimistic_about_magnitudes() {
        // |LLR_maxlog| ≥ |LLR_exact| is not universally true per-bit, but
        // the max-log llr equals exact when each subset has a single
        // dominant term. At least check same signs at moderate noise.
        let sigma = 0.3f32;
        let exact = ExactLogMap::new(qam16(), sigma);
        let maxlog = MaxLogMap::new(qam16(), sigma);
        let mut l1 = [0f32; 4];
        let mut l2 = [0f32; 4];
        let mut rng = hybridem_mathkit::rng::Xoshiro256pp::seed_from_u64(8);
        for _ in 0..200 {
            let y = C32::new(rng.normal_f32(), rng.normal_f32());
            exact.llrs(y, &mut l1);
            maxlog.llrs(y, &mut l2);
            for k in 0..4 {
                if l1[k].abs() > 0.5 {
                    assert_eq!(l1[k] > 0.0, l2[k] > 0.0, "sign flip at {y} bit {k}");
                }
            }
        }
    }

    #[test]
    fn llr_scales_inverse_with_noise_power() {
        let y = C32::new(0.1, 0.2);
        let a = MaxLogMap::new(qam16(), 0.1);
        let b = MaxLogMap::new(qam16(), 0.2);
        let mut la = [0f32; 4];
        let mut lb = [0f32; 4];
        a.llrs(y, &mut la);
        b.llrs(y, &mut lb);
        for k in 0..4 {
            assert!(
                (la[k] / lb[k] - 4.0).abs() < 1e-3,
                "σ² ratio 4 ⇒ LLR ratio 4"
            );
        }
    }

    #[test]
    fn symmetric_point_gives_zero_llr() {
        // On the I axis midway in Q, the Q-deciding bit is ambiguous.
        let maxlog = MaxLogMap::new(qam16(), 0.2);
        let mut l = [0f32; 4];
        // Centre of the constellation: first bit of each axis undecided.
        maxlog.llrs(C32::new(0.0, 0.0), &mut l);
        // The sign bits (axis polarity) must be exactly balanced.
        assert!(l[0].abs() < 1e-4);
        assert!(l[2].abs() < 1e-4);
    }

    #[test]
    fn hard_nearest_pseudo_llrs_are_unit() {
        let hard = HardNearest::new(qam16());
        let mut l = [0f32; 4];
        hard.llrs(C32::new(0.4, 0.4), &mut l);
        assert!(l.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn works_on_rotated_centroids() {
        // The hybrid use-case: demap with a rotated point set.
        let theta = std::f32::consts::FRAC_PI_4;
        let rot = qam16().rotated(theta);
        let maxlog = MaxLogMap::new(rot.clone(), 0.1);
        let mut bits = [0u8; 4];
        for u in 0..16 {
            maxlog.hard_decide(rot.point(u), &mut bits);
            for (k, &b) in bits.iter().enumerate() {
                assert_eq!(b, bit_of(u, 4, k));
            }
        }
    }

    #[test]
    fn block_path_is_bit_exact_on_qam64() {
        // Spot check on a wider constellation (the property tests sweep
        // random blocks); m = 6 exercises non-power-of-two strides.
        let c = Constellation::qam_gray(64);
        let sigma = 0.15f32;
        let demappers: Vec<Box<dyn Demapper>> = vec![
            Box::new(ExactLogMap::new(c.clone(), sigma)),
            Box::new(MaxLogMap::new(c.clone(), sigma)),
            Box::new(HardNearest::new(c.clone())),
        ];
        let mut rng = hybridem_mathkit::rng::Xoshiro256pp::seed_from_u64(5);
        let ys: Vec<C32> = (0..97)
            .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
            .collect();
        for d in &demappers {
            let m = d.bits_per_symbol();
            let mut block = vec![0f32; ys.len() * m];
            d.demap_block(&ys, &mut block);
            let mut single = vec![0f32; m];
            for (s, &y) in ys.iter().enumerate() {
                d.llrs(y, &mut single);
                assert_eq!(&block[s * m..(s + 1) * m], &single[..], "symbol {s}");
            }
        }
    }

    #[test]
    fn empty_and_single_symbol_blocks() {
        let maxlog = MaxLogMap::new(qam16(), 0.2);
        let mut none: [f32; 0] = [];
        maxlog.demap_block(&[], &mut none);
        let y = C32::new(0.3, -0.2);
        let mut one = [0f32; 4];
        maxlog.demap_block(&[y], &mut one);
        let mut reference = [0f32; 4];
        maxlog.llrs(y, &mut reference);
        assert_eq!(one, reference);
    }

    #[test]
    fn hard_decide_block_matches_per_symbol() {
        let maxlog = MaxLogMap::new(qam16(), 0.2);
        let mut rng = hybridem_mathkit::rng::Xoshiro256pp::seed_from_u64(12);
        let ys: Vec<C32> = (0..33)
            .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
            .collect();
        let mut block = vec![0u8; ys.len() * 4];
        maxlog.hard_decide_block(&ys, &mut block);
        let mut single = [0u8; 4];
        for (s, &y) in ys.iter().enumerate() {
            maxlog.hard_decide(y, &mut single);
            assert_eq!(&block[s * 4..(s + 1) * 4], &single[..]);
        }
    }

    #[test]
    #[should_panic(expected = "at most 256 points")]
    fn exact_log_map_rejects_oversized_point_sets() {
        // 512 unlabelled-but-indexed points exceed the fixed metric
        // buffer; construction must fail loudly, not index-panic later.
        let pts: Vec<C32> = (0..512).map(|i| C32::from_angle(i as f32 * 0.01)).collect();
        let _ = ExactLogMap::new(Constellation::from_points(pts), 0.2);
    }

    #[test]
    #[should_panic(expected = "output buffer must hold exactly")]
    fn demap_block_rejects_wrong_buffer_length() {
        let maxlog = MaxLogMap::new(qam16(), 0.2);
        let mut out = [0f32; 7]; // 2 symbols × 4 bits ≠ 7
        maxlog.demap_block(&[C32::zero(), C32::zero()], &mut out);
    }
}
