//! Deterministic SNR-sweep campaigns with statistical early stopping.
//!
//! The paper's headline artefacts are BER-over-SNR waterfall curves
//! comparing demapper families across channel impairments. A
//! [`CampaignSpec`] describes the whole scenario matrix — demapper
//! family × channel scenario × SNR grid — and [`run_campaign`]
//! produces one [`CampaignPoint`] per cell, each with Wilson confidence
//! intervals, as a JSON-serialisable [`CampaignReport`].
//!
//! ## Early stopping without losing determinism
//!
//! A fixed trial count per point wastes work at low SNR (the error
//! count saturates almost immediately) and under-powers high SNR (a
//! handful of errors ⇒ a CI spanning a decade). Each point therefore
//! runs in **geometrically escalating rounds** on a resumable
//! [`LinkSim`]: after every round the merged error count is checked
//! against [`EarlyStop::target_bit_errors`], and the point stops at
//! the first round boundary where the target (or the
//! [`EarlyStop::max_symbols_per_point`] cap) is reached.
//!
//! Determinism argument (DESIGN.md §8): the round schedule is a pure
//! function of `(stop, block_len)` — round sizes never depend on
//! observed errors, only the *number of rounds executed* does. Each
//! round extends fixed per-task RNG streams, so the state after any
//! round prefix is independent of thread count; and stopping after
//! round `k` yields exactly the `k`-round prefix of the uncapped run.
//! The whole report is thus a pure function of `(spec, seed)`, and the
//! serialised artefact is byte-for-byte reproducible.

use crate::channel::Channel;
use crate::constellation::Constellation;
use crate::demapper::Demapper;
use crate::linksim::{LinkSim, LinkSpec};
use hybridem_mathkit::json::{FromJson, Json, JsonError};
use hybridem_mathkit::rng::SplitMix64;
use hybridem_mathkit::stats::wilson_interval;

/// Builds the channel for one scenario at one grid SNR. The campaign
/// engine passes grid values through verbatim, so the builder decides
/// the axis convention (Es/N0 vs Eb/N0).
pub type ChannelBuilder<'a> = Box<dyn Fn(f64) -> Box<dyn Channel> + Sync + 'a>;

/// Builds the demapper for one family at one grid SNR (same axis
/// convention note as [`ChannelBuilder`]).
pub type DemapperBuilder<'a> = Box<dyn Fn(f64) -> Box<dyn Demapper + 'a> + Sync + 'a>;

/// One channel scenario of the campaign matrix (e.g. "awgn",
/// "phase-pi4+awgn", "rayleigh+awgn").
pub struct ChannelScenario<'a> {
    /// Scenario label used in artefacts.
    pub name: String,
    /// Channel factory, called once per (family, scenario, SNR) point.
    pub build: ChannelBuilder<'a>,
}

impl<'a> ChannelScenario<'a> {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, build: ChannelBuilder<'a>) -> Self {
        Self {
            name: name.into(),
            build,
        }
    }

    /// Pure AWGN with the grid value interpreted as **Es/N0 in dB** —
    /// the scenario of the theory-anchored golden tests.
    pub fn awgn_es_n0() -> Self {
        Self::new(
            "awgn",
            Box::new(|snr| Box::new(crate::channel::Awgn::from_es_n0_db(snr))),
        )
    }
}

/// One demapper family of the campaign matrix, bundling the
/// transmitter constellation it operates on (the conventional receiver
/// transmits Gray QAM; ANN-based receivers transmit the learned
/// constellation).
pub struct DemapperFamily<'a> {
    /// Family label used in artefacts.
    pub name: String,
    /// Transmit constellation for this family.
    pub constellation: Constellation,
    /// Demapper factory, called once per (family, scenario, SNR) point.
    pub build: DemapperBuilder<'a>,
}

impl<'a> DemapperFamily<'a> {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        constellation: Constellation,
        build: DemapperBuilder<'a>,
    ) -> Self {
        Self {
            name: name.into(),
            constellation,
            build,
        }
    }

    /// Max-log demapping of `constellation` with the grid value
    /// interpreted as **Es/N0 in dB** at unit symbol energy — the
    /// family of the theory-anchored golden tests.
    pub fn maxlog_es_n0(constellation: Constellation) -> Self {
        let c = constellation.clone();
        Self::new(
            "maxlog",
            constellation,
            Box::new(move |snr| {
                let sigma = crate::snr::noise_sigma(snr, 1.0) as f32;
                Box::new(crate::demapper::MaxLogMap::new(c.clone(), sigma))
            }),
        )
    }
}

/// Early-stopping policy: geometrically escalating rounds until a
/// target error count or a trial cap is reached.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EarlyStop {
    /// Stop a point at the first round boundary with at least this
    /// many accumulated bit errors (≈100 gives a ±20 % 95 % CI).
    pub target_bit_errors: u64,
    /// Cap on simulated symbols per point (reached ⇒ the point
    /// reports whatever precision the budget bought). Rounded **up**
    /// to whole blocks by the schedule — a point may simulate up to
    /// `block_len − 1` symbols past this value, never a partial block.
    pub max_symbols_per_point: u64,
    /// Symbol budget of the first round.
    pub first_round_symbols: u64,
    /// Geometric growth factor between rounds (≥ 1).
    pub growth: u32,
}

impl EarlyStop {
    /// The defaults used by the paper-reproduction campaigns: stop at
    /// 100 bit errors, cap at 4 M symbols, rounds 8192·4ʳ.
    pub fn paper_default() -> Self {
        Self {
            target_bit_errors: 100,
            max_symbols_per_point: 4_000_000,
            first_round_symbols: 8_192,
            growth: 4,
        }
    }

    /// Returns a copy with the symbol cap lowered to `cap` (no-op if
    /// already lower; like the cap itself, rounded up to whole blocks
    /// at schedule time) — how CI clamps campaign budgets via
    /// `HYBRIDEM_CAMPAIGN_TRIALS`.
    pub fn capped(mut self, cap: u64) -> Self {
        self.max_symbols_per_point = self.max_symbols_per_point.min(cap);
        self
    }

    /// The deterministic round schedule, in **blocks** per round, for
    /// a given block length. Pure function of `(self, block_len)`:
    /// observed errors never change round sizes, only how many rounds
    /// actually execute — the heart of the determinism argument.
    ///
    /// # Panics
    /// Panics if `block_len == 0` or `growth == 0`.
    pub fn round_schedule(&self, block_len: usize) -> RoundSchedule {
        assert!(block_len > 0, "block length must be positive");
        assert!(self.growth >= 1, "growth factor must be at least 1");
        RoundSchedule {
            next: self.first_round_symbols.div_ceil(block_len as u64).max(1),
            growth: u64::from(self.growth),
            remaining: self.max_symbols_per_point.div_ceil(block_len as u64),
        }
    }
}

/// Iterator over per-round block counts (see
/// [`EarlyStop::round_schedule`]). Finite: the cumulative block count
/// equals `ceil(max_symbols_per_point / block_len)`, with the final
/// round truncated to land exactly on the cap.
#[derive(Clone, Debug)]
pub struct RoundSchedule {
    next: u64,
    growth: u64,
    remaining: u64,
}

impl Iterator for RoundSchedule {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let blocks = self.next.min(self.remaining);
        self.remaining -= blocks;
        self.next = self.next.saturating_mul(self.growth);
        Some(blocks)
    }
}

/// The full campaign description: scenario matrix, SNR grid, stopping
/// policy, and the execution parameters the determinism guarantee is
/// conditioned on (`tasks`, `seed`, `block_len`).
pub struct CampaignSpec<'a> {
    /// Campaign label recorded in the artefact.
    pub name: String,
    /// Demapper families (matrix rows).
    pub families: Vec<DemapperFamily<'a>>,
    /// Channel scenarios (matrix columns).
    pub scenarios: Vec<ChannelScenario<'a>>,
    /// SNR grid in dB (axis convention belongs to the builders).
    pub snrs_db: Vec<f64>,
    /// Early-stopping policy applied to every point.
    pub stop: EarlyStop,
    /// Symbols per simulated channel block.
    pub block_len: usize,
    /// Monte-Carlo task count. Fixed explicitly (not derived from the
    /// machine) so artefacts reproduce byte-for-byte anywhere.
    pub tasks: u32,
    /// Base seed; per-point seeds are derived deterministically.
    pub seed: u64,
    /// Standard-normal quantile of the reported confidence intervals
    /// (1.96 ⇒ 95 %).
    pub z: f64,
}

impl<'a> CampaignSpec<'a> {
    /// A campaign with the default execution parameters: paper-default
    /// early stopping, 256-symbol blocks, 64 tasks, 95 % intervals.
    pub fn new(
        families: Vec<DemapperFamily<'a>>,
        scenarios: Vec<ChannelScenario<'a>>,
        snrs_db: Vec<f64>,
        seed: u64,
    ) -> Self {
        Self {
            name: "campaign".to_string(),
            families,
            scenarios,
            snrs_db,
            stop: EarlyStop::paper_default(),
            block_len: 256,
            tasks: 64,
            seed,
            z: 1.96,
        }
    }
}

/// One measured cell of the campaign matrix.
#[derive(Clone, Debug)]
pub struct CampaignPoint {
    /// Demapper-family label.
    pub family: String,
    /// Channel-scenario label.
    pub scenario: String,
    /// Grid SNR in dB.
    pub snr_db: f64,
    /// Bit error rate (0 when nothing was simulated — never NaN).
    pub ber: f64,
    /// Wilson interval of the BER at the campaign's `z`.
    pub ber_ci: (f64, f64),
    /// Symbol error rate (same zero-observation contract).
    pub ser: f64,
    /// Wilson interval of the SER.
    pub ser_ci: (f64, f64),
    /// Bitwise mutual information (0 when nothing was simulated).
    pub mi: f64,
    /// Simulated bits.
    pub bits: u64,
    /// Observed bit errors.
    pub bit_errors: u64,
    /// Simulated symbols.
    pub symbols: u64,
    /// Observed symbol errors.
    pub symbol_errors: u64,
    /// Rounds executed before the stop decision.
    pub rounds: u32,
    /// True when the error target was reached (as opposed to the
    /// schedule running out at the trial cap).
    pub stopped_early: bool,
    /// The derived per-point seed (recorded for single-point replay).
    pub seed: u64,
}

hybridem_mathkit::impl_to_json!(CampaignPoint {
    family,
    scenario,
    snr_db,
    ber,
    ber_ci,
    ser,
    ser_ci,
    mi,
    bits,
    bit_errors,
    symbols,
    symbol_errors,
    rounds,
    stopped_early,
    seed,
});

impl FromJson for CampaignPoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            family: String::from_json(v.field("family")?)?,
            scenario: String::from_json(v.field("scenario")?)?,
            snr_db: f64::from_json(v.field("snr_db")?)?,
            ber: f64::from_json(v.field("ber")?)?,
            ber_ci: <(f64, f64)>::from_json(v.field("ber_ci")?)?,
            ser: f64::from_json(v.field("ser")?)?,
            ser_ci: <(f64, f64)>::from_json(v.field("ser_ci")?)?,
            mi: f64::from_json(v.field("mi")?)?,
            bits: u64::from_json(v.field("bits")?)?,
            bit_errors: u64::from_json(v.field("bit_errors")?)?,
            symbols: u64::from_json(v.field("symbols")?)?,
            symbol_errors: u64::from_json(v.field("symbol_errors")?)?,
            rounds: u32::from_json(v.field("rounds")?)?,
            stopped_early: bool::from_json(v.field("stopped_early")?)?,
            seed: u64::from_json(v.field("seed")?)?,
        })
    }
}

/// The campaign artefact: execution parameters + all measured points,
/// serialisable with [`hybridem_mathkit::json::ToJson`] and
/// re-loadable with [`FromJson`] (which is how CI validates artefact
/// schemas).
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign label.
    pub name: String,
    /// Base seed the artefact is a pure function of.
    pub seed: u64,
    /// Monte-Carlo task count used by every point.
    pub tasks: u32,
    /// Symbols per channel block.
    pub block_len: u64,
    /// CI quantile.
    pub z: f64,
    /// Early-stop error target.
    pub target_bit_errors: u64,
    /// Early-stop symbol cap.
    pub max_symbols_per_point: u64,
    /// The SNR grid.
    pub snrs_db: Vec<f64>,
    /// One point per (family, scenario, SNR) cell, in matrix order.
    pub points: Vec<CampaignPoint>,
}

hybridem_mathkit::impl_to_json!(CampaignReport {
    name,
    seed,
    tasks,
    block_len,
    z,
    target_bit_errors,
    max_symbols_per_point,
    snrs_db,
    points,
});

impl FromJson for CampaignReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            tasks: u32::from_json(v.field("tasks")?)?,
            block_len: u64::from_json(v.field("block_len")?)?,
            z: f64::from_json(v.field("z")?)?,
            target_bit_errors: u64::from_json(v.field("target_bit_errors")?)?,
            max_symbols_per_point: u64::from_json(v.field("max_symbols_per_point")?)?,
            snrs_db: Vec::<f64>::from_json(v.field("snrs_db")?)?,
            points: Vec::<CampaignPoint>::from_json(v.field("points")?)?,
        })
    }
}

impl CampaignReport {
    /// Schema/invariant validation of a (re-loaded) artefact: finite
    /// rates inside their intervals, counts consistent, no NaN
    /// anywhere. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.tasks == 0 {
            return Err("tasks must be positive".to_string());
        }
        if self.block_len == 0 {
            return Err("block_len must be positive".to_string());
        }
        if !self.z.is_finite() || self.z <= 0.0 {
            return Err(format!("z must be finite and positive, got {}", self.z));
        }
        for (i, p) in self.points.iter().enumerate() {
            let ctx = |msg: String| format!("point {i} ({}/{}): {msg}", p.family, p.scenario);
            if !p.snr_db.is_finite() {
                return Err(ctx("non-finite snr_db".to_string()));
            }
            for (label, x) in [("ber", p.ber), ("ser", p.ser)] {
                if !(0.0..=1.0).contains(&x) {
                    return Err(ctx(format!("{label} {x} outside [0, 1]")));
                }
            }
            if !p.mi.is_finite() {
                return Err(ctx("non-finite mi".to_string()));
            }
            for (label, rate, (lo, hi)) in [("ber", p.ber, p.ber_ci), ("ser", p.ser, p.ser_ci)] {
                if !(lo.is_finite() && hi.is_finite() && lo <= rate && rate <= hi) {
                    return Err(ctx(format!("{label} {rate} outside its CI [{lo}, {hi}]")));
                }
            }
            if p.bit_errors > p.bits || p.symbol_errors > p.symbols {
                return Err(ctx("more errors than trials".to_string()));
            }
            if p.symbols % self.block_len != 0 {
                return Err(ctx(format!(
                    "symbols {} not a whole number of {}-symbol blocks",
                    p.symbols, self.block_len
                )));
            }
        }
        Ok(())
    }

    /// Renders the points as a Markdown table.
    pub fn markdown_table(&self) -> String {
        let mut s = String::from(
            "| Family | Scenario | SNR [dB] | BER | CI | symbols | rounds | early |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "| {} | {} | {} | {:.4e} | [{:.2e}, {:.2e}] | {} | {} | {} |\n",
                p.family,
                p.scenario,
                p.snr_db,
                p.ber,
                p.ber_ci.0,
                p.ber_ci.1,
                p.symbols,
                p.rounds,
                if p.stopped_early { "✓" } else { "" }
            ));
        }
        s
    }
}

/// Derives the per-point seed from the base seed and the cell's matrix
/// coordinates. Stable across campaign compositions with the same
/// index triple, well separated via SplitMix64.
fn point_seed(base: u64, family: usize, scenario: usize, snr: usize) -> u64 {
    let cell = ((family as u64) << 42) | ((scenario as u64) << 21) | snr as u64;
    SplitMix64::derive(base, cell)
}

/// Runs one campaign point: geometrically escalating rounds until the
/// error target or the trial cap, as dictated by `spec.stop`.
fn run_point(
    spec: &CampaignSpec<'_>,
    family: &DemapperFamily<'_>,
    scenario: &ChannelScenario<'_>,
    snr_db: f64,
    seed: u64,
) -> CampaignPoint {
    let channel = (scenario.build)(snr_db);
    let demapper = (family.build)(snr_db);
    let link = LinkSpec {
        constellation: &family.constellation,
        channel: &*channel,
        demapper: &*demapper,
        symbols: 0, // budget comes from rounds, not the spec
        block_len: spec.block_len,
        seed,
    };
    let mut sim = LinkSim::new(&link, spec.tasks);
    let mut stopped_early = false;
    for blocks in spec.stop.round_schedule(spec.block_len) {
        sim.run_round(blocks);
        if sim.result().bit_errors.errors() >= spec.stop.target_bit_errors {
            stopped_early = true;
            break;
        }
    }
    let r = sim.result();
    CampaignPoint {
        family: family.name.clone(),
        scenario: scenario.name.clone(),
        snr_db,
        ber: r.ber(),
        ber_ci: wilson_interval(r.bit_errors.errors(), r.bit_errors.trials(), spec.z),
        ser: r.ser(),
        ser_ci: wilson_interval(r.symbol_errors.errors(), r.symbol_errors.trials(), spec.z),
        mi: r.mi.mi(),
        bits: r.bit_errors.trials(),
        bit_errors: r.bit_errors.errors(),
        symbols: r.symbol_errors.trials(),
        symbol_errors: r.symbol_errors.errors(),
        rounds: sim.rounds(),
        stopped_early,
        seed,
    }
}

/// Runs the full scenario matrix and assembles the artefact. The
/// result is a pure function of `(spec, spec.seed)`: fixed `tasks`
/// makes every point thread-count independent, and early stopping only
/// acts at round boundaries of a schedule that never looks at the
/// data.
pub fn run_campaign(spec: &CampaignSpec<'_>) -> CampaignReport {
    assert!(!spec.families.is_empty(), "campaign needs ≥ 1 family");
    assert!(!spec.scenarios.is_empty(), "campaign needs ≥ 1 scenario");
    assert!(spec.tasks > 0, "campaign needs ≥ 1 task");
    let mut points =
        Vec::with_capacity(spec.families.len() * spec.scenarios.len() * spec.snrs_db.len());
    for (fi, family) in spec.families.iter().enumerate() {
        for (si, scenario) in spec.scenarios.iter().enumerate() {
            for (ki, &snr_db) in spec.snrs_db.iter().enumerate() {
                let seed = point_seed(spec.seed, fi, si, ki);
                points.push(run_point(spec, family, scenario, snr_db, seed));
            }
        }
    }
    CampaignReport {
        name: spec.name.clone(),
        seed: spec.seed,
        tasks: spec.tasks,
        block_len: spec.block_len as u64,
        z: spec.z,
        target_bit_errors: spec.stop.target_bit_errors,
        max_symbols_per_point: spec.stop.max_symbols_per_point,
        snrs_db: spec.snrs_db.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::json::ToJson;

    fn qpsk_campaign(stop: EarlyStop) -> CampaignSpec<'static> {
        let mut spec = CampaignSpec::new(
            vec![DemapperFamily::maxlog_es_n0(Constellation::qam_gray(4))],
            vec![ChannelScenario::awgn_es_n0()],
            vec![2.0, 8.0],
            99,
        );
        spec.stop = stop;
        spec.tasks = 8;
        spec
    }

    #[test]
    fn schedule_is_geometric_and_capped() {
        let stop = EarlyStop {
            target_bit_errors: 100,
            max_symbols_per_point: 100_000,
            first_round_symbols: 1_000,
            growth: 4,
        };
        let blocks: Vec<u64> = stop.round_schedule(100).collect();
        // 10, 40, 160, 640 … capped at 1000 cumulative blocks.
        assert_eq!(blocks, vec![10, 40, 160, 640, 150]);
        assert_eq!(blocks.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn schedule_zero_budget_is_empty() {
        let stop = EarlyStop {
            max_symbols_per_point: 0,
            ..EarlyStop::paper_default()
        };
        assert_eq!(stop.round_schedule(256).count(), 0);
    }

    #[test]
    fn low_snr_stops_early_high_snr_runs_longer() {
        let stop = EarlyStop {
            target_bit_errors: 200,
            max_symbols_per_point: 64_000,
            first_round_symbols: 2_048,
            growth: 4,
        };
        let report = run_campaign(&qpsk_campaign(stop));
        assert_eq!(report.points.len(), 2);
        let low = &report.points[0]; // 2 dB: BER ≈ 0.1 ⇒ first round suffices
        let high = &report.points[1]; // 8 dB: BER ≈ 6e-3 ⇒ needs escalation
        assert!(low.stopped_early, "low SNR must hit the error target");
        assert!(low.rounds < high.rounds || !high.stopped_early);
        assert!(low.symbols < high.symbols);
        report.validate().expect("artefact invariants");
    }

    #[test]
    fn report_round_trips_through_json() {
        let stop = EarlyStop {
            target_bit_errors: 50,
            max_symbols_per_point: 8_192,
            first_round_symbols: 4_096,
            growth: 2,
        };
        let report = run_campaign(&qpsk_campaign(stop));
        let text = report.to_json().to_string_pretty();
        let back = CampaignReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        back.validate().expect("reloaded artefact invariants");
        assert_eq!(back.to_json().to_string_pretty(), text);
        assert_eq!(back.points.len(), report.points.len());
        assert_eq!(back.points[0].bit_errors, report.points[0].bit_errors);
    }

    #[test]
    fn zero_budget_point_is_json_clean() {
        // max_symbols_per_point = 0 ⇒ no rounds at all; every rate
        // must still be a finite number and the artefact valid.
        let stop = EarlyStop {
            max_symbols_per_point: 0,
            ..EarlyStop::paper_default()
        };
        let report = run_campaign(&qpsk_campaign(stop));
        for p in &report.points {
            assert_eq!(p.rounds, 0);
            assert_eq!(p.symbols, 0);
            assert_eq!(p.ber, 0.0);
            assert_eq!(p.mi, 0.0);
            assert_eq!(p.ber_ci, (0.0, 1.0));
            assert!(!p.stopped_early);
        }
        report.validate().expect("zero-budget artefact invariants");
        // The serialised artefact must not contain nulls (the JSON
        // writer's spelling of NaN/∞).
        let text = report.to_json().to_string_compact();
        assert!(!text.contains("null"), "NaN leaked into artefact: {text}");
    }

    #[test]
    fn validate_rejects_inconsistent_artefacts() {
        let stop = EarlyStop {
            target_bit_errors: 50,
            max_symbols_per_point: 4_096,
            first_round_symbols: 4_096,
            growth: 2,
        };
        let mut report = run_campaign(&qpsk_campaign(stop));
        report.points[0].ber = f64::NAN;
        assert!(report.validate().is_err());
        let mut report2 = run_campaign(&qpsk_campaign(stop));
        report2.points[0].bit_errors = report2.points[0].bits + 1;
        assert!(report2.validate().is_err());
    }

    #[test]
    fn point_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for f in 0..4 {
            for s in 0..4 {
                for k in 0..8 {
                    assert!(seen.insert(point_seed(7, f, s, k)));
                }
            }
        }
    }

    #[test]
    fn markdown_has_one_row_per_point() {
        let stop = EarlyStop {
            target_bit_errors: 10,
            max_symbols_per_point: 2_048,
            first_round_symbols: 2_048,
            growth: 2,
        };
        let report = run_campaign(&qpsk_campaign(stop));
        let md = report.markdown_table();
        assert_eq!(md.lines().count(), 2 + report.points.len());
    }
}
