//! Outer error-correcting codes.
//!
//! The paper (§II-C, citing Schibisch et al. 2018) proposes using the
//! number of bit flips corrected by an outer ECC as the channel-quality
//! metric that triggers demapper retraining. This module provides two
//! codes for that purpose:
//!
//! - [`Hamming74`] — the classic single-error-correcting (7,4) block
//!   code, whose per-block corrected-flip count is the cheapest possible
//!   quality signal;
//! - [`ConvCode`] + [`Viterbi`] — a rate-1/2, constraint-length-3
//!   convolutional code with hard- and soft-decision Viterbi decoding,
//!   demonstrating that the LLRs from soft demappers are worth real
//!   coding gain (and providing the re-encode/compare flip counter).

mod convolutional;
mod hamming;

pub use convolutional::{ConvCode, Viterbi};
pub use hamming::Hamming74;

/// Outcome of decoding one protected block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Decoded information bits.
    pub bits: Vec<u8>,
    /// Number of channel bits the decoder corrected (the paper's
    /// retrain-trigger metric).
    pub corrected: u64,
}
