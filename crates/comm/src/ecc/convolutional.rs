//! Rate-1/2 convolutional code with Viterbi decoding.
//!
//! The classic constraint-length-3 code with generators G = (7, 5)
//! octal (`111`, `101`). The encoder is zero-terminated (two tail bits
//! flush the register), and [`Viterbi`] decodes either hard bits
//! (Hamming branch metrics) or demapper LLRs (correlation metrics),
//! reporting how many channel bits it corrected — the soft-decision
//! version of the paper's retrain trigger.

use super::DecodeOutcome;
use crate::demapper::Demapper;
use hybridem_mathkit::complex::C32;

/// Rate-1/2, K=3 convolutional encoder, generators (7,5) octal.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConvCode;

impl ConvCode {
    /// Constraint length.
    pub const K: usize = 3;
    /// Number of trellis states.
    pub const STATES: usize = 4;
    /// Tail bits appended to terminate the trellis.
    pub const TAIL: usize = 2;

    /// New encoder.
    pub fn new() -> Self {
        Self
    }

    /// Output pair for `input` bit from `state` (2-bit register).
    #[inline]
    fn branch(state: usize, input: u8) -> (u8, u8) {
        // Register holds the two previous bits [s1 s0]; with the new
        // input bit x the generator taps are:
        //   g0 = x ⊕ s1 ⊕ s0   (111 octal 7)
        //   g1 = x ⊕ s0        (101 octal 5)
        let s1 = ((state >> 1) & 1) as u8;
        let s0 = (state & 1) as u8;
        (input ^ s1 ^ s0, input ^ s0)
    }

    /// Next state after shifting in `input`.
    #[inline]
    fn next_state(state: usize, input: u8) -> usize {
        ((state << 1) | input as usize) & (Self::STATES - 1)
    }

    /// Encodes `data`, appending two zero tail bits; output length is
    /// `2·(data.len() + 2)`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 * (data.len() + Self::TAIL));
        let mut state = 0usize;
        for &b in data.iter().chain([0u8, 0u8].iter()) {
            debug_assert!(b <= 1);
            let (g0, g1) = Self::branch(state, b);
            out.push(g0);
            out.push(g1);
            state = Self::next_state(state, b);
        }
        out
    }
}

/// Viterbi decoder for [`ConvCode`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Viterbi;

impl Viterbi {
    /// New decoder.
    pub fn new() -> Self {
        Self
    }

    /// Hard-decision decode of `2·(n+2)` code bits back to `n` data
    /// bits. `corrected` counts the positions where the re-encoded
    /// survivor path disagrees with the received bits.
    pub fn decode_hard(&self, code: &ConvCode, received: &[u8]) -> DecodeOutcome {
        assert_eq!(received.len() % 2, 0, "rate-1/2 stream must be even");
        // Hard bits → antipodal LLR-like metrics (0 → +1, 1 → −1).
        let llrs: Vec<f32> = received
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        self.decode_soft(code, &llrs)
    }

    /// Demap-and-decode: block-demaps `symbols` with `demapper` (one
    /// [`Demapper::demap_block`] call — the symbol-major LLR layout is
    /// exactly the serial code-bit order the trellis consumes), keeps
    /// the first `code_bits` LLRs (the tail symbol may carry padding)
    /// and soft-decodes them.
    ///
    /// # Panics
    /// Panics if `code_bits` is odd or exceeds the demapped bit count.
    pub fn decode_demapped(
        &self,
        code: &ConvCode,
        demapper: &dyn Demapper,
        symbols: &[C32],
        code_bits: usize,
    ) -> DecodeOutcome {
        let m = demapper.bits_per_symbol();
        assert!(
            code_bits <= symbols.len() * m,
            "code_bits {code_bits} exceeds the {} demapped bits",
            symbols.len() * m
        );
        let mut llrs = vec![0f32; symbols.len() * m];
        demapper.demap_block(symbols, &mut llrs);
        llrs.truncate(code_bits);
        self.decode_soft(code, &llrs)
    }

    /// Soft-decision decode from per-bit LLRs (workspace convention:
    /// positive ⇒ bit 0; [`Demapper::demap_block`] output feeds in
    /// directly). Maximises the path correlation
    /// `Σ (1−2c)·LLR` over codewords `c`.
    pub fn decode_soft(&self, code: &ConvCode, llrs: &[f32]) -> DecodeOutcome {
        assert_eq!(llrs.len() % 2, 0, "rate-1/2 stream must be even");
        let steps = llrs.len() / 2;
        assert!(steps >= ConvCode::TAIL, "stream shorter than the tail");
        let n_states = ConvCode::STATES;
        const NEG: f64 = f64::NEG_INFINITY;

        let mut metric = vec![NEG; n_states];
        metric[0] = 0.0; // trellis starts in the zero state
        let mut decisions: Vec<[u8; ConvCode::STATES]> = Vec::with_capacity(steps);
        let mut predecessors: Vec<[usize; ConvCode::STATES]> = Vec::with_capacity(steps);

        for t in 0..steps {
            let l0 = llrs[2 * t] as f64;
            let l1 = llrs[2 * t + 1] as f64;
            let mut new_metric = vec![NEG; n_states];
            let mut dec = [0u8; ConvCode::STATES];
            let mut pred = [0usize; ConvCode::STATES];
            for (state, &state_metric) in metric.iter().enumerate().take(n_states) {
                if state_metric == NEG {
                    continue;
                }
                for input in 0..2u8 {
                    let (g0, g1) = ConvCode::branch(state, input);
                    // Correlation metric: +LLR when the code bit is 0.
                    let gain = (if g0 == 0 { l0 } else { -l0 }) + (if g1 == 0 { l1 } else { -l1 });
                    let ns = ConvCode::next_state(state, input);
                    let cand = state_metric + gain;
                    if cand > new_metric[ns] {
                        new_metric[ns] = cand;
                        dec[ns] = input;
                        pred[ns] = state;
                    }
                }
            }
            decisions.push(dec);
            predecessors.push(pred);
            metric = new_metric;
        }

        // Zero-terminated: trace back from state 0.
        let mut state = 0usize;
        let mut path = vec![0u8; steps];
        for t in (0..steps).rev() {
            path[t] = decisions[t][state];
            state = predecessors[t][state];
        }
        let data: Vec<u8> = path[..steps - ConvCode::TAIL].to_vec();

        // Corrected-flip count: re-encode and compare hard decisions.
        let reenc = code.encode(&data);
        let corrected = reenc
            .iter()
            .zip(llrs)
            .filter(|(&c, &l)| c != u8::from(l < 0.0))
            .count() as u64;

        DecodeOutcome {
            bits: data,
            corrected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut out = vec![0u8; n];
        rng.fill_bits(&mut out);
        out
    }

    #[test]
    fn known_encoding() {
        // Reference sequence for G=(7,5), input 1011 + tail 00.
        let code = ConvCode::new();
        let tx = code.encode(&[1, 0, 1, 1]);
        // Step-by-step: state 00 →1: out 11; state 01 →0: out 01? …
        // verified against hand computation:
        assert_eq!(tx.len(), 12);
        assert_eq!(&tx[..2], &[1, 1]);
    }

    #[test]
    fn round_trip_clean() {
        let code = ConvCode::new();
        let vit = Viterbi::new();
        for seed in 0..5 {
            let data = random_bits(64, seed);
            let tx = code.encode(&data);
            let out = vit.decode_hard(&code, &tx);
            assert_eq!(out.bits, data);
            assert_eq!(out.corrected, 0);
        }
    }

    #[test]
    fn corrects_isolated_errors() {
        let code = ConvCode::new();
        let vit = Viterbi::new();
        let data = random_bits(64, 9);
        let clean = code.encode(&data);
        // Flip well-separated bits (beyond one constraint length apart).
        let mut rx = clean.clone();
        for pos in [5usize, 30, 60, 100] {
            rx[pos] ^= 1;
        }
        let out = vit.decode_hard(&code, &rx);
        assert_eq!(
            out.bits, data,
            "free-distance-5 code must fix isolated flips"
        );
        assert_eq!(out.corrected, 4);
    }

    #[test]
    fn soft_beats_hard_on_noisy_llrs() {
        // Construct LLRs where a wrong hard decision carries low
        // confidence: soft decoding should recover, and the corrected
        // count should reflect the flipped hard decisions.
        let code = ConvCode::new();
        let vit = Viterbi::new();
        let data = random_bits(32, 17);
        let tx = code.encode(&data);
        let mut llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 2.0 } else { -2.0 })
            .collect();
        // Weakly flip three separated positions.
        for pos in [4usize, 20, 40] {
            llrs[pos] = -llrs[pos].signum() * 0.1;
        }
        let out = vit.decode_soft(&code, &llrs);
        assert_eq!(out.bits, data);
        assert_eq!(out.corrected, 3);
    }

    #[test]
    fn burst_beyond_capability_fails_but_terminates() {
        let code = ConvCode::new();
        let vit = Viterbi::new();
        let data = random_bits(32, 23);
        let mut rx = code.encode(&data);
        // A dense burst of 8 flips in a row overwhelms d_free = 5.
        for slot in rx.iter_mut().skip(10).take(8) {
            *slot ^= 1;
        }
        let out = vit.decode_hard(&code, &rx);
        assert_eq!(out.bits.len(), data.len());
        assert_ne!(out.bits, data, "burst should defeat the code");
    }

    #[test]
    fn corrected_count_tracks_channel_quality() {
        // The retrain-trigger property: more channel errors ⇒ larger
        // corrected count (monotone in expectation).
        let code = ConvCode::new();
        let vit = Viterbi::new();
        let data = random_bits(512, 31);
        let clean = code.encode(&data);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let mut last = 0u64;
        for &p in &[0.0f64, 0.02, 0.08] {
            let mut rx = clean.clone();
            for b in &mut rx {
                if rng.next_f64() < p {
                    *b ^= 1;
                }
            }
            let out = vit.decode_hard(&code, &rx);
            assert!(
                out.corrected >= last,
                "corrected flips must grow with flip rate"
            );
            last = out.corrected.max(1);
        }
    }
}
