//! Hamming(7,4) single-error-correcting block code.
//!
//! Systematic form: codeword `[d1 d2 d3 d4 p1 p2 p3]` with
//! `p1 = d1⊕d2⊕d4`, `p2 = d1⊕d3⊕d4`, `p3 = d2⊕d3⊕d4`. The decoder
//! corrects any single bit error per block and reports how many blocks
//! needed correction — the retrain-trigger statistic.

use super::DecodeOutcome;

/// The (7,4) Hamming code.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hamming74;

impl Hamming74 {
    /// Code rate.
    pub const RATE: f64 = 4.0 / 7.0;

    /// New codec.
    pub fn new() -> Self {
        Self
    }

    /// Encodes 4 data bits into 7 code bits.
    pub fn encode_block(&self, d: &[u8; 4]) -> [u8; 7] {
        let p1 = d[0] ^ d[1] ^ d[3];
        let p2 = d[0] ^ d[2] ^ d[3];
        let p3 = d[1] ^ d[2] ^ d[3];
        [d[0], d[1], d[2], d[3], p1, p2, p3]
    }

    /// Encodes a bit stream (length must be a multiple of 4).
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len() % 4, 0, "Hamming74 input must be 4-bit aligned");
        let mut out = Vec::with_capacity(data.len() / 4 * 7);
        for chunk in data.chunks_exact(4) {
            let block = [chunk[0], chunk[1], chunk[2], chunk[3]];
            out.extend_from_slice(&self.encode_block(&block));
        }
        out
    }

    /// Decodes one 7-bit block, correcting up to one error.
    /// Returns the 4 data bits and whether a correction was applied.
    pub fn decode_block(&self, r: &[u8; 7]) -> ([u8; 4], bool) {
        // Syndrome bits: recompute parities over the received word.
        let s1 = r[0] ^ r[1] ^ r[3] ^ r[4];
        let s2 = r[0] ^ r[2] ^ r[3] ^ r[5];
        let s3 = r[1] ^ r[2] ^ r[3] ^ r[6];
        let syndrome = (s1, s2, s3);
        // Map syndrome to the erroneous position (systematic layout).
        let pos: Option<usize> = match syndrome {
            (0, 0, 0) => None,
            (1, 1, 0) => Some(0),
            (1, 0, 1) => Some(1),
            (0, 1, 1) => Some(2),
            (1, 1, 1) => Some(3),
            (1, 0, 0) => Some(4),
            (0, 1, 0) => Some(5),
            (0, 0, 1) => Some(6),
            _ => unreachable!(),
        };
        let mut c = *r;
        if let Some(p) = pos {
            c[p] ^= 1;
        }
        ([c[0], c[1], c[2], c[3]], pos.is_some())
    }

    /// Decodes a code-bit stream (length must be a multiple of 7),
    /// reporting the number of corrected bits.
    pub fn decode(&self, code: &[u8]) -> DecodeOutcome {
        assert_eq!(code.len() % 7, 0, "Hamming74 code must be 7-bit aligned");
        let mut bits = Vec::with_capacity(code.len() / 7 * 4);
        let mut corrected = 0u64;
        for chunk in code.chunks_exact(7) {
            let block = [
                chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6],
            ];
            let (d, fixed) = self.decode_block(&block);
            bits.extend_from_slice(&d);
            corrected += u64::from(fixed);
        }
        DecodeOutcome { bits, corrected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_messages() {
        let code = Hamming74::new();
        for msg in 0..16u8 {
            let d = [msg >> 3 & 1, msg >> 2 & 1, msg >> 1 & 1, msg & 1];
            let c = code.encode_block(&d);
            let (dec, fixed) = code.decode_block(&c);
            assert_eq!(dec, d);
            assert!(!fixed);
        }
    }

    #[test]
    fn corrects_every_single_error() {
        let code = Hamming74::new();
        for msg in 0..16u8 {
            let d = [msg >> 3 & 1, msg >> 2 & 1, msg >> 1 & 1, msg & 1];
            let c = code.encode_block(&d);
            for e in 0..7 {
                let mut r = c;
                r[e] ^= 1;
                let (dec, fixed) = code.decode_block(&r);
                assert_eq!(dec, d, "msg {msg:04b} error at {e}");
                assert!(fixed);
            }
        }
    }

    #[test]
    fn double_errors_miscorrect_but_are_counted() {
        // (7,4) Hamming cannot fix 2 errors — but it always *acts*,
        // which is exactly why corrected-flip counts track BER.
        let code = Hamming74::new();
        let d = [1, 0, 1, 1];
        let c = code.encode_block(&d);
        let mut r = c;
        r[0] ^= 1;
        r[5] ^= 1;
        let (dec, fixed) = code.decode_block(&r);
        assert!(fixed);
        assert_ne!(dec, d, "double error must not silently decode right");
    }

    #[test]
    fn stream_decode_counts_corrections() {
        let code = Hamming74::new();
        let data: Vec<u8> = vec![1, 0, 0, 1, 0, 1, 1, 0, 1, 1, 1, 1];
        let mut tx = code.encode(&data);
        assert_eq!(tx.len(), 21);
        // Flip one bit in blocks 0 and 2.
        tx[3] ^= 1;
        tx[15] ^= 1;
        let out = code.decode(&tx);
        assert_eq!(out.bits, data);
        assert_eq!(out.corrected, 2);
    }

    #[test]
    #[should_panic(expected = "4-bit aligned")]
    fn encode_alignment_checked() {
        let _ = Hamming74::new().encode(&[1, 0, 1]);
    }

    #[test]
    fn minimum_distance_is_three() {
        // Enumerate all codewords, verify pairwise Hamming distance ≥ 3.
        let code = Hamming74::new();
        let words: Vec<[u8; 7]> = (0..16u8)
            .map(|m| code.encode_block(&[m >> 3 & 1, m >> 2 & 1, m >> 1 & 1, m & 1]))
            .collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let d: u32 = words[i]
                    .iter()
                    .zip(&words[j])
                    .map(|(a, b)| u32::from(a != b))
                    .sum();
                assert!(d >= 3, "codewords {i},{j} at distance {d}");
            }
        }
    }
}
