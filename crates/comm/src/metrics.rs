//! Receiver-side quality metrics.
//!
//! - [`count_bit_errors`] / [`count_symbol_errors`] — the raw material
//!   of BER/SER curves;
//! - [`BitwiseMiEstimator`] — the bitwise mutual information the paper's
//!   E2E training maximises, estimated from LLRs;
//! - [`evm_rms`] — error-vector magnitude, a training-free channel
//!   quality indicator used by the adaptation controller.

use hybridem_mathkit::complex::C32;

/// Counts differing bits between two equal-length bit slices.
pub fn count_bit_errors(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "bit slice length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count() as u64
}

/// Counts differing symbols between two equal-length index slices.
pub fn count_symbol_errors(a: &[usize], b: &[usize]) -> u64 {
    assert_eq!(a.len(), b.len(), "symbol slice length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count() as u64
}

/// Streaming estimator of the **bitwise mutual information** (in bits
/// per channel bit) from LLR observations, assuming equiprobable bits:
///
/// `MI ≈ 1 − E[ log₂(1 + e^{−s}) ]`, where `s = (1−2b)·LLR` is the LLR
/// aligned with the transmitted bit `b` (workspace convention: positive
/// LLR ⇒ bit 0, so `s > 0` means "pointing the right way").
///
/// This is the standard demapper-aware MI estimate; it reaches `m` bits
/// per symbol summed over bit positions as the channel clears.
#[derive(Clone, Debug, Default)]
pub struct BitwiseMiEstimator {
    acc: f64,
    n: u64,
}

impl BitwiseMiEstimator {
    /// Empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one (transmitted bit, LLR) observation.
    pub fn push(&mut self, bit: u8, llr: f32) {
        debug_assert!(bit <= 1);
        let s = f64::from(if bit == 0 { llr } else { -llr });
        // log2(1 + e^{−s}), stable for both signs.
        let l = if s > 40.0 {
            0.0
        } else if s < -40.0 {
            -s / std::f64::consts::LN_2
        } else {
            (1.0 + (-s).exp()).ln() / std::f64::consts::LN_2
        };
        self.acc += l;
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current MI estimate in bits. May be slightly negative for a
    /// mismatched demapper — that is information-loss signal, not an
    /// error.
    ///
    /// Zero-observation contract: returns exactly `0.0` (never NaN)
    /// when no LLRs were pushed, so campaign artefacts and adaptation
    /// thresholds always see a finite number; check
    /// [`BitwiseMiEstimator::count`] to tell "no information" from
    /// "nothing measured".
    pub fn mi(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            1.0 - self.acc / self.n as f64
        }
    }

    /// Merges another estimator (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        self.acc += other.acc;
        self.n += other.n;
    }
}

/// RMS error-vector magnitude between received samples and their
/// references, normalised by reference RMS power.
pub fn evm_rms(received: &[C32], reference: &[C32]) -> f64 {
    assert_eq!(received.len(), reference.len(), "EVM length mismatch");
    if received.is_empty() {
        return 0.0;
    }
    let mut err = 0.0f64;
    let mut sig = 0.0f64;
    for (&y, &x) in received.iter().zip(reference) {
        err += y.dist_sqr(x) as f64;
        sig += x.norm_sqr() as f64;
    }
    if sig == 0.0 {
        f64::NAN
    } else {
        (err / sig).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_error_counting() {
        assert_eq!(count_bit_errors(&[0, 1, 1, 0], &[0, 1, 0, 1]), 2);
        assert_eq!(count_bit_errors(&[], &[]), 0);
        assert_eq!(count_symbol_errors(&[3, 5, 7], &[3, 4, 7]), 1);
    }

    #[test]
    fn mi_perfect_channel_approaches_one() {
        let mut mi = BitwiseMiEstimator::new();
        for i in 0..1000 {
            let bit = (i % 2) as u8;
            let llr = if bit == 0 { 50.0 } else { -50.0 };
            mi.push(bit, llr);
        }
        assert!((mi.mi() - 1.0).abs() < 1e-6, "mi {}", mi.mi());
    }

    #[test]
    fn mi_empty_estimator_is_finite_zero() {
        let mi = BitwiseMiEstimator::new();
        assert_eq!(mi.count(), 0);
        assert_eq!(mi.mi(), 0.0);
        assert!(mi.mi().is_finite());
    }

    #[test]
    fn mi_useless_llrs_give_zero() {
        let mut mi = BitwiseMiEstimator::new();
        for i in 0..1000 {
            mi.push((i % 2) as u8, 0.0);
        }
        assert!(mi.mi().abs() < 1e-9);
    }

    #[test]
    fn mi_anticorrelated_llrs_negative() {
        let mut mi = BitwiseMiEstimator::new();
        for i in 0..1000 {
            let bit = (i % 2) as u8;
            // Confidently wrong.
            let llr = if bit == 0 { -10.0 } else { 10.0 };
            mi.push(bit, llr);
        }
        assert!(mi.mi() < -5.0);
    }

    #[test]
    fn mi_merge_matches_sequential() {
        let mut a = BitwiseMiEstimator::new();
        let mut b = BitwiseMiEstimator::new();
        let mut whole = BitwiseMiEstimator::new();
        for i in 0..100 {
            let bit = (i % 2) as u8;
            let llr = (i as f32 - 50.0) * 0.1;
            whole.push(bit, llr);
            if i < 40 {
                a.push(bit, llr);
            } else {
                b.push(bit, llr);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mi() - whole.mi()).abs() < 1e-12);
    }

    #[test]
    fn evm_known_values() {
        let x = [C32::new(1.0, 0.0), C32::new(0.0, 1.0)];
        assert_eq!(evm_rms(&x, &x), 0.0);
        let y = [C32::new(1.1, 0.0), C32::new(0.0, 0.9)];
        let e = evm_rms(&y, &x);
        assert!((e - (0.02f64 / 2.0).sqrt()).abs() < 1e-7);
        assert!(evm_rms(&[], &[]) == 0.0);
    }
}
