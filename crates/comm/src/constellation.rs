//! Constellations: labelled sets of complex symbols.
//!
//! A [`Constellation`] is the transmitter's codebook: `M = 2^m` complex
//! points, where the point at index `u` carries the `m` bits of `u`
//! (MSB first, see [`crate::bits`]). Square Gray-labelled QAM and PSK
//! constructors cover the conventional baselines; learned autoencoder
//! constellations enter through [`Constellation::from_points`].

use crate::bits::{bit_of, gray};
use hybridem_mathkit::complex::{avg_power, C32};

/// A labelled constellation.
#[derive(Clone, Debug)]
pub struct Constellation {
    points: Vec<C32>,
    bits_per_symbol: usize,
}

impl Constellation {
    /// Builds from explicit points; the index of each point is its bit
    /// label. The number of points must be a power of two ≥ 2.
    pub fn from_points(points: Vec<C32>) -> Self {
        let m = points.len();
        assert!(
            m >= 2 && m.is_power_of_two(),
            "constellation size {m} not 2^k"
        );
        Self {
            bits_per_symbol: m.trailing_zeros() as usize,
            points,
        }
    }

    /// Gray-labelled square QAM of order `order` ∈ {4, 16, 64, 256},
    /// normalised to unit average power.
    ///
    /// The `m`-bit label splits half/half: the first `m/2` bits Gray-code
    /// the I level, the last `m/2` bits the Q level.
    pub fn qam_gray(order: usize) -> Self {
        assert!(
            matches!(order, 4 | 16 | 64 | 256),
            "unsupported QAM order {order}"
        );
        let m = order.trailing_zeros() as usize;
        let side = 1usize << (m / 2);
        // PAM levels −(side−1), …, −1, +1, …, +(side−1) step 2, indexed
        // so that Gray(level index) = bit pattern.
        let mut level_of_bits = vec![0usize; side];
        for li in 0..side {
            level_of_bits[gray(li)] = li;
        }
        let mut points = vec![C32::zero(); order];
        for (u, p) in points.iter_mut().enumerate() {
            let i_bits = u >> (m / 2);
            let q_bits = u & (side - 1);
            let li = level_of_bits[i_bits];
            let lq = level_of_bits[q_bits];
            let re = (2 * li) as f32 - (side - 1) as f32;
            let im = (2 * lq) as f32 - (side - 1) as f32;
            *p = C32::new(re, im);
        }
        let mut c = Self::from_points(points);
        c.normalize_power();
        c
    }

    /// Square QAM with **natural binary** (non-Gray) labelling — the
    /// classical baseline for labelling studies: adjacent points can
    /// differ in several bits, costing ~0.5 dB at medium SNR.
    pub fn qam_natural(order: usize) -> Self {
        assert!(
            matches!(order, 4 | 16 | 64 | 256),
            "unsupported QAM order {order}"
        );
        let m = order.trailing_zeros() as usize;
        let side = 1usize << (m / 2);
        let mut points = vec![C32::zero(); order];
        for (u, p) in points.iter_mut().enumerate() {
            let li = u >> (m / 2);
            let lq = u & (side - 1);
            let re = (2 * li) as f32 - (side - 1) as f32;
            let im = (2 * lq) as f32 - (side - 1) as f32;
            *p = C32::new(re, im);
        }
        let mut c = Self::from_points(points);
        c.normalize_power();
        c
    }

    /// Gray-labelled M-PSK on the unit circle.
    pub fn psk_gray(order: usize) -> Self {
        assert!(order >= 2 && order.is_power_of_two(), "PSK order {order}");
        let mut points = vec![C32::zero(); order];
        for (u, p) in points.iter_mut().enumerate() {
            // Place Gray-coded labels on consecutive phases so adjacent
            // points differ in one bit.
            let pos = crate::bits::gray_inverse(u);
            let theta = 2.0 * std::f32::consts::PI * pos as f32 / order as f32;
            *p = C32::from_angle(theta);
        }
        Self::from_points(points)
    }

    /// Number of points `M`.
    pub fn size(&self) -> usize {
        self.points.len()
    }

    /// Bits per symbol `m = log2 M`.
    pub fn bits_per_symbol(&self) -> usize {
        self.bits_per_symbol
    }

    /// The labelled points.
    pub fn points(&self) -> &[C32] {
        &self.points
    }

    /// The point carrying label `u`.
    #[inline]
    pub fn point(&self, u: usize) -> C32 {
        self.points[u]
    }

    /// Bit `k` of label `u`.
    #[inline]
    pub fn bit(&self, u: usize, k: usize) -> u8 {
        bit_of(u, self.bits_per_symbol, k)
    }

    /// Average symbol energy.
    pub fn avg_energy(&self) -> f32 {
        avg_power(&self.points)
    }

    /// Scales the constellation to unit average power in place.
    pub fn normalize_power(&mut self) {
        let p = self.avg_energy();
        assert!(p > 0.0, "cannot normalise zero-power constellation");
        let k = 1.0 / p.sqrt();
        for pt in &mut self.points {
            *pt = pt.scale(k);
        }
    }

    /// Minimum Euclidean distance between distinct points.
    pub fn min_distance(&self) -> f32 {
        let mut best = f32::INFINITY;
        for i in 0..self.points.len() {
            for j in (i + 1)..self.points.len() {
                best = best.min(self.points[i].dist_sqr(self.points[j]));
            }
        }
        best.sqrt()
    }

    /// Index of the nearest point to `y` (maximum-likelihood symbol
    /// decision over AWGN).
    pub fn nearest(&self, y: C32) -> usize {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, &p) in self.points.iter().enumerate() {
            let d = y.dist_sqr(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Applies a global phase rotation (returns a new constellation) —
    /// models what the channel's phase offset does to the codebook.
    pub fn rotated(&self, theta: f32) -> Self {
        Self {
            points: self.points.iter().map(|p| p.rotate(theta)).collect(),
            bits_per_symbol: self.bits_per_symbol,
        }
    }

    /// Mean label Hamming distance over **all** nearest-neighbour pairs
    /// (ties included) — exactly 1.0 for a perfect Gray labelling of a
    /// square lattice; larger values quantify how "un-Gray" a labelling
    /// (e.g. natural binary, or a learned constellation) is.
    pub fn gray_penalty(&self) -> f64 {
        let n = self.points.len();
        let mut total = 0.0;
        let mut pairs = 0u64;
        for i in 0..n {
            let mut best_d = f32::INFINITY;
            for j in 0..n {
                if j != i {
                    best_d = best_d.min(self.points[i].dist_sqr(self.points[j]));
                }
            }
            for j in 0..n {
                if j != i && self.points[i].dist_sqr(self.points[j]) <= best_d * 1.0001 {
                    total += crate::bits::hamming_distance(i, j) as f64;
                    pairs += 1;
                }
            }
        }
        total / pairs.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qam16_structure() {
        let c = Constellation::qam_gray(16);
        assert_eq!(c.size(), 16);
        assert_eq!(c.bits_per_symbol(), 4);
        assert!((c.avg_energy() - 1.0).abs() < 1e-6);
        // 16 distinct points on a 4×4 grid.
        let d = c.min_distance();
        assert!((d - 2.0 / 10.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn qam16_gray_labelling() {
        let c = Constellation::qam_gray(16);
        // Horizontally/vertically adjacent points differ in exactly 1 bit.
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    continue;
                }
                let d = c.point(i).dist_sqr(c.point(j)).sqrt();
                if (d - c.min_distance()).abs() < 1e-5 {
                    assert_eq!(
                        crate::bits::hamming_distance(i, j),
                        1,
                        "labels {i:04b},{j:04b} adjacent but differ in >1 bit"
                    );
                }
            }
        }
        assert!((c.gray_penalty() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn natural_labelling_breaks_gray_property() {
        let gray = Constellation::qam_gray(16);
        let nat = Constellation::qam_natural(16);
        // Same geometry…
        assert!((nat.avg_energy() - 1.0).abs() < 1e-6);
        assert!((nat.min_distance() - gray.min_distance()).abs() < 1e-6);
        // …worse labelling: mean nearest-neighbour Hamming distance > 1.
        assert!((gray.gray_penalty() - 1.0).abs() < 1e-9);
        assert!(nat.gray_penalty() > 1.2, "penalty {}", nat.gray_penalty());
    }

    #[test]
    fn qam_orders_all_normalised() {
        for order in [4usize, 16, 64, 256] {
            let c = Constellation::qam_gray(order);
            assert_eq!(c.size(), order);
            assert!((c.avg_energy() - 1.0).abs() < 1e-5, "order {order}");
        }
    }

    #[test]
    fn qpsk_equals_4qam_geometry() {
        let qam = Constellation::qam_gray(4);
        // 4-QAM corners at (±1/√2, ±1/√2).
        for p in qam.points() {
            assert!((p.abs() - 1.0).abs() < 1e-6);
            assert!((p.re.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        }
    }

    #[test]
    fn psk_gray_adjacency() {
        let c = Constellation::psk_gray(8);
        assert!((c.avg_energy() - 1.0).abs() < 1e-6);
        // Phase-adjacent labels differ in one bit.
        for u in 0..8usize {
            for v in 0..8usize {
                if u == v {
                    continue;
                }
                let d = c.point(u).dist_sqr(c.point(v)).sqrt();
                if (d - c.min_distance()).abs() < 1e-5 {
                    assert_eq!(crate::bits::hamming_distance(u, v), 1);
                }
            }
        }
    }

    #[test]
    fn nearest_recovers_clean_symbols() {
        let c = Constellation::qam_gray(16);
        for u in 0..16 {
            assert_eq!(c.nearest(c.point(u)), u);
        }
    }

    #[test]
    fn rotation_preserves_energy_and_distances() {
        let c = Constellation::qam_gray(16);
        let r = c.rotated(std::f32::consts::FRAC_PI_4);
        assert!((r.avg_energy() - 1.0).abs() < 1e-5);
        assert!((r.min_distance() - c.min_distance()).abs() < 1e-6);
        // But points moved.
        assert!(r.point(0).dist_sqr(c.point(0)) > 1e-4);
    }

    #[test]
    #[should_panic(expected = "not 2^k")]
    fn rejects_non_power_of_two() {
        let _ = Constellation::from_points(vec![C32::zero(); 6]);
    }
}
