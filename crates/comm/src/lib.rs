//! # hybridem-comm
//!
//! The communication-system substrate: everything the paper's receiver
//! sits on top of.
//!
//! - [`bits`] — bit/symbol packing, Gray coding, PRBS sources;
//! - [`constellation`] — QAM/PSK/learned constellations with bit labels;
//! - [`snr`] — Es/N0, Eb/N0 and noise-σ conversions;
//! - [`channel`] — composable channel models: AWGN, static phase offset
//!   (the paper's adaptation case study), CFO, IQ imbalance, block
//!   Rayleigh fading;
//! - [`demapper`] — block-oriented soft demappers producing bit LLRs
//!   (primary entry point [`demapper::Demapper::demap_block`], see
//!   DESIGN.md §7): exact log-MAP and the suboptimal **max-log**
//!   demapper of Robertson et al. 1995 that the paper runs on
//!   extracted centroids, plus hard decision;
//! - [`metrics`] — BER/SER counting, bitwise mutual information, EVM;
//! - [`equalizer`] — linear FIR equalization for ISI channels: CMA
//!   acquisition, decision-directed LMS tracking, supervised LS/pilot
//!   bootstrap, and the [`equalizer::EqualizedDemapper`] wrapper that
//!   runs one ahead of any demapper (DESIGN.md §14);
//! - [`ecc`] — outer codes used for retrain triggering: Hamming(7,4)
//!   and a rate-1/2 convolutional code with hard/soft Viterbi;
//! - [`theory`] — closed-form AWGN baselines used to validate the
//!   simulator;
//! - [`linksim`] — the deterministic, parallel end-to-end BER engine,
//!   one-shot ([`linksim::simulate_link`]) or resumable in rounds
//!   ([`linksim::LinkSim`]);
//! - [`campaign`] — deterministic SNR-sweep campaigns over a demapper
//!   family × channel scenario × SNR matrix with statistical early
//!   stopping and JSON waterfall artefacts (DESIGN.md §8);
//! - [`trajectory`] — scripted time-varying channels: a piecewise
//!   scenario DSL over frame time whose playback
//!   ([`trajectory::TrajectoryChannel`]) lowers each frame's state to
//!   the static [`channel`] stages (DESIGN.md §10).
//!
//! ## LLR sign convention
//!
//! Throughout the workspace `LLR = ln P(b=0|y) − ln P(b=1|y)`:
//! **positive LLR means bit 0**. The paper displays the opposite sign;
//! only the convention differs, decisions are identical.

#![warn(missing_docs)]

pub mod bits;
pub mod campaign;
pub mod channel;
pub mod constellation;
pub mod demapper;
pub mod ecc;
pub mod equalizer;
pub mod frame;
pub mod linksim;
pub mod metrics;
pub mod snr;
pub mod theory;
pub mod trajectory;

pub use campaign::{
    run_campaign, CampaignPoint, CampaignReport, CampaignSpec, ChannelScenario, DemapperFamily,
    EarlyStop,
};
pub use channel::{Awgn, Channel, ChannelChain, PhaseOffset};
pub use constellation::Constellation;
pub use demapper::{Demapper, ExactLogMap, HardNearest, MaxLogMap};
pub use equalizer::{AdaptiveEqualizer, EqualizedDemapper, EqualizerConfig, EqualizerMode};
pub use linksim::{simulate_link, LinkResult, LinkSim, LinkSpec};
pub use trajectory::{ChannelState, Taps, Trajectory, TrajectoryChannel};
