//! Closed-form AWGN error-rate baselines.
//!
//! Used to validate the Monte-Carlo link simulator: a correct
//! implementation of Gray 16-QAM + max-log demapping must land on the
//! exact [`ber_qam16_gray`] curve within binomial confidence bounds.
//! All formulas take **Es/N0 in dB** (the paper's SNR axis) and assume
//! unit-energy constellations with per-dimension noise σ² = N0/2.

use crate::snr::db_to_linear;
use hybridem_mathkit::special::qfunc;

/// Exact BER of Gray-coded QPSK (4-QAM) over AWGN.
pub fn ber_qpsk_gray(es_n0_db: f64) -> f64 {
    // Per-bit: Q(sqrt(2·Eb/N0)), Eb/N0 = Es/N0 / 2.
    let es_n0 = db_to_linear(es_n0_db);
    qfunc((es_n0).sqrt())
}

/// Exact BER of Gray-coded square 16-QAM over AWGN.
///
/// Derivation: 16-QAM is two independent Gray 4-PAM streams with
/// amplitude `a = sqrt(Es/10)` and noise σ per dimension. Averaging the
/// MSB and LSB error rates gives
/// `P_b = (3/4)·Q(x) + (1/2)·Q(3x) − (1/4)·Q(5x)` with `x = a/σ =
/// sqrt(Es/N0 / 5) · √2 … = sqrt(2·Es/(10·N0))` simplified below.
pub fn ber_qam16_gray(es_n0_db: f64) -> f64 {
    let es_n0 = db_to_linear(es_n0_db);
    // a²/σ² = (Es/10)/(N0/2) = Es/N0 / 5.
    let x = (es_n0 / 5.0).sqrt();
    0.75 * qfunc(x) + 0.5 * qfunc(3.0 * x) - 0.25 * qfunc(5.0 * x)
}

/// Exact symbol error rate of square 16-QAM over AWGN (any labelling).
pub fn ser_qam16(es_n0_db: f64) -> f64 {
    let es_n0 = db_to_linear(es_n0_db);
    let x = (es_n0 / 5.0).sqrt();
    // SER = 1 − (1 − P_pam)², P_pam = (3/2)·Q(x) for 4-PAM.
    let p_pam = 1.5 * qfunc(x);
    1.0 - (1.0 - p_pam) * (1.0 - p_pam)
}

/// Nearest-neighbour union-bound approximation of Gray square M-QAM BER
/// (standard textbook formula) — used for 64/256-QAM extension sweeps.
pub fn ber_qam_gray_approx(order: usize, es_n0_db: f64) -> f64 {
    assert!(matches!(order, 4 | 16 | 64 | 256), "order {order}");
    let m = (order as f64).log2();
    let es_n0 = db_to_linear(es_n0_db);
    let arg = (3.0 * es_n0 / (order as f64 - 1.0)).sqrt();
    4.0 / m * (1.0 - 1.0 / (order as f64).sqrt()) * qfunc(arg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qam16_reference_points() {
        // Exact values: at Es/N0 = 10 dB, x = √2 ⇒
        // 0.75·Q(1.414) + 0.5·Q(4.243) − 0.25·Q(7.07) ≈ 0.0590;
        // at Es/N0 = 16 dB ≈ 1.8e-3.
        let b10 = ber_qam16_gray(10.0);
        assert!((b10 - 0.0590).abs() < 1e-3, "10 dB: {b10}");
        let b16 = ber_qam16_gray(16.0);
        assert!(b16 > 1.0e-3 && b16 < 3.0e-3, "16 dB: {b16}");
    }

    #[test]
    fn paper_table1_baselines_use_ebn0() {
        // The paper's Table 1 reports baseline BERs 0.19 (SNR −2 dB) and
        // 0.0103 (SNR 8 dB). Interpreting the paper's SNR as Eb/N0
        // (Es/N0 = SNR + 10·log10(4)) reproduces both within a few
        // percent, pinning down the axis convention used throughout the
        // reproduction.
        let to_es = |eb: f64| crate::snr::ebn0_to_esn0_db(eb, 4);
        let b_m2 = ber_qam16_gray(to_es(-2.0));
        assert!((b_m2 - 0.19).abs() < 0.01, "−2 dB: {b_m2}");
        let b_8 = ber_qam16_gray(to_es(8.0));
        assert!((b_8 - 0.0103).abs() < 0.0025, "8 dB: {b_8}");
    }

    #[test]
    fn qpsk_reference_point() {
        // QPSK at Es/N0 = 10 dB: Q(sqrt(10)) ≈ 7.8e-4.
        let b = ber_qpsk_gray(10.0);
        assert!((b - 7.83e-4).abs() < 5e-5, "{b}");
    }

    #[test]
    fn monotone_decreasing_in_snr() {
        let mut last = 1.0f64;
        for snr in [-4.0, 0.0, 4.0, 8.0, 12.0, 16.0] {
            let b = ber_qam16_gray(snr);
            assert!(b < last, "BER must fall with SNR");
            assert!(b > 0.0 && b < 0.5);
            last = b;
        }
    }

    #[test]
    fn ser_upper_bounds_ber_times_bits() {
        // Each symbol error flips at least one of 4 bits:
        // BER ≥ SER/4 and BER ≤ SER.
        for snr in [0.0, 6.0, 12.0] {
            let ber = ber_qam16_gray(snr);
            let ser = ser_qam16(snr);
            assert!(ber <= ser + 1e-12);
            assert!(ber >= ser / 4.0 - 1e-12);
        }
    }

    #[test]
    fn approx_close_to_exact_at_high_snr() {
        for snr in [12.0, 16.0] {
            let exact = ber_qam16_gray(snr);
            let approx = ber_qam_gray_approx(16, snr);
            assert!(
                (exact - approx).abs() / exact < 0.2,
                "snr {snr}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn qpsk_beats_qam16_at_same_es_n0() {
        for snr in [0.0, 5.0, 10.0] {
            assert!(ber_qpsk_gray(snr) < ber_qam16_gray(snr));
        }
    }
}
