//! Property-based tests of the FPGA substrate: fold invariance,
//! quantisation fidelity, timing and resource monotonicity.

use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::Demapper;
use hybridem_fixed::{QFormat, Rounding};
use hybridem_fpga::demapper_accel::{SoftDemapperAccel, SoftDemapperConfig};
use hybridem_fpga::mvau::{Folding, HwActivation, Mvau, MvauConfig};
use hybridem_fpga::pipeline::{ExecutionMode, PipelineTiming, StageTiming};
use hybridem_fpga::power::PowerModel;
use hybridem_fpga::resources::ResourceUsage;
use hybridem_fpga::sigmoid_lut::SigmoidLut;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;
use proptest::prelude::*;

fn random_dense(out_dim: usize, in_dim: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut w = Matrix::zeros(out_dim, in_dim);
    for v in w.as_mut_slice() {
        *v = rng.normal_f32() * 0.4;
    }
    let mut b = Matrix::zeros(1, out_dim);
    for v in b.as_mut_slice() {
        *v = rng.normal_f32() * 0.2;
    }
    (w, b)
}

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn accel_block_bit_exact_with_per_symbol_process(
        len in 0usize..33,
        theta in -3.2f32..3.2,
        sigma in 0.05f32..0.5,
        seed in any::<u64>(),
    ) {
        // The fixed-point block kernel equals a per-symbol `process`
        // loop exactly — integer arithmetic end to end — including on
        // rotated centroid sets.
        let centroids = Constellation::qam_gray(16).rotated(theta);
        let accel = SoftDemapperAccel::new(
            SoftDemapperConfig::paper_default(),
            centroids.points(),
            sigma,
        );
        let m = accel.bits_per_symbol();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let ys: Vec<_> = (0..len)
            .map(|_| hybridem_mathkit::complex::C32::new(rng.normal_f32(), rng.normal_f32()))
            .collect();
        let mut raw_block = vec![0i64; len * m];
        accel.process_block(&ys, &mut raw_block);
        let mut f32_block = vec![0f32; len * m];
        accel.demap_block(&ys, &mut f32_block);
        let mut f32_single = vec![0f32; m];
        for (s, &y) in ys.iter().enumerate() {
            prop_assert_eq!(&raw_block[s * m..(s + 1) * m], &accel.process(y)[..]);
            accel.llrs_f32(y, &mut f32_single);
            for k in 0..m {
                prop_assert_eq!(f32_block[s * m + k].to_bits(), f32_single[k].to_bits());
            }
        }
    }

    #[test]
    fn mvau_fold_invariance_random_layers(
        in_pow in 1usize..5, out_pow in 1usize..5, seed in any::<u64>()
    ) {
        let in_dim = 1 << in_pow;
        let out_dim = 1 << out_pow;
        let fmt = QFormat::signed(8, 6);
        let (w, b) = random_dense(out_dim, in_dim, seed);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 1);
        let input: Vec<i64> = (0..in_dim)
            .map(|_| fmt.raw_from_f64(rng.normal_f64() * 0.5, Rounding::Nearest))
            .collect();

        let reference = {
            let cfg = MvauConfig::full_parallel(in_dim, out_dim, fmt, fmt, fmt, false);
            Mvau::from_dense(cfg, &w, &b, HwActivation::Relu).process(&input)
        };
        for &simd in &divisors(in_dim) {
            for &pe in &divisors(out_dim) {
                let cfg = MvauConfig {
                    in_dim, out_dim, folding: Folding::new(pe, simd),
                    weight_format: fmt, in_format: fmt, out_format: fmt,
                    writable_weights: false,
                };
                let m = Mvau::from_dense(cfg, &w, &b, HwActivation::Relu);
                prop_assert_eq!(m.process(&input), reference.clone(),
                    "simd={} pe={}", simd, pe);
            }
        }
    }

    #[test]
    fn mvau_matches_float_within_quantisation_bound(seed in any::<u64>()) {
        let fmt = QFormat::signed(10, 7);
        let (w, b) = random_dense(8, 8, seed);
        let cfg = MvauConfig::full_parallel(8, 8, fmt, fmt, QFormat::signed(12, 8), false);
        let m = Mvau::from_dense(cfg, &w, &b, HwActivation::Linear);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 2);
        let xs: Vec<f64> = (0..8).map(|_| rng.normal_f64() * 0.5).collect();
        let raw: Vec<i64> = xs.iter().map(|&x| fmt.raw_from_f64(x, Rounding::Nearest)).collect();
        let out = m.process(&raw);
        // Float reference on the quantised weights/inputs.
        let wq = m.effective_weights();
        for o in 0..8 {
            let mut acc = b[(0, o)] as f64;
            // Bias is quantised to the accumulator format: allow its lsb.
            for i in 0..8 {
                acc += wq[(o, i)] as f64 * fmt.f64_from_raw(raw[i]);
            }
            let got = QFormat::signed(12, 8).f64_from_raw(out[o]);
            let tol = QFormat::signed(12, 8).resolution()
                + m.config().acc_format().resolution();
            prop_assert!((got - acc).abs() <= tol + 1e-9,
                "output {}: {} vs {}", o, got, acc);
        }
    }

    #[test]
    fn dsp_ii_product_is_constant(in_pow in 2usize..5, out_pow in 2usize..5) {
        // DSP × II = MAC count for every folding: the resource/time
        // trade-off is exact.
        let in_dim = 1 << in_pow;
        let out_dim = 1 << out_pow;
        let fmt = QFormat::signed(8, 6);
        let (w, b) = random_dense(out_dim, in_dim, 3);
        let macs = (in_dim * out_dim) as u64;
        for &simd in &divisors(in_dim) {
            for &pe in &divisors(out_dim) {
                let cfg = MvauConfig {
                    in_dim, out_dim, folding: Folding::new(pe, simd),
                    weight_format: fmt, in_format: fmt, out_format: fmt,
                    writable_weights: false,
                };
                let m = Mvau::from_dense(cfg, &w, &b, HwActivation::Relu);
                prop_assert_eq!(m.resources().dsp * m.config().ii_cycles(), macs);
            }
        }
    }

    #[test]
    fn pipeline_simulation_matches_analysis(
        stages in proptest::collection::vec((1u64..6, 1u64..12), 1..6),
        iterative in any::<bool>(),
    ) {
        let stages: Vec<StageTiming> = stages
            .into_iter()
            .map(|(ii, extra)| StageTiming { ii, depth: ii + extra })
            .collect();
        let mode = if iterative { ExecutionMode::Iterative } else { ExecutionMode::Pipelined };
        let p = PipelineTiming::new(stages, mode, 100.0);
        let trace = p.simulate(64);
        prop_assert_eq!(trace.latency_cycles, p.total_depth_cycles());
        prop_assert_eq!(trace.ii_cycles, p.ii_cycles());
        // Completion times strictly increase.
        for w in trace.finish_cycles.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn power_monotone_in_resources(lut in 0u64..50_000, ff in 0u64..50_000,
                                   dsp in 0u64..360, bram in 0.0f64..200.0) {
        let m = PowerModel::default();
        let base = ResourceUsage { lut, ff, dsp, bram36: bram };
        let p0 = m.power_w(&base, 150.0, 1.0);
        let bigger = ResourceUsage { lut: lut + 100, ff, dsp, bram36: bram };
        prop_assert!(m.power_w(&bigger, 150.0, 1.0) > p0);
        prop_assert!(p0 >= m.static_w);
        // Energy scales inversely with throughput.
        let e1 = m.energy_per_symbol_j(&base, 150.0, 1.0, 1e7);
        let e2 = m.energy_per_symbol_j(&base, 150.0, 1.0, 2e7);
        prop_assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_lut_error_bound_random_configs(addr in 5u32..12, range in 2.0f64..12.0) {
        let lut = SigmoidLut::new(addr, range, QFormat::unsigned(10, 10));
        let bound = lut.error_bound();
        let mut x = -range * 1.5;
        while x < range * 1.5 {
            let approx = lut.out_format.f64_from_raw(lut.lookup_f64(x));
            let exact = hybridem_mathkit::special::sigmoid(x);
            prop_assert!((approx - exact).abs() <= bound,
                "x={}: {} vs {} bound {}", x, approx, exact, bound);
            x += range / 37.0;
        }
    }

    #[test]
    fn relu_mvau_outputs_nonnegative(seed in any::<u64>()) {
        let fmt = QFormat::signed(8, 5);
        let (w, b) = random_dense(6, 4, seed);
        let cfg = MvauConfig::full_parallel(4, 6, fmt, fmt, fmt, false);
        let m = Mvau::from_dense(cfg, &w, &b, HwActivation::Relu);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 3);
        let input: Vec<i64> = (0..4)
            .map(|_| fmt.raw_from_f64(rng.normal_f64(), Rounding::Nearest))
            .collect();
        for &o in &m.process(&input) {
            prop_assert!(o >= 0);
        }
    }
}

proptest! {
    // Width × format sweep of the SIMD fast path: few cases, each
    // re-run at every supported lane width (the kernel is
    // deterministic per (width, input)).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn mvau_block_bit_exact_at_every_lane_width_and_weight_width(seed in any::<u64>()) {
        // The SIMD MAC kernel's contract (DESIGN.md §11): the i32
        // fast path — output-stationary MACs plus the branchless
        // activation epilogue — is bit-identical to the per-symbol
        // scalar pass at every supported lane width, for W4/W6/W8
        // formats, ReLU and linear (rounding-cast) epilogues, and
        // block lengths covering empty input, pure remainders (1, 7),
        // one full tile (256) and a multi-tile stream with a trailing
        // remainder (4097, W8 only to bound debug-build time).
        use hybridem_fpga::mvau::MvauScratch;
        use hybridem_mathkit::simd::LaneWidth;
        let combos = [
            (QFormat::signed(4, 2), HwActivation::Relu),
            (QFormat::signed(6, 4), HwActivation::Linear),
            (QFormat::signed(8, 6), HwActivation::Relu),
            (QFormat::signed(8, 6), HwActivation::Linear),
        ];
        for (fmt, act) in combos {
            let (w, b) = random_dense(16, 16, seed ^ u64::from(fmt.total_bits));
            let cfg = MvauConfig::full_parallel(16, 16, fmt, fmt, fmt, false);
            let m = Mvau::from_dense(cfg, &w, &b, act);
            prop_assert!(m.has_fast_path(), "pinned shapes must stay on the fast path");
            let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 99);
            let full_len = if fmt.total_bits == 8 { 4097 } else { 256 };
            let inputs: Vec<i64> = (0..full_len * 16)
                .map(|_| fmt.raw_from_f64(rng.normal_f64() * 0.5, Rounding::Nearest))
                .collect();
            let mut scratch = MvauScratch::new();
            for &n in &[0usize, 1, 7, 256, full_len] {
                let tile = &inputs[..n * 16];
                let mut reference = vec![0i64; n * 16];
                for (sym, slot) in tile.chunks_exact(16).zip(reference.chunks_exact_mut(16)) {
                    m.process_into(sym, slot);
                }
                for width in LaneWidth::supported() {
                    let mut got = vec![0i64; n * 16];
                    m.process_block_into_at(width, tile, &mut got, &mut scratch);
                    prop_assert_eq!(&got, &reference,
                        "n {} width {:?} fmt W{}", n, width, fmt.total_bits);
                }
            }
        }
    }
}
