//! No-alloc-after-warm-up contract of the fpga crate's integer hot
//! paths (the fpga-side extension of the nn crate's allocator test):
//! the scratch-based block kernels and the legacy per-symbol entry
//! points they back must allocate nothing once their buffers are warm.

use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::Demapper;
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_fpga::demapper_accel::{SoftDemapperAccel, SoftDemapperConfig};
use hybridem_fpga::graph::{compile, GraphScratch};
use hybridem_fpga::mvau::MvauScratch;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::model::MlpSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator with a per-thread allocation counter: integration
/// tests run on their own threads, so counting thread-locally isolates
/// the measured region from the harness and from other tests.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn samples(n: usize, seed: u64) -> Vec<C32> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| C32::new(rng.normal_f32() * 0.7, rng.normal_f32() * 0.7))
        .collect()
}

#[test]
fn accel_block_and_per_symbol_paths_allocate_nothing_when_warm() {
    let qam = Constellation::qam_gray(16);
    let accel = SoftDemapperAccel::new(SoftDemapperConfig::paper_default(), qam.points(), 0.2);
    let ys = samples(512, 1);
    let mut out = vec![0f32; ys.len() * 4];
    // Warm-up: thread-local tile/raw scratch grows to its high-water mark.
    accel.demap_block(&ys, &mut out);

    let before = allocations();
    for _ in 0..10 {
        accel.demap_block(&ys, &mut out);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm accel demap_block must not allocate"
    );

    // The legacy per-symbol view stages LLRs on the stack.
    let mut single = [0f32; 4];
    let before = allocations();
    for &y in &ys {
        accel.llrs_f32(y, &mut single);
        accel.llrs(y, &mut single);
    }
    assert_eq!(
        allocations() - before,
        0,
        "per-symbol accel demapping must not allocate"
    );
}

#[test]
fn quantized_graph_block_pipeline_allocates_nothing_when_warm() {
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let model = MlpSpec::paper_demapper_logits().build(&mut rng);
    let q = |t: u32, f: u32| QuantSpec {
        format: QFormat::signed(t, f),
        rounding: Rounding::Nearest,
    };
    let graph = compile(&model, &[q(8, 5), q(8, 6), q(8, 6), q(10, 5)]);
    let ys = samples(512, 3);

    // Explicit-scratch integer path.
    let mut scratch = GraphScratch::new();
    let mut raw = Vec::new();
    graph.process_block_raw(&ys, &mut raw, &mut scratch);
    let before = allocations();
    for _ in 0..10 {
        graph.process_block_raw(&ys, &mut raw, &mut scratch);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm process_block_raw must not allocate"
    );

    // Receiver-facing Demapper path (thread-local scratch).
    let mut out = vec![0f32; ys.len() * 4];
    graph.demap_block(&ys, &mut out);
    let mut single = [0f32; 4];
    graph.llrs(ys[0], &mut single);
    let before = allocations();
    for _ in 0..10 {
        graph.demap_block(&ys, &mut out);
    }
    for &y in &ys[..64] {
        graph.llrs(y, &mut single);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm graph demapping must not allocate"
    );

    // Shrunk blocks reuse the warm buffers too.
    let small = &ys[..16];
    let mut small_out = vec![0f32; small.len() * 4];
    graph.demap_block(small, &mut small_out);
    let before = allocations();
    graph.demap_block(small, &mut small_out);
    assert_eq!(allocations() - before, 0, "shrunk block must not allocate");
}

#[test]
fn mvau_block_kernel_allocates_nothing_when_warm() {
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let model = MlpSpec::paper_demapper_logits().build(&mut rng);
    let q = |t: u32, f: u32| QuantSpec {
        format: QFormat::signed(t, f),
        rounding: Rounding::Nearest,
    };
    let graph = compile(&model, &[q(8, 5), q(8, 6), q(8, 6), q(10, 5)]);
    let mvau = &graph.mvaus()[1];
    let inputs: Vec<i64> = (0..1024 * 16)
        .map(|i| ((i * 13) % 127) as i64 - 63)
        .collect();
    let mut out = vec![0i64; 1024 * 16];
    let mut scratch = MvauScratch::new();
    mvau.process_block_into(&inputs, &mut out, &mut scratch);

    let before = allocations();
    for _ in 0..10 {
        mvau.process_block_into(&inputs, &mut out, &mut scratch);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm process_block_into must not allocate"
    );

    // Per-symbol scratch-free entry point.
    let mut single = [0i64; 16];
    let before = allocations();
    for sym in inputs.chunks_exact(16).take(64) {
        mvau.process_into(sym, &mut single);
    }
    assert_eq!(allocations() - before, 0, "process_into must not allocate");
}
