//! Folding-model consistency: the `Folding { pe, simd }` knob must
//! mean the same thing to the resource/latency model, the software
//! block kernel and the graph compiler (DESIGN.md §11.3), and invalid
//! factors must be rejected with errors that say what is wrong.

use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_fpga::graph::{compile, compile_spec, GraphSpec};
use hybridem_fpga::mvau::{Folding, FoldingError, HwActivation, Mvau, MvauConfig};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::model::MlpSpec;

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

fn test_mvau(folding: Folding) -> Mvau {
    let fmt = QFormat::signed(8, 6);
    let mut cfg = MvauConfig::full_parallel(16, 16, fmt, fmt, fmt, false);
    cfg.folding = folding;
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let mut w = Matrix::zeros(16, 16);
    for v in w.as_mut_slice() {
        *v = rng.normal_f32() * 0.3;
    }
    let b = Matrix::zeros(1, 16);
    Mvau::from_dense(cfg, &w, &b, HwActivation::Relu)
}

#[test]
fn invalid_foldings_rejected_with_clear_errors() {
    assert_eq!(
        Folding::new(0, 4).validate_for(16, 16),
        Err(FoldingError::ZeroFactor)
    );
    assert_eq!(
        Folding::new(4, 0).validate_for(16, 16),
        Err(FoldingError::ZeroFactor)
    );
    let pe_err = Folding::new(3, 4).validate_for(16, 16).unwrap_err();
    assert_eq!(pe_err, FoldingError::PeDoesNotDivide { pe: 3, out_dim: 16 });
    assert_eq!(pe_err.to_string(), "pe=3 must divide out_dim=16");
    let simd_err = Folding::new(4, 5).validate_for(16, 16).unwrap_err();
    assert_eq!(
        simd_err,
        FoldingError::SimdDoesNotDivide {
            simd: 5,
            in_dim: 16
        }
    );
    assert_eq!(simd_err.to_string(), "simd=5 must divide in_dim=16");
    // `refold` refuses the same factors instead of building a unit
    // with a broken schedule.
    let m = test_mvau(Folding::full(16, 16));
    assert!(matches!(
        m.refold(Folding::new(3, 4)),
        Err(FoldingError::PeDoesNotDivide { .. })
    ));
}

#[test]
fn fit_to_picks_the_largest_valid_divisors() {
    for in_dim in [2usize, 6, 16] {
        for out_dim in [4usize, 12, 16] {
            for pe_req in 0..=2 * out_dim {
                for simd_req in 0..=2 * in_dim {
                    let fitted = Folding::new(pe_req, simd_req).fit_to(in_dim, out_dim);
                    fitted
                        .validate_for(in_dim, out_dim)
                        .expect("fitted folding valid");
                    // Never exceeds a non-zero request, and is maximal
                    // among divisors under it.
                    if pe_req > 0 {
                        assert!(fitted.pe <= pe_req.min(out_dim));
                        assert!(!(fitted.pe + 1..=pe_req.min(out_dim)).any(|d| out_dim % d == 0));
                    }
                    if simd_req > 0 {
                        assert!(fitted.simd <= simd_req.min(in_dim));
                        assert!(!(fitted.simd + 1..=simd_req.min(in_dim)).any(|d| in_dim % d == 0));
                    }
                }
            }
        }
    }
}

#[test]
fn resource_op_counts_scale_with_folding() {
    // One knob, two readings: multiplier count tracks pe·simd exactly
    // (the replicated MAC lanes), the initiation interval tracks the
    // fold counts exactly, and their product — work per input — is
    // invariant. The software kernel iterates the same schedule, so
    // this is the whole hardware/software contract of the knob.
    let macs = 16u64 * 16;
    let mut last_dsp = 0;
    for &simd in &divisors(16) {
        for &pe in &divisors(16) {
            let m = test_mvau(Folding::new(pe, simd));
            let r = m.resources();
            assert_eq!(r.dsp, (pe * simd) as u64, "pe={pe} simd={simd}");
            assert_eq!(
                m.config().ii_cycles(),
                (16 / simd) as u64 * (16 / pe) as u64
            );
            assert_eq!(r.dsp * m.config().ii_cycles(), macs);
            // More parallelism never shrinks the fabric cost.
            if pe * simd > last_dsp as usize {
                last_dsp = r.dsp;
            }
        }
    }
    // Endpoints: unit folding is one multiplier over in·out cycles;
    // full folding is in·out multipliers at II=1.
    assert_eq!(test_mvau(Folding::unit()).resources().dsp, 1);
    assert_eq!(test_mvau(Folding::full(16, 16)).config().ii_cycles(), 1);
    let lut_unit = test_mvau(Folding::unit()).resources().lut;
    let lut_full = test_mvau(Folding::full(16, 16)).resources().lut;
    assert!(
        lut_full > lut_unit,
        "fully parallel fabric must cost more LUTs ({lut_full} vs {lut_unit})"
    );
}

#[test]
fn graph_folding_is_fitted_per_layer_and_fold_invariant() {
    // One uniform request across the paper demapper's 2→16→16→4
    // layers: each layer gets the request fitted to its own shape, and
    // the integer outputs stay bit-identical to the fully parallel
    // compile (fold invariance lifts from the MVAU to the graph).
    let model = MlpSpec::paper_demapper().build(&mut Xoshiro256pp::seed_from_u64(9));
    let q = |fmt: QFormat| QuantSpec {
        format: fmt,
        rounding: Rounding::Nearest,
    };
    let boundaries = vec![
        q(QFormat::signed(8, 5)),
        q(QFormat::signed(8, 4)),
        q(QFormat::signed(8, 4)),
        q(QFormat::unsigned(8, 8)),
    ];
    let parallel = compile(&model, &boundaries);
    let mut spec = GraphSpec::uniform(boundaries);
    spec.folding = Some(Folding::new(4, 4));
    let folded = compile_spec(&model, &spec);
    let dims = [(2usize, 16usize), (16, 16), (16, 4)];
    for (m, &(in_dim, out_dim)) in folded.mvaus().iter().zip(&dims) {
        let want = Folding::new(4, 4).fit_to(in_dim, out_dim);
        assert_eq!(m.config().pe(), want.pe, "{in_dim}→{out_dim}");
        assert_eq!(m.config().simd(), want.simd, "{in_dim}→{out_dim}");
    }
    // `with_folding` refits an already compiled graph the same way.
    let refolded = parallel.with_folding(Folding::new(4, 4));
    for (a, b) in refolded.mvaus().iter().zip(folded.mvaus()) {
        assert_eq!(a.config().pe(), b.config().pe());
        assert_eq!(a.config().simd(), b.config().simd());
    }
    let mut rng = Xoshiro256pp::seed_from_u64(10);
    for _ in 0..64 {
        let y = C32::new(rng.normal_f32(), rng.normal_f32());
        assert_eq!(parallel.process_iq(y), folded.process_iq(y));
        assert_eq!(parallel.process_iq(y), refolded.process_iq(y));
    }
}
