//! The quantized-graph IR contract (DESIGN.md §9): block execution is
//! bit-exact versus the per-symbol path at every width and block
//! length, and QAT snapshots round-trip through JSON to the identical
//! integer program.

use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_fpga::graph::{compile, compile_qat, GraphScratch, QuantizedGraph};
use hybridem_fpga::mvau::MvauScratch;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::model::{insert_fake_quant, MlpSpec};
use hybridem_nn::Sequential;

fn float_model(seed: u64) -> Sequential {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    MlpSpec::paper_demapper_logits().build(&mut rng)
}

/// Boundary specs for a uniform width sweep: ADC/LLR buses at
/// `bits.max(6)`, hidden activations at `bits` (the core::qat layout).
fn boundaries(bits: u32) -> Vec<QuantSpec> {
    let io = bits.max(6);
    let q = |fmt: QFormat| QuantSpec {
        format: fmt,
        rounding: Rounding::Nearest,
    };
    vec![
        q(QFormat::signed(io, io - 3)),
        q(QFormat::signed(bits, bits - 1)),
        q(QFormat::signed(bits, bits - 1)),
        q(QFormat::signed(io, io - 4)),
    ]
}

fn samples(n: usize, seed: u64) -> Vec<C32> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
        .collect()
}

/// Per-symbol reference: quantise one sample and fold it through the
/// MVAU chain with the allocating per-symbol entry points.
fn reference_raw(g: &QuantizedGraph, y: C32) -> Vec<i64> {
    let f = g.input_format();
    let mut raw = vec![
        f.raw_from_f64(y.re as f64, Rounding::Nearest),
        f.raw_from_f64(y.im as f64, Rounding::Nearest),
    ];
    for m in g.mvaus() {
        raw = m.process(&raw);
    }
    raw
}

#[test]
fn block_bit_exact_with_per_symbol_all_widths_and_lengths() {
    for bits in [4u32, 6, 8] {
        let model = float_model(bits as u64);
        let g = compile(&model, &boundaries(bits));
        let mut scratch = GraphScratch::new();
        let mut raw_block = Vec::new();
        for len in [0usize, 1, 256, 4096] {
            let ys = samples(len, 1000 + bits as u64);
            g.process_block_raw(&ys, &mut raw_block, &mut scratch);
            assert_eq!(raw_block.len(), len * 4, "W{bits} n={len}");
            for (s, &y) in ys.iter().enumerate() {
                assert_eq!(
                    &raw_block[s * 4..(s + 1) * 4],
                    &reference_raw(&g, y)[..],
                    "W{bits} n={len} symbol {s}: block and per-symbol integer \
                     outputs must be identical"
                );
            }
        }
    }
}

#[test]
fn demapper_block_llrs_bit_exact_with_per_symbol_llrs() {
    use hybridem_comm::demapper::Demapper;
    for bits in [4u32, 6, 8] {
        let g = compile(&float_model(7), &boundaries(bits));
        let ys = samples(301, 2000 + bits as u64);
        let mut block = vec![0f32; ys.len() * 4];
        g.demap_block(&ys, &mut block);
        let mut single = [0f32; 4];
        for (s, &y) in ys.iter().enumerate() {
            g.llrs(y, &mut single);
            for k in 0..4 {
                assert_eq!(
                    block[s * 4 + k].to_bits(),
                    single[k].to_bits(),
                    "W{bits} symbol {s} bit {k}"
                );
            }
        }
    }
}

#[test]
fn mvau_block_kernel_bit_exact_at_all_sweep_lengths() {
    let g = compile(&float_model(9), &boundaries(8));
    let m = &g.mvaus()[1]; // the 16×16 hidden layer
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let mut scratch = MvauScratch::new();
    for n in [0usize, 1, 256, 4096] {
        let f = m.config().in_format;
        let inputs: Vec<i64> = (0..n * 16)
            .map(|_| f.raw_from_f64(rng.normal_f64() * 0.5, Rounding::Nearest))
            .collect();
        let mut block = vec![0i64; n * 16];
        m.process_block_into(&inputs, &mut block, &mut scratch);
        for s in 0..n {
            assert_eq!(
                &block[s * 16..(s + 1) * 16],
                &m.process(&inputs[s * 16..(s + 1) * 16])[..],
                "n={n} symbol {s}"
            );
        }
    }
}

#[test]
fn qat_snapshot_json_round_trip_restores_identical_integer_outputs() {
    for bits in [4u32, 6, 8] {
        let qat = insert_fake_quant(&float_model(20 + bits as u64), &boundaries(bits));
        let json = qat.to_json();
        let restored = Sequential::from_json(&json).expect("QAT snapshot must parse");

        let g1 = compile_qat(&qat, bits);
        let g2 = compile_qat(&restored, bits);
        assert_eq!(g1.weight_bits(), g2.weight_bits());
        assert_eq!(g1.input_format(), g2.input_format());
        assert_eq!(g1.output_format(), g2.output_format());

        let ys = samples(128, 30 + bits as u64);
        let mut s1 = GraphScratch::new();
        let mut s2 = GraphScratch::new();
        let (mut r1, mut r2) = (Vec::new(), Vec::new());
        g1.process_block_raw(&ys, &mut r1, &mut s1);
        g2.process_block_raw(&ys, &mut r2, &mut s2);
        assert_eq!(
            r1, r2,
            "W{bits}: the graph compiled from a JSON-restored QAT model \
             must produce identical raw integers"
        );
    }
}

#[test]
fn compile_qat_reads_the_boundaries_the_model_was_trained_with() {
    let bounds = boundaries(6);
    let qat = insert_fake_quant(&float_model(42), &bounds);
    let via_qat = compile_qat(&qat, 6);
    // Compiling the same float weights against the same explicit
    // boundary list must produce the identical integer program (the
    // FakeQuant layers are transparent to the lowering).
    let via_explicit = compile(&qat, &bounds);
    let ys = samples(64, 43);
    let mut s1 = GraphScratch::new();
    let mut s2 = GraphScratch::new();
    let (mut r1, mut r2) = (Vec::new(), Vec::new());
    via_qat.process_block_raw(&ys, &mut r1, &mut s1);
    via_explicit.process_block_raw(&ys, &mut r2, &mut s2);
    assert_eq!(r1, r2);
}
