//! Design assembly: trained model → deployable hardware design.
//!
//! [`build_inference_design`] performs the deployment flow the paper
//! runs through Vivado HLS: range-calibrate every tensor, quantise
//! weights and activations to 8-bit formats, lower the model through
//! the quantized-graph IR ([`crate::graph`], one fully-unfolded MVAU
//! per dense layer with runtime-writable weights, since retraining
//! updates them in place), and attach the stream interface.
//! [`build_soft_demapper_design`] wraps the centroid max-log
//! accelerator, and [`build_trainer_design`] the on-chip trainer.

use crate::demapper_accel::{SoftDemapperAccel, SoftDemapperConfig};
use crate::graph::{compile_spec, GraphSpec, QuantizedGraph};
use crate::mvau::Mvau;
use crate::pipeline::{ExecutionMode, PipelineTiming, StageTiming};
use crate::power::PowerModel;
use crate::report::ImplReport;
use crate::resources::ResourceUsage;
use crate::trainer::{TrainerConfig, TrainerDesign};
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::matrix::Matrix;
use hybridem_nn::Sequential;

/// Fixed-point deployment parameters.
#[derive(Clone, Debug)]
pub struct DeployConfig {
    /// Bit width of weights.
    pub weight_bits: u32,
    /// Bit width of activations.
    pub act_bits: u32,
    /// I/Q input format (received symbols; ±4 range by default).
    pub input_format: QFormat,
    /// Sigmoid LUT address bits.
    pub sigmoid_addr_bits: u32,
    /// Fabric clock in MHz.
    pub clock_mhz: f64,
    /// Pipelining mode (the paper's inference module is iterative).
    pub mode: ExecutionMode,
}

impl Default for DeployConfig {
    fn default() -> Self {
        Self {
            weight_bits: 8,
            act_bits: 8,
            input_format: QFormat::signed(8, 5),
            sigmoid_addr_bits: 8,
            clock_mhz: 150.0,
            mode: ExecutionMode::Iterative,
        }
    }
}

/// A deployed ANN inference design: the quantised demapper datapath,
/// executing the shared integer IR ([`QuantizedGraph`], DESIGN.md §9).
pub struct InferenceDesign {
    graph: QuantizedGraph,
    timing: PipelineTiming,
    clock_mhz: f64,
}

impl InferenceDesign {
    /// Bit-exact inference: received sample → bit probabilities.
    pub fn process_iq(&self, y: C32) -> Vec<f32> {
        self.graph.process_iq(y)
    }

    /// The compiled integer program — the block-streaming executor,
    /// also a drop-in [`hybridem_comm::demapper::Demapper`].
    pub fn graph(&self) -> &QuantizedGraph {
        &self.graph
    }

    /// The MVAU chain.
    pub fn mvaus(&self) -> &[Mvau] {
        self.graph.mvaus()
    }

    /// Pipeline timing of the design.
    pub fn timing(&self) -> &PipelineTiming {
        &self.timing
    }

    /// Total resources including the stream-interface FIFO.
    pub fn resources(&self) -> ResourceUsage {
        let mut r: ResourceUsage = self.mvaus().iter().map(|m| m.resources()).sum();
        // AXI-stream input/output FIFO (half BRAM).
        r += ResourceUsage {
            bram36: 0.5,
            lut: 120,
            ff: 200,
            ..Default::default()
        };
        r
    }

    /// Table-2-style report (streaming activity = 1).
    pub fn report(&self, power: &PowerModel) -> ImplReport {
        let usage = self.resources();
        let thr = self.timing.throughput_per_s();
        ImplReport {
            name: "AE-inference".to_string(),
            clock_mhz: self.clock_mhz,
            latency_s: self.timing.latency_s(),
            throughput_sym_s: thr,
            power_w: power.power_w(&usage, self.clock_mhz, 1.0),
            energy_per_sym_j: power.energy_per_symbol_j(&usage, self.clock_mhz, 1.0, thr),
            usage,
        }
    }
}

/// Builds the quantised inference design from a trained model.
///
/// `calibration` provides representative received samples for the
/// activation range analysis (noisy symbols at the operating SNR).
pub fn build_inference_design(
    model: &Sequential,
    calibration: &[C32],
    cfg: &DeployConfig,
) -> InferenceDesign {
    assert_eq!(model.input_dim(), 2, "demapper models take I/Q inputs");
    assert!(!calibration.is_empty(), "need calibration samples");

    // Drive the calibration batch through the float model layer by
    // layer, recording pre-activation ranges of each dense layer.
    let mut batch = Matrix::zeros(calibration.len(), 2);
    for (r, c) in calibration.iter().enumerate() {
        batch.row_mut(r).copy_from_slice(&[c.re, c.im]);
    }

    // Per-dense-layer pre-activation range over the calibration batch.
    let mut pre_act_max: Vec<f32> = Vec::new();
    let mut x = batch;
    for layer in model.layers() {
        match layer.name() {
            "dense" => {
                let pre = layer.infer(&x);
                pre_act_max.push(pre.max_abs());
                x = pre;
            }
            "relu" | "sigmoid" | "tanh" => {
                assert!(
                    !pre_act_max.is_empty(),
                    "activation requires a preceding dense layer"
                );
                x = layer.infer(&x);
            }
            other => panic!("unsupported layer {other} for deployment"),
        }
    }

    // Lower through the shared IR: the calibration walk above becomes
    // the graph's boundary specs, so this builder, the QAT flow and
    // the ablations all execute the same integer program.
    // Sigmoid heads emit probabilities: all-fraction unsigned uses
    // every level on [0, 1). Linear (logits) heads feed LLRs, so the
    // sign must survive — fit a signed format to the calibrated logit
    // range instead of clamping negatives away.
    let n = pre_act_max.len();
    let out_format = if model.layers().last().map(|l| l.name()) == Some("sigmoid") {
        QFormat::unsigned(cfg.act_bits, cfg.act_bits)
    } else {
        QuantSpec::fit(cfg.act_bits, pre_act_max[n - 1] as f64, Rounding::Nearest).format
    };
    let mut boundaries = vec![QuantSpec {
        format: cfg.input_format,
        rounding: Rounding::Nearest,
    }];
    for (i, &range) in pre_act_max.iter().enumerate() {
        let format = if i + 1 == n {
            out_format
        } else {
            // Post-ReLU activations: fit the pre-activation range
            // (ReLU only clips negatives, magnitudes survive).
            QuantSpec::fit(cfg.act_bits, range as f64, Rounding::Nearest).format
        };
        boundaries.push(QuantSpec {
            format,
            rounding: Rounding::Nearest,
        });
    }
    let spec = GraphSpec {
        boundaries,
        weight_bits: vec![cfg.weight_bits; n],
        sigmoid_addr_bits: cfg.sigmoid_addr_bits,
        // Each sigmoid LUT clamps to its own layer's calibrated
        // pre-activation range.
        sigmoid_ranges: pre_act_max.iter().map(|&m| (m as f64).max(4.0)).collect(),
        writable_weights: true, // retraining rewrites weights in place
        folding: None,          // inference design: fully parallel
    };
    let graph = compile_spec(model, &spec);

    let stages: Vec<StageTiming> = graph
        .mvaus()
        .iter()
        .map(|m| StageTiming {
            ii: m.config().ii_cycles(),
            depth: m.config().depth_cycles(),
        })
        .collect();
    let timing = PipelineTiming::new(stages, cfg.mode, cfg.clock_mhz);

    InferenceDesign {
        graph,
        timing,
        clock_mhz: cfg.clock_mhz,
    }
}

/// A deployed hybrid soft-demapper design.
pub struct SoftDemapperDesign {
    /// The accelerator datapath.
    pub accel: SoftDemapperAccel,
    clock_mhz: f64,
}

impl SoftDemapperDesign {
    /// Table-2-style report.
    pub fn report(&self, power: &PowerModel) -> ImplReport {
        let usage = self.accel.resources();
        let t = self.accel.timing();
        let thr = t.throughput_per_s();
        ImplReport {
            name: "Soft-demapper (learned centroids)".to_string(),
            clock_mhz: self.clock_mhz,
            latency_s: t.latency_s(),
            throughput_sym_s: thr,
            power_w: power.power_w(&usage, self.clock_mhz, 1.0),
            energy_per_sym_j: power.energy_per_symbol_j(&usage, self.clock_mhz, 1.0, thr),
            usage,
        }
    }
}

/// Builds the hybrid soft-demapper design for extracted centroids.
pub fn build_soft_demapper_design(
    centroids: &[C32],
    sigma: f32,
    cfg: SoftDemapperConfig,
) -> SoftDemapperDesign {
    let clock = cfg.clock_mhz;
    SoftDemapperDesign {
        accel: SoftDemapperAccel::new(cfg, centroids, sigma),
        clock_mhz: clock,
    }
}

/// Builds the on-chip trainer design.
pub fn build_trainer_design(cfg: TrainerConfig) -> TrainerDesign {
    TrainerDesign::new(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::Xoshiro256pp;
    use hybridem_nn::model::MlpSpec;

    fn calibration(n: usize, seed: u64) -> Vec<C32> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
            .collect()
    }

    fn trained_ish_model(seed: u64) -> Sequential {
        // Untrained weights suffice for numeric-fidelity tests.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        MlpSpec::paper_demapper().build(&mut rng)
    }

    #[test]
    fn quantised_inference_tracks_float_model() {
        let model = trained_ish_model(1);
        let calib = calibration(256, 2);
        let design = build_inference_design(&model, &calib, &DeployConfig::default());
        let mut max_err = 0.0f32;
        for y in calibration(200, 3) {
            let hw = design.process_iq(y);
            let f = model.infer(&Matrix::from_rows(&[&[y.re, y.im]]));
            for k in 0..4 {
                max_err = max_err.max((hw[k] - f[(0, k)]).abs());
            }
        }
        // 8-bit activations: probabilities within a few percent.
        assert!(max_err < 0.08, "max probability error {max_err}");
    }

    #[test]
    fn paper_inference_operating_point() {
        let model = trained_ish_model(4);
        let design = build_inference_design(&model, &calibration(128, 5), &DeployConfig::default());
        let r = design.resources();
        // The Table-2 anchors: 352 DSP, 18.5 BRAM.
        assert_eq!(r.dsp, 352);
        assert!((r.bram36 - 18.5).abs() < 1e-9, "BRAM {}", r.bram36);
        // Iterative chain: 12-cycle latency at 150 MHz = 80 ns.
        let t = design.timing();
        assert_eq!(t.total_depth_cycles(), 12);
        assert!((t.latency_s() - 8.0e-8).abs() < 1e-9);
        assert!((t.throughput_per_s() - 1.25e7).abs() < 1e4);
        // Fits the device.
        assert!(crate::device::DeviceModel::zu3eg().fits(&r));
    }

    #[test]
    fn pipelined_mode_raises_throughput() {
        let model = trained_ish_model(6);
        let calib = calibration(64, 7);
        let iter = build_inference_design(&model, &calib, &DeployConfig::default());
        let pipe = build_inference_design(
            &model,
            &calib,
            &DeployConfig {
                mode: ExecutionMode::Pipelined,
                ..DeployConfig::default()
            },
        );
        assert!(pipe.timing().throughput_per_s() > 5.0 * iter.timing().throughput_per_s());
        assert_eq!(pipe.timing().latency_s(), iter.timing().latency_s());
    }

    #[test]
    fn full_table2_ordering() {
        // Build all three designs and verify the paper's qualitative
        // resource/power ordering.
        let model = trained_ish_model(8);
        let calib = calibration(128, 9);
        let power = PowerModel::default();
        let inference = build_inference_design(&model, &calib, &DeployConfig::default());
        let centroids = hybridem_comm::constellation::Constellation::qam_gray(16);
        let demapper = build_soft_demapper_design(
            centroids.points(),
            0.2,
            SoftDemapperConfig::paper_default(),
        );
        let trainer = build_trainer_design(TrainerConfig::paper_default());

        let r_inf = inference.report(&power);
        let r_dem = demapper.report(&power);
        let r_trn = trainer.report(&power);

        // DSP: demapper ≪ inference ≤ trainer bound.
        assert_eq!(r_dem.usage.dsp, 1);
        assert_eq!(r_inf.usage.dsp, 352);
        assert!(r_trn.usage.dsp >= 343);
        // LUT/FF ordering.
        assert!(r_dem.usage.lut * 5 < r_inf.usage.lut);
        assert!(r_inf.usage.ff < r_trn.usage.ff);
        // Power ordering and ~10× gap.
        assert!(r_dem.power_w * 5.0 < r_inf.power_w);
        assert!(r_inf.power_w < r_trn.power_w * 1.2);
        // Energy per symbol: demapper wins by ≥20×.
        assert!(r_dem.energy_per_sym_j * 20.0 < r_inf.energy_per_sym_j);
        // Throughput: demapper ≥5× inference.
        assert!(r_dem.throughput_sym_s > 5.0 * r_inf.throughput_sym_s);
    }
}
