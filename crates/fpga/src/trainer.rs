//! The on-chip training module.
//!
//! The paper's second FPGA design implements forward *and* backward
//! passes plus SGD weight update so the demapper can retrain against
//! the live channel (§II-B). This module models that datapath:
//!
//! - **Timing** — an iterative schedule per training sample: forward
//!   (same MVAU chain as inference), backward (output-loss gradient,
//!   per-layer weight-gradient outer products and transposed
//!   matrix-vector products), and a weight update that time-shares the
//!   forward multiplier array. One sample occupies the module
//!   end-to-end (II = latency), matching the paper's 267 ns / 3.75
//!   Msym/s row.
//! - **Resources** — the forward array is reused for the backward
//!   matrix products (the DSP count stays near the inference design's),
//!   while gradient/activation buffering and double-buffered writable
//!   weight memories add FF/LUT/BRAM — reproducing the pattern of
//!   Table 2's training row.
//! - **Function** — [`TrainerEngine`] performs the actual retraining in
//!   f32 (substitution documented in DESIGN.md: we verify *behaviour*
//!   in float and model *cost* structurally) while charging simulated
//!   time and energy per step.

use crate::power::PowerModel;
use crate::report::ImplReport;
use crate::resources::{self, ResourceUsage};
use hybridem_fixed::QFormat;
use hybridem_mathkit::matrix::Matrix;
use hybridem_nn::loss::bce_with_logits;
use hybridem_nn::optim::Optimizer;
use hybridem_nn::Sequential;

/// Static configuration of the trainer datapath.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Layer widths (same convention as `MlpSpec::dims`).
    pub dims: Vec<usize>,
    /// Weight format (shared with the inference design).
    pub weight_format: QFormat,
    /// Activation format.
    pub act_format: QFormat,
    /// Gradient format (usually wider than activations).
    pub grad_format: QFormat,
    /// Training mini-batch size buffered on chip.
    pub batch_size: usize,
    /// Fabric clock in MHz.
    pub clock_mhz: f64,
    /// Toggle activity for the power model (iterative designs idle
    /// stages while others work).
    pub activity: f64,
}

impl TrainerConfig {
    /// The paper-calibrated configuration for the 2→16→16→4 demapper.
    pub fn paper_default() -> Self {
        Self {
            dims: vec![2, 16, 16, 4],
            weight_format: QFormat::signed(8, 6),
            act_format: QFormat::signed(8, 5),
            grad_format: QFormat::signed(16, 10),
            batch_size: 1024,
            clock_mhz: 150.0,
            activity: 0.85,
        }
    }

    /// Scalar parameter count (weights + biases).
    pub fn num_params(&self) -> usize {
        self.dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// MAC count of one forward pass.
    pub fn mac_count(&self) -> usize {
        self.dims.windows(2).map(|w| w[0] * w[1]).sum()
    }
}

fn ceil_log2(n: usize) -> u64 {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()).max(1) as u64
}

/// The modelled trainer design.
#[derive(Clone, Debug)]
pub struct TrainerDesign {
    cfg: TrainerConfig,
}

impl TrainerDesign {
    /// Builds the model from a configuration.
    pub fn new(cfg: TrainerConfig) -> Self {
        assert!(cfg.dims.len() >= 2);
        assert!(cfg.batch_size >= 1);
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Forward cycles: fully-unfolded MVAU chain, one cycle of multiply
    /// plus the adder tree per layer.
    pub fn forward_cycles(&self) -> u64 {
        self.cfg.dims.windows(2).map(|w| 1 + ceil_log2(w[0])).sum()
    }

    /// Backward cycles: loss gradient, then per layer (reversed) an
    /// outer-product weight-gradient step and — except for the input
    /// layer, whose input gradient nobody consumes — a transposed
    /// matrix-vector product with its own adder tree, plus the
    /// activation-derivative gating.
    pub fn backward_cycles(&self) -> u64 {
        let mut cycles = 1; // dL/dz = p − t at the output
        let pairs: Vec<(usize, usize)> = self.cfg.dims.windows(2).map(|w| (w[0], w[1])).collect();
        for (li, &(_in_dim, out_dim)) in pairs.iter().enumerate().rev() {
            cycles += 2; // outer product dW = δ·aᵀ (multiply, accumulate)
            if li > 0 {
                // δ_prev = Wᵀ·δ, tree over out_dim, plus ReLU' gating.
                cycles += 1 + ceil_log2(out_dim) + 1;
            }
        }
        cycles
    }

    /// Update cycles: `lr·grad` subtractions time-sharing the forward
    /// multiplier array, plus a write-back beat.
    pub fn update_cycles(&self) -> u64 {
        let pool = self.cfg.mac_count().max(1);
        (self.cfg.num_params() as u64).div_ceil(pool as u64) + 1
    }

    /// Control/handshake overhead per sample (state machine, buffer
    /// pointers) — HLS iterative regions spend a few cycles per region
    /// entry/exit.
    pub fn control_cycles(&self) -> u64 {
        8
    }

    /// Total cycles for one training sample (forward + backward +
    /// control), excluding the per-batch update.
    pub fn cycles_per_sample(&self) -> u64 {
        self.forward_cycles() + self.backward_cycles() + self.control_cycles()
    }

    /// Cycles for one full mini-batch step.
    pub fn cycles_per_batch(&self) -> u64 {
        self.cfg.batch_size as u64 * self.cycles_per_sample() + self.update_cycles()
    }

    /// Per-sample latency in seconds (the paper's Table-2 latency row
    /// for AE-training).
    pub fn latency_s(&self) -> f64 {
        self.cycles_per_sample() as f64 / (self.cfg.clock_mhz * 1e6)
    }

    /// Training throughput in samples per second.
    pub fn throughput_per_s(&self) -> f64 {
        let per_sample = self.cycles_per_batch() as f64 / self.cfg.batch_size as f64;
        self.cfg.clock_mhz * 1e6 / per_sample
    }

    /// Structural resource estimate.
    pub fn resources(&self) -> ResourceUsage {
        let cfg = &self.cfg;
        let mut r = ResourceUsage::zero();
        let wb = cfg.weight_format.total_bits;
        let ab = cfg.act_format.total_bits;
        let gb = cfg.grad_format.total_bits;
        // Shared forward/backward multiplier array: one DSP per MAC of
        // the forward pass (reused for outer products, transposed
        // products and updates via input muxes).
        let macs = cfg.mac_count() as u64;
        r += resources::multiplier(ab, wb).times(macs);
        // Input-select muxes per multiplier for the sharing.
        r += resources::mux2(ab.max(gb)).times(macs * 2);
        // Adder trees per layer at gradient width (reused fwd/bwd).
        for w in cfg.dims.windows(2) {
            let acc_bits = cfg
                .act_format
                .accumulator(&cfg.weight_format, w[0])
                .total_bits;
            r += resources::reduction_tree(w[0], resources::adder(acc_bits)).times(w[1] as u64);
        }
        // Gradient accumulator registers: one per parameter.
        r += resources::register(gb).times(cfg.num_params() as u64);
        // Activation stash for backward: activations of every layer for
        // the current sample (registers), plus the batch buffer in BRAM.
        let act_regs: u64 = cfg.dims.iter().map(|&d| d as u64).sum();
        r += resources::register(ab).times(act_regs);
        // Double-buffered writable weight memories (ping-pong so
        // inference can keep running while weights update): 2 × per-PE
        // half-BRAM granularity, PE = out_dim per layer.
        let mut wmem = 0.0f64;
        for w in cfg.dims.windows(2) {
            let bits_per_pe = (w[0] as u64) * wb as u64;
            let per_pe = (bits_per_pe as f64 / 18_432.0).ceil().max(1.0) * 0.5;
            wmem += 2.0 * per_pe * w[1] as f64;
        }
        r += ResourceUsage {
            bram36: wmem,
            ..Default::default()
        };
        // Batch buffer: inputs + targets + per-layer activations for
        // `batch_size` samples, double-buffered so acquisition overlaps
        // training.
        let sample_bits: u64 = cfg.dims.iter().map(|&d| d as u64 * ab as u64).sum::<u64>()
            + *cfg.dims.last().unwrap() as u64 * ab as u64;
        r += resources::memory(2 * cfg.batch_size as u64 * sample_bits, 64);
        // Optimiser state (first-moment accumulator per parameter at
        // gradient width) and the staging copy of the weights being
        // written back.
        r += resources::memory(cfg.num_params() as u64 * gb as u64 * 2, 64);
        // Backward-path interconnect: gradient routing muxes and the
        // transpose read network around the shared multiplier array.
        r += ResourceUsage {
            lut: 4 * macs,
            ff: macs,
            ..Default::default()
        };
        // Loss unit (p − t per output) and learning-rate logic.
        r += resources::adder(gb).times(*cfg.dims.last().unwrap() as u64);
        r += ResourceUsage {
            lut: 400,
            ff: 300,
            ..Default::default()
        };
        r
    }

    /// Table-2-style report.
    pub fn report(&self, power: &PowerModel) -> ImplReport {
        let usage = self.resources();
        let thr = self.throughput_per_s();
        ImplReport {
            name: "AE-training".to_string(),
            clock_mhz: self.cfg.clock_mhz,
            latency_s: self.latency_s(),
            throughput_sym_s: thr,
            power_w: power.power_w(&usage, self.cfg.clock_mhz, self.cfg.activity),
            energy_per_sym_j: power.energy_per_symbol_j(
                &usage,
                self.cfg.clock_mhz,
                self.cfg.activity,
                thr,
            ),
            usage,
        }
    }
}

/// Statistics of one simulated on-chip training step.
#[derive(Clone, Copy, Debug)]
pub struct TrainStepStats {
    /// Mini-batch loss.
    pub loss: f32,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Simulated wall time in seconds.
    pub time_s: f64,
    /// Simulated energy in joules.
    pub energy_j: f64,
}

/// Functional trainer: retrains an f32 model while charging the
/// modelled hardware cost per step.
pub struct TrainerEngine<'a> {
    design: &'a TrainerDesign,
    power: PowerModel,
    /// Cumulative simulated time (s).
    pub total_time_s: f64,
    /// Cumulative simulated energy (J).
    pub total_energy_j: f64,
}

impl<'a> TrainerEngine<'a> {
    /// New engine over a design.
    pub fn new(design: &'a TrainerDesign, power: PowerModel) -> Self {
        Self {
            design,
            power,
            total_time_s: 0.0,
            total_energy_j: 0.0,
        }
    }

    /// One BCE-with-logits training step on `(inputs, targets)`,
    /// updating `model` through `opt` and charging simulated cost.
    pub fn train_step(
        &mut self,
        model: &mut Sequential,
        opt: &mut dyn Optimizer,
        inputs: &Matrix<f32>,
        targets: &Matrix<f32>,
    ) -> TrainStepStats {
        model.zero_grad();
        let z = model.forward(inputs);
        let (loss, grad) = bce_with_logits(&z, targets);
        model.backward(&grad);
        opt.step(&mut model.params_mut());

        // Charge the modelled cost: cycles scale with the actual batch.
        let batch = inputs.rows() as u64;
        let cycles = batch * self.design.cycles_per_sample() + self.design.update_cycles();
        let time_s = cycles as f64 / (self.design.config().clock_mhz * 1e6);
        let p = self.power.power_w(
            &self.design.resources(),
            self.design.config().clock_mhz,
            self.design.config().activity,
        );
        let energy = p * time_s;
        self.total_time_s += time_s;
        self.total_energy_j += energy;
        TrainStepStats {
            loss,
            cycles,
            time_s,
            energy_j: energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::Xoshiro256pp;
    use hybridem_nn::model::MlpSpec;
    use hybridem_nn::Sgd;

    #[test]
    fn paper_cycle_counts_in_range() {
        let d = TrainerDesign::new(TrainerConfig::paper_default());
        // Forward 12 cycles (matches the inference design).
        assert_eq!(d.forward_cycles(), 12);
        // Total per-sample ≈ 40 cycles → 267 ns at 150 MHz, the paper's
        // Table-2 latency for AE-training.
        let cycles = d.cycles_per_sample();
        assert!((30..=50).contains(&cycles), "cycles {cycles}");
        let lat = d.latency_s();
        assert!((2.0e-7..3.4e-7).contains(&lat), "latency {lat}");
    }

    #[test]
    fn trainer_fits_zu3eg_and_exceeds_inference_resources() {
        let d = TrainerDesign::new(TrainerConfig::paper_default());
        let r = d.resources();
        let device = crate::device::DeviceModel::zu3eg();
        assert!(device.fits(&r), "trainer must fit the part: {r:?}");
        // DSPs: shared array = 352, within the 360 budget.
        assert_eq!(r.dsp, 352);
        // More FF and BRAM than a pure inference design (gradient
        // registers, double-buffered weights, batch buffers).
        assert!(r.ff > 10_000, "FF {}", r.ff);
        assert!(r.bram36 > 30.0, "BRAM {}", r.bram36);
    }

    #[test]
    fn throughput_below_latency_inverse() {
        let d = TrainerDesign::new(TrainerConfig::paper_default());
        // Batch update amortises: throughput ≈ 1/latency with small loss.
        let thr = d.throughput_per_s();
        assert!(thr < 1.0 / d.latency_s());
        assert!(thr > 0.8 / d.latency_s());
    }

    #[test]
    fn engine_trains_and_charges_energy() {
        let design = TrainerDesign::new(TrainerConfig::paper_default());
        let mut engine = TrainerEngine::new(&design, PowerModel::default());
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut model = MlpSpec::paper_demapper_logits().build(&mut rng);
        let mut opt = Sgd::new(0.05);
        // Teach the model a fixed mapping; loss must fall, cost must
        // accumulate.
        let x = Matrix::from_rows(&[&[0.5f32, 0.5], &[-0.5, -0.5]]);
        let t = Matrix::from_rows(&[&[1.0f32, 0.0, 1.0, 0.0], &[0.0, 1.0, 0.0, 1.0]]);
        let first = engine.train_step(&mut model, &mut opt, &x, &t);
        let mut last = first;
        for _ in 0..200 {
            last = engine.train_step(&mut model, &mut opt, &x, &t);
        }
        assert!(
            last.loss < first.loss * 0.5,
            "{} vs {}",
            last.loss,
            first.loss
        );
        assert!(engine.total_time_s > 0.0);
        assert!(engine.total_energy_j > 0.0);
        // Energy consistent with power × time.
        let p = PowerModel::default().power_w(
            &design.resources(),
            design.config().clock_mhz,
            design.config().activity,
        );
        assert!((engine.total_energy_j - p * engine.total_time_s).abs() < 1e-9);
    }

    #[test]
    fn update_shares_forward_array() {
        let d = TrainerDesign::new(TrainerConfig::paper_default());
        // 388 params / 352 multipliers → 2 beats + writeback.
        assert_eq!(d.update_cycles(), 3);
    }
}
