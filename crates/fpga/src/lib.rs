//! # hybridem-fpga
//!
//! FPGA substrate simulator — the stand-in for the paper's Xilinx
//! ZU3EG (Avnet Ultra96-V2) + Vivado HLS 2019.2 toolchain.
//!
//! What the paper measures on silicon, this crate models in four
//! deterministic, testable layers:
//!
//! 1. **Bit-exact datapaths** — [`mvau::Mvau`] (a FINN-style folded
//!    matrix-vector-activation unit executing the quantised demapper in
//!    [`hybridem_fixed`] arithmetic) and
//!    [`demapper_accel::SoftDemapperAccel`] (the centroid max-log
//!    datapath). [`graph`] lowers trained models — plain or
//!    quantisation-aware — to one shared integer IR
//!    ([`graph::QuantizedGraph`], DESIGN.md §9) that streams whole
//!    blocks allocation-free and slots into the link simulator as a
//!    demapper. Numeric outputs are checked against the f32 reference
//!    models within analytic quantisation bounds.
//! 2. **Cycle timing** — [`pipeline`] computes per-token latency and
//!    initiation intervals through chains of stages with arbitrary
//!    folding, reproducing HLS dataflow timing.
//! 3. **Resources** — [`resources`] prices each operator (adders,
//!    multipliers, comparators, RAMs) in LUT/FF/DSP/BRAM as structural
//!    functions of bit widths and parallelism; [`device`] holds ZU3EG
//!    capacities for fit checks.
//! 4. **Power/energy** — [`power`] applies an activity-based linear
//!    model calibrated against the paper's Table 2 (constants and
//!    calibration documented in `power.rs` and DESIGN.md).
//!
//! [`builder`] assembles full designs (AE inference, AE trainer, hybrid
//!    soft demapper) from trained models, and [`report`] renders
//!    Table-2-style comparisons.

#![warn(missing_docs)]

pub mod builder;
pub mod demapper_accel;
pub mod device;
pub mod graph;
pub mod mvau;
pub mod pipeline;
pub mod power;
pub mod reconfig;
pub mod report;
pub mod resources;
pub mod sigmoid_lut;
pub mod trainer;

pub use builder::{build_inference_design, build_soft_demapper_design, build_trainer_design};
pub use device::DeviceModel;
pub use graph::{compile, compile_qat, QuantizedGraph};
pub use report::ImplReport;
pub use resources::ResourceUsage;
