//! Fixed-point sigmoid by table lookup.
//!
//! The demapper's output layer needs σ(x) in hardware. The standard
//! FINN/HLS approach is a lookup table over a clamped input range: the
//! input is saturated to `[−range, +range]`, quantised to
//! `addr_bits` addresses, and the table stores the output in the
//! activation format. This module provides the bit-exact table, its
//! resource cost, and an analytic worst-case error bound that the tests
//! verify against the reference `σ`.

use crate::resources::{memory, ResourceUsage};
use hybridem_fixed::{QFormat, Rounding};
use hybridem_mathkit::special::sigmoid;

/// A quantised sigmoid lookup table.
#[derive(Clone, Debug)]
pub struct SigmoidLut {
    /// Number of address bits (table has `2^addr_bits` entries).
    pub addr_bits: u32,
    /// Inputs are clamped to `[−range, +range]` before lookup.
    pub range: f64,
    /// Output format (unsigned, all-fraction is natural for σ ∈ (0,1)).
    pub out_format: QFormat,
    table: Vec<i64>,
}

impl SigmoidLut {
    /// Builds the table. Typical configuration: 8 address bits over
    /// `[−8, 8]`, `uQ0.8` output.
    pub fn new(addr_bits: u32, range: f64, out_format: QFormat) -> Self {
        assert!((4..=16).contains(&addr_bits), "addr_bits out of range");
        assert!(range > 0.0);
        let n = 1usize << addr_bits;
        let mut table = Vec::with_capacity(n);
        for i in 0..n {
            // Address i covers the input interval centre.
            let x = -range + (i as f64 + 0.5) * (2.0 * range / n as f64);
            table.push(out_format.raw_from_f64(sigmoid(x), Rounding::Nearest));
        }
        Self {
            addr_bits,
            range,
            out_format,
            table,
        }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Looks up σ for an input in a given fixed-point format, returning
    /// the raw output in `out_format`.
    pub fn lookup(&self, raw_in: i64, in_format: QFormat) -> i64 {
        let x = in_format.f64_from_raw(raw_in);
        self.lookup_f64(x)
    }

    /// Looks up σ for a real-valued input (clamping to the range).
    pub fn lookup_f64(&self, x: f64) -> i64 {
        let n = self.table.len();
        let t = (x + self.range) / (2.0 * self.range);
        let idx = ((t * n as f64) as isize).clamp(0, n as isize - 1) as usize;
        self.table[idx]
    }

    /// Worst-case absolute error bound: half the maximum slope (σ' ≤ ¼)
    /// times the address step, plus half an output LSB, plus the tail
    /// clamp error σ(−range).
    pub fn error_bound(&self) -> f64 {
        let step = 2.0 * self.range / self.table.len() as f64;
        0.25 * step / 2.0 + self.out_format.resolution() / 2.0 + sigmoid(-self.range)
    }

    /// Memory cost of the table.
    pub fn resources(&self) -> ResourceUsage {
        memory(
            self.table.len() as u64 * self.out_format.total_bits as u64,
            self.out_format.total_bits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lut8() -> SigmoidLut {
        SigmoidLut::new(8, 8.0, QFormat::unsigned(8, 8))
    }

    #[test]
    fn known_points() {
        let lut = lut8();
        // σ(0) = 0.5.
        let y = lut.out_format.f64_from_raw(lut.lookup_f64(0.0));
        assert!((y - 0.5).abs() <= lut.error_bound());
        // Saturated tails.
        let hi = lut.out_format.f64_from_raw(lut.lookup_f64(100.0));
        assert!(hi > 0.99);
        let lo = lut.out_format.f64_from_raw(lut.lookup_f64(-100.0));
        assert!(lo < 0.01);
    }

    #[test]
    fn error_bound_holds_everywhere() {
        let lut = lut8();
        let bound = lut.error_bound();
        for i in 0..2000 {
            let x = -10.0 + i as f64 * 0.01;
            let approx = lut.out_format.f64_from_raw(lut.lookup_f64(x));
            let exact = sigmoid(x);
            assert!(
                (approx - exact).abs() <= bound,
                "x={x}: {approx} vs {exact}, bound {bound}"
            );
        }
    }

    #[test]
    fn error_shrinks_with_address_bits() {
        let coarse = SigmoidLut::new(6, 8.0, QFormat::unsigned(10, 10));
        let fine = SigmoidLut::new(10, 8.0, QFormat::unsigned(10, 10));
        assert!(fine.error_bound() < coarse.error_bound());
        // Empirical max error also shrinks.
        let max_err = |lut: &SigmoidLut| {
            (0..1000)
                .map(|i| {
                    let x = -8.0 + i as f64 * 0.016;
                    (lut.out_format.f64_from_raw(lut.lookup_f64(x)) - sigmoid(x)).abs()
                })
                .fold(0.0, f64::max)
        };
        assert!(max_err(&fine) < max_err(&coarse));
    }

    #[test]
    fn fixed_point_input_path() {
        let lut = lut8();
        let in_fmt = QFormat::signed(12, 6);
        let raw = in_fmt.raw_from_f64(1.5, Rounding::Nearest);
        let via_fx = lut.lookup(raw, in_fmt);
        let direct = lut.lookup_f64(1.5);
        assert_eq!(via_fx, direct);
    }

    #[test]
    fn small_table_is_lutram() {
        let lut = lut8();
        let r = lut.resources();
        assert_eq!(r.bram36, 0.0, "256×8 bits fits LUTRAM");
        assert!(r.lut > 0);
        let big = SigmoidLut::new(14, 8.0, QFormat::unsigned(16, 16));
        assert!(big.resources().bram36 > 0.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let lut = lut8();
        let mut last = i64::MIN;
        for i in 0..512 {
            let x = -9.0 + i as f64 * (18.0 / 512.0);
            let y = lut.lookup_f64(x);
            assert!(y >= last, "sigmoid table must be monotone");
            last = y;
        }
    }
}
