//! Reconfiguration economics: the paper's §III-D argument.
//!
//! "As the inference is performed much more frequently, this would
//! result \[in\] high idle time of the training module on an ASIC. In
//! contrast, FPGA can be reconfigured to either perform training or
//! inference, resulting in a more efficient use of resources."
//!
//! This module quantifies that claim: given the Table-2 designs, a
//! duty cycle (how often retraining runs and for how long), and a
//! partial-reconfiguration time model, it compares
//!
//! - **FPGA time-sharing** — one fabric alternating between the
//!   inference and training bitstreams, paying reconfiguration time;
//! - **ASIC co-residency** — both datapaths permanently instantiated,
//!   the idle one still leaking static power.

use crate::report::ImplReport;

/// Partial-reconfiguration throughput of the device's configuration
/// port. ZU+ ICAP moves 32 bits at 200 MHz ≈ 800 MB/s; bitstream size
/// scales with the reconfigured region.
#[derive(Clone, Copy, Debug)]
pub struct ReconfigModel {
    /// Configuration port bandwidth in bytes/second.
    pub port_bytes_per_s: f64,
    /// Partial bitstream size per reconfigured LUT (bytes) — frames
    /// cover CLBs; ~12 bytes/LUT is the UltraScale+ ballpark.
    pub bytes_per_lut: f64,
}

impl Default for ReconfigModel {
    fn default() -> Self {
        Self {
            port_bytes_per_s: 800e6,
            bytes_per_lut: 12.0,
        }
    }
}

impl ReconfigModel {
    /// Time to swap in a design occupying `lut` LUTs.
    pub fn swap_time_s(&self, lut: u64) -> f64 {
        (lut as f64 * self.bytes_per_lut) / self.port_bytes_per_s
    }
}

/// One adaptation episode: how much retraining is needed and how often.
#[derive(Clone, Copy, Debug)]
pub struct DutyCycle {
    /// Seconds between channel changes (mean time between retrains).
    pub period_s: f64,
    /// Training samples consumed per retrain.
    pub retrain_samples: u64,
}

impl DutyCycle {
    /// The paper's case study scale: retraining every few seconds with
    /// a few hundred thousand pilot samples.
    pub fn paper_scale() -> Self {
        Self {
            period_s: 10.0,
            retrain_samples: 384_000, // 1500 steps × 256 symbols
        }
    }
}

/// Outcome of the time-sharing vs co-residency comparison.
#[derive(Clone, Debug)]
pub struct ReconfigReport {
    /// Fraction of each period spent retraining (training + 2 swaps).
    pub training_duty: f64,
    /// Fraction of each period lost to reconfiguration alone.
    pub reconfig_overhead: f64,
    /// Average power of the FPGA time-sharing strategy \[W\].
    pub fpga_avg_power_w: f64,
    /// Average power of permanent co-residency (ASIC-style) \[W\],
    /// with the idle module contributing its static share.
    pub coresident_avg_power_w: f64,
    /// Symbols lost per period while the fabric holds the trainer.
    pub symbols_lost_per_period: f64,
}

/// Evaluates the trade-off for a (inference, trainer) design pair.
///
/// `idle_static_w` is the leakage attributable to the dormant trainer
/// when both designs are co-resident (ASIC or spatially partitioned
/// FPGA); the paper's argument is precisely that this silicon sits idle
/// almost always.
pub fn compare(
    inference: &ImplReport,
    trainer: &ImplReport,
    duty: &DutyCycle,
    model: &ReconfigModel,
    idle_static_w: f64,
) -> ReconfigReport {
    assert!(duty.period_s > 0.0);
    let train_time = duty.retrain_samples as f64 / trainer.throughput_sym_s;
    let swap = model.swap_time_s(trainer.usage.lut) + model.swap_time_s(inference.usage.lut);
    let busy = (train_time + swap).min(duty.period_s);
    let training_duty = busy / duty.period_s;

    // Time-sharing: inference power while inferring, trainer power
    // while training, negligible power during the swap.
    let fpga_avg = trainer.power_w * training_duty + inference.power_w * (1.0 - training_duty);
    // Co-residency: inference always on; trainer active for its duty
    // and leaking when idle.
    let co_avg =
        inference.power_w + trainer.power_w * training_duty + idle_static_w * (1.0 - training_duty);

    ReconfigReport {
        training_duty,
        reconfig_overhead: swap / duty.period_s,
        fpga_avg_power_w: fpga_avg,
        coresident_avg_power_w: co_avg,
        symbols_lost_per_period: busy * inference.throughput_sym_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceUsage;

    fn report(name: &str, lut: u64, power: f64, thr: f64) -> ImplReport {
        ImplReport {
            name: name.into(),
            clock_mhz: 150.0,
            latency_s: 1e-7,
            throughput_sym_s: thr,
            usage: ResourceUsage {
                lut,
                ff: lut,
                dsp: 100,
                bram36: 10.0,
            },
            power_w: power,
            energy_per_sym_j: power / thr,
        }
    }

    fn designs() -> (ImplReport, ImplReport) {
        (
            report("inference", 10_000, 0.45, 1.25e7),
            report("trainer", 14_000, 0.52, 4.0e6),
        )
    }

    #[test]
    fn swap_time_scales_with_region() {
        let m = ReconfigModel::default();
        assert!(m.swap_time_s(20_000) > m.swap_time_s(10_000));
        // 10k LUTs ≈ 120 kB ≈ 150 µs at 800 MB/s.
        let t = m.swap_time_s(10_000);
        assert!(t > 1e-4 && t < 2e-4, "swap {t}");
    }

    #[test]
    fn duty_cycle_small_for_paper_scale() {
        let (inf, trn) = designs();
        let r = compare(
            &inf,
            &trn,
            &DutyCycle::paper_scale(),
            &ReconfigModel::default(),
            0.05,
        );
        // 384k samples at 4 Msym/s ≈ 96 ms per 10 s period ⇒ ~1 %.
        assert!(
            r.training_duty > 0.005 && r.training_duty < 0.02,
            "duty {}",
            r.training_duty
        );
        assert!(r.reconfig_overhead < 1e-3);
        // Time sharing beats co-residency (idle leakage dominates).
        assert!(r.fpga_avg_power_w < r.coresident_avg_power_w);
        // The FPGA average sits very close to the inference power.
        assert!((r.fpga_avg_power_w - inf.power_w).abs() < 0.01);
    }

    #[test]
    fn frequent_retraining_raises_duty() {
        let (inf, trn) = designs();
        let rare = compare(
            &inf,
            &trn,
            &DutyCycle {
                period_s: 100.0,
                retrain_samples: 384_000,
            },
            &ReconfigModel::default(),
            0.05,
        );
        let often = compare(
            &inf,
            &trn,
            &DutyCycle {
                period_s: 0.5,
                retrain_samples: 384_000,
            },
            &ReconfigModel::default(),
            0.05,
        );
        assert!(often.training_duty > rare.training_duty * 50.0);
        assert!(often.fpga_avg_power_w > rare.fpga_avg_power_w);
    }

    #[test]
    fn duty_saturates_at_one() {
        let (inf, trn) = designs();
        let r = compare(
            &inf,
            &trn,
            &DutyCycle {
                period_s: 0.01,
                retrain_samples: 10_000_000,
            },
            &ReconfigModel::default(),
            0.05,
        );
        assert!(r.training_duty <= 1.0);
        assert!((r.fpga_avg_power_w - trn.power_w).abs() < 1e-9);
    }

    #[test]
    fn zero_idle_leakage_still_favours_time_sharing_or_ties() {
        let (inf, trn) = designs();
        let r = compare(
            &inf,
            &trn,
            &DutyCycle::paper_scale(),
            &ReconfigModel::default(),
            0.0,
        );
        // With zero idle leakage the co-resident option pays the full
        // inference power plus the trainer burst — still ≥ time-sharing.
        assert!(r.coresident_avg_power_w >= r.fpga_avg_power_w - 1e-12);
    }
}
