//! Target device models.

use crate::resources::ResourceUsage;

/// Resource capacities and default clock of an FPGA part.
#[derive(Clone, Debug)]
pub struct DeviceModel {
    /// Part name.
    pub name: String,
    /// 6-input LUT count.
    pub lut: u64,
    /// Flip-flop count.
    pub ff: u64,
    /// DSP48 slice count.
    pub dsp: u64,
    /// 36 Kb block-RAM count (18 Kb halves count as 0.5).
    pub bram36: f64,
    /// Default fabric clock in MHz.
    pub clock_mhz: f64,
}

impl DeviceModel {
    /// Xilinx Zynq UltraScale+ ZU3EG — the paper's Ultra96-V2 part.
    pub fn zu3eg() -> Self {
        Self {
            name: "xczu3eg-sbva484".to_string(),
            lut: 70_560,
            ff: 141_120,
            dsp: 360,
            bram36: 216.0,
            clock_mhz: 150.0,
        }
    }

    /// Xilinx Zynq UltraScale+ ZU7EV (ZCU104) — a larger part used by
    /// the extension sweeps to show how the AE design scales.
    pub fn zu7ev() -> Self {
        Self {
            name: "xczu7ev-ffvc1156".to_string(),
            lut: 230_400,
            ff: 460_800,
            dsp: 1_728,
            bram36: 312.0,
            clock_mhz: 200.0,
        }
    }

    /// Clock period in seconds.
    pub fn clock_period_s(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }

    /// True if `usage` fits this device.
    pub fn fits(&self, usage: &ResourceUsage) -> bool {
        usage.lut <= self.lut
            && usage.ff <= self.ff
            && usage.dsp <= self.dsp
            && usage.bram36 <= self.bram36
    }

    /// Utilisation fractions `(lut, ff, dsp, bram)` of a usage.
    pub fn utilization(&self, usage: &ResourceUsage) -> (f64, f64, f64, f64) {
        (
            usage.lut as f64 / self.lut as f64,
            usage.ff as f64 / self.ff as f64,
            usage.dsp as f64 / self.dsp as f64,
            usage.bram36 / self.bram36,
        )
    }

    /// How many copies of a module fit on the device (the paper's
    /// "demapping in parallel by instantiating multiple modules of the
    /// soft-demapper"), with a routing/utilisation margin (fraction of
    /// each resource usable in practice, e.g. 0.8).
    pub fn max_instances(&self, usage: &ResourceUsage, margin: f64) -> u64 {
        assert!(margin > 0.0 && margin <= 1.0);
        let mut n = u64::MAX;
        if usage.lut > 0 {
            n = n.min((self.lut as f64 * margin / usage.lut as f64) as u64);
        }
        if usage.ff > 0 {
            n = n.min((self.ff as f64 * margin / usage.ff as f64) as u64);
        }
        if usage.dsp > 0 {
            n = n.min((self.dsp as f64 * margin / usage.dsp as f64) as u64);
        }
        if usage.bram36 > 0.0 {
            n = n.min((self.bram36 * margin / usage.bram36) as u64);
        }
        if n == u64::MAX {
            0
        } else {
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zu3eg_capacities() {
        let d = DeviceModel::zu3eg();
        assert_eq!(d.dsp, 360);
        assert_eq!(d.lut, 70_560);
        assert!((d.clock_period_s() - 6.6667e-9).abs() < 1e-12);
    }

    #[test]
    fn fit_check() {
        let d = DeviceModel::zu3eg();
        let ok = ResourceUsage {
            lut: 10_000,
            ff: 20_000,
            dsp: 352,
            bram36: 18.5,
        };
        assert!(d.fits(&ok));
        let too_many_dsp = ResourceUsage {
            dsp: 361,
            ..ok.clone()
        };
        assert!(!d.fits(&too_many_dsp));
        let (l, f, s, b) = d.utilization(&ok);
        assert!(l > 0.14 && l < 0.15);
        assert!(f > 0.14 && f < 0.15);
        assert!((s - 352.0 / 360.0).abs() < 1e-9);
        assert!((b - 18.5 / 216.0).abs() < 1e-9);
    }

    #[test]
    fn replication_counts() {
        let d = DeviceModel::zu3eg();
        // The paper's hybrid demapper: ~1.7k LUT, 1 DSP → LUT-limited.
        let demapper = ResourceUsage {
            lut: 1736,
            ff: 768,
            dsp: 1,
            bram36: 0.0,
        };
        let n = d.max_instances(&demapper, 0.8);
        assert!(n >= 30, "≥30 demappers fit: {n}");
        // 30+ × 75 Msym/s × 4 bits ⇒ multi-Gbps (the paper's claim).
        assert!(n as f64 * 7.5e7 * 4.0 > 5e9);
        // The AE inference engine is DSP-limited to a single instance.
        let ae = ResourceUsage {
            lut: 9716,
            ff: 12780,
            dsp: 352,
            bram36: 18.5,
        };
        assert_eq!(d.max_instances(&ae, 1.0), 1);
        // Degenerate zero usage.
        assert_eq!(d.max_instances(&ResourceUsage::zero(), 0.8), 0);
    }

    #[test]
    fn bigger_part_fits_more() {
        let big = DeviceModel::zu7ev();
        let u = ResourceUsage {
            lut: 100_000,
            ff: 200_000,
            dsp: 1_000,
            bram36: 250.0,
        };
        assert!(big.fits(&u));
        assert!(!DeviceModel::zu3eg().fits(&u));
    }
}
