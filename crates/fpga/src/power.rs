//! Activity-based power and energy model.
//!
//! `P = P_static + activity · f_MHz · (κ_cell·(LUT+FF) + κ_dsp·DSP + κ_bram·BRAM)`
//!
//! The coefficients are calibrated so that the three Table-2 designs of
//! the paper land on their reported power at their reported utilisation
//! (see DESIGN.md §5 for the calibration):
//!
//! - hybrid soft demapper (1107 LUT, 1042 FF, 1 DSP, 0 BRAM @150 MHz,
//!   streaming) → 55 mW (paper: 55 mW);
//! - AE inference (11343 LUT, 10895 FF, 352 DSP, 18.5 BRAM) →
//!   ≈450 mW (paper: 453 mW);
//! - AE training (19793 LUT, 19013 FF, 343 DSP, 89 BRAM, iterative
//!   activity 0.75) → ≈520 mW (paper: 547 mW).
//!
//! The model is linear in resources, so our structurally-estimated
//! utilisation produces slightly different absolute numbers than the
//! paper's Vivado report — EXPERIMENTS.md tracks both.

use crate::resources::ResourceUsage;

/// Linear activity-based power model.
#[derive(Clone, Debug)]
pub struct PowerModel {
    /// Static (leakage + clocking) power in watts.
    pub static_w: f64,
    /// Dynamic watts per (LUT+FF) cell per MHz at activity 1.
    pub cell_w_per_mhz: f64,
    /// Dynamic watts per DSP slice per MHz at activity 1.
    pub dsp_w_per_mhz: f64,
    /// Dynamic watts per BRAM36 per MHz at activity 1.
    pub bram_w_per_mhz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            static_w: 0.030,
            cell_w_per_mhz: 7.76e-8,
            dsp_w_per_mhz: 2.80e-6,
            bram_w_per_mhz: 5.00e-6,
        }
    }
}

impl PowerModel {
    /// Total power in watts for a design.
    ///
    /// `activity` ∈ (0, 1]: fraction of cycles the datapath toggles
    /// (1.0 for streaming pipelines, lower for iterative designs whose
    /// stages idle while others work).
    pub fn power_w(&self, usage: &ResourceUsage, clock_mhz: f64, activity: f64) -> f64 {
        assert!(clock_mhz > 0.0);
        assert!(activity > 0.0 && activity <= 1.0, "activity in (0,1]");
        let cells = (usage.lut + usage.ff) as f64;
        self.static_w
            + activity
                * clock_mhz
                * (self.cell_w_per_mhz * cells
                    + self.dsp_w_per_mhz * usage.dsp as f64
                    + self.bram_w_per_mhz * usage.bram36)
    }

    /// Energy per processed symbol in joules given the steady-state
    /// throughput.
    pub fn energy_per_symbol_j(
        &self,
        usage: &ResourceUsage,
        clock_mhz: f64,
        activity: f64,
        throughput_per_s: f64,
    ) -> f64 {
        assert!(throughput_per_s > 0.0);
        self.power_w(usage, clock_mhz, activity) / throughput_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(lut: u64, ff: u64, dsp: u64, bram: f64) -> ResourceUsage {
        ResourceUsage {
            lut,
            ff,
            dsp,
            bram36: bram,
        }
    }

    #[test]
    fn calibration_soft_demapper() {
        let m = PowerModel::default();
        let p = m.power_w(&usage(1107, 1042, 1, 0.0), 150.0, 1.0);
        assert!((p - 0.055).abs() < 0.005, "demapper power {p}");
    }

    #[test]
    fn calibration_ae_inference() {
        let m = PowerModel::default();
        let p = m.power_w(&usage(11343, 10895, 352, 18.5), 150.0, 1.0);
        assert!((p - 0.453).abs() < 0.03, "inference power {p}");
    }

    #[test]
    fn calibration_ae_training() {
        let m = PowerModel::default();
        let p = m.power_w(&usage(19793, 19013, 343, 89.0), 150.0, 0.75);
        assert!((p - 0.547).abs() < 0.06, "training power {p}");
    }

    #[test]
    fn paper_power_ratio_reproduced() {
        // The headline claim: ~10× lower power for the hybrid demapper.
        let m = PowerModel::default();
        let demap = m.power_w(&usage(1107, 1042, 1, 0.0), 150.0, 1.0);
        let infer = m.power_w(&usage(11343, 10895, 352, 18.5), 150.0, 1.0);
        let ratio = infer / demap;
        assert!(ratio > 7.0 && ratio < 11.0, "power ratio {ratio}");
    }

    #[test]
    fn energy_per_symbol() {
        let m = PowerModel::default();
        // Paper: demapper 55 mW at 75 Msym/s → 7.33e-10 J/symbol.
        let e = m.energy_per_symbol_j(&usage(1107, 1042, 1, 0.0), 150.0, 1.0, 7.5e7);
        assert!((e - 7.33e-10).abs() < 1e-10, "energy {e}");
    }

    #[test]
    fn monotone_in_everything() {
        let m = PowerModel::default();
        let base = m.power_w(&usage(1000, 1000, 10, 1.0), 150.0, 1.0);
        assert!(m.power_w(&usage(2000, 1000, 10, 1.0), 150.0, 1.0) > base);
        assert!(m.power_w(&usage(1000, 1000, 20, 1.0), 150.0, 1.0) > base);
        assert!(m.power_w(&usage(1000, 1000, 10, 5.0), 150.0, 1.0) > base);
        assert!(m.power_w(&usage(1000, 1000, 10, 1.0), 300.0, 1.0) > base);
        assert!(m.power_w(&usage(1000, 1000, 10, 1.0), 150.0, 0.5) < base);
    }

    #[test]
    #[should_panic(expected = "activity in (0,1]")]
    fn rejects_bad_activity() {
        let m = PowerModel::default();
        let _ = m.power_w(&usage(1, 1, 0, 0.0), 100.0, 1.5);
    }
}
