//! Implementation reports — Table-2-shaped summaries of a design.

use crate::resources::ResourceUsage;

/// One row of the hardware comparison table.
#[derive(Clone, Debug)]
pub struct ImplReport {
    /// Design name.
    pub name: String,
    /// Fabric clock in MHz.
    pub clock_mhz: f64,
    /// First-symbol latency in seconds.
    pub latency_s: f64,
    /// Steady-state throughput in symbols per second.
    pub throughput_sym_s: f64,
    /// Resource utilisation.
    pub usage: ResourceUsage,
    /// Total power in watts.
    pub power_w: f64,
    /// Energy per symbol in joules.
    pub energy_per_sym_j: f64,
}

hybridem_mathkit::impl_to_json!(ImplReport {
    name,
    clock_mhz,
    latency_s,
    throughput_sym_s,
    usage,
    power_w,
    energy_per_sym_j,
});

impl ImplReport {
    /// Renders several reports as a Markdown table with the paper's
    /// Table 2 column order.
    pub fn markdown_table(rows: &[ImplReport]) -> String {
        let mut s = String::new();
        s.push_str(
            "| Design | Latency [s] | Throughput [sym/s] | BRAM | DSP | FF | LUT | Power [W] | Energy [J/sym] |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for r in rows {
            s.push_str(&format!(
                "| {} | {:.3e} | {:.3e} | {} | {} | {} | {} | {:.3e} | {:.3e} |\n",
                r.name,
                r.latency_s,
                r.throughput_sym_s,
                r.usage.bram36,
                r.usage.dsp,
                r.usage.ff,
                r.usage.lut,
                r.power_w,
                r.energy_per_sym_j,
            ));
        }
        s
    }

    /// Ratio of another design's value to this one, per metric —
    /// convenient for "N× better" claims.
    pub fn ratios_vs(&self, other: &ImplReport) -> Ratios {
        Ratios {
            latency: other.latency_s / self.latency_s,
            throughput: self.throughput_sym_s / other.throughput_sym_s,
            dsp: other.usage.dsp as f64 / self.usage.dsp.max(1) as f64,
            lut: other.usage.lut as f64 / self.usage.lut.max(1) as f64,
            power: other.power_w / self.power_w,
            energy: other.energy_per_sym_j / self.energy_per_sym_j,
        }
    }
}

/// Metric ratios between two designs (value of the *other* design
/// divided by this one; >1 means this design wins).
#[derive(Clone, Copy, Debug)]
pub struct Ratios {
    /// Latency ratio.
    pub latency: f64,
    /// Throughput ratio (this over other).
    pub throughput: f64,
    /// DSP ratio.
    pub dsp: f64,
    /// LUT ratio.
    pub lut: f64,
    /// Power ratio.
    pub power: f64,
    /// Energy ratio.
    pub energy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str, dsp: u64, lut: u64, power: f64, thr: f64) -> ImplReport {
        ImplReport {
            name: name.to_string(),
            clock_mhz: 150.0,
            latency_s: 5e-8,
            throughput_sym_s: thr,
            usage: ResourceUsage {
                lut,
                ff: lut,
                dsp,
                bram36: 0.0,
            },
            power_w: power,
            energy_per_sym_j: power / thr,
        }
    }

    #[test]
    fn markdown_has_all_columns_and_rows() {
        let rows = vec![
            report("hybrid", 1, 1100, 0.055, 7.5e7),
            report("ae", 352, 11000, 0.45, 1.2e7),
        ];
        let md = ImplReport::markdown_table(&rows);
        assert!(md.contains("| Design |"));
        assert!(md.contains("hybrid"));
        assert!(md.contains("ae"));
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("Energy [J/sym]"));
    }

    #[test]
    fn ratios() {
        let hybrid = report("hybrid", 1, 1100, 0.055, 7.5e7);
        let ae = report("ae", 352, 11000, 0.45, 1.2e7);
        let r = hybrid.ratios_vs(&ae);
        assert_eq!(r.dsp, 352.0);
        assert!((r.lut - 10.0).abs() < 1e-9);
        assert!(r.power > 8.0);
        assert!(r.throughput > 6.0);
        assert!(r.energy > 40.0, "energy ratio {}", r.energy);
    }
}
