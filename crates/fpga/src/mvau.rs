//! The FINN-style Matrix-Vector-Activation Unit (MVAU).
//!
//! One MVAU implements one dense layer in hardware. Parallelism is
//! described FINN-style by two folding factors:
//!
//! - `simd` — how many of the `in_dim` inputs are multiplied per cycle;
//! - `pe`   — how many of the `out_dim` neurons are computed in
//!   parallel ("processing elements").
//!
//! One input vector therefore occupies the unit for
//! `II = (in_dim/simd) · (out_dim/pe)` cycles — the paper's "degree of
//! parallelism (DOP) … trade-off between latency and power".
//!
//! The numeric path is bit-exact fixed point: weights and activations
//! are quantised ([`hybridem_fixed`]), products and accumulations are
//! exact (the accumulator format carries ⌈log₂ fan-in⌉ guard bits), and
//! only the final activation cast narrows. Because integer addition is
//! associative, the result is independent of the folding — asserted by
//! tests, and the reason `process` can compute in natural order.

use crate::resources::{self, ResourceUsage};
use crate::sigmoid_lut::SigmoidLut;
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_mathkit::matrix::Matrix;

/// Hardware activation function of an MVAU.
#[derive(Clone, Debug)]
pub enum HwActivation {
    /// max(0, x), then cast to the output format.
    Relu,
    /// Sigmoid via lookup table.
    Sigmoid(SigmoidLut),
    /// Cast only.
    Linear,
}

/// Static configuration of an MVAU.
#[derive(Clone, Debug)]
pub struct MvauConfig {
    /// Input feature count.
    pub in_dim: usize,
    /// Output neuron count.
    pub out_dim: usize,
    /// Input-side parallelism (must divide `in_dim`).
    pub simd: usize,
    /// Output-side parallelism (must divide `out_dim`).
    pub pe: usize,
    /// Weight quantisation format.
    pub weight_format: QFormat,
    /// Input activation format.
    pub in_format: QFormat,
    /// Output activation format.
    pub out_format: QFormat,
    /// Weight memories writable at runtime (required for on-chip
    /// retraining; forces BRAM mapping per PE).
    pub writable_weights: bool,
}

impl MvauConfig {
    /// Validates the folding factors.
    pub fn validate(&self) {
        assert!(
            self.simd >= 1 && self.in_dim.is_multiple_of(self.simd),
            "simd must divide in_dim"
        );
        assert!(
            self.pe >= 1 && self.out_dim.is_multiple_of(self.pe),
            "pe must divide out_dim"
        );
    }

    /// Fully-unfolded configuration (simd = in, pe = out): one result
    /// per cycle, maximal resources — the paper's inference design.
    pub fn full_parallel(
        in_dim: usize,
        out_dim: usize,
        weight_format: QFormat,
        in_format: QFormat,
        out_format: QFormat,
        writable_weights: bool,
    ) -> Self {
        Self {
            in_dim,
            out_dim,
            simd: in_dim,
            pe: out_dim,
            weight_format,
            in_format,
            out_format,
            writable_weights,
        }
    }

    /// Initiation interval in cycles.
    pub fn ii_cycles(&self) -> u64 {
        ((self.in_dim / self.simd) * (self.out_dim / self.pe)) as u64
    }

    /// Pipeline depth in cycles: the input fold drains through the
    /// multiplier stage (`in_dim/simd` beats interleaved with the
    /// output fold — bounded below by II), plus the SIMD adder tree,
    /// with the activation folded into the final tree level.
    /// For the fully-unfolded case this is `1 + ⌈log₂ in_dim⌉`.
    pub fn depth_cycles(&self) -> u64 {
        self.ii_cycles() + ceil_log2(self.simd) as u64
    }

    /// Exact accumulator format.
    pub fn acc_format(&self) -> QFormat {
        self.in_format.accumulator(&self.weight_format, self.in_dim)
    }
}

fn ceil_log2(n: usize) -> u32 {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()).max(1)
}

/// Reusable buffers for [`Mvau::process_block_into`], mirroring
/// `hybridem_nn`'s `InferScratch`: after one warm-up block at a given
/// tile size the buffers are at their high-water mark and the whole
/// integer pipeline allocates nothing (asserted by the fpga crate's
/// counting-allocator test).
pub struct MvauScratch {
    /// Feature-major transpose of one input tile (`in_dim` planes of
    /// `tile` raw values each) — the layout that lets the MAC inner
    /// loop stream unit-stride.
    tr: Vec<i64>,
    /// Per-symbol accumulators for one output neuron over a tile.
    acc: Vec<i64>,
    /// Neuron-major activated outputs of one tile, transposed to the
    /// symbol-major output layout in one pass (unit-stride writes in
    /// both stages).
    outp: Vec<i64>,
    /// 32-bit twins of `tr`/`acc` for the narrow-format fast path.
    tr32: Vec<i32>,
    acc32: Vec<i32>,
}

impl MvauScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            tr: Vec::new(),
            acc: Vec::new(),
            outp: Vec::new(),
            tr32: Vec::new(),
            acc32: Vec::new(),
        }
    }
}

impl Default for MvauScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Symbols per cache-resident block tile (the comm-side demapper
/// tiling constant, so both halves of the receiver stream in the same
/// granularity).
const TILE: usize = hybridem_comm::demapper::BLOCK_TILE;

/// A configured MVAU holding quantised weights.
#[derive(Clone, Debug)]
pub struct Mvau {
    cfg: MvauConfig,
    activation: HwActivation,
    /// Raw weights, `out_dim × in_dim` row-major, in `weight_format`.
    weights: Vec<i64>,
    /// Raw biases in the accumulator format.
    biases: Vec<i64>,
    /// 32-bit copy of the weights when every possible accumulation —
    /// bias plus the worst-case product sum — provably fits an `i32`.
    /// The block kernel then runs 32-bit MACs (twice the SIMD lanes,
    /// single-instruction vector multiplies) with results identical to
    /// the 64-bit path: exact integer arithmetic is exact at any width
    /// that never overflows.
    weights32: Option<Vec<i32>>,
}

impl Mvau {
    /// Quantises a dense layer (`weight`: `out × in`, `bias`: `1 × out`)
    /// into hardware form.
    pub fn from_dense(
        cfg: MvauConfig,
        weight: &Matrix<f32>,
        bias: &Matrix<f32>,
        activation: HwActivation,
    ) -> Self {
        cfg.validate();
        assert_eq!(weight.shape(), (cfg.out_dim, cfg.in_dim), "weight shape");
        assert_eq!(bias.cols(), cfg.out_dim, "bias length");
        let wspec = QuantSpec {
            format: cfg.weight_format,
            rounding: Rounding::Nearest,
        };
        let weights: Vec<i64> = weight
            .as_slice()
            .iter()
            .map(|&w| wspec.quantize(w))
            .collect();
        let acc = cfg.acc_format();
        let biases: Vec<i64> = bias
            .as_slice()
            .iter()
            .map(|&b| acc.raw_from_f64(b as f64, Rounding::Nearest))
            .collect();
        // |bias| ≤ acc_max and |Σ products| ≤ acc_max (the accumulator
        // format's guard bits cover the worst case), so every partial
        // sum is bounded by 2·acc_max < 2^(acc_bits+1): one extra bit
        // of headroom suffices.
        // (acc_bits + 1 headroom bits must fit the 31 value bits of i32)
        let weights32 = if acc.total_bits < 31 {
            Some(weights.iter().map(|&w| w as i32).collect())
        } else {
            None
        };
        Self {
            cfg,
            activation,
            weights,
            biases,
            weights32,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MvauConfig {
        &self.cfg
    }

    /// The quantised weights as dequantised f32s (`out × in`) — what
    /// the rest of the system "sees" after deployment.
    pub fn effective_weights(&self) -> Matrix<f32> {
        let mut m = Matrix::zeros(self.cfg.out_dim, self.cfg.in_dim);
        for (slot, &raw) in m.as_mut_slice().iter_mut().zip(&self.weights) {
            *slot = self.cfg.weight_format.f64_from_raw(raw) as f32;
        }
        m
    }

    /// Bit-exact forward pass for one input vector (raw values in
    /// `in_format`). Fold-invariant by integer associativity. Legacy
    /// allocating entry point — routes through
    /// [`Mvau::process_into`]; hot paths should call that or
    /// [`Mvau::process_block_into`] directly.
    pub fn process(&self, input_raw: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.cfg.out_dim];
        self.process_into(input_raw, &mut out);
        out
    }

    /// Allocation-free per-symbol forward pass writing raw outputs
    /// into `out` (`out_dim` values in `out_format`).
    pub fn process_into(&self, input_raw: &[i64], out: &mut [i64]) {
        assert_eq!(input_raw.len(), self.cfg.in_dim, "input width");
        assert_eq!(out.len(), self.cfg.out_dim, "output width");
        let acc_fmt = self.cfg.acc_format();
        let prod_frac = self.cfg.in_format.frac_bits + self.cfg.weight_format.frac_bits;
        debug_assert_eq!(acc_fmt.frac_bits, prod_frac);
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.cfg.in_dim..(o + 1) * self.cfg.in_dim];
            let mut acc: i64 = self.biases[o];
            for (&w, &x) in row.iter().zip(input_raw) {
                acc += w * x;
            }
            // Saturate into the accumulator format (guard bits make
            // overflow impossible for worst-case inputs, but keep the
            // hardware semantics explicit).
            let (acc, _) = acc_fmt.saturate(acc);
            *slot = self.apply_activation(acc, acc_fmt);
        }
    }

    /// Bit-exact block forward pass: `inputs` holds `n · in_dim` raw
    /// values symbol-major, `out` receives `n · out_dim` raw outputs
    /// symbol-major. Results equal a [`Mvau::process`] loop exactly —
    /// every `(symbol, neuron)` accumulation runs in the same fan-in
    /// order, and integer addition is associative — but the kernel is
    /// restructured for throughput: each input tile is transposed to
    /// feature-major planes once, then every weight scalar streams
    /// across a contiguous plane of symbols (unit-stride MACs), and
    /// nothing allocates once `scratch` is warm.
    pub fn process_block_into(&self, inputs: &[i64], out: &mut [i64], scratch: &mut MvauScratch) {
        let in_dim = self.cfg.in_dim;
        let out_dim = self.cfg.out_dim;
        assert!(
            inputs.len().is_multiple_of(in_dim),
            "block input length must be a multiple of in_dim"
        );
        let n = inputs.len() / in_dim;
        assert_eq!(out.len(), n * out_dim, "block output buffer size");
        let acc_fmt = self.cfg.acc_format();
        for (in_tile, out_tile) in inputs
            .chunks(TILE * in_dim)
            .zip(out.chunks_mut(TILE * out_dim))
        {
            let nt = in_tile.len() / in_dim;
            scratch.outp.resize(out_dim * nt, 0);
            if let Some(w32) = &self.weights32 {
                // Narrow fast path: 32-bit MACs, provably exact (see
                // the `weights32` invariant).
                scratch.tr32.resize(in_dim * nt, 0);
                for (s, sym) in in_tile.chunks_exact(in_dim).enumerate() {
                    for (i, &x) in sym.iter().enumerate() {
                        scratch.tr32[i * nt + s] = x as i32;
                    }
                }
                scratch.acc32.resize(nt, 0);
                scratch.acc.resize(nt, 0);
                for o in 0..out_dim {
                    let row = &w32[o * in_dim..(o + 1) * in_dim];
                    scratch.acc32.fill(self.biases[o] as i32);
                    for (i, &w) in row.iter().enumerate() {
                        let plane = &scratch.tr32[i * nt..(i + 1) * nt];
                        for (a, &x) in scratch.acc32.iter_mut().zip(plane) {
                            *a += w * x;
                        }
                    }
                    for (d, &a) in scratch.acc.iter_mut().zip(&scratch.acc32) {
                        *d = acc_fmt.saturate(a as i64).0;
                    }
                    let oplane = &mut scratch.outp[o * nt..(o + 1) * nt];
                    self.apply_activation_plane(acc_fmt, &scratch.acc, oplane);
                }
            } else {
                // Wide path: 64-bit MACs over the transposed planes.
                scratch.tr.resize(in_dim * nt, 0);
                for (s, sym) in in_tile.chunks_exact(in_dim).enumerate() {
                    for (i, &x) in sym.iter().enumerate() {
                        scratch.tr[i * nt + s] = x;
                    }
                }
                scratch.acc.resize(nt, 0);
                for o in 0..out_dim {
                    let row = &self.weights[o * in_dim..(o + 1) * in_dim];
                    scratch.acc.fill(self.biases[o]);
                    for (i, &w) in row.iter().enumerate() {
                        let plane = &scratch.tr[i * nt..(i + 1) * nt];
                        for (a, &x) in scratch.acc.iter_mut().zip(plane) {
                            *a += w * x;
                        }
                    }
                    for a in scratch.acc.iter_mut() {
                        *a = acc_fmt.saturate(*a).0;
                    }
                    let oplane = &mut scratch.outp[o * nt..(o + 1) * nt];
                    self.apply_activation_plane(acc_fmt, &scratch.acc, oplane);
                }
            }
            // Neuron-major → symbol-major in one pass.
            for (s, sym) in out_tile.chunks_exact_mut(out_dim).enumerate() {
                for (o, slot) in sym.iter_mut().enumerate() {
                    *slot = scratch.outp[o * nt + s];
                }
            }
        }
    }

    fn apply_activation(&self, acc_raw: i64, acc_fmt: QFormat) -> i64 {
        match &self.activation {
            HwActivation::Relu => {
                let clamped = acc_raw.max(0);
                hybridem_fixed::Fx::from_raw(clamped, acc_fmt)
                    .cast(self.cfg.out_format, Rounding::Truncate)
                    .raw()
            }
            HwActivation::Linear => hybridem_fixed::Fx::from_raw(acc_raw, acc_fmt)
                .cast(self.cfg.out_format, Rounding::Nearest)
                .raw(),
            HwActivation::Sigmoid(lut) => lut.lookup(acc_raw, acc_fmt),
        }
    }

    /// The block kernels' epilogue: [`Mvau::apply_activation`] over a
    /// whole saturated-accumulator plane, with the activation dispatch
    /// hoisted out of the inner loop so the cast arithmetic (the same
    /// `Fx` operations, branch for branch) runs in tight monomorphic
    /// loops the compiler can vectorise.
    fn apply_activation_plane(&self, acc_fmt: QFormat, accs: &[i64], out: &mut [i64]) {
        match &self.activation {
            HwActivation::Relu => {
                for (op, &a) in out.iter_mut().zip(accs) {
                    let clamped = a.max(0);
                    *op = hybridem_fixed::Fx::from_raw(clamped, acc_fmt)
                        .cast(self.cfg.out_format, Rounding::Truncate)
                        .raw();
                }
            }
            HwActivation::Linear => {
                for (op, &a) in out.iter_mut().zip(accs) {
                    *op = hybridem_fixed::Fx::from_raw(a, acc_fmt)
                        .cast(self.cfg.out_format, Rounding::Nearest)
                        .raw();
                }
            }
            HwActivation::Sigmoid(lut) => {
                for (op, &a) in out.iter_mut().zip(accs) {
                    *op = lut.lookup(a, acc_fmt);
                }
            }
        }
    }

    /// Structural resource estimate.
    pub fn resources(&self) -> ResourceUsage {
        let cfg = &self.cfg;
        let acc = cfg.acc_format();
        let mut r = ResourceUsage::zero();
        // PE × SIMD multiplier lanes: the multiplier itself plus the
        // per-lane weight-fetch/accumulate interface logic FINN MVAUs
        // spend around each DSP (~6 LUTs per lane after synthesis).
        r += (resources::multiplier(cfg.in_format.total_bits, cfg.weight_format.total_bits)
            + ResourceUsage {
                lut: 6,
                ..Default::default()
            })
        .times((cfg.pe * cfg.simd) as u64);
        // Per-PE SIMD adder tree at accumulator width.
        r += resources::reduction_tree(cfg.simd, resources::adder(acc.total_bits))
            .times(cfg.pe as u64);
        // Per-PE fold accumulator (register + adder) when input folds.
        if cfg.simd < cfg.in_dim {
            r += (resources::adder(acc.total_bits) + resources::register(acc.total_bits))
                .times(cfg.pe as u64);
        }
        // Weight memory: per-PE partitions. Writable memories (needed by
        // on-chip retraining) are forced to BRAM with half-BRAM minimum
        // granularity per PE — the FINN weight-streamer layout.
        let bits_per_pe =
            (cfg.in_dim * cfg.out_dim / cfg.pe) as u64 * cfg.weight_format.total_bits as u64;
        if cfg.writable_weights {
            let per_pe = (bits_per_pe as f64 / 18_432.0).ceil().max(1.0) * 0.5;
            r += ResourceUsage {
                bram36: per_pe * cfg.pe as f64,
                ..Default::default()
            };
        } else {
            r += resources::memory(bits_per_pe, cfg.weight_format.total_bits * cfg.simd as u32)
                .times(cfg.pe as u64);
        }
        // Activation units per PE.
        match &self.activation {
            HwActivation::Relu => {
                r += resources::comparator(acc.total_bits).times(cfg.pe as u64);
                r += resources::mux2(cfg.out_format.total_bits).times(cfg.pe as u64);
            }
            HwActivation::Sigmoid(lut) => {
                r += lut.resources().times(cfg.pe as u64);
            }
            HwActivation::Linear => {}
        }
        // Output registers and fold-control counters.
        r += resources::register(cfg.out_format.total_bits).times(cfg.pe as u64);
        r += ResourceUsage {
            lut: 40 + 8 * (ceil_log2(cfg.ii_cycles().max(2) as usize) as u64),
            ff: 24,
            ..Default::default()
        };
        r
    }

    /// Combinational critical path (ns) when the unit is *not*
    /// pipelined: multiplier, full adder tree, activation step —
    /// inflated by a routing/congestion factor.
    pub fn critical_path_ns(&self) -> f64 {
        use crate::resources::delay_ns::*;
        let mult = if self
            .cfg
            .weight_format
            .total_bits
            .min(self.cfg.in_format.total_bits)
            >= resources::DSP_MULT_THRESHOLD
        {
            DSP_MULT
        } else {
            LUT_MULT
        };
        let tree = ceil_log2(self.cfg.in_dim) as f64 * ADD_LEVEL;
        let act = LUT_STEP;
        mult + tree + act + REG_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt8_6() -> QFormat {
        QFormat::signed(8, 6)
    }

    fn make_mvau(simd: usize, pe: usize, act: HwActivation) -> Mvau {
        let w = Matrix::from_rows(&[&[0.5f32, -0.25, 0.75, 0.125], &[-0.5, 0.5, -0.125, 0.25]]);
        let b = Matrix::from_rows(&[&[0.1f32, -0.2]]);
        let cfg = MvauConfig {
            in_dim: 4,
            out_dim: 2,
            simd,
            pe,
            weight_format: fmt8_6(),
            in_format: fmt8_6(),
            out_format: fmt8_6(),
            writable_weights: false,
        };
        Mvau::from_dense(cfg, &w, &b, act)
    }

    #[test]
    fn process_matches_reference_float() {
        let mvau = make_mvau(4, 2, HwActivation::Linear);
        let in_fmt = fmt8_6();
        let xs = [0.9f32, -0.4, 0.2, 0.7];
        let raw: Vec<i64> = xs
            .iter()
            .map(|&x| in_fmt.raw_from_f64(x as f64, Rounding::Nearest))
            .collect();
        let out = mvau.process(&raw);
        // Reference: exact dot product of the *quantised* values.
        let wq = mvau.effective_weights();
        for o in 0..2 {
            let mut acc = mvau.config().acc_format().f64_from_raw(mvau.biases[o]);
            for i in 0..4 {
                acc += wq[(o, i)] as f64 * in_fmt.f64_from_raw(raw[i]);
            }
            let got = fmt8_6().f64_from_raw(out[o]);
            assert!(
                (got - acc).abs() <= fmt8_6().resolution() + 1e-9,
                "output {o}: {got} vs {acc}"
            );
        }
    }

    #[test]
    fn folding_does_not_change_results() {
        let input: Vec<i64> = vec![30, -20, 5, 63];
        let reference = make_mvau(4, 2, HwActivation::Relu).process(&input);
        for (simd, pe) in [(1, 1), (2, 1), (4, 1), (1, 2), (2, 2)] {
            let folded = make_mvau(simd, pe, HwActivation::Relu);
            assert_eq!(folded.process(&input), reference, "simd={simd} pe={pe}");
        }
    }

    #[test]
    fn block_kernel_bit_exact_with_per_symbol() {
        for (simd, pe, act) in [
            (4, 2, HwActivation::Relu),
            (2, 1, HwActivation::Linear),
            (
                1,
                2,
                HwActivation::Sigmoid(SigmoidLut::new(8, 8.0, QFormat::unsigned(8, 8))),
            ),
        ] {
            let mvau = make_mvau(simd, pe, act);
            let mut scratch = MvauScratch::new();
            for n in [0usize, 1, 3, 300, 1024] {
                let inputs: Vec<i64> = (0..n * 4).map(|i| ((i * 13) % 127) as i64 - 63).collect();
                let mut block = vec![0i64; n * 2];
                mvau.process_block_into(&inputs, &mut block, &mut scratch);
                for s in 0..n {
                    let single = mvau.process(&inputs[s * 4..(s + 1) * 4]);
                    assert_eq!(&block[s * 2..(s + 1) * 2], &single[..], "symbol {s} n={n}");
                }
            }
        }
    }

    #[test]
    fn relu_clamps_in_fixed_point() {
        let mvau = make_mvau(4, 2, HwActivation::Relu);
        // Strongly negative input drives output 1 negative pre-ReLU.
        let in_fmt = fmt8_6();
        let raw: Vec<i64> = [1.0f32, -1.0, 1.0, -1.0]
            .iter()
            .map(|&x| in_fmt.raw_from_f64(x as f64, Rounding::Nearest))
            .collect();
        let out = mvau.process(&raw);
        assert!(
            out.iter().all(|&o| o >= 0),
            "ReLU output must be non-negative"
        );
    }

    #[test]
    fn ii_and_depth_formulas() {
        let full = MvauConfig::full_parallel(16, 16, fmt8_6(), fmt8_6(), fmt8_6(), false);
        assert_eq!(full.ii_cycles(), 1);
        assert_eq!(full.depth_cycles(), 1 + 4);
        let folded = MvauConfig {
            simd: 4,
            pe: 4,
            ..full
        };
        assert_eq!(folded.ii_cycles(), 16);
        assert!(folded.depth_cycles() >= folded.ii_cycles());
    }

    #[test]
    fn paper_demapper_full_parallel_uses_352_dsp() {
        // The calibration anchor: 2→16, 16→16, 16→4 fully unfolded.
        let dims = [(2usize, 16usize), (16, 16), (16, 4)];
        let mut dsp = 0u64;
        for (i, o) in dims {
            let cfg = MvauConfig::full_parallel(i, o, fmt8_6(), fmt8_6(), fmt8_6(), true);
            let w = Matrix::zeros(o, i);
            let b = Matrix::zeros(1, o);
            let m = Mvau::from_dense(cfg, &w, &b, HwActivation::Relu);
            dsp += m.resources().dsp;
        }
        assert_eq!(dsp, 352);
    }

    #[test]
    fn folding_trades_dsp_for_time() {
        let mk = |simd, pe| {
            let cfg = MvauConfig {
                in_dim: 16,
                out_dim: 16,
                simd,
                pe,
                weight_format: fmt8_6(),
                in_format: fmt8_6(),
                out_format: fmt8_6(),
                writable_weights: false,
            };
            let m = Mvau::from_dense(
                cfg,
                &Matrix::zeros(16, 16),
                &Matrix::zeros(1, 16),
                HwActivation::Relu,
            );
            (m.resources().dsp, m.config().ii_cycles())
        };
        let (dsp_full, ii_full) = mk(16, 16);
        let (dsp_half, ii_half) = mk(8, 8);
        let (dsp_min, ii_min) = mk(1, 1);
        assert_eq!(dsp_full, 256);
        assert_eq!(dsp_half, 64);
        assert_eq!(dsp_min, 1);
        assert_eq!(ii_full, 1);
        assert_eq!(ii_half, 4);
        assert_eq!(ii_min, 256);
        // DSP × II ≈ constant (the MAC count).
        assert_eq!(dsp_full * ii_full, 256);
        assert_eq!(dsp_half * ii_half, 256);
        assert_eq!(dsp_min * ii_min, 256);
    }

    #[test]
    fn writable_weights_force_bram() {
        let mk = |writable| {
            let cfg = MvauConfig {
                in_dim: 16,
                out_dim: 16,
                simd: 16,
                pe: 16,
                weight_format: fmt8_6(),
                in_format: fmt8_6(),
                out_format: fmt8_6(),
                writable_weights: writable,
            };
            Mvau::from_dense(
                cfg,
                &Matrix::zeros(16, 16),
                &Matrix::zeros(1, 16),
                HwActivation::Relu,
            )
            .resources()
        };
        let ro = mk(false);
        let rw = mk(true);
        assert_eq!(
            ro.bram36, 0.0,
            "256 small weights fit LUTRAM when read-only"
        );
        assert_eq!(rw.bram36, 8.0, "16 PEs × half-BRAM when runtime-writable");
    }

    #[test]
    fn critical_path_grows_with_fan_in() {
        let small = make_mvau(4, 2, HwActivation::Linear);
        let cfg = MvauConfig::full_parallel(64, 4, fmt8_6(), fmt8_6(), fmt8_6(), false);
        let big = Mvau::from_dense(
            cfg,
            &Matrix::zeros(4, 64),
            &Matrix::zeros(1, 4),
            HwActivation::Linear,
        );
        assert!(big.critical_path_ns() > small.critical_path_ns());
    }

    #[test]
    fn sigmoid_activation_outputs_probabilities() {
        let lut = SigmoidLut::new(8, 8.0, QFormat::unsigned(8, 8));
        let mvau = make_mvau(4, 2, HwActivation::Sigmoid(lut));
        let out = mvau.process(&[63, 63, 63, 63]);
        let f = QFormat::unsigned(8, 8);
        for &o in &out {
            let p = f.f64_from_raw(o);
            assert!((0.0..=1.0).contains(&p), "sigmoid output {p} out of range");
        }
    }
}
