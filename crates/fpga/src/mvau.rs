//! The FINN-style Matrix-Vector-Activation Unit (MVAU).
//!
//! One MVAU implements one dense layer in hardware. Parallelism is
//! described FINN-style by two folding factors:
//!
//! - `simd` — how many of the `in_dim` inputs are multiplied per cycle;
//! - `pe`   — how many of the `out_dim` neurons are computed in
//!   parallel ("processing elements").
//!
//! One input vector therefore occupies the unit for
//! `II = (in_dim/simd) · (out_dim/pe)` cycles — the paper's "degree of
//! parallelism (DOP) … trade-off between latency and power".
//!
//! The numeric path is bit-exact fixed point: weights and activations
//! are quantised ([`hybridem_fixed`]), products and accumulations are
//! exact (the accumulator format carries ⌈log₂ fan-in⌉ guard bits), and
//! only the final activation cast narrows. Because integer addition is
//! associative, the result is independent of the folding — asserted by
//! tests, and the reason `process` can compute in natural order.

use crate::resources::{self, ResourceUsage};
use crate::sigmoid_lut::SigmoidLut;
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::simd::{self, LaneWidth, Simd, SimdKernel};

/// Hardware activation function of an MVAU.
#[derive(Clone, Debug)]
pub enum HwActivation {
    /// max(0, x), then cast to the output format.
    Relu,
    /// Sigmoid via lookup table.
    Sigmoid(SigmoidLut),
    /// Cast only.
    Linear,
}

/// Why a [`Folding`] cannot be applied to a layer shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FoldingError {
    /// `pe` and `simd` must both be ≥ 1.
    ZeroFactor,
    /// `pe` must divide the output neuron count.
    PeDoesNotDivide {
        /// Requested output-side parallelism.
        pe: usize,
        /// Layer output dimension it fails to divide.
        out_dim: usize,
    },
    /// `simd` must divide the input feature count.
    SimdDoesNotDivide {
        /// Requested input-side parallelism.
        simd: usize,
        /// Layer input dimension it fails to divide.
        in_dim: usize,
    },
}

impl std::fmt::Display for FoldingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldingError::ZeroFactor => {
                write!(f, "folding factors must be >= 1 (pe and simd)")
            }
            FoldingError::PeDoesNotDivide { pe, out_dim } => {
                write!(f, "pe={pe} must divide out_dim={out_dim}")
            }
            FoldingError::SimdDoesNotDivide { simd, in_dim } => {
                write!(f, "simd={simd} must divide in_dim={in_dim}")
            }
        }
    }
}

impl std::error::Error for FoldingError {}

/// FINN-style folding factors — the one knob shared by the hardware
/// cost model and the software block kernel (DESIGN.md §11).
///
/// In hardware, `pe` output neurons and `simd` input features are
/// processed per cycle, so one input occupies the unit for
/// `(in_dim/simd)·(out_dim/pe)` cycles and the resource model
/// replicates multipliers `pe·simd` times. In software, the block
/// kernel iterates the *same schedule*: outputs in groups of `pe`
/// sharing one streamed input tile, inputs in beats of `simd` — so a
/// folding sweep predicts hardware cost and measures software
/// throughput from the same parameter. Results are folding-invariant
/// (integer addition is associative; the accumulation order per
/// `(symbol, neuron)` never changes), asserted by tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Folding {
    /// Output-side parallelism (processing elements); must divide the
    /// layer's `out_dim`.
    pub pe: usize,
    /// Input-side parallelism (multiplier lanes per PE); must divide
    /// the layer's `in_dim`.
    pub simd: usize,
}

impl Folding {
    /// Folding with explicit factors.
    pub fn new(pe: usize, simd: usize) -> Self {
        Self { pe, simd }
    }

    /// Fully unfolded: every MAC in parallel, II = 1.
    pub fn full(in_dim: usize, out_dim: usize) -> Self {
        Self {
            pe: out_dim,
            simd: in_dim,
        }
    }

    /// Fully folded: one MAC per cycle, minimal resources.
    pub fn unit() -> Self {
        Self { pe: 1, simd: 1 }
    }

    /// Checks this folding against a layer shape, with a clear error
    /// instead of a panic — the validation the consistency tests and
    /// sweep drivers rely on.
    pub fn validate_for(&self, in_dim: usize, out_dim: usize) -> Result<(), FoldingError> {
        if self.pe == 0 || self.simd == 0 {
            return Err(FoldingError::ZeroFactor);
        }
        if !out_dim.is_multiple_of(self.pe) {
            return Err(FoldingError::PeDoesNotDivide {
                pe: self.pe,
                out_dim,
            });
        }
        if !in_dim.is_multiple_of(self.simd) {
            return Err(FoldingError::SimdDoesNotDivide {
                simd: self.simd,
                in_dim,
            });
        }
        Ok(())
    }

    /// The nearest valid folding for a layer shape: each factor is
    /// reduced to the largest divisor of its dimension that does not
    /// exceed the request. Used when one uniform folding is applied
    /// across layers of different shapes (`fpga::graph`).
    pub fn fit_to(&self, in_dim: usize, out_dim: usize) -> Self {
        fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
            let cap = cap.clamp(1, n.max(1));
            (1..=cap).rev().find(|d| n.is_multiple_of(*d)).unwrap_or(1)
        }
        Self {
            pe: largest_divisor_at_most(out_dim, self.pe),
            simd: largest_divisor_at_most(in_dim, self.simd),
        }
    }

    /// Initiation interval of a layer under this folding.
    pub fn ii_cycles(&self, in_dim: usize, out_dim: usize) -> u64 {
        ((in_dim / self.simd) * (out_dim / self.pe)) as u64
    }
}

/// Static configuration of an MVAU.
#[derive(Clone, Debug)]
pub struct MvauConfig {
    /// Input feature count.
    pub in_dim: usize,
    /// Output neuron count.
    pub out_dim: usize,
    /// Folding factors (PE × SIMD parallelism) — consumed by both the
    /// resource/latency model and the software block kernel.
    pub folding: Folding,
    /// Weight quantisation format.
    pub weight_format: QFormat,
    /// Input activation format.
    pub in_format: QFormat,
    /// Output activation format.
    pub out_format: QFormat,
    /// Weight memories writable at runtime (required for on-chip
    /// retraining; forces BRAM mapping per PE).
    pub writable_weights: bool,
}

impl MvauConfig {
    /// Validates the folding factors.
    ///
    /// # Panics
    /// Panics with the [`FoldingError`] message when the folding does
    /// not divide the layer shape.
    pub fn validate(&self) {
        if let Err(e) = self.folding.validate_for(self.in_dim, self.out_dim) {
            panic!("invalid MVAU folding: {e}");
        }
    }

    /// Output-side parallelism.
    pub fn pe(&self) -> usize {
        self.folding.pe
    }

    /// Input-side parallelism.
    pub fn simd(&self) -> usize {
        self.folding.simd
    }

    /// Fully-unfolded configuration (simd = in, pe = out): one result
    /// per cycle, maximal resources — the paper's inference design.
    pub fn full_parallel(
        in_dim: usize,
        out_dim: usize,
        weight_format: QFormat,
        in_format: QFormat,
        out_format: QFormat,
        writable_weights: bool,
    ) -> Self {
        Self {
            in_dim,
            out_dim,
            folding: Folding::full(in_dim, out_dim),
            weight_format,
            in_format,
            out_format,
            writable_weights,
        }
    }

    /// Initiation interval in cycles.
    pub fn ii_cycles(&self) -> u64 {
        self.folding.ii_cycles(self.in_dim, self.out_dim)
    }

    /// Pipeline depth in cycles: the input fold drains through the
    /// multiplier stage (`in_dim/simd` beats interleaved with the
    /// output fold — bounded below by II), plus the SIMD adder tree,
    /// with the activation folded into the final tree level.
    /// For the fully-unfolded case this is `1 + ⌈log₂ in_dim⌉`.
    pub fn depth_cycles(&self) -> u64 {
        self.ii_cycles() + ceil_log2(self.simd()) as u64
    }

    /// Exact accumulator format.
    pub fn acc_format(&self) -> QFormat {
        self.in_format.accumulator(&self.weight_format, self.in_dim)
    }
}

fn ceil_log2(n: usize) -> u32 {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()).max(1)
}

/// Reusable buffers for [`Mvau::process_block_into`], mirroring
/// `hybridem_nn`'s `InferScratch`: after one warm-up block at a given
/// tile size the buffers are at their high-water mark and the whole
/// integer pipeline allocates nothing (asserted by the fpga crate's
/// counting-allocator test).
pub struct MvauScratch {
    /// Feature-major transpose of one input tile (`in_dim` planes of
    /// `tile` raw values each) — the layout that lets the MAC inner
    /// loop stream unit-stride.
    tr: Vec<i64>,
    /// Per-symbol accumulators for one output neuron over a tile.
    acc: Vec<i64>,
    /// Neuron-major activated outputs of one tile, transposed to the
    /// symbol-major output layout in one pass (unit-stride writes in
    /// both stages).
    outp: Vec<i64>,
    /// Narrowed (`i32`) symbol-major inputs for the fast path —
    /// accumulators and outputs live in SIMD registers there, so this
    /// is the fast path's only buffer.
    tr32: Vec<i32>,
}

impl MvauScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            tr: Vec::new(),
            acc: Vec::new(),
            outp: Vec::new(),
            tr32: Vec::new(),
        }
    }
}

impl Default for MvauScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Symbols per cache-resident block tile (the comm-side demapper
/// tiling constant, so both halves of the receiver stream in the same
/// granularity).
const TILE: usize = hybridem_comm::demapper::BLOCK_TILE;

/// The activation + cast of the 32-bit fast path, reduced to pure
/// integer shift/clamp lane arithmetic. Bit-identical to the `Fx`
/// reference: `ReluShr` is saturate → max(0,·) → `Rounding::Truncate`
/// right shift → output saturation, `LinearShr` is saturate →
/// `Rounding::Nearest` right shift (ties away from zero) → output
/// saturation — exactly [`Mvau::apply_activation`] term for term for
/// formats whose fraction bits do not grow across the cast.
#[derive(Clone, Copy, Debug)]
enum FastEpilogue {
    /// ReLU then truncating cast, dropping `shift` fraction bits.
    ReluShr {
        /// `acc_frac − out_frac`.
        shift: u32,
    },
    /// Linear (cast-only) with round-to-nearest, ties away from zero.
    LinearShr {
        /// `acc_frac − out_frac`.
        shift: u32,
    },
}

/// Precomputed 32-bit fast path: present when every accumulation
/// provably fits an `i32` (the accumulator format's guard bits plus
/// one headroom bit stay under 31 bits), the output raw range fits an
/// `i32`, and the activation reduces to [`FastEpilogue`] integer
/// arithmetic. The block kernel then runs 32-bit SIMD MACs (twice the
/// lanes of the 64-bit path, single-instruction vector multiplies)
/// with results identical to the 64-bit `Fx` path: exact integer
/// arithmetic is exact at any width that never overflows.
#[derive(Clone, Debug)]
struct FastPlan {
    /// `i32` copy of the weights, `out_dim × in_dim` row-major (the
    /// scalar-remainder layout).
    weights32: Vec<i32>,
    /// `i32` weights transposed to `in_dim × out_dim` (column-major in
    /// the row-major world): at feature `i`, the weights of `N`
    /// consecutive neurons are one contiguous vector load — the layout
    /// the output-stationary kernel streams.
    wcolmaj: Vec<i32>,
    /// `i32` copy of the biases (accumulator-format raw values).
    bias32: Vec<i32>,
    epilogue: FastEpilogue,
    /// Accumulator saturation bounds (`acc_format` range).
    acc_lo: i32,
    acc_hi: i32,
    /// Output saturation bounds (`out_format` range).
    out_lo: i32,
    out_hi: i32,
}

/// The register-resident copy of a [`FastPlan`]'s epilogue scalars —
/// `Copy`, so the kernel hoists one value load instead of re-reading
/// plan fields through a reference inside the hot loop.
#[derive(Clone, Copy, Debug)]
struct Epilogue {
    mode: FastEpilogue,
    acc_lo: i32,
    acc_hi: i32,
    out_lo: i32,
    out_hi: i32,
}

impl Epilogue {
    /// One accumulator lane through saturate → activation → cast →
    /// output saturation. `#[inline(always)]` so the lane ops fuse
    /// into the MAC kernel's vector loop.
    #[inline(always)]
    fn apply_lanes<const N: usize>(self, acc: Simd<i32, N>) -> Simd<i32, N> {
        let a = acc.clamp(self.acc_lo, self.acc_hi);
        let a = match self.mode {
            FastEpilogue::ReluShr { shift } => {
                let r = a.relu();
                if shift == 0 {
                    r
                } else {
                    r.shr(shift)
                }
            }
            FastEpilogue::LinearShr { shift } => {
                if shift == 0 {
                    a
                } else {
                    a.round_shr_nearest(shift)
                }
            }
        };
        a.clamp(self.out_lo, self.out_hi)
    }

    /// Scalar twin of [`Epilogue::apply_lanes`] for remainder lanes —
    /// same operations, same order, bit-identical.
    #[inline(always)]
    fn apply_scalar(self, acc: i32) -> i32 {
        self.apply_lanes(Simd::<i32, 1>([acc])).0[0]
    }
}

impl FastPlan {
    /// The epilogue scalars as a `Copy` bundle for the kernel.
    #[inline(always)]
    fn epilogue(&self) -> Epilogue {
        Epilogue {
            mode: self.epilogue,
            acc_lo: self.acc_lo,
            acc_hi: self.acc_hi,
            out_lo: self.out_lo,
            out_hi: self.out_hi,
        }
    }
}

/// A configured MVAU holding quantised weights.
#[derive(Clone, Debug)]
pub struct Mvau {
    cfg: MvauConfig,
    activation: HwActivation,
    /// Raw weights, `out_dim × in_dim` row-major, in `weight_format`.
    weights: Vec<i64>,
    /// Raw biases in the accumulator format.
    biases: Vec<i64>,
    /// 32-bit SIMD fast path when the formats allow it.
    fast: Option<FastPlan>,
}

/// The 32-bit MAC + epilogue kernel over one symbol-major tile,
/// width-generic and dispatched at the probed [`simd::LaneWidth`].
///
/// Output-stationary, neuron-lane layout: each vector lane holds one
/// output neuron's accumulator, so a chunk of `N` neurons streams the
/// column-major weight plane (`FastPlan::wcolmaj`) with one contiguous
/// load per feature while the symbol's input value broadcasts — no
/// input or output transpose exists anywhere, and the activated lanes
/// widen straight into the symbol-major output slice. `SYM_BLOCK`
/// symbols run concurrently to hide the MAC latency chain (their
/// accumulators are independent).
///
/// Loop structure follows the MVAU folding schedule: outputs in
/// groups of `pe` (one pass over the inputs per group), inputs in
/// beats of `simd` inside that pass — the software mirror of the
/// hardware's `(in/simd)·(out/pe)` beat count. The accumulation order
/// per `(symbol, neuron)` is ascending feature index at every folding,
/// width and symbol block, so results are bit-identical to the scalar
/// reference.
struct MacKernel32<'a> {
    /// Symbol-major raw inputs, `nt × in_dim` (64-bit; narrowed into
    /// `xn` inside the kernel so the conversion also runs under the
    /// dispatch trampoline's ISA).
    inputs: &'a [i64],
    /// Narrowed-input scratch, resized to `nt · in_dim` by the kernel.
    xn: &'a mut Vec<i32>,
    /// Symbol-major raw outputs, `nt × out_dim`.
    out: &'a mut [i64],
    in_dim: usize,
    out_dim: usize,
    pe: usize,
    simd: usize,
    plan: &'a FastPlan,
}

/// Symbols processed concurrently per vector micro-block (independent
/// accumulator registers that hide the integer MAC latency chain).
const SYM_BLOCK: usize = 4;

impl MacKernel32<'_> {
    /// One block of `S` symbols × `N` neurons (`ov..ov + N`): MACs over
    /// features `ib..ib + ibn`, then (on the last beat) epilogue and
    /// widening store. `#[inline(always)]` so each (S, N)
    /// instantiation gets constant trip counts and register-resident
    /// accumulators.
    ///
    /// (The slice indexing stays bounds-checked on purpose: the checks
    /// are cheap next to the vector MACs, and their branches keep
    /// LLVM's unroller from reassociating the accumulator chain into
    /// spilled partial sums — measured ~10× faster than the
    /// `get_unchecked` variant on AVX-512.)
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // flat scalars keep the hot path register-resident
    fn micro_block<const N: usize, const S: usize>(
        ep: Epilogue,
        wcolmaj: &[i32],
        xn: &[i32],
        out: &mut [i64],
        in_dim: usize,
        out_dim: usize,
        ov: usize,
        s: usize,
        acc: &mut [Simd<i32, N>; S],
        ib: usize,
        ibn: usize,
    ) {
        // Exact-length row slices: the `xr[j][k]` bound (`k < ibn`)
        // is provable, so the inner loop keeps only the weight-column
        // check.
        let xr: [&[i32]; S] =
            std::array::from_fn(|j| &xn[(s + j) * in_dim + ib..(s + j) * in_dim + ib + ibn]);
        for (k, i) in (ib..ib + ibn).enumerate() {
            let col = Simd::<i32, N>::load(&wcolmaj[i * out_dim + ov..]);
            for (j, a) in acc.iter_mut().enumerate() {
                *a = a.mul_add(col, Simd::<i32, N>::splat(xr[j][k]));
            }
        }
        // Last beat of the input pass for this symbol block: activate
        // and widen straight into the symbol-major output.
        if ib + ibn == in_dim {
            for (j, a) in acc.iter().enumerate() {
                ep.apply_lanes(*a)
                    .store_widened(&mut out[(s + j) * out_dim + ov..]);
            }
        }
    }
}

impl SimdKernel for MacKernel32<'_> {
    type Output = ();

    fn run<const N: usize>(self) {
        let MacKernel32 {
            inputs,
            xn,
            out,
            in_dim,
            out_dim,
            pe,
            simd,
            plan,
        } = self;
        let nt = inputs.len() / in_dim;
        xn.resize(nt * in_dim, 0);
        for (slot, &x) in xn.iter_mut().zip(inputs) {
            *slot = x as i32;
        }
        let ep = plan.epilogue();
        let s_full = nt - nt % SYM_BLOCK;
        for og in (0..out_dim).step_by(pe) {
            let ope = pe.min(out_dim - og);
            let v_end = og + ope - ope % N;
            for ov in (og..v_end).step_by(N) {
                let bias = Simd::<i32, N>::load(&plan.bias32[ov..]);
                let mut s = 0;
                while s < s_full {
                    let mut acc = [bias; SYM_BLOCK];
                    for ib in (0..in_dim).step_by(simd) {
                        let ibn = simd.min(in_dim - ib);
                        Self::micro_block::<N, SYM_BLOCK>(
                            ep,
                            &plan.wcolmaj,
                            xn,
                            out,
                            in_dim,
                            out_dim,
                            ov,
                            s,
                            &mut acc,
                            ib,
                            ibn,
                        );
                    }
                    s += SYM_BLOCK;
                }
                // Remainder symbols, one at a time: same beats, same
                // per-(symbol, neuron) accumulation order.
                for s in s_full..nt {
                    let mut acc = [bias; 1];
                    for ib in (0..in_dim).step_by(simd) {
                        let ibn = simd.min(in_dim - ib);
                        Self::micro_block::<N, 1>(
                            ep,
                            &plan.wcolmaj,
                            xn,
                            out,
                            in_dim,
                            out_dim,
                            ov,
                            s,
                            &mut acc,
                            ib,
                            ibn,
                        );
                    }
                }
            }
            // Neuron remainder (`ope % N` tail of the PE group):
            // scalar row-major MACs, identical fan-in order.
            for o in v_end..og + ope {
                let row = &plan.weights32[o * in_dim..(o + 1) * in_dim];
                for s in 0..nt {
                    let mut a = plan.bias32[o];
                    for (i, &w) in row.iter().enumerate() {
                        a += w * xn[s * in_dim + i];
                    }
                    out[s * out_dim + o] = ep.apply_scalar(a) as i64;
                }
            }
        }
    }
}

impl Mvau {
    /// Quantises a dense layer (`weight`: `out × in`, `bias`: `1 × out`)
    /// into hardware form.
    pub fn from_dense(
        cfg: MvauConfig,
        weight: &Matrix<f32>,
        bias: &Matrix<f32>,
        activation: HwActivation,
    ) -> Self {
        cfg.validate();
        assert_eq!(weight.shape(), (cfg.out_dim, cfg.in_dim), "weight shape");
        assert_eq!(bias.cols(), cfg.out_dim, "bias length");
        let wspec = QuantSpec {
            format: cfg.weight_format,
            rounding: Rounding::Nearest,
        };
        let weights: Vec<i64> = weight
            .as_slice()
            .iter()
            .map(|&w| wspec.quantize(w))
            .collect();
        let acc = cfg.acc_format();
        let biases: Vec<i64> = bias
            .as_slice()
            .iter()
            .map(|&b| acc.raw_from_f64(b as f64, Rounding::Nearest))
            .collect();
        // |bias| ≤ acc_max and |Σ products| ≤ acc_max (the accumulator
        // format's guard bits cover the worst case), so every partial
        // sum is bounded by 2·acc_max < 2^(acc_bits+1): one extra bit
        // of headroom suffices.
        // (acc_bits + 1 headroom bits must fit the 31 value bits of i32)
        let epilogue = match &activation {
            HwActivation::Relu if cfg.out_format.frac_bits <= acc.frac_bits => {
                Some(FastEpilogue::ReluShr {
                    shift: acc.frac_bits - cfg.out_format.frac_bits,
                })
            }
            HwActivation::Linear if cfg.out_format.frac_bits <= acc.frac_bits => {
                Some(FastEpilogue::LinearShr {
                    shift: acc.frac_bits - cfg.out_format.frac_bits,
                })
            }
            // Sigmoid LUTs and fraction-growing casts stay on the
            // 64-bit Fx path.
            _ => None,
        };
        let fast = match epilogue {
            Some(epilogue) if acc.total_bits < 31 && cfg.out_format.total_bits < 31 => {
                let mut wcolmaj = vec![0i32; cfg.in_dim * cfg.out_dim];
                for o in 0..cfg.out_dim {
                    for i in 0..cfg.in_dim {
                        wcolmaj[i * cfg.out_dim + o] = weights[o * cfg.in_dim + i] as i32;
                    }
                }
                Some(FastPlan {
                    weights32: weights.iter().map(|&w| w as i32).collect(),
                    wcolmaj,
                    bias32: biases.iter().map(|&b| b as i32).collect(),
                    epilogue,
                    acc_lo: acc.raw_min() as i32,
                    acc_hi: acc.raw_max() as i32,
                    out_lo: cfg.out_format.raw_min() as i32,
                    out_hi: cfg.out_format.raw_max() as i32,
                })
            }
            _ => None,
        };
        Self {
            cfg,
            activation,
            weights,
            biases,
            fast,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MvauConfig {
        &self.cfg
    }

    /// Whether the i32 SIMD fast path is active for this layer (narrow
    /// enough formats and a shift-expressible activation cast).
    pub fn has_fast_path(&self) -> bool {
        self.fast.is_some()
    }

    /// The same quantised layer under a different folding. Results are
    /// bit-identical (folding only reshapes the schedule); the
    /// resource/latency model and the software kernel's loop structure
    /// change together.
    pub fn refold(&self, folding: Folding) -> Result<Mvau, FoldingError> {
        folding.validate_for(self.cfg.in_dim, self.cfg.out_dim)?;
        let mut m = self.clone();
        m.cfg.folding = folding;
        Ok(m)
    }

    /// The quantised weights as dequantised f32s (`out × in`) — what
    /// the rest of the system "sees" after deployment.
    pub fn effective_weights(&self) -> Matrix<f32> {
        let mut m = Matrix::zeros(self.cfg.out_dim, self.cfg.in_dim);
        for (slot, &raw) in m.as_mut_slice().iter_mut().zip(&self.weights) {
            *slot = self.cfg.weight_format.f64_from_raw(raw) as f32;
        }
        m
    }

    /// Bit-exact forward pass for one input vector (raw values in
    /// `in_format`). Fold-invariant by integer associativity. Legacy
    /// allocating entry point — routes through
    /// [`Mvau::process_into`]; hot paths should call that or
    /// [`Mvau::process_block_into`] directly.
    pub fn process(&self, input_raw: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.cfg.out_dim];
        self.process_into(input_raw, &mut out);
        out
    }

    /// Allocation-free per-symbol forward pass writing raw outputs
    /// into `out` (`out_dim` values in `out_format`).
    pub fn process_into(&self, input_raw: &[i64], out: &mut [i64]) {
        assert_eq!(input_raw.len(), self.cfg.in_dim, "input width");
        assert_eq!(out.len(), self.cfg.out_dim, "output width");
        let acc_fmt = self.cfg.acc_format();
        let prod_frac = self.cfg.in_format.frac_bits + self.cfg.weight_format.frac_bits;
        debug_assert_eq!(acc_fmt.frac_bits, prod_frac);
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.cfg.in_dim..(o + 1) * self.cfg.in_dim];
            let mut acc: i64 = self.biases[o];
            for (&w, &x) in row.iter().zip(input_raw) {
                acc += w * x;
            }
            // Saturate into the accumulator format (guard bits make
            // overflow impossible for worst-case inputs, but keep the
            // hardware semantics explicit).
            let (acc, _) = acc_fmt.saturate(acc);
            *slot = self.apply_activation(acc, acc_fmt);
        }
    }

    /// Bit-exact block forward pass: `inputs` holds `n · in_dim` raw
    /// values symbol-major, `out` receives `n · out_dim` raw outputs
    /// symbol-major. Results equal a [`Mvau::process`] loop exactly —
    /// every `(symbol, neuron)` accumulation runs in the same fan-in
    /// order, and integer addition is associative — but the kernel is
    /// restructured for throughput: each input tile is transposed to
    /// feature-major planes once, then every weight scalar streams
    /// across a contiguous plane of symbols (unit-stride MACs), and
    /// nothing allocates once `scratch` is warm.
    pub fn process_block_into(&self, inputs: &[i64], out: &mut [i64], scratch: &mut MvauScratch) {
        self.process_block_into_at(LaneWidth::detect(), inputs, out, scratch);
    }

    /// [`Mvau::process_block_into`] pinned to an explicit
    /// [`LaneWidth`] — the hook the property tests use to prove the
    /// fast-path kernel bit-exact at every supported width. Results
    /// never depend on `width`; hot paths should use
    /// [`Mvau::process_block_into`], which dispatches at the probed
    /// width.
    pub fn process_block_into_at(
        &self,
        width: LaneWidth,
        inputs: &[i64],
        out: &mut [i64],
        scratch: &mut MvauScratch,
    ) {
        let in_dim = self.cfg.in_dim;
        let out_dim = self.cfg.out_dim;
        assert!(
            inputs.len().is_multiple_of(in_dim),
            "block input length must be a multiple of in_dim"
        );
        let n = inputs.len() / in_dim;
        assert_eq!(out.len(), n * out_dim, "block output buffer size");
        let acc_fmt = self.cfg.acc_format();
        for (in_tile, out_tile) in inputs
            .chunks(TILE * in_dim)
            .zip(out.chunks_mut(TILE * out_dim))
        {
            let nt = in_tile.len() / in_dim;
            if let Some(plan) = &self.fast {
                // Narrow fast path: 32-bit output-stationary SIMD MACs
                // + integer epilogue, provably exact (see
                // [`FastPlan`]), at the lane width probed by
                // `mathkit::simd`. Inputs and outputs stay
                // symbol-major; no transposes.
                simd::dispatch_at(
                    width,
                    MacKernel32 {
                        inputs: in_tile,
                        xn: &mut scratch.tr32,
                        out: out_tile,
                        in_dim,
                        out_dim,
                        pe: self.cfg.pe(),
                        simd: self.cfg.simd(),
                        plan,
                    },
                );
            } else {
                // Wide path: 64-bit MACs over the transposed planes,
                // with the Fx-based activation epilogue (sigmoid LUTs,
                // fraction-growing casts, >30-bit accumulators).
                scratch.tr.resize(in_dim * nt, 0);
                for (s, sym) in in_tile.chunks_exact(in_dim).enumerate() {
                    for (i, &x) in sym.iter().enumerate() {
                        scratch.tr[i * nt + s] = x;
                    }
                }
                scratch.outp.resize(out_dim * nt, 0);
                scratch.acc.resize(nt, 0);
                for o in 0..out_dim {
                    let row = &self.weights[o * in_dim..(o + 1) * in_dim];
                    scratch.acc.fill(self.biases[o]);
                    for (i, &w) in row.iter().enumerate() {
                        let plane = &scratch.tr[i * nt..(i + 1) * nt];
                        for (a, &x) in scratch.acc.iter_mut().zip(plane) {
                            *a += w * x;
                        }
                    }
                    for a in scratch.acc.iter_mut() {
                        *a = acc_fmt.saturate(*a).0;
                    }
                    let oplane = &mut scratch.outp[o * nt..(o + 1) * nt];
                    self.apply_activation_plane(acc_fmt, &scratch.acc, oplane);
                }
                // Neuron-major → symbol-major in one pass.
                for (s, sym) in out_tile.chunks_exact_mut(out_dim).enumerate() {
                    for (o, slot) in sym.iter_mut().enumerate() {
                        *slot = scratch.outp[o * nt + s];
                    }
                }
            }
        }
    }

    fn apply_activation(&self, acc_raw: i64, acc_fmt: QFormat) -> i64 {
        match &self.activation {
            HwActivation::Relu => {
                let clamped = acc_raw.max(0);
                hybridem_fixed::Fx::from_raw(clamped, acc_fmt)
                    .cast(self.cfg.out_format, Rounding::Truncate)
                    .raw()
            }
            HwActivation::Linear => hybridem_fixed::Fx::from_raw(acc_raw, acc_fmt)
                .cast(self.cfg.out_format, Rounding::Nearest)
                .raw(),
            HwActivation::Sigmoid(lut) => lut.lookup(acc_raw, acc_fmt),
        }
    }

    /// The block kernels' epilogue: [`Mvau::apply_activation`] over a
    /// whole saturated-accumulator plane, with the activation dispatch
    /// hoisted out of the inner loop so the cast arithmetic (the same
    /// `Fx` operations, branch for branch) runs in tight monomorphic
    /// loops the compiler can vectorise.
    fn apply_activation_plane(&self, acc_fmt: QFormat, accs: &[i64], out: &mut [i64]) {
        match &self.activation {
            HwActivation::Relu => {
                for (op, &a) in out.iter_mut().zip(accs) {
                    let clamped = a.max(0);
                    *op = hybridem_fixed::Fx::from_raw(clamped, acc_fmt)
                        .cast(self.cfg.out_format, Rounding::Truncate)
                        .raw();
                }
            }
            HwActivation::Linear => {
                for (op, &a) in out.iter_mut().zip(accs) {
                    *op = hybridem_fixed::Fx::from_raw(a, acc_fmt)
                        .cast(self.cfg.out_format, Rounding::Nearest)
                        .raw();
                }
            }
            HwActivation::Sigmoid(lut) => {
                for (op, &a) in out.iter_mut().zip(accs) {
                    *op = lut.lookup(a, acc_fmt);
                }
            }
        }
    }

    /// Structural resource estimate.
    pub fn resources(&self) -> ResourceUsage {
        let cfg = &self.cfg;
        let acc = cfg.acc_format();
        let mut r = ResourceUsage::zero();
        // PE × SIMD multiplier lanes: the multiplier itself plus the
        // per-lane weight-fetch/accumulate interface logic FINN MVAUs
        // spend around each DSP (~6 LUTs per lane after synthesis).
        r += (resources::multiplier(cfg.in_format.total_bits, cfg.weight_format.total_bits)
            + ResourceUsage {
                lut: 6,
                ..Default::default()
            })
        .times((cfg.pe() * cfg.simd()) as u64);
        // Per-PE SIMD adder tree at accumulator width.
        r += resources::reduction_tree(cfg.simd(), resources::adder(acc.total_bits))
            .times(cfg.pe() as u64);
        // Per-PE fold accumulator (register + adder) when input folds.
        if cfg.simd() < cfg.in_dim {
            r += (resources::adder(acc.total_bits) + resources::register(acc.total_bits))
                .times(cfg.pe() as u64);
        }
        // Weight memory: per-PE partitions. Writable memories (needed by
        // on-chip retraining) are forced to BRAM with half-BRAM minimum
        // granularity per PE — the FINN weight-streamer layout.
        let bits_per_pe =
            (cfg.in_dim * cfg.out_dim / cfg.pe()) as u64 * cfg.weight_format.total_bits as u64;
        if cfg.writable_weights {
            let per_pe = (bits_per_pe as f64 / 18_432.0).ceil().max(1.0) * 0.5;
            r += ResourceUsage {
                bram36: per_pe * cfg.pe() as f64,
                ..Default::default()
            };
        } else {
            r += resources::memory(
                bits_per_pe,
                cfg.weight_format.total_bits * cfg.simd() as u32,
            )
            .times(cfg.pe() as u64);
        }
        // Activation units per PE.
        match &self.activation {
            HwActivation::Relu => {
                r += resources::comparator(acc.total_bits).times(cfg.pe() as u64);
                r += resources::mux2(cfg.out_format.total_bits).times(cfg.pe() as u64);
            }
            HwActivation::Sigmoid(lut) => {
                r += lut.resources().times(cfg.pe() as u64);
            }
            HwActivation::Linear => {}
        }
        // Output registers and fold-control counters.
        r += resources::register(cfg.out_format.total_bits).times(cfg.pe() as u64);
        r += ResourceUsage {
            lut: 40 + 8 * (ceil_log2(cfg.ii_cycles().max(2) as usize) as u64),
            ff: 24,
            ..Default::default()
        };
        r
    }

    /// Combinational critical path (ns) when the unit is *not*
    /// pipelined: multiplier, full adder tree, activation step —
    /// inflated by a routing/congestion factor.
    pub fn critical_path_ns(&self) -> f64 {
        use crate::resources::delay_ns::*;
        let mult = if self
            .cfg
            .weight_format
            .total_bits
            .min(self.cfg.in_format.total_bits)
            >= resources::DSP_MULT_THRESHOLD
        {
            DSP_MULT
        } else {
            LUT_MULT
        };
        let tree = ceil_log2(self.cfg.in_dim) as f64 * ADD_LEVEL;
        let act = LUT_STEP;
        mult + tree + act + REG_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt8_6() -> QFormat {
        QFormat::signed(8, 6)
    }

    fn make_mvau(simd: usize, pe: usize, act: HwActivation) -> Mvau {
        let w = Matrix::from_rows(&[&[0.5f32, -0.25, 0.75, 0.125], &[-0.5, 0.5, -0.125, 0.25]]);
        let b = Matrix::from_rows(&[&[0.1f32, -0.2]]);
        let cfg = MvauConfig {
            in_dim: 4,
            out_dim: 2,
            folding: Folding::new(pe, simd),
            weight_format: fmt8_6(),
            in_format: fmt8_6(),
            out_format: fmt8_6(),
            writable_weights: false,
        };
        Mvau::from_dense(cfg, &w, &b, act)
    }

    #[test]
    fn process_matches_reference_float() {
        let mvau = make_mvau(4, 2, HwActivation::Linear);
        let in_fmt = fmt8_6();
        let xs = [0.9f32, -0.4, 0.2, 0.7];
        let raw: Vec<i64> = xs
            .iter()
            .map(|&x| in_fmt.raw_from_f64(x as f64, Rounding::Nearest))
            .collect();
        let out = mvau.process(&raw);
        // Reference: exact dot product of the *quantised* values.
        let wq = mvau.effective_weights();
        for o in 0..2 {
            let mut acc = mvau.config().acc_format().f64_from_raw(mvau.biases[o]);
            for i in 0..4 {
                acc += wq[(o, i)] as f64 * in_fmt.f64_from_raw(raw[i]);
            }
            let got = fmt8_6().f64_from_raw(out[o]);
            assert!(
                (got - acc).abs() <= fmt8_6().resolution() + 1e-9,
                "output {o}: {got} vs {acc}"
            );
        }
    }

    #[test]
    fn folding_does_not_change_results() {
        let input: Vec<i64> = vec![30, -20, 5, 63];
        let reference = make_mvau(4, 2, HwActivation::Relu).process(&input);
        for (simd, pe) in [(1, 1), (2, 1), (4, 1), (1, 2), (2, 2)] {
            let folded = make_mvau(simd, pe, HwActivation::Relu);
            assert_eq!(folded.process(&input), reference, "simd={simd} pe={pe}");
        }
    }

    #[test]
    fn block_kernel_bit_exact_with_per_symbol() {
        for (simd, pe, act) in [
            (4, 2, HwActivation::Relu),
            (2, 1, HwActivation::Linear),
            (
                1,
                2,
                HwActivation::Sigmoid(SigmoidLut::new(8, 8.0, QFormat::unsigned(8, 8))),
            ),
        ] {
            let mvau = make_mvau(simd, pe, act);
            let mut scratch = MvauScratch::new();
            for n in [0usize, 1, 3, 300, 1024] {
                let inputs: Vec<i64> = (0..n * 4).map(|i| ((i * 13) % 127) as i64 - 63).collect();
                let mut block = vec![0i64; n * 2];
                mvau.process_block_into(&inputs, &mut block, &mut scratch);
                for s in 0..n {
                    let single = mvau.process(&inputs[s * 4..(s + 1) * 4]);
                    assert_eq!(&block[s * 2..(s + 1) * 2], &single[..], "symbol {s} n={n}");
                }
            }
        }
    }

    #[test]
    fn relu_clamps_in_fixed_point() {
        let mvau = make_mvau(4, 2, HwActivation::Relu);
        // Strongly negative input drives output 1 negative pre-ReLU.
        let in_fmt = fmt8_6();
        let raw: Vec<i64> = [1.0f32, -1.0, 1.0, -1.0]
            .iter()
            .map(|&x| in_fmt.raw_from_f64(x as f64, Rounding::Nearest))
            .collect();
        let out = mvau.process(&raw);
        assert!(
            out.iter().all(|&o| o >= 0),
            "ReLU output must be non-negative"
        );
    }

    #[test]
    fn ii_and_depth_formulas() {
        let full = MvauConfig::full_parallel(16, 16, fmt8_6(), fmt8_6(), fmt8_6(), false);
        assert_eq!(full.ii_cycles(), 1);
        assert_eq!(full.depth_cycles(), 1 + 4);
        let folded = MvauConfig {
            folding: Folding::new(4, 4),
            ..full
        };
        assert_eq!(folded.ii_cycles(), 16);
        assert!(folded.depth_cycles() >= folded.ii_cycles());
    }

    #[test]
    fn paper_demapper_full_parallel_uses_352_dsp() {
        // The calibration anchor: 2→16, 16→16, 16→4 fully unfolded.
        let dims = [(2usize, 16usize), (16, 16), (16, 4)];
        let mut dsp = 0u64;
        for (i, o) in dims {
            let cfg = MvauConfig::full_parallel(i, o, fmt8_6(), fmt8_6(), fmt8_6(), true);
            let w = Matrix::zeros(o, i);
            let b = Matrix::zeros(1, o);
            let m = Mvau::from_dense(cfg, &w, &b, HwActivation::Relu);
            dsp += m.resources().dsp;
        }
        assert_eq!(dsp, 352);
    }

    #[test]
    fn folding_trades_dsp_for_time() {
        let mk = |simd, pe| {
            let cfg = MvauConfig {
                in_dim: 16,
                out_dim: 16,
                folding: Folding::new(pe, simd),
                weight_format: fmt8_6(),
                in_format: fmt8_6(),
                out_format: fmt8_6(),
                writable_weights: false,
            };
            let m = Mvau::from_dense(
                cfg,
                &Matrix::zeros(16, 16),
                &Matrix::zeros(1, 16),
                HwActivation::Relu,
            );
            (m.resources().dsp, m.config().ii_cycles())
        };
        let (dsp_full, ii_full) = mk(16, 16);
        let (dsp_half, ii_half) = mk(8, 8);
        let (dsp_min, ii_min) = mk(1, 1);
        assert_eq!(dsp_full, 256);
        assert_eq!(dsp_half, 64);
        assert_eq!(dsp_min, 1);
        assert_eq!(ii_full, 1);
        assert_eq!(ii_half, 4);
        assert_eq!(ii_min, 256);
        // DSP × II ≈ constant (the MAC count).
        assert_eq!(dsp_full * ii_full, 256);
        assert_eq!(dsp_half * ii_half, 256);
        assert_eq!(dsp_min * ii_min, 256);
    }

    #[test]
    fn writable_weights_force_bram() {
        let mk = |writable| {
            let cfg = MvauConfig {
                in_dim: 16,
                out_dim: 16,
                folding: Folding::full(16, 16),
                weight_format: fmt8_6(),
                in_format: fmt8_6(),
                out_format: fmt8_6(),
                writable_weights: writable,
            };
            Mvau::from_dense(
                cfg,
                &Matrix::zeros(16, 16),
                &Matrix::zeros(1, 16),
                HwActivation::Relu,
            )
            .resources()
        };
        let ro = mk(false);
        let rw = mk(true);
        assert_eq!(
            ro.bram36, 0.0,
            "256 small weights fit LUTRAM when read-only"
        );
        assert_eq!(rw.bram36, 8.0, "16 PEs × half-BRAM when runtime-writable");
    }

    #[test]
    fn critical_path_grows_with_fan_in() {
        let small = make_mvau(4, 2, HwActivation::Linear);
        let cfg = MvauConfig::full_parallel(64, 4, fmt8_6(), fmt8_6(), fmt8_6(), false);
        let big = Mvau::from_dense(
            cfg,
            &Matrix::zeros(4, 64),
            &Matrix::zeros(1, 4),
            HwActivation::Linear,
        );
        assert!(big.critical_path_ns() > small.critical_path_ns());
    }

    #[test]
    fn sigmoid_activation_outputs_probabilities() {
        let lut = SigmoidLut::new(8, 8.0, QFormat::unsigned(8, 8));
        let mvau = make_mvau(4, 2, HwActivation::Sigmoid(lut));
        let out = mvau.process(&[63, 63, 63, 63]);
        let f = QFormat::unsigned(8, 8);
        for &o in &out {
            let p = f.f64_from_raw(o);
            assert!((0.0..=1.0).contains(&p), "sigmoid output {p} out of range");
        }
    }
}
