//! The quantized-graph IR: one integer program for every deployment
//! path (DESIGN.md §9).
//!
//! Before this module the workspace had three divergent quantisation
//! code paths: `builder::build_inference_design` (calibration →
//! per-layer MVAUs), the `ablation_quant` adapter (per-symbol f32
//! round trips) and the ad-hoc per-test chains. [`compile`] replaces
//! them: a float [`Sequential`] — plain or quantisation-aware (with
//! `FakeQuant` boundaries) — lowers to a [`QuantizedGraph`] of
//! integer [`Mvau`] ops that executes bit-exactly per symbol
//! ([`QuantizedGraph::process_iq`]) and per block
//! ([`QuantizedGraph::process_block_raw`]), allocation-free after
//! warm-up, and slots straight into the link simulator as a
//! [`Demapper`].

use crate::mvau::{Folding, HwActivation, Mvau, MvauConfig, MvauScratch};
use crate::sigmoid_lut::SigmoidLut;
use hybridem_comm::demapper::Demapper;
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_mathkit::complex::C32;
use hybridem_nn::Sequential;
use std::cell::RefCell;

/// How the raw outputs of the final op map to receiver LLRs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphOutput {
    /// Final op is linear: outputs are quantised logits,
    /// `LLR = −logit` (the workspace convention).
    Logits,
    /// Final op ends in the sigmoid LUT: outputs are quantised bit
    /// probabilities, `LLR = −logit(clamp(p))`.
    Probabilities,
}

/// Full lowering plan: per-boundary activation formats plus per-layer
/// weight widths. [`compile`] derives one from a boundary list;
/// `builder::build_inference_design` constructs one from calibration.
pub struct GraphSpec {
    /// `dense_count + 1` tensor-boundary quantisation specs in
    /// datapath order: input format first, each layer's activation
    /// format after.
    pub boundaries: Vec<QuantSpec>,
    /// Weight width per dense layer.
    pub weight_bits: Vec<u32>,
    /// Address bits of the sigmoid LUTs (for layers that end in one).
    pub sigmoid_addr_bits: u32,
    /// Per-dense-layer input clamp range of the sigmoid LUT (used only
    /// when that layer's activation is a sigmoid).
    pub sigmoid_ranges: Vec<f64>,
    /// Whether weight memories stay runtime-writable (retraining).
    pub writable_weights: bool,
    /// Requested folding applied to every layer (fitted per layer via
    /// [`Folding::fit_to`], since one uniform request must match
    /// different shapes). `None` compiles fully parallel — the paper's
    /// inference design.
    pub folding: Option<Folding>,
}

impl GraphSpec {
    /// Uniform-width plan: weights as wide as the activation boundary
    /// that follows them, 8-bit sigmoid LUT over ±8.
    pub fn uniform(boundaries: Vec<QuantSpec>) -> Self {
        let weight_bits: Vec<u32> = boundaries[1..]
            .iter()
            .map(|b| b.format.total_bits)
            .collect();
        Self {
            sigmoid_ranges: vec![8.0; weight_bits.len()],
            boundaries,
            weight_bits,
            sigmoid_addr_bits: 8,
            writable_weights: true,
            folding: None,
        }
    }
}

/// A compiled integer program: the MVAU chain plus the boundary
/// formats every executor shares.
pub struct QuantizedGraph {
    mvaus: Vec<Mvau>,
    input_format: QFormat,
    output_format: QFormat,
    output: GraphOutput,
    weight_bits: u32,
}

/// Reusable executor buffers: the input quantisation plane, the
/// ping-pong activation planes between ops, the raw output staging for
/// the f32 views, and the per-op [`MvauScratch`]. One warm scratch
/// makes the whole integer pipeline allocation-free (asserted by the
/// fpga crate's counting-allocator test).
pub struct GraphScratch {
    ping: Vec<i64>,
    pong: Vec<i64>,
    raw: Vec<i64>,
    mvau: MvauScratch,
}

impl GraphScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            ping: Vec::new(),
            pong: Vec::new(),
            raw: Vec::new(),
            mvau: MvauScratch::new(),
        }
    }
}

impl Default for GraphScratch {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static GRAPH_SCRATCH: RefCell<GraphScratch> = RefCell::new(GraphScratch::new());
}

/// Lowers a float model to the integer IR with uniform widths: the
/// boundary list gives the input format plus each layer's activation
/// format, and each layer's weights are quantised (max-abs fit,
/// round-to-nearest) at the width of the boundary that follows them.
/// `FakeQuant` layers in the model are transparent here — pass the
/// specs they carry (e.g. via [`compile_qat`]).
pub fn compile(model: &Sequential, boundaries: &[QuantSpec]) -> QuantizedGraph {
    compile_spec(model, &GraphSpec::uniform(boundaries.to_vec()))
}

/// Lowers a quantisation-aware model: the tensor-boundary specs are
/// read back out of its `FakeQuant` layers, so the integer graph
/// executes exactly the formats the model was trained against.
/// `weight_bits` gives the (uniform) weight width.
///
/// # Panics
/// Panics unless the model carries one `FakeQuant` boundary per dense
/// layer plus the input.
pub fn compile_qat(model: &Sequential, weight_bits: u32) -> QuantizedGraph {
    let boundaries = hybridem_nn::model::boundary_specs(model);
    let dense_count = model
        .layers()
        .iter()
        .filter(|l| l.name() == "dense")
        .count();
    assert_eq!(
        boundaries.len(),
        dense_count + 1,
        "QAT model must carry one FakeQuant boundary per tensor \
         (found {}, need {})",
        boundaries.len(),
        dense_count + 1
    );
    let mut spec = GraphSpec::uniform(boundaries);
    spec.weight_bits = vec![weight_bits; dense_count];
    compile_spec(model, &spec)
}

/// Lowers a float model with a fully explicit [`GraphSpec`].
pub fn compile_spec(model: &Sequential, spec: &GraphSpec) -> QuantizedGraph {
    struct Unit {
        weight: hybridem_mathkit::matrix::Matrix<f32>,
        bias: hybridem_mathkit::matrix::Matrix<f32>,
        act: &'static str,
    }
    let mut units: Vec<Unit> = Vec::new();
    for layer in model.layers() {
        match layer.name() {
            "dense" => {
                let ps = layer.params();
                units.push(Unit {
                    weight: ps[0].value.clone(),
                    bias: ps[1].value.clone(),
                    act: "linear",
                });
            }
            act @ ("relu" | "sigmoid") => {
                units
                    .last_mut()
                    .expect("activation requires a preceding dense layer")
                    .act = if act == "relu" { "relu" } else { "sigmoid" };
            }
            // QAT boundaries are transparent: their formats arrive via
            // the GraphSpec (see `compile_qat`).
            "fake_quant" => {}
            other => panic!("unsupported layer `{other}` for the quantized graph"),
        }
    }
    assert_eq!(
        spec.boundaries.len(),
        units.len() + 1,
        "need one boundary spec per dense layer plus the input"
    );
    assert_eq!(
        spec.weight_bits.len(),
        units.len(),
        "weight width per layer"
    );
    assert_eq!(
        spec.sigmoid_ranges.len(),
        units.len(),
        "sigmoid range per layer"
    );

    let mut mvaus = Vec::with_capacity(units.len());
    for (i, unit) in units.iter().enumerate() {
        let in_fmt = spec.boundaries[i].format;
        let out_fmt = spec.boundaries[i + 1].format;
        let wspec = QuantSpec::fit_to_data(
            spec.weight_bits[i],
            unit.weight.as_slice(),
            Rounding::Nearest,
        );
        let activation = match unit.act {
            "relu" => HwActivation::Relu,
            "sigmoid" => HwActivation::Sigmoid(SigmoidLut::new(
                spec.sigmoid_addr_bits,
                spec.sigmoid_ranges[i],
                out_fmt,
            )),
            _ => HwActivation::Linear,
        };
        let mut cfg = MvauConfig::full_parallel(
            unit.weight.cols(),
            unit.weight.rows(),
            wspec.format,
            in_fmt,
            out_fmt,
            spec.writable_weights,
        );
        if let Some(f) = spec.folding {
            cfg.folding = f.fit_to(cfg.in_dim, cfg.out_dim);
        }
        mvaus.push(Mvau::from_dense(cfg, &unit.weight, &unit.bias, activation));
    }
    assert!(!mvaus.is_empty(), "model has no dense layers");
    let output = if units.last().unwrap().act == "sigmoid" {
        GraphOutput::Probabilities
    } else {
        GraphOutput::Logits
    };
    QuantizedGraph {
        input_format: spec.boundaries[0].format,
        output_format: spec.boundaries[spec.boundaries.len() - 1].format,
        output,
        weight_bits: spec.weight_bits.iter().copied().max().unwrap(),
        mvaus,
    }
}

impl QuantizedGraph {
    /// The same compiled graph under a uniform folding request, fitted
    /// per layer ([`Folding::fit_to`]). Outputs are bit-identical —
    /// folding only reshapes each layer's schedule — while the
    /// resource/latency model and the software kernels follow the new
    /// factors.
    pub fn with_folding(&self, folding: Folding) -> QuantizedGraph {
        let mvaus = self
            .mvaus
            .iter()
            .map(|m| {
                let f = folding.fit_to(m.config().in_dim, m.config().out_dim);
                m.refold(f).expect("fitted folding divides the shape")
            })
            .collect();
        QuantizedGraph {
            mvaus,
            input_format: self.input_format,
            output_format: self.output_format,
            output: self.output,
            weight_bits: self.weight_bits,
        }
    }

    /// The compiled MVAU chain.
    pub fn mvaus(&self) -> &[Mvau] {
        &self.mvaus
    }

    /// Input quantisation format (the receiver ADC view).
    pub fn input_format(&self) -> QFormat {
        self.input_format
    }

    /// Raw output format of the final op.
    pub fn output_format(&self) -> QFormat {
        self.output_format
    }

    /// Semantic of the raw outputs.
    pub fn output_kind(&self) -> GraphOutput {
        self.output
    }

    /// Weight width label (W4/W6/W8 in artefacts).
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Input feature count (always 2 for I/Q demappers).
    pub fn input_dim(&self) -> usize {
        self.mvaus[0].config().in_dim
    }

    /// Output feature count.
    pub fn output_dim(&self) -> usize {
        self.mvaus.last().unwrap().config().out_dim
    }

    /// Integer block execution: quantises `ys` once, streams the whole
    /// block through every op via [`Mvau::process_block_into`], and
    /// leaves the raw outputs symbol-major in `out` (resized to
    /// `ys.len() · output_dim`). Bit-exact versus a per-symbol
    /// [`QuantizedGraph::process_iq`] loop — integer arithmetic end to
    /// end — and allocation-free once `scratch` is warm.
    pub fn process_block_raw(&self, ys: &[C32], out: &mut Vec<i64>, scratch: &mut GraphScratch) {
        let f = self.input_format;
        scratch.ping.clear();
        for y in ys {
            scratch
                .ping
                .push(f.raw_from_f64(y.re as f64, Rounding::Nearest));
            scratch
                .ping
                .push(f.raw_from_f64(y.im as f64, Rounding::Nearest));
        }
        let n = ys.len();
        let last = self.mvaus.len() - 1;
        for (i, m) in self.mvaus.iter().enumerate() {
            let dst: &mut Vec<i64> = if i == last { out } else { &mut scratch.pong };
            dst.resize(n * m.config().out_dim, 0);
            m.process_block_into(&scratch.ping, dst, &mut scratch.mvau);
            if i != last {
                std::mem::swap(&mut scratch.ping, &mut scratch.pong);
            }
        }
    }

    /// f32 LLR block view backing the [`Demapper`] impl: symbol-major,
    /// `LLR > 0 ⇒ bit 0`.
    pub fn llrs_block(&self, ys: &[C32], out: &mut [f32], scratch: &mut GraphScratch) {
        let m = self.output_dim();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "llrs_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        let mut raw = std::mem::take(&mut scratch.raw);
        self.process_block_raw(ys, &mut raw, scratch);
        for (o, &r) in out.iter_mut().zip(raw.iter()) {
            *o = self.llr_from_raw(r);
        }
        scratch.raw = raw;
    }

    /// One raw output to one LLR, per the graph's output semantic.
    #[inline]
    fn llr_from_raw(&self, raw: i64) -> f32 {
        let v = self.output_format.f64_from_raw(raw);
        match self.output {
            GraphOutput::Logits => -v as f32,
            GraphOutput::Probabilities => {
                let p = v.clamp(1e-3, 1.0 - 1e-3);
                -hybridem_mathkit::special::logit(p) as f32
            }
        }
    }

    /// Bit-exact inference of one received sample, dequantised to f32
    /// (bit probabilities for sigmoid-output graphs, logits for linear
    /// ones) — the legacy `InferenceDesign::process_iq` view, routed
    /// through the per-thread block scratch so a warm thread does not
    /// allocate beyond the returned `Vec`.
    pub fn process_iq(&self, y: C32) -> Vec<f32> {
        GRAPH_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut raw = std::mem::take(&mut scratch.raw);
            self.process_block_raw(&[y], &mut raw, scratch);
            let out = raw
                .iter()
                .map(|&r| self.output_format.f64_from_raw(r) as f32)
                .collect();
            scratch.raw = raw;
            out
        })
    }
}

/// The compiled graph is a drop-in receiver demapper: the integer
/// datapath slots into the link simulator and the campaign engine
/// through the workspace [`Demapper`] trait, with per-thread scratch
/// keeping the Monte-Carlo hot loop allocation-free.
impl Demapper for QuantizedGraph {
    fn bits_per_symbol(&self) -> usize {
        self.output_dim()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let m = self.output_dim();
        GRAPH_SCRATCH.with(|cell| {
            self.llrs_block(&[y], &mut out[..m], &mut cell.borrow_mut());
        });
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        GRAPH_SCRATCH.with(|cell| {
            self.llrs_block(ys, out, &mut cell.borrow_mut());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::Xoshiro256pp;
    use hybridem_nn::model::MlpSpec;

    fn boundaries(bits: u32) -> Vec<QuantSpec> {
        let q = |fmt: QFormat| QuantSpec {
            format: fmt,
            rounding: Rounding::Nearest,
        };
        vec![
            q(QFormat::signed(8, 5)),
            q(QFormat::signed(bits, bits.saturating_sub(3).max(1))),
            q(QFormat::signed(bits, bits.saturating_sub(3).max(1))),
            q(QFormat::signed(bits.max(6), bits.max(6) - 4)),
        ]
    }

    fn model(seed: u64) -> Sequential {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        MlpSpec::paper_demapper_logits().build(&mut rng)
    }

    #[test]
    fn compile_builds_one_mvau_per_dense_layer() {
        let g = compile(&model(1), &boundaries(8));
        assert_eq!(g.mvaus().len(), 3);
        assert_eq!(g.input_dim(), 2);
        assert_eq!(g.output_dim(), 4);
        assert_eq!(g.output_kind(), GraphOutput::Logits);
        assert_eq!(g.weight_bits(), 8);
        // Fully parallel: one DSP per MAC, the paper's 352 anchor.
        let dsp: u64 = g.mvaus().iter().map(|m| m.resources().dsp).sum();
        assert_eq!(dsp, 352);
    }

    #[test]
    fn sigmoid_model_compiles_to_probability_output() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let m = MlpSpec::paper_demapper().build(&mut rng);
        let mut b = boundaries(8);
        b[3] = QuantSpec {
            format: QFormat::unsigned(8, 8),
            rounding: Rounding::Nearest,
        };
        let g = compile(&m, &b);
        assert_eq!(g.output_kind(), GraphOutput::Probabilities);
        for p in g.process_iq(C32::new(0.4, -0.9)) {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
    }

    #[test]
    fn demapper_llrs_match_block_path_bitwise() {
        let g = compile(&model(3), &boundaries(6));
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let ys: Vec<C32> = (0..33)
            .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
            .collect();
        let mut block = vec![0f32; ys.len() * 4];
        g.demap_block(&ys, &mut block);
        let mut single = [0f32; 4];
        for (s, &y) in ys.iter().enumerate() {
            g.llrs(y, &mut single);
            for k in 0..4 {
                assert_eq!(block[s * 4 + k].to_bits(), single[k].to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "one FakeQuant boundary per tensor")]
    fn compile_qat_rejects_float_models() {
        let _ = compile_qat(&model(5), 8);
    }
}
