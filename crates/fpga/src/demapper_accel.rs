//! The hybrid soft-demapper accelerator.
//!
//! Hardware form of the paper's suboptimal max-log demapper running on
//! extracted centroids (§III-A):
//!
//! `llr(b_k|s_r) = 1/2σ² · [ min_{i∈S¹_k}(s_r−c_i)² − min_{i∈S⁰_k}(s_r−c_i)² ]`
//!
//! Datapath: a centroid ROM, `dist_par` parallel distance units
//! (two subtractors + two LUT-fabric squarers + one adder each — LUT
//! squarers are deliberate: the whole point of the hybrid design is to
//! leave the DSP column free), per-bit running min trees, and a single
//! DSP multiplying the min-difference by the constant `1/2σ²`.
//!
//! With `dist_par = 8` and 16 centroids the unit accepts a symbol every
//! 2 cycles through an 8-stage pipeline — at 150 MHz exactly the
//! paper's 53.3 ns latency and 75 Msymbols/s throughput.

use crate::pipeline::{ExecutionMode, PipelineTiming, StageTiming};
use crate::resources::{self, ResourceUsage};
use hybridem_comm::demapper::Demapper;
use hybridem_fixed::{QFormat, Rounding};
use hybridem_mathkit::complex::C32;
use std::cell::RefCell;

/// Most bits a centroid set can encode (bounds the per-symbol stack
/// buffers that keep the legacy entry points allocation-free).
const MAX_BITS: usize = 16;

/// Reusable block-kernel buffers. One set per thread: the link
/// simulator demaps from many Monte-Carlo workers through
/// `&dyn Demapper`, and thread-locals keep the integer path
/// allocation-free after warm-up without serialising the workers.
#[derive(Default)]
struct TileScratch {
    quant: Vec<(i64, i64)>,
    min0: Vec<i64>,
    min1: Vec<i64>,
    dist: Vec<i64>,
}

thread_local! {
    static TILE_SCRATCH: RefCell<TileScratch> = RefCell::new(TileScratch::default());
    /// Raw-LLR staging for the f32 block view — separate cell so the
    /// block kernel can borrow `TILE_SCRATCH` while this is held.
    static RAW_SCRATCH: RefCell<Vec<i64>> = const { RefCell::new(Vec::new()) };
}

/// Configuration of the accelerator.
#[derive(Clone, Debug)]
pub struct SoftDemapperConfig {
    /// Fixed-point format of inputs and centroids.
    pub coord_format: QFormat,
    /// Output LLR format.
    pub llr_format: QFormat,
    /// Parallel distance units (must divide the centroid count).
    pub dist_par: usize,
    /// Fabric clock in MHz.
    pub clock_mhz: f64,
}

impl SoftDemapperConfig {
    /// The paper-calibrated configuration: 8-bit coordinates, 16-bit
    /// LLRs, 8 distance units, 150 MHz.
    pub fn paper_default() -> Self {
        Self {
            coord_format: QFormat::signed(8, 5),
            llr_format: QFormat::signed(16, 8),
            dist_par: 8,
            clock_mhz: 150.0,
        }
    }
}

/// The configured accelerator with quantised centroids.
#[derive(Clone, Debug)]
pub struct SoftDemapperAccel {
    cfg: SoftDemapperConfig,
    /// Quantised centroids (re, im) raw pairs; index = bit label.
    centroids: Vec<(i64, i64)>,
    bits_per_symbol: usize,
    /// Raw constant `1/2σ²` in the scale format.
    scale_raw: i64,
    scale_format: QFormat,
}

impl SoftDemapperAccel {
    /// Builds the accelerator for a set of labelled centroids and a
    /// noise level σ.
    pub fn new(cfg: SoftDemapperConfig, centroids: &[C32], sigma: f32) -> Self {
        let m = centroids.len();
        assert!(m >= 2 && m.is_power_of_two(), "centroid count must be 2^k");
        assert!(
            m.is_multiple_of(cfg.dist_par),
            "dist_par must divide centroid count"
        );
        assert!(
            (m.trailing_zeros() as usize) <= MAX_BITS,
            "at most {MAX_BITS} bits per symbol"
        );
        assert!(sigma > 0.0);
        let quant: Vec<(i64, i64)> = centroids
            .iter()
            .map(|c| {
                (
                    cfg.coord_format
                        .raw_from_f64(c.re as f64, Rounding::Nearest),
                    cfg.coord_format
                        .raw_from_f64(c.im as f64, Rounding::Nearest),
                )
            })
            .collect();
        // The scale constant: unsigned, chosen with enough integer bits
        // for low-SNR (large 1/2σ²) operation.
        let scale_format = QFormat::unsigned(16, 8);
        let scale_raw =
            scale_format.raw_from_f64(1.0 / (2.0 * sigma as f64 * sigma as f64), Rounding::Nearest);
        Self {
            bits_per_symbol: m.trailing_zeros() as usize,
            cfg,
            centroids: quant,
            scale_raw,
            scale_format,
        }
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(&self) -> usize {
        self.bits_per_symbol
    }

    /// The dequantised centroids the hardware effectively uses.
    pub fn effective_centroids(&self) -> Vec<C32> {
        self.centroids
            .iter()
            .map(|&(re, im)| {
                C32::new(
                    self.cfg.coord_format.f64_from_raw(re) as f32,
                    self.cfg.coord_format.f64_from_raw(im) as f32,
                )
            })
            .collect()
    }

    /// Bit-exact demap of one received symbol: returns raw LLRs in
    /// `llr_format` (positive ⇒ bit 0). Legacy allocating entry point —
    /// routes through [`SoftDemapperAccel::process_into`].
    pub fn process(&self, y: C32) -> Vec<i64> {
        let mut out = vec![0i64; self.bits_per_symbol];
        self.process_into(y, &mut out);
        out
    }

    /// Allocation-free per-symbol demap: raw LLRs in `llr_format` into
    /// `out` (`bits_per_symbol` values, positive ⇒ bit 0).
    pub fn process_into(&self, y: C32, out: &mut [i64]) {
        let m = self.bits_per_symbol;
        assert_eq!(out.len(), m, "process_into output width");
        let f = self.cfg.coord_format;
        let y_re = f.raw_from_f64(y.re as f64, Rounding::Nearest);
        let y_im = f.raw_from_f64(y.im as f64, Rounding::Nearest);
        // Distance accumulator: (2·coord_bits + 1) bits of headroom,
        // exact in i64. Stack planes (m ≤ MAX_BITS) keep this alloc-free.
        let mut min0 = [i64::MAX; MAX_BITS];
        let mut min1 = [i64::MAX; MAX_BITS];
        for (i, &(c_re, c_im)) in self.centroids.iter().enumerate() {
            let dr = y_re - c_re;
            let di = y_im - c_im;
            let d = dr * dr + di * di;
            for k in 0..m {
                let bit = (i >> (m - 1 - k)) & 1;
                if bit == 0 {
                    if d < min0[k] {
                        min0[k] = d;
                    }
                } else if d < min1[k] {
                    min1[k] = d;
                }
            }
        }
        // Distance format: coord² has 2×frac fraction bits. The
        // subtraction is exact; multiplying by the quantised 1/2σ² (one
        // DSP) gives dist_frac + scale_frac fraction bits, then a cast
        // to llr_format.
        let dist_frac = 2 * f.frac_bits;
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.scale_raw_llr(min1[k] - min0[k], dist_frac);
        }
    }

    /// LLRs as f32 (dequantised) — the receiver-facing view.
    /// Allocation-free: stages raw LLRs on the stack.
    pub fn llrs_f32(&self, y: C32, out: &mut [f32]) {
        let m = self.bits_per_symbol;
        let mut raws = [0i64; MAX_BITS];
        self.process_into(y, &mut raws[..m]);
        for (o, &r) in out.iter_mut().zip(&raws[..m]) {
            *o = self.cfg.llr_format.f64_from_raw(r) as f32;
        }
    }

    /// Scales a min-difference to the raw LLR format (the DSP stage).
    #[inline]
    fn scale_raw_llr(&self, diff: i64, dist_frac: u32) -> i64 {
        let prod = diff as i128 * self.scale_raw as i128;
        let shift =
            (dist_frac + self.scale_format.frac_bits) as i32 - self.cfg.llr_format.frac_bits as i32;
        let raw = if shift >= 0 {
            (prod >> shift) as i64
        } else {
            (prod << (-shift)) as i64
        };
        self.cfg.llr_format.saturate(raw).0
    }

    /// Bit-exact block demap: raw LLRs in `llr_format`, symbol-major
    /// (`out.len() == ys.len() * bits_per_symbol`). This is the
    /// streaming view of the pipelined datapath — inputs are quantised
    /// once, then the centroid ROM is swept in the outer loop with the
    /// per-bit running-min planes held across the whole block. Results
    /// equal a [`SoftDemapperAccel::process`] loop exactly (integer
    /// arithmetic throughout).
    pub fn process_block(&self, ys: &[C32], out: &mut [i64]) {
        let m = self.bits_per_symbol;
        assert_eq!(
            out.len(),
            ys.len() * m,
            "process_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        if ys.len() <= 1 {
            if let Some(&y) = ys.first() {
                self.process_into(y, out);
            }
            return;
        }
        // Tile so the running-min planes stay cache-resident (see
        // `hybridem_comm::demapper::BLOCK_TILE`); symbols are
        // independent, so tiling cannot change results.
        const TILE: usize = hybridem_comm::demapper::BLOCK_TILE;
        for (ys_t, out_t) in ys.chunks(TILE).zip(out.chunks_mut(TILE * m)) {
            self.process_tile(ys_t, out_t);
        }
    }

    /// Integer point-outer kernel over one cache-resident tile. All
    /// staging buffers live in a per-thread scratch, so a warm thread
    /// allocates nothing.
    fn process_tile(&self, ys: &[C32], out: &mut [i64]) {
        let m = self.bits_per_symbol;
        let n = ys.len();
        let f = self.cfg.coord_format;
        TILE_SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            s.quant.clear();
            s.quant.extend(ys.iter().map(|y| {
                (
                    f.raw_from_f64(y.re as f64, Rounding::Nearest),
                    f.raw_from_f64(y.im as f64, Rounding::Nearest),
                )
            }));
            s.min0.clear();
            s.min0.resize(m * n, i64::MAX);
            s.min1.clear();
            s.min1.resize(m * n, i64::MAX);
            s.dist.resize(n, 0);
            for (i, &(c_re, c_im)) in self.centroids.iter().enumerate() {
                for (d, &(y_re, y_im)) in s.dist.iter_mut().zip(&s.quant) {
                    let dr = y_re - c_re;
                    let di = y_im - c_im;
                    *d = dr * dr + di * di;
                }
                for k in 0..m {
                    let bit = (i >> (m - 1 - k)) & 1;
                    let plane = if bit == 0 {
                        &mut s.min0[k * n..(k + 1) * n]
                    } else {
                        &mut s.min1[k * n..(k + 1) * n]
                    };
                    for (p, &d) in plane.iter_mut().zip(&s.dist) {
                        if d < *p {
                            *p = d;
                        }
                    }
                }
            }
            let dist_frac = 2 * f.frac_bits;
            for (sym, chunk) in out.chunks_exact_mut(m).enumerate() {
                for (k, o) in chunk.iter_mut().enumerate() {
                    *o = self.scale_raw_llr(s.min1[k * n + sym] - s.min0[k * n + sym], dist_frac);
                }
            }
        });
    }

    /// Dequantised block demap (symbol-major f32 LLRs) — the
    /// receiver-facing block view backing the [`Demapper`] impl.
    pub fn llrs_f32_block(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol;
        assert_eq!(
            out.len(),
            ys.len() * m,
            "llrs_f32_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        RAW_SCRATCH.with(|cell| {
            let raws = &mut *cell.borrow_mut();
            raws.resize(ys.len() * m, 0);
            self.process_block(ys, raws);
            for (o, &r) in out.iter_mut().zip(raws.iter()) {
                *o = self.cfg.llr_format.f64_from_raw(r) as f32;
            }
        });
    }

    /// Pipeline timing: distance wave-front (II = M/dist_par), running
    /// min + tree, difference, scale.
    pub fn timing(&self) -> PipelineTiming {
        let m = self.centroids.len();
        let waves = (m / self.cfg.dist_par) as u64;
        let tree_depth = (usize::BITS - (self.cfg.dist_par - 1).leading_zeros()).max(1) as u64;
        let stages = vec![
            // Distance units: subtract, square, add (3 levels), folded
            // over `waves` beats.
            StageTiming {
                ii: waves,
                depth: waves + 1,
            },
            // Per-bit min tree over one wave + running min across waves.
            StageTiming {
                ii: waves,
                depth: tree_depth.max(waves),
            },
            // min1 − min0.
            StageTiming {
                ii: waves,
                depth: 1,
            },
            // DSP scale.
            StageTiming {
                ii: waves,
                depth: 1,
            },
        ];
        PipelineTiming::new(stages, ExecutionMode::Pipelined, self.cfg.clock_mhz)
    }

    /// Structural resources.
    pub fn resources(&self) -> ResourceUsage {
        let cb = self.cfg.coord_format.total_bits;
        let dist_bits = 2 * cb + 1;
        // The min network compares LSB-truncated distances (max-log only
        // needs distance *ordering*; 12 bits of a 17-bit metric keep the
        // ordering of any pair whose gap matters at 8-bit coordinates).
        let cmp_bits = dist_bits.min(12);
        let m = self.centroids.len();
        let mut r = ResourceUsage::zero();
        // Distance units: 2 subtractors, 2 LUT squarers, 1 adder.
        let squarer = ResourceUsage {
            // A dedicated squarer is about half a generic multiplier.
            lut: ((cb * cb) as u64).div_ceil(4),
            ff: (2 * cb) as u64,
            ..Default::default()
        };
        let dist_unit =
            resources::adder(cb).times(2) + squarer.times(2) + resources::adder(dist_bits);
        r += dist_unit.times(self.cfg.dist_par as u64);
        // Centroid ROM (small → LUTRAM).
        r += resources::memory((m as u64) * 2 * cb as u64, 2 * cb);
        // Per-bit position: two min trees over dist_par entries plus a
        // running-min register pair.
        let min_tree = resources::reduction_tree(
            self.cfg.dist_par,
            resources::comparator(cmp_bits) + resources::mux2(cmp_bits),
        );
        r += (min_tree.times(2)
            + resources::register(cmp_bits).times(2)
            + resources::comparator(cmp_bits).times(2))
        .times(self.bits_per_symbol as u64);
        // Difference per bit.
        r += resources::adder(cmp_bits).times(self.bits_per_symbol as u64);
        // One shared DSP for the 1/2σ² scaling (time-multiplexed over
        // the bit positions during the II window).
        r += ResourceUsage {
            dsp: 1,
            ff: (self.cfg.llr_format.total_bits * self.bits_per_symbol as u32) as u64,
            ..Default::default()
        };
        // Control.
        r += ResourceUsage {
            lut: 60,
            ff: 40,
            ..Default::default()
        };
        r
    }
}

/// The accelerator is a drop-in receiver demapper: the bit-exact
/// quantised datapath slots straight into the link simulator and the
/// frame receiver through the workspace [`Demapper`] trait.
impl Demapper for SoftDemapperAccel {
    fn bits_per_symbol(&self) -> usize {
        self.bits_per_symbol
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        self.llrs_f32(y, &mut out[..self.bits_per_symbol]);
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        self.llrs_f32_block(ys, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_comm::constellation::Constellation;
    use hybridem_comm::demapper::MaxLogMap;

    fn accel(sigma: f32) -> SoftDemapperAccel {
        let c = Constellation::qam_gray(16);
        SoftDemapperAccel::new(SoftDemapperConfig::paper_default(), c.points(), sigma)
    }

    #[test]
    fn matches_float_maxlog_decisions() {
        let sigma = 0.2f32;
        let hw = accel(sigma);
        // Float reference on the *quantised* centroids.
        let eff = Constellation::from_points(hw.effective_centroids());
        let reference = MaxLogMap::new(eff, sigma);
        let mut rng = hybridem_mathkit::rng::Xoshiro256pp::seed_from_u64(3);
        let mut llr_hw = [0f32; 4];
        let mut llr_ref = [0f32; 4];
        let mut agree = 0usize;
        let total = 2000usize;
        for _ in 0..total {
            let y = C32::new(rng.normal_f32() * 0.7, rng.normal_f32() * 0.7);
            hw.llrs_f32(y, &mut llr_hw);
            reference.llrs(y, &mut llr_ref);
            for k in 0..4 {
                // Decisions must agree except for near-zero LLRs where
                // input quantisation can flip the sign.
                if llr_ref[k].abs() > 0.5 {
                    if (llr_hw[k] < 0.0) == (llr_ref[k] < 0.0) {
                        agree += 1;
                    }
                } else {
                    agree += 1;
                }
            }
        }
        let rate = agree as f64 / (4 * total) as f64;
        assert!(rate > 0.995, "decision agreement {rate}");
    }

    #[test]
    fn llr_magnitude_tracks_reference() {
        let sigma = 0.2f32;
        let hw = accel(sigma);
        let eff = Constellation::from_points(hw.effective_centroids());
        let reference = MaxLogMap::new(eff, sigma);
        let mut llr_hw = [0f32; 4];
        let mut llr_ref = [0f32; 4];
        let y = C32::new(0.31, -0.62);
        hw.llrs_f32(y, &mut llr_hw);
        reference.llrs(y, &mut llr_ref);
        for k in 0..4 {
            let err = (llr_hw[k] - llr_ref[k]).abs();
            // Quantisation of input coords (Q2.5) and LLR (Q8.8) bounds
            // the error; allow a generous envelope.
            assert!(err < 1.5, "bit {k}: hw {} vs ref {}", llr_hw[k], llr_ref[k]);
        }
    }

    #[test]
    fn paper_timing_point() {
        let hw = accel(0.2);
        let t = hw.timing();
        // 16 centroids / 8 units → II 2 at 150 MHz = 75 Msym/s.
        assert_eq!(t.ii_cycles(), 2);
        assert!((t.throughput_per_s() - 7.5e7).abs() < 1.0);
        // 8-cycle depth → 53.3 ns.
        assert_eq!(t.total_depth_cycles(), 8);
        assert!((t.latency_s() - 5.33e-8).abs() < 0.05e-8);
    }

    #[test]
    fn uses_exactly_one_dsp() {
        let hw = accel(0.2);
        let r = hw.resources();
        assert_eq!(
            r.dsp, 1,
            "the hybrid demapper must not consume the DSP column"
        );
        assert_eq!(r.bram36, 0.0, "centroid ROM fits LUTRAM");
        // LUT/FF in the right magnitude (paper: 1107 LUT, 1042 FF).
        assert!(r.lut > 400 && r.lut < 4000, "LUT {}", r.lut);
        assert!(r.ff > 300 && r.ff < 4000, "FF {}", r.ff);
    }

    #[test]
    fn more_distance_units_cost_more_but_run_faster() {
        let c = Constellation::qam_gray(16);
        let mut cfg_slow = SoftDemapperConfig::paper_default();
        cfg_slow.dist_par = 2;
        let slow = SoftDemapperAccel::new(cfg_slow, c.points(), 0.2);
        let fast = accel(0.2);
        assert!(slow.resources().lut < fast.resources().lut);
        assert!(slow.timing().ii_cycles() > fast.timing().ii_cycles());
    }

    #[test]
    fn clean_symbols_decode_correctly() {
        let hw = accel(0.15);
        let c = Constellation::qam_gray(16);
        for u in 0..16 {
            let llrs = hw.process(c.point(u));
            for (k, &l) in llrs.iter().enumerate() {
                let bit = (u >> (3 - k)) & 1;
                if bit == 0 {
                    assert!(l > 0, "symbol {u} bit {k}: llr {l}");
                } else {
                    assert!(l < 0, "symbol {u} bit {k}: llr {l}");
                }
            }
        }
    }
}
