//! Dataflow pipeline timing.
//!
//! Models an HLS dataflow region: a chain of stages, each with an
//! initiation interval (II) and a pipeline depth, connected by FIFOs.
//! [`PipelineTiming::simulate`] computes exact token-level timestamps
//! (classic pipeline recurrence), from which latency and steady-state
//! throughput follow. Two execution modes mirror the designs in the
//! paper:
//!
//! - [`ExecutionMode::Pipelined`] — tokens overlap; throughput is set
//!   by the slowest stage (the hybrid soft demapper);
//! - [`ExecutionMode::Iterative`] — one token occupies the whole chain
//!   (HLS without `#pragma HLS dataflow`); II = end-to-end depth (the
//!   paper's AE-inference and AE-training modules).

/// Timing descriptor of one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageTiming {
    /// Initiation interval in cycles (≥1).
    pub ii: u64,
    /// Depth (input-to-output) in cycles (≥1).
    pub depth: u64,
}

/// Whether tokens overlap across the stage chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Stages overlap across tokens (dataflow).
    Pipelined,
    /// The next token starts only after the previous one leaves.
    Iterative,
}

/// A chain of stages with a clock.
#[derive(Clone, Debug)]
pub struct PipelineTiming {
    stages: Vec<StageTiming>,
    mode: ExecutionMode,
    clock_mhz: f64,
}

/// Result of a token-level timing simulation.
#[derive(Clone, Debug)]
pub struct TimingTrace {
    /// Completion cycle of each token.
    pub finish_cycles: Vec<u64>,
    /// First-token latency in cycles.
    pub latency_cycles: u64,
    /// Steady-state initiation interval in cycles.
    pub ii_cycles: u64,
}

impl PipelineTiming {
    /// Builds a chain.
    pub fn new(stages: Vec<StageTiming>, mode: ExecutionMode, clock_mhz: f64) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        assert!(clock_mhz > 0.0);
        for s in &stages {
            assert!(s.ii >= 1 && s.depth >= 1, "stage timing must be ≥1 cycle");
        }
        Self {
            stages,
            mode,
            clock_mhz,
        }
    }

    /// The stages.
    pub fn stages(&self) -> &[StageTiming] {
        &self.stages
    }

    /// End-to-end depth in cycles.
    pub fn total_depth_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.depth).sum()
    }

    /// Steady-state II in cycles.
    pub fn ii_cycles(&self) -> u64 {
        match self.mode {
            ExecutionMode::Pipelined => self.stages.iter().map(|s| s.ii).max().unwrap_or(1),
            ExecutionMode::Iterative => self.total_depth_cycles(),
        }
    }

    /// First-token latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.total_depth_cycles() as f64 / (self.clock_mhz * 1e6)
    }

    /// Steady-state throughput in tokens per second.
    pub fn throughput_per_s(&self) -> f64 {
        self.clock_mhz * 1e6 / self.ii_cycles() as f64
    }

    /// Clock frequency in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// Token-level simulation of `n_tokens` arrivals (token `k` is
    /// available at cycle 0 — source-saturated operation). Verifies the
    /// analytic formulas and exposes transient behaviour.
    pub fn simulate(&self, n_tokens: usize) -> TimingTrace {
        assert!(n_tokens >= 1);
        match self.mode {
            ExecutionMode::Pipelined => {
                // start(s, k) = max(finish(s−1, k), start(s, k−1) + II_s)
                let ns = self.stages.len();
                let mut prev_start = vec![0u64; ns];
                let mut finishes = Vec::with_capacity(n_tokens);
                for k in 0..n_tokens {
                    let mut upstream_finish = 0u64;
                    for (s, st) in self.stages.iter().enumerate() {
                        let start = if k == 0 {
                            upstream_finish
                        } else {
                            upstream_finish.max(prev_start[s] + st.ii)
                        };
                        prev_start[s] = start;
                        upstream_finish = start + st.depth;
                    }
                    finishes.push(upstream_finish);
                }
                let latency = finishes[0];
                let ii = if n_tokens >= 2 {
                    finishes[n_tokens - 1] - finishes[n_tokens - 2]
                } else {
                    self.ii_cycles()
                };
                TimingTrace {
                    finish_cycles: finishes,
                    latency_cycles: latency,
                    ii_cycles: ii,
                }
            }
            ExecutionMode::Iterative => {
                let depth = self.total_depth_cycles();
                let finishes: Vec<u64> = (1..=n_tokens as u64).map(|k| k * depth).collect();
                TimingTrace {
                    latency_cycles: depth,
                    ii_cycles: depth,
                    finish_cycles: finishes,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages() -> Vec<StageTiming> {
        vec![
            StageTiming { ii: 1, depth: 3 },
            StageTiming { ii: 2, depth: 4 },
            StageTiming { ii: 1, depth: 2 },
        ]
    }

    #[test]
    fn pipelined_latency_and_ii() {
        let p = PipelineTiming::new(stages(), ExecutionMode::Pipelined, 100.0);
        assert_eq!(p.total_depth_cycles(), 9);
        assert_eq!(p.ii_cycles(), 2, "slowest stage dominates");
        let trace = p.simulate(100);
        assert_eq!(trace.latency_cycles, 9);
        assert_eq!(trace.ii_cycles, 2, "simulation agrees with analysis");
        // Monotone completion.
        for w in trace.finish_cycles.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn iterative_ii_equals_depth() {
        let p = PipelineTiming::new(stages(), ExecutionMode::Iterative, 100.0);
        assert_eq!(p.ii_cycles(), 9);
        let trace = p.simulate(10);
        assert_eq!(trace.ii_cycles, 9);
        assert_eq!(trace.latency_cycles, 9);
        assert_eq!(trace.finish_cycles[9], 90);
    }

    #[test]
    fn seconds_conversions() {
        let p = PipelineTiming::new(
            vec![StageTiming { ii: 2, depth: 8 }],
            ExecutionMode::Pipelined,
            150.0,
        );
        // 8 cycles at 150 MHz = 53.33 ns (the paper's soft demapper).
        assert!((p.latency_s() - 53.33e-9).abs() < 0.05e-9);
        // II = 2 ⇒ 75 Msymbols/s.
        assert!((p.throughput_per_s() - 7.5e7).abs() < 1e3);
    }

    #[test]
    fn single_token_uses_analytic_ii() {
        let p = PipelineTiming::new(stages(), ExecutionMode::Pipelined, 100.0);
        let t = p.simulate(1);
        assert_eq!(t.ii_cycles, 2);
        assert_eq!(t.finish_cycles.len(), 1);
    }

    #[test]
    fn pipelined_beats_iterative_in_throughput() {
        let pi = PipelineTiming::new(stages(), ExecutionMode::Pipelined, 100.0);
        let it = PipelineTiming::new(stages(), ExecutionMode::Iterative, 100.0);
        assert!(pi.throughput_per_s() > it.throughput_per_s());
        // Same first-token latency.
        assert_eq!(pi.latency_s(), it.latency_s());
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let _ = PipelineTiming::new(vec![], ExecutionMode::Pipelined, 100.0);
    }
}
