//! Structural resource costing.
//!
//! FINN-style HLS datapaths have very predictable synthesis results:
//! carry-chain adders cost ≈1 LUT/bit, registers 1 FF/bit, wide
//! multiplies map to DSP48 slices, narrow ones to LUT fabric. The
//! constants here are the standard rules of thumb for UltraScale+
//! parts; they are *models*, not measurements, and the Table-2
//! reproduction in EXPERIMENTS.md compares their outputs against the
//! paper's reported utilisation.

use std::ops::{Add, AddAssign};

/// LUT/FF/DSP/BRAM usage of a module or design.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResourceUsage {
    /// 6-input LUTs.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP48 slices.
    pub dsp: u64,
    /// 36 Kb BRAM equivalents (0.5 = one 18 Kb half).
    pub bram36: f64,
}

hybridem_mathkit::impl_to_json!(ResourceUsage {
    lut,
    ff,
    dsp,
    bram36
});

impl ResourceUsage {
    /// The zero usage.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Scales usage by an integer replication factor.
    pub fn times(&self, n: u64) -> Self {
        Self {
            lut: self.lut * n,
            ff: self.ff * n,
            dsp: self.dsp * n,
            bram36: self.bram36 * n as f64,
        }
    }
}

impl Add for ResourceUsage {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            dsp: self.dsp + o.dsp,
            bram36: self.bram36 + o.bram36,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, o: Self) {
        self.lut += o.lut;
        self.ff += o.ff;
        self.dsp += o.dsp;
        self.bram36 += o.bram36;
    }
}

impl std::iter::Sum for ResourceUsage {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

/// Width (bits) above which a multiply is mapped to a DSP48 slice
/// rather than LUT fabric. DSP48E2 natively handles 27×18; HLS maps
/// ≥~5-bit operands onto it by default.
pub const DSP_MULT_THRESHOLD: u32 = 5;

/// Ripple/carry adder of `bits` width: ~1 LUT per bit plus an output
/// register.
pub fn adder(bits: u32) -> ResourceUsage {
    ResourceUsage {
        lut: bits as u64,
        ff: bits as u64,
        dsp: 0,
        bram36: 0.0,
    }
}

/// Comparator (`<`): carry chain, ~1 LUT per bit, no register.
pub fn comparator(bits: u32) -> ResourceUsage {
    ResourceUsage {
        lut: bits as u64,
        ..Default::default()
    }
}

/// 2:1 multiplexer of `bits` width: ~0.5 LUT per bit (two muxes per
/// LUT6), rounded up.
pub fn mux2(bits: u32) -> ResourceUsage {
    ResourceUsage {
        lut: bits.div_ceil(2) as u64,
        ..Default::default()
    }
}

/// Pipeline register of `bits` width.
pub fn register(bits: u32) -> ResourceUsage {
    ResourceUsage {
        ff: bits as u64,
        ..Default::default()
    }
}

/// `a × b` multiplier: one DSP48 when both operands reach the DSP
/// threshold (and fit 27×18), LUT fabric otherwise (≈ a·b/2 LUTs for a
/// Baugh-Wooley array after synthesis optimisation).
pub fn multiplier(a_bits: u32, b_bits: u32) -> ResourceUsage {
    let (lo, hi) = if a_bits <= b_bits {
        (a_bits, b_bits)
    } else {
        (b_bits, a_bits)
    };
    if lo >= DSP_MULT_THRESHOLD && hi <= 27 && lo <= 18 {
        ResourceUsage {
            dsp: 1,
            // Interface/pipeline flops around the DSP.
            ff: (a_bits + b_bits) as u64,
            lut: 0,
            bram36: 0.0,
        }
    } else {
        ResourceUsage {
            lut: ((a_bits * b_bits) as u64).div_ceil(2),
            ff: (a_bits + b_bits) as u64,
            dsp: 0,
            bram36: 0.0,
        }
    }
}

/// Balanced reduction tree of `n` inputs combined by `op_cost`-sized
/// two-input operators (adder trees, min trees): `n−1` operators.
pub fn reduction_tree(n: usize, op_cost: ResourceUsage) -> ResourceUsage {
    if n <= 1 {
        return ResourceUsage::zero();
    }
    op_cost.times((n - 1) as u64)
}

/// On-chip memory for `total_bits` with a `width`-bit read port.
/// Below the BRAM threshold HLS infers distributed (LUT) RAM;
/// above it, 18 Kb/36 Kb BRAMs. One BRAM36 = 36 864 bits.
pub fn memory(total_bits: u64, width: u32) -> ResourceUsage {
    const BRAM36_BITS: u64 = 36_864;
    const LUTRAM_THRESHOLD: u64 = 2_048;
    if total_bits == 0 {
        return ResourceUsage::zero();
    }
    if total_bits <= LUTRAM_THRESHOLD {
        // 64 bits per LUT6 used as LUTRAM.
        ResourceUsage {
            lut: total_bits.div_ceil(64),
            ..Default::default()
        }
    } else {
        // Width-limited mapping: each BRAM36 offers up to a 72-bit port.
        let by_capacity = total_bits as f64 / BRAM36_BITS as f64;
        let by_width = width as f64 / 72.0;
        let bram = by_capacity.max(by_width);
        // Round to half-BRAM granularity.
        ResourceUsage {
            bram36: (bram * 2.0).ceil() / 2.0,
            ..Default::default()
        }
    }
}

/// Gate-level delay model (nanoseconds) for critical-path estimates,
/// matching mid-speed-grade UltraScale+ numbers with routing margin.
pub mod delay_ns {
    /// DSP48 multiply (combinational view, incl. routing).
    pub const DSP_MULT: f64 = 4.0;
    /// LUT-fabric multiply for small operands.
    pub const LUT_MULT: f64 = 3.0;
    /// One adder/comparator level (carry chain + routing).
    pub const ADD_LEVEL: f64 = 1.6;
    /// LUT lookup (activation tables, muxes).
    pub const LUT_STEP: f64 = 1.0;
    /// Clock-to-out + setup overhead per register stage.
    pub const REG_OVERHEAD: f64 = 0.6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_sum() {
        let a = adder(8);
        let r = register(8);
        let both = a.clone() + r;
        assert_eq!(both.lut, 8);
        assert_eq!(both.ff, 16);
        let tripled = both.times(3);
        assert_eq!(tripled.ff, 48);
        let total: ResourceUsage = vec![adder(4), adder(4)].into_iter().sum();
        assert_eq!(total.lut, 8);
    }

    #[test]
    fn multiplier_dsp_inference() {
        // 8×8: DSP.
        assert_eq!(multiplier(8, 8).dsp, 1);
        assert_eq!(multiplier(8, 8).lut, 0);
        // 4×8: LUT fabric.
        let small = multiplier(4, 8);
        assert_eq!(small.dsp, 0);
        assert!(small.lut > 0);
        // 18×27 fits one DSP; wider does not.
        assert_eq!(multiplier(18, 27).dsp, 1);
        assert_eq!(
            multiplier(32, 32).dsp,
            0,
            "bigger than one DSP → modelled as fabric"
        );
    }

    #[test]
    fn reduction_tree_counts_operators() {
        let t = reduction_tree(16, comparator(12));
        assert_eq!(t.lut, 15 * 12);
        assert_eq!(reduction_tree(1, comparator(12)), ResourceUsage::zero());
    }

    #[test]
    fn memory_thresholds() {
        // Small tables → LUTRAM.
        let small = memory(1024, 16);
        assert_eq!(small.bram36, 0.0);
        assert_eq!(small.lut, 16);
        // Large tables → BRAM, half-BRAM granularity.
        let big = memory(36_864, 32);
        assert_eq!(big.bram36, 1.0);
        assert_eq!(big.lut, 0);
        let bigger = memory(40_000, 32);
        assert_eq!(bigger.bram36, 1.5);
        // Wide ports cost BRAM even at low capacity.
        let wide = memory(4_096, 144);
        assert_eq!(wide.bram36, 2.0);
        assert_eq!(memory(0, 8), ResourceUsage::zero());
    }

    #[test]
    fn usage_monotone_in_bits() {
        assert!(adder(16).lut > adder(8).lut);
        assert!(multiplier(6, 6).ff < multiplier(12, 12).ff);
        assert!(memory(100_000, 32).bram36 > memory(50_000, 32).bram36);
    }
}
