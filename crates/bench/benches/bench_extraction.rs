//! Centroid-extraction cost at different grid resolutions (the
//! deployment-time step of the hybrid flow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybridem_core::config::SystemConfig;
use hybridem_core::extraction::{extract, ExtractionConfig};
use hybridem_core::pipeline::HybridPipeline;
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let mut cfg = SystemConfig::fast_test();
    cfg.e2e_steps = 300;
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let constellation = pipe.constellation();

    let mut g = c.benchmark_group("extraction");
    g.sample_size(20);
    for n in [32usize, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let ecfg = ExtractionConfig::new(n, 4.0 / 3.0);
            b.iter(|| black_box(extract(pipe.ann_demapper(), &ecfg, &constellation)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
