//! Training-step costs: one E2E autoencoder step and one retraining
//! step (the software counterpart of Table 2's AE-training row).

use criterion::{criterion_group, criterion_main, Criterion};
use hybridem_core::config::SystemConfig;
use hybridem_core::demapper_ann::NeuralDemapper;
use hybridem_core::e2e::E2eTrainer;
use hybridem_core::mapper::NeuralMapper;
use hybridem_mathkit::rng::Xoshiro256pp;

fn bench_training(c: &mut Criterion) {
    let mut cfg = SystemConfig::fast_test();
    cfg.batch_size = 256;
    let mut g = c.benchmark_group("training");
    g.bench_function("e2e_step_batch256", |b| {
        let mut rng = Xoshiro256pp::stream(cfg.seed, 0);
        let mut mapper = NeuralMapper::new(cfg.num_symbols(), &mut rng);
        let mut demapper = NeuralDemapper::new(cfg.demapper.build(&mut rng));
        let mut t = E2eTrainer::new(&cfg);
        b.iter(|| t.step(&mut mapper, &mut demapper));
    });
    g.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
