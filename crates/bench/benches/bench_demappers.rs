//! Demapping cost: the software view of Table 2's latency column —
//! exact log-MAP vs max-log vs ANN inference vs the bit-exact
//! quantised datapaths — plus the block-size sweep that measures what
//! the `demap_block` restructuring buys over the per-symbol path
//! (1/16/256/4096 symbols per call).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::{Demapper, ExactLogMap, MaxLogMap};
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_fpga::builder::{build_inference_design, DeployConfig};
use hybridem_fpga::demapper_accel::{SoftDemapperAccel, SoftDemapperConfig};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;
use std::hint::black_box;

fn bench_demappers(c: &mut Criterion) {
    let qam = Constellation::qam_gray(16);
    let sigma = 0.2f32;
    let exact = ExactLogMap::new(qam.clone(), sigma);
    let maxlog = MaxLogMap::new(qam.clone(), sigma);
    let accel = SoftDemapperAccel::new(SoftDemapperConfig::paper_default(), qam.points(), sigma);

    // A small trained ANN for the inference paths.
    let mut cfg = SystemConfig::fast_test();
    cfg.e2e_steps = 300;
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let calib: Vec<C32> = (0..256)
        .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
        .collect();
    let hw = build_inference_design(
        pipe.ann_demapper().model(),
        &calib,
        &DeployConfig::default(),
    );

    let samples: Vec<C32> = (0..512)
        .map(|_| C32::new(rng.normal_f32() * 0.7, rng.normal_f32() * 0.7))
        .collect();
    let mut out = [0f32; 4];

    let mut g = c.benchmark_group("demap_per_symbol");
    g.bench_function("exact_log_map", |b| {
        b.iter(|| {
            for &y in &samples {
                exact.llrs(black_box(y), &mut out);
            }
        })
    });
    g.bench_function("max_log", |b| {
        b.iter(|| {
            for &y in &samples {
                maxlog.llrs(black_box(y), &mut out);
            }
        })
    });
    g.bench_function("ann_f32", |b| {
        b.iter(|| {
            for &y in &samples {
                pipe.ann_demapper().llrs(black_box(y), &mut out);
            }
        })
    });
    g.bench_function("ann_fixed_point_sim", |b| {
        b.iter(|| {
            for &y in &samples {
                black_box(hw.process_iq(black_box(y)));
            }
        })
    });
    g.bench_function("soft_demapper_accel_sim", |b| {
        b.iter(|| {
            for &y in &samples {
                black_box(accel.process(black_box(y)));
            }
        })
    });
    g.finish();

    // Block-size sweep: the same demappers through `demap_block` at
    // 1/16/256/4096 symbols per call, against a per-symbol `llrs` loop
    // over the identical samples. Throughput is reported in symbols/s,
    // so the block speedup reads straight off the Melem/s column.
    let big: Vec<C32> = (0..4096)
        .map(|_| C32::new(rng.normal_f32() * 0.7, rng.normal_f32() * 0.7))
        .collect();
    let ann = pipe.ann_demapper();
    let mut sweep = c.benchmark_group("demap_block_sweep");
    for &n in &[1usize, 16, 256, 4096] {
        sweep.throughput(Throughput::Elements(n as u64));
        let ys = &big[..n];
        let mut block_out = vec![0f32; n * 4];
        sweep.bench_with_input(BenchmarkId::new("max_log_block", n), &n, |b, _| {
            b.iter(|| maxlog.demap_block(black_box(ys), &mut block_out))
        });
        sweep.bench_with_input(BenchmarkId::new("max_log_per_symbol", n), &n, |b, _| {
            b.iter(|| {
                for (y, chunk) in ys.iter().zip(block_out.chunks_exact_mut(4)) {
                    maxlog.llrs(black_box(*y), chunk);
                }
            })
        });
        sweep.bench_with_input(BenchmarkId::new("exact_log_map_block", n), &n, |b, _| {
            b.iter(|| exact.demap_block(black_box(ys), &mut block_out))
        });
        sweep.bench_with_input(BenchmarkId::new("ann_block", n), &n, |b, _| {
            b.iter(|| ann.demap_block(black_box(ys), &mut block_out))
        });
        sweep.bench_with_input(BenchmarkId::new("ann_per_symbol", n), &n, |b, _| {
            b.iter(|| {
                for (y, chunk) in ys.iter().zip(block_out.chunks_exact_mut(4)) {
                    ann.llrs(black_box(*y), chunk);
                }
            })
        });
        sweep.bench_with_input(BenchmarkId::new("accel_block", n), &n, |b, _| {
            b.iter(|| accel.demap_block(black_box(ys), &mut block_out))
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_demappers);
criterion_main!(benches);
