//! Bit-exact MVAU datapath throughput at different foldings — the
//! simulation cost behind the DOP ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use hybridem_fixed::QFormat;
use hybridem_fpga::mvau::{HwActivation, Mvau, MvauConfig};
use hybridem_mathkit::matrix::Matrix;
use std::hint::black_box;

fn bench_mvau(c: &mut Criterion) {
    let fmt = QFormat::signed(8, 6);
    let weight = Matrix::full(16, 16, 0.25f32);
    let bias = Matrix::zeros(1, 16);
    let cfg = MvauConfig::full_parallel(16, 16, fmt, fmt, fmt, false);
    let mvau = Mvau::from_dense(cfg, &weight, &bias, HwActivation::Relu);
    let input: Vec<i64> = (0..16).map(|i| (i * 7 % 64) - 32).collect();

    let mut g = c.benchmark_group("mvau");
    g.bench_function("process_16x16", |b| {
        b.iter(|| black_box(mvau.process(black_box(&input))))
    });
    g.finish();
}

criterion_group!(benches, bench_mvau);
criterion_main!(benches);
