//! Bit-exact MVAU datapath throughput at different foldings — the
//! simulation cost behind the DOP ablation — plus the block-size sweep
//! that measures what the scratch-based `process_block_into` kernel
//! buys over the allocating per-symbol `process` path
//! (1/16/256/4096 symbols per call; gated in CI by the same
//! `HYBRIDEM_BENCH_MS=1` smoke as the demapper sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hybridem_fixed::QFormat;
use hybridem_fpga::mvau::{HwActivation, Mvau, MvauConfig, MvauScratch};
use hybridem_mathkit::matrix::Matrix;
use std::hint::black_box;

fn bench_mvau(c: &mut Criterion) {
    let fmt = QFormat::signed(8, 6);
    let weight = Matrix::full(16, 16, 0.25f32);
    let bias = Matrix::zeros(1, 16);
    let cfg = MvauConfig::full_parallel(16, 16, fmt, fmt, fmt, false);
    let mvau = Mvau::from_dense(cfg, &weight, &bias, HwActivation::Relu);
    let input: Vec<i64> = (0..16).map(|i| (i * 7 % 64) - 32).collect();

    let mut g = c.benchmark_group("mvau");
    g.bench_function("process_16x16", |b| {
        b.iter(|| black_box(mvau.process(black_box(&input))))
    });
    g.finish();

    // Block-size sweep: the same 16×16 unit through the per-symbol
    // legacy entry point (one `process` call — and one `Vec` — per
    // symbol) versus the feature-major block kernel. Throughput is in
    // symbols/s, so the block speedup reads straight off the Melem/s
    // column; the acceptance bar is ≥2× at n=256.
    let big: Vec<i64> = (0..4096 * 16)
        .map(|i| ((i * 13) % 127) as i64 - 63)
        .collect();
    let mut sweep = c.benchmark_group("mvau_block_sweep");
    for &n in &[1usize, 16, 256, 4096] {
        sweep.throughput(Throughput::Elements(n as u64));
        let inputs = &big[..n * 16];
        let mut out = vec![0i64; n * 16];
        sweep.bench_with_input(BenchmarkId::new("per_symbol", n), &n, |b, _| {
            b.iter(|| {
                for (sym, chunk) in inputs.chunks_exact(16).zip(out.chunks_exact_mut(16)) {
                    chunk.copy_from_slice(&mvau.process(black_box(sym)));
                }
            })
        });
        let mut scratch = MvauScratch::new();
        sweep.bench_with_input(BenchmarkId::new("block", n), &n, |b, _| {
            b.iter(|| mvau.process_block_into(black_box(inputs), &mut out, &mut scratch))
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_mvau);
criterion_main!(benches);
