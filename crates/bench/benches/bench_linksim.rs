//! End-to-end Monte-Carlo link throughput (symbols simulated per
//! second) for the conventional and hybrid receivers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hybridem_comm::channel::{Awgn, Channel};
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::MaxLogMap;
use hybridem_comm::linksim::{simulate_link, LinkSpec};
use hybridem_comm::snr::noise_sigma;
use std::hint::black_box;

fn bench_linksim(c: &mut Criterion) {
    let qam = Constellation::qam_gray(16);
    let sigma = noise_sigma(12.0, 1.0) as f32;
    let channel = Awgn::new(sigma);
    let demapper = MaxLogMap::new(qam.clone(), sigma);
    const SYMBOLS: u64 = 100_000;

    let mut g = c.benchmark_group("linksim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SYMBOLS));
    g.bench_function("qam16_maxlog_100k", |b| {
        b.iter(|| {
            let spec = LinkSpec::new(&qam, &channel as &dyn Channel, &demapper, SYMBOLS, 3);
            black_box(simulate_link(&spec))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_linksim);
criterion_main!(benches);
