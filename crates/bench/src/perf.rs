//! In-repo perf-regression trajectories (DESIGN.md §11.4).
//!
//! The `perf` binary times the three hot software kernels — the MVAU
//! block datapath, the max-log point-outer demapper and the compiled
//! [`QuantizedGraph`](hybridem_fpga::graph::QuantizedGraph) demap — at
//! pinned shapes and appends one entry per run to the committed
//! trajectory files `BENCH_mvau.json` / `BENCH_demap.json` at the repo
//! root. Each entry records the median throughput per case (Melem/s,
//! elements = symbols), a host fingerprint (arch, probed SIMD lane
//! width, thread count) and the git revision, so the repo carries its
//! own performance history and a run **fails** when any case regresses
//! more than [`REGRESSION_TOLERANCE`] against the last committed
//! entry.
//!
//! Budgets come from `HYBRIDEM_BENCH_MS` (milliseconds of sampling per
//! case). Setting it also switches to *smoke mode*: the schema and the
//! append path are still exercised, but the updated trajectory goes to
//! the results dir instead of the repo root and the regression
//! threshold only warns — a 1 ms CI smoke must not fail on timing
//! noise, and must not dirty the working tree.

use hybridem_mathkit::json::{Json, JsonError};
use hybridem_mathkit::simd::LaneWidth;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Schema tag every trajectory file must carry.
pub const PERF_SCHEMA: &str = "hybridem-perf-v1";

/// Relative throughput loss vs the last committed entry that fails a
/// full run (15%: generous against run-to-run noise at the default
/// budget, tight against a real kernel regression).
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// Sampling budget per case in milliseconds: `HYBRIDEM_BENCH_MS`
/// parsed by the strict shared rule
/// ([`hybridem_mathkit::env::parse_count`]), or 300 ms for full runs
/// and malformed values alike.
pub fn bench_budget_ms() -> u64 {
    std::env::var("HYBRIDEM_BENCH_MS")
        .ok()
        .as_deref()
        .and_then(hybridem_mathkit::env::parse_count)
        .unwrap_or(300)
}

/// True when `HYBRIDEM_BENCH_MS` is set: a reduced-budget run that
/// validates schema + append but neither fails on the threshold nor
/// writes into the repo.
pub fn smoke_mode() -> bool {
    std::env::var("HYBRIDEM_BENCH_MS").is_ok()
}

/// Times `f` repeatedly for the sampling budget and returns the median
/// per-iteration throughput in Melem/s. One warm-up call precedes
/// sampling (fills scratch buffers, faults pages); at least three
/// samples are always taken so the smoke budget still yields a median.
pub fn measure_melems<F: FnMut()>(elems_per_iter: u64, mut f: F) -> f64 {
    f();
    let budget = Duration::from_millis(bench_budget_ms());
    let mut samples = Vec::new();
    let t0 = Instant::now();
    while samples.len() < 3 || (t0.elapsed() < budget && samples.len() < 1_000_000) {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64().max(1e-9);
        samples.push(elems_per_iter as f64 / dt / 1e6);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Host fingerprint recorded with every entry: CPU architecture, the
/// probed [`LaneWidth`] (32-bit lanes the SIMD kernels dispatched at)
/// and the thread count.
pub fn host_fingerprint() -> Json {
    Json::object([
        ("arch", Json::Str(std::env::consts::ARCH.to_string())),
        ("simd_lanes", Json::Int(LaneWidth::detect().lanes() as i128)),
        (
            "threads",
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as i128,
            ),
        ),
    ])
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// UTC date of the run (`YYYY-MM-DD`), or `"unknown"` without a `date`
/// binary.
pub fn utc_date() -> String {
    std::process::Command::new("date")
        .args(["-u", "+%Y-%m-%d"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Validates a trajectory document against the `hybridem-perf-v1`
/// schema: the tag, the bench name, and for every entry a `rev`,
/// `date`, a complete host fingerprint and a non-empty numeric
/// `results` map.
pub fn validate_trajectory(doc: &Json, bench: &str) -> Result<(), JsonError> {
    if doc.field("schema")?.as_str()? != PERF_SCHEMA {
        return Err(JsonError::new(format!(
            "trajectory schema must be {PERF_SCHEMA}"
        )));
    }
    if doc.field("bench")?.as_str()? != bench {
        return Err(JsonError::new(format!(
            "trajectory bench name must be {bench}"
        )));
    }
    let entries = doc.field("entries")?.as_arr()?;
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| JsonError::new(format!("entry {i}: {msg}"));
        e.field("rev")?.as_str()?;
        e.field("date")?.as_str()?;
        let host = e.field("host")?;
        host.field("arch")?.as_str()?;
        host.field("simd_lanes")?.as_i64()?;
        host.field("threads")?.as_i64()?;
        match e.field("results")? {
            Json::Obj(pairs) if !pairs.is_empty() => {
                for (k, v) in pairs {
                    let melems = v
                        .as_f64()
                        .map_err(|_| ctx(&format!("result {k} must be a number")))?;
                    if !(melems.is_finite() && melems > 0.0) {
                        return Err(ctx(&format!("result {k} must be positive")));
                    }
                }
            }
            _ => return Err(ctx("results must be a non-empty object")),
        }
    }
    Ok(())
}

/// Compares new medians against the previous entry's: one message per
/// case whose throughput dropped by more than `tolerance`
/// (fraction). Cases absent from either side are skipped — adding or
/// retiring a case is not a regression.
pub fn regressions(
    prev_results: &Json,
    new_results: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut msgs = Vec::new();
    for (case, new) in new_results {
        let Some(old) = prev_results.get(case).and_then(|v| v.as_f64().ok()) else {
            continue;
        };
        if *new < old * (1.0 - tolerance) {
            msgs.push(format!(
                "{case}: {new:.1} Melem/s vs committed {old:.1} \
                 ({:+.1}% exceeds the {:.0}% tolerance)",
                (new / old - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    msgs
}

/// Repo-root path of a committed trajectory file
/// (`BENCH_<bench>.json`).
pub fn trajectory_path(bench: &str) -> PathBuf {
    // crates/bench → workspace root, fixed at compile time: the perf
    // gate must find the committed trajectory regardless of the cwd it
    // is invoked from.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{bench}.json"))
}

/// Outcome of one [`append_trajectory`] run.
pub struct TrajectoryUpdate {
    /// Where the updated trajectory was written (repo root on full
    /// runs, results dir in smoke mode).
    pub path: PathBuf,
    /// Regression messages vs the last committed entry (empty when
    /// clean or when there was no prior entry).
    pub regressions: Vec<String>,
}

/// Loads + validates the committed trajectory for `bench`, checks the
/// new medians against its last entry, appends the new entry and
/// writes the result — to the repo root on full runs, to the results
/// dir in smoke mode (CI must not dirty the tree).
///
/// # Errors
/// Returns a message when the committed file exists but fails
/// validation — a corrupt trajectory must fail loudly, not be
/// silently replaced.
pub fn append_trajectory(
    bench: &str,
    results: &[(String, f64)],
) -> Result<TrajectoryUpdate, String> {
    let committed = trajectory_path(bench);
    let mut doc = match std::fs::read_to_string(&committed) {
        Ok(text) => {
            let doc = Json::parse(&text).map_err(|e| format!("{}: {e:?}", committed.display()))?;
            validate_trajectory(&doc, bench)
                .map_err(|e| format!("{}: {e:?}", committed.display()))?;
            doc
        }
        Err(_) => Json::object([
            ("schema", Json::Str(PERF_SCHEMA.to_string())),
            ("bench", Json::Str(bench.to_string())),
            ("entries", Json::Arr(Vec::new())),
        ]),
    };

    let regressions = doc
        .field("entries")
        .ok()
        .and_then(|e| e.as_arr().ok())
        .and_then(|entries| entries.last())
        .and_then(|last| last.get("results"))
        .map(|prev| self::regressions(prev, results, REGRESSION_TOLERANCE))
        .unwrap_or_default();

    let entry = Json::object([
        ("rev", Json::Str(git_rev())),
        ("date", Json::Str(utc_date())),
        ("host", host_fingerprint()),
        (
            "results",
            Json::Obj(
                results
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Float(*v)))
                    .collect(),
            ),
        ),
    ]);
    if let Json::Obj(pairs) = &mut doc {
        for (k, v) in pairs.iter_mut() {
            if k == "entries" {
                if let Json::Arr(entries) = v {
                    entries.push(entry);
                    break;
                }
            }
        }
    }
    validate_trajectory(&doc, bench).map_err(|e| format!("new entry invalid: {e:?}"))?;

    let path = if smoke_mode() {
        crate::results_dir().join(format!("BENCH_{bench}.json"))
    } else {
        committed
    };
    std::fs::write(&path, doc.to_string_pretty())
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(TrajectoryUpdate { path, regressions })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(results: Vec<(&str, f64)>) -> Json {
        Json::object([
            ("rev", Json::Str("abc1234".into())),
            ("date", Json::Str("2026-08-08".into())),
            ("host", host_fingerprint()),
            (
                "results",
                Json::Obj(
                    results
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Float(v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn doc(bench: &str, entries: Vec<Json>) -> Json {
        Json::object([
            ("schema", Json::Str(PERF_SCHEMA.into())),
            ("bench", Json::Str(bench.into())),
            ("entries", Json::Arr(entries)),
        ])
    }

    #[test]
    fn schema_accepts_well_formed_and_rejects_mutations() {
        let good = doc("mvau", vec![entry(vec![("mvau_block_n256_w8", 56.0)])]);
        validate_trajectory(&good, "mvau").unwrap();
        // Round-trips through the serializer.
        let reparsed = Json::parse(&good.to_string_pretty()).unwrap();
        validate_trajectory(&reparsed, "mvau").unwrap();

        assert!(validate_trajectory(&good, "demap").is_err(), "bench name");
        let bad_schema = doc("mvau", vec![]);
        let Json::Obj(mut pairs) = bad_schema else {
            unreachable!()
        };
        pairs[0].1 = Json::Str("other-v0".into());
        assert!(validate_trajectory(&Json::Obj(pairs), "mvau").is_err());
        let empty_results = doc("mvau", vec![entry(vec![])]);
        assert!(validate_trajectory(&empty_results, "mvau").is_err());
        let nan = doc("mvau", vec![entry(vec![("x", f64::NAN)])]);
        assert!(validate_trajectory(&nan, "mvau").is_err());
    }

    #[test]
    fn regression_check_flags_only_losses_beyond_tolerance() {
        let prev = entry(vec![("a", 100.0), ("b", 100.0), ("c", 100.0)]);
        let prev = prev.get("results").unwrap().clone();
        let new = vec![
            ("a".to_string(), 90.0), // −10%: within tolerance
            ("b".to_string(), 80.0), // −20%: regression
            ("d".to_string(), 1.0),  // new case: skipped
        ];
        let msgs = regressions(&prev, &new, REGRESSION_TOLERANCE);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].starts_with("b:"), "{msgs:?}");
    }

    #[test]
    fn committed_trajectories_validate() {
        // The in-repo BENCH_*.json files must always satisfy their own
        // schema — this is what lets the perf gate trust them.
        for bench in ["mvau", "demap", "linkserver", "equalizer"] {
            let p = trajectory_path(bench);
            if let Ok(text) = std::fs::read_to_string(&p) {
                let doc = Json::parse(&text).expect("committed trajectory parses");
                validate_trajectory(&doc, bench).expect("committed trajectory validates");
            }
        }
    }

    #[test]
    fn measure_returns_positive_median() {
        std::env::set_var("HYBRIDEM_BENCH_MS", "1");
        let mut x = 0u64;
        let melems = measure_melems(1000, || {
            x = x.wrapping_add(std::hint::black_box(1));
        });
        assert!(melems > 0.0);
    }
}
