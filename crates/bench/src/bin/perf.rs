//! Perf-regression gate: times the SIMD hot kernels at pinned shapes
//! and appends to the committed `BENCH_*.json` trajectories
//! (DESIGN.md §11.4).
//!
//! Cases (elements = symbols):
//!
//! - `BENCH_mvau.json` — the MVAU block datapath, 16×16 W8 Q(8,6)
//!   ReLU: fully parallel at n=256 (the tracked headline number) and
//!   n=4096, plus a folded `pe=4, simd=4` variant at n=256 (the
//!   folding knob must cost what the loop structure says it costs).
//! - `BENCH_demap.json` — the max-log point-outer kernel (QAM-16,
//!   σ=0.2) at n=256 and n=4096 against its per-symbol reference, and
//!   the compiled paper-demapper `QuantizedGraph` block demap at
//!   n=256.
//!
//! Invariant pinned here (not just recorded): block max-log demap
//! must never lose to the per-symbol loop — the regression a per-tile
//! allocation once caused on long cold streams.
//!
//! Exit is non-zero when any case regresses more than 15% against the
//! last committed entry, unless `HYBRIDEM_BENCH_MS` selects the smoke
//! budget (schema + append validation only; artefacts go to the
//! results dir).

use hybridem_bench::perf;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::{Demapper, MaxLogMap};
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_fpga::graph::compile;
use hybridem_fpga::mvau::{Folding, HwActivation, Mvau, MvauConfig, MvauScratch};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_mathkit::simd::LaneWidth;
use hybridem_nn::model::MlpSpec;
use std::hint::black_box;

/// The pinned MVAU shape: 16×16 dense, W8 weights/activations (Q8.6),
/// ReLU — the headline kernel of the issue's 17.6 Melem/s baseline.
fn pinned_mvau(folding: Folding) -> Mvau {
    let fmt = QFormat::signed(8, 6);
    let mut cfg = MvauConfig::full_parallel(16, 16, fmt, fmt, fmt, false);
    cfg.folding = folding;
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut w = Matrix::zeros(16, 16);
    for v in w.as_mut_slice() {
        *v = rng.normal_f32() * 0.3;
    }
    let mut b = Matrix::zeros(1, 16);
    for v in b.as_mut_slice() {
        *v = rng.normal_f32() * 0.1;
    }
    Mvau::from_dense(cfg, &w, &b, HwActivation::Relu)
}

fn mvau_case(mvau: &Mvau, n: usize) -> f64 {
    let fmt = QFormat::signed(8, 6);
    let mut rng = Xoshiro256pp::seed_from_u64(11);
    let inputs: Vec<i64> = (0..n * 16)
        .map(|_| fmt.raw_from_f64(rng.normal_f64() * 0.4, Rounding::Nearest))
        .collect();
    let mut out = vec![0i64; n * 16];
    let mut scratch = MvauScratch::new();
    perf::measure_melems(n as u64, || {
        mvau.process_block_into(black_box(&inputs), &mut out, &mut scratch);
        black_box(&out);
    })
}

fn main() {
    hybridem_bench::banner(
        "perf — SIMD kernel trajectories + regression gate",
        "DESIGN.md §11.4 (infra; tracks the ISSUE 6 ≥3× MVAU target)",
    );
    println!(
        "budget {} ms/case · lanes ×{} · rev {}\n",
        perf::bench_budget_ms(),
        LaneWidth::detect().lanes(),
        perf::git_rev()
    );

    // ---- MVAU block datapath -------------------------------------
    let full = pinned_mvau(Folding::full(16, 16));
    assert!(
        full.has_fast_path(),
        "pinned shape must take the i32 fast path"
    );
    let folded = pinned_mvau(Folding::new(4, 4));
    let mvau_results = vec![
        ("mvau_block_n256_w8".to_string(), mvau_case(&full, 256)),
        ("mvau_block_n4096_w8".to_string(), mvau_case(&full, 4096)),
        (
            "mvau_block_n256_w8_pe4_simd4".to_string(),
            mvau_case(&folded, 256),
        ),
    ];

    // ---- max-log demapper + compiled graph -----------------------
    let maxlog = MaxLogMap::new(Constellation::qam_gray(16), 0.2);
    let mut rng = Xoshiro256pp::seed_from_u64(23);
    let ys: Vec<C32> = (0..4096)
        .map(|_| C32::new(rng.normal_f32() * 0.7, rng.normal_f32() * 0.7))
        .collect();
    let mut llrs = vec![0f32; 4096 * 4];
    let mut maxlog_block = |n: usize| {
        let (ys, llrs) = (&ys[..n], &mut llrs[..n * 4]);
        perf::measure_melems(n as u64, || {
            maxlog.demap_block(black_box(ys), llrs);
            black_box(&llrs);
        })
    };
    let block_256 = maxlog_block(256);
    let block_4096 = maxlog_block(4096);
    let per_symbol_4096 = perf::measure_melems(4096, || {
        for (y, chunk) in ys.iter().zip(llrs.chunks_exact_mut(4)) {
            maxlog.llrs(black_box(*y), chunk);
        }
        black_box(&llrs);
    });

    let model = MlpSpec::paper_demapper().build(&mut Xoshiro256pp::seed_from_u64(3));
    let q = |fmt: QFormat| QuantSpec {
        format: fmt,
        rounding: Rounding::Nearest,
    };
    let graph = compile(
        &model,
        &[
            q(QFormat::signed(8, 5)),
            q(QFormat::signed(8, 4)),
            q(QFormat::signed(8, 4)),
            q(QFormat::unsigned(8, 8)),
        ],
    );
    let graph_256 = {
        let (ys, llrs) = (&ys[..256], &mut llrs[..256 * 4]);
        perf::measure_melems(256, || {
            graph.demap_block(black_box(ys), llrs);
            black_box(&llrs);
        })
    };
    let demap_results = vec![
        ("max_log_block_n256".to_string(), block_256),
        ("max_log_block_n4096".to_string(), block_4096),
        ("max_log_per_symbol_n4096".to_string(), per_symbol_4096),
        ("graph_demap_block_n256".to_string(), graph_256),
    ];

    println!("| case | median Melem/s |");
    println!("|---|---|");
    for (k, v) in mvau_results.iter().chain(&demap_results) {
        println!("| {k} | {v:.1} |");
    }

    // Satellite invariant: the block path never loses to per-symbol,
    // at any length. Smoke budgets are too noisy to judge it.
    if !perf::smoke_mode() {
        assert!(
            block_4096 >= per_symbol_4096,
            "max-log block demap ({block_4096:.1} Melem/s) lost to the \
             per-symbol loop ({per_symbol_4096:.1} Melem/s) at n=4096"
        );
    }

    let mut failed = false;
    for (bench, results) in [("mvau", &mvau_results), ("demap", &demap_results)] {
        match perf::append_trajectory(bench, results) {
            Ok(update) => {
                println!("\nwrote {}", update.path.display());
                for msg in &update.regressions {
                    if perf::smoke_mode() {
                        println!("  smoke-budget regression (ignored): {msg}");
                    } else {
                        eprintln!("  REGRESSION: {msg}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("trajectory {bench}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("\nperf gate FAILED (>15% below the last committed entry)");
        std::process::exit(1);
    }
    println!("\nperf gate OK");
}
