//! **Ablation — quantisation width.** How many bits do the deployed
//! demapper's weights/activations need? Sweep the deployment width and
//! measure the BER of the *quantised* ANN inference against the f32
//! reference — the design decision behind the paper's fixed-point HLS
//! implementation.
//!
//! Both arms run the same code the rest of the workspace deploys: the
//! quantised arm is the shared integer IR (`fpga::graph`, DESIGN.md
//! §9) compiled per width by `build_inference_design`, slotted into
//! the link simulator directly as a `Demapper` — no per-binary
//! adapter, no per-symbol f32 round trips.

use hybridem_bench::{banner, budget, write_json};
use hybridem_comm::channel::{Awgn, Channel};
use hybridem_comm::linksim::{simulate_link, LinkSpec};
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_fixed::QFormat;
use hybridem_fpga::builder::{build_inference_design, DeployConfig};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;

struct QuantRow {
    bits: u32,
    ber_quantised: f64,
    ber_float: f64,
    penalty_pct: f64,
}

hybridem_mathkit::impl_to_json!(QuantRow {
    bits,
    ber_quantised,
    ber_float,
    penalty_pct,
});

fn main() {
    banner(
        "Ablation — fixed-point width vs BER of the deployed demapper ANN",
        "design decision behind the paper's §II-B HLS implementation",
    );
    let mut cfg = SystemConfig::paper_default();
    cfg.e2e_steps = budget(4000) as usize;
    let sigma = cfg.sigma();
    let symbols = budget(400_000);

    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let constellation = pipe.constellation();

    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let calibration: Vec<_> = (0..2048)
        .map(|i| {
            let p = constellation.point(i % 16);
            C32::new(
                p.re + sigma * rng.normal_f32(),
                p.im + sigma * rng.normal_f32(),
            )
        })
        .collect();

    let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());
    let float_spec = LinkSpec::new(
        &constellation,
        &channel as &dyn Channel,
        pipe.ann_demapper(),
        symbols,
        17,
    );
    let ber_float = simulate_link(&float_spec).ber();

    let mut rows = Vec::new();
    for bits in [4u32, 5, 6, 8, 10, 12] {
        let dcfg = DeployConfig {
            weight_bits: bits,
            act_bits: bits.max(4),
            input_format: QFormat::signed(bits.max(6), bits.max(6) - 3),
            ..DeployConfig::default()
        };
        let design = build_inference_design(pipe.ann_demapper().model(), &calibration, &dcfg);
        // The compiled integer graph IS the demapper under test.
        let hw = design.graph();
        let spec = LinkSpec::new(&constellation, &channel as &dyn Channel, hw, symbols, 17);
        let ber = simulate_link(&spec).ber();
        rows.push(QuantRow {
            bits,
            ber_quantised: ber,
            ber_float,
            penalty_pct: 100.0 * (ber / ber_float - 1.0),
        });
        eprintln!(
            "{bits:2} bits → BER {ber:.4e} ({:+.1}% vs float)",
            100.0 * (ber / ber_float - 1.0)
        );
    }

    println!("\n| weight/act bits | BER (quantised) | BER (f32) | penalty |");
    println!("|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.4e} | {:.4e} | {:+.1}% |",
            r.bits, r.ber_quantised, r.ber_float, r.penalty_pct
        );
    }

    let path = write_json("ablation_quant.json", &rows);
    println!("\nartefact: {path:?}");
    println!("\nShape: 8-bit deployment (the paper's class of fixed point) is");
    println!("essentially free; below ~6 bits the demapper decays rapidly.");
}
