//! **Drift runtime** — scripted time-varying links driving the online
//! trigger→retrain→redeploy loop (paper §II-C; the real-time FPGA
//! follow-up arXiv:2402.15288 is the scenario in hardware): compares
//! `static-conventional` vs `frozen-ann` vs `adaptive-hybrid` across
//! the drift suite (SNR ramp, π/4 phase step, CFO drift, fading
//! onset, burst interference) and writes a self-validated
//! `drift_runtime.json` with pooled per-frame BER curves and every
//! trigger→swap cycle (DESIGN.md §10).
//!
//! Budget knobs: `HYBRIDEM_QUICK=1` cuts the AE training budget 8× and
//! halves the link count. The artefact is byte-for-byte reproducible
//! from the seed at any thread count (fixed per-link RNG streams,
//! link-order pooling).

use hybridem_bench::{banner, budget, quick_mode, write_json};
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_core::runtime::{
    drift_families, drift_suite, run_drift_campaign, DriftCampaignSpec, DriftRuntimeReport,
    LinkParams,
};
use hybridem_mathkit::json::{FromJson, Json, ToJson};

fn main() {
    banner(
        "Drift runtime — time-varying links through the online adapt/retrain loop",
        "Ney, Hammoud, Wehn (IPDPSW'22), §II-C + real-time follow-up arXiv:2402.15288",
    );

    // One AE at the paper's nominal operating point, shared across all
    // links; the retrain budget stays fixed (it sets the modelled
    // retrain latency — see DESIGN.md §10 — so quick mode must not
    // shrink the drift scenarios' timing).
    let mut cfg = SystemConfig::paper_default().at_snr(8.0);
    cfg.e2e_steps = budget(5000) as usize;
    cfg.retrain_steps = 400;
    cfg.grid_n = 96;
    eprintln!("training AE at SNR 8 dB ({} steps) …", cfg.e2e_steps);
    let mut pipe = HybridPipeline::new(cfg);
    let loss = pipe.e2e_train();
    let extraction = pipe.extract_centroids();
    eprintln!(
        "  loss {loss:.3}, missing labels {}",
        extraction.missing_labels.len()
    );

    let params = LinkParams::default();
    let links = if quick_mode() { 2 } else { 4 };
    let spec = DriftCampaignSpec {
        name: "drift-runtime".to_string(),
        families: drift_families(&pipe, &params),
        scenarios: drift_suite(pipe.config().es_n0_db()),
        links,
        params,
        seed: 20_220_517, // the paper's publication date as a seed
    };
    eprintln!(
        "running {} families × {} scenarios × {} links …",
        spec.families.len(),
        spec.scenarios.len(),
        spec.links
    );
    let report = run_drift_campaign(&spec);
    println!("\n{}", report.markdown_table());
    for row in report.rows.iter().filter(|r| r.retrains > 0) {
        for e in &row.retrain_events {
            println!(
                "retrain {}/{}: link {} triggered at frame {}, swapped at {} (latency {} frames)",
                row.family, row.trajectory, e.link, e.trigger_frame, e.swap_frame, e.latency_frames
            );
        }
    }

    let path = write_json("drift_runtime.json", &report.to_json());
    println!("\nartefact: {path:?}");

    // Schema + drift-claim gate: re-read the artefact from disk, parse
    // it back through the DriftRuntimeReport schema, check every
    // structural invariant AND the recovery claims (adaptive
    // re-converges after every recoverable drift, frozen stays broken
    // on persistent impairments) — CI fails on any drift.
    let text = std::fs::read_to_string(&path).expect("re-read artefact");
    let reloaded = DriftRuntimeReport::from_json(&Json::parse(&text).expect("artefact parses"))
        .expect("artefact matches the DriftRuntimeReport schema");
    reloaded.validate().expect("artefact invariants hold");
    reloaded
        .validate_recovery()
        .expect("drift recovery claims hold");
    assert_eq!(
        reloaded.rows.len(),
        spec.families.len() * spec.scenarios.len(),
        "one row per matrix cell"
    );
    println!(
        "schema check: {} rows valid, {} retrain events logged",
        reloaded.rows.len(),
        reloaded.rows.iter().map(|r| r.retrains).sum::<u64>()
    );
}
