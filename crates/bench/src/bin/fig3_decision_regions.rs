//! **Fig. 3** — "DR and centroid illustration": decision regions and
//! extracted centroids before and after retraining for a π/4 phase
//! offset, at SNR −2 dB and 8 dB. Emits ASCII art to stdout and PGM
//! images under `results/`.

use hybridem_bench::{banner, budget, write_text};
use hybridem_comm::channel::ChannelChain;
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_core::viz::{ascii_regions_with_centroids, pgm_regions};

fn main() {
    banner(
        "Fig. 3 — decision regions and centroids before/after retraining",
        "Ney, Hammoud, Wehn (IPDPSW'22), Fig. 3",
    );
    let theta = std::f32::consts::FRAC_PI_4;

    for &snr in &[-2.0f64, 8.0] {
        let mut cfg = SystemConfig::paper_default().at_snr(snr);
        cfg.e2e_steps = budget(5000) as usize;
        cfg.retrain_steps = budget(2000) as usize;
        let es = cfg.es_n0_db();

        println!("\n################ SNR (Eb/N0) = {snr} dB ################");
        let mut pipe = HybridPipeline::new(cfg);
        let _ = pipe.e2e_train();
        let before = pipe.extract_centroids();
        println!("\n-- decision regions BEFORE retraining (θ = 0) --");
        println!("{}", ascii_regions_with_centroids(&before, 56));
        let name = format!("fig3_snr{snr}_before.pgm");
        let p = write_text(&name, &pgm_regions(&before.grid));
        println!("PGM artefact: {p:?}");

        let mut live = ChannelChain::phase_then_awgn(theta, es);
        let rt = pipe.retrain(&mut live);
        let after = pipe.extraction_report().unwrap().clone();
        println!(
            "\n-- decision regions AFTER retraining for θ = π/4 (loss {:.3} → {:.3}) --",
            rt.initial_loss, rt.final_loss
        );
        println!("{}", ascii_regions_with_centroids(&after, 56));
        let name = format!("fig3_snr{snr}_after.pgm");
        let p = write_text(&name, &pgm_regions(&after.grid));
        println!("PGM artefact: {p:?}");

        // Quantify the rotation: mean angular displacement of the
        // centroids (paper: "the DRs are rotated by π/4").
        let mut rot_sum = 0.0f64;
        let mut count = 0usize;
        for (b, a) in before.centroids.iter().zip(&after.centroids) {
            if b.abs() > 0.3 && a.abs() > 0.3 {
                let mut d = (a.arg() - b.arg()) as f64;
                while d > std::f64::consts::PI {
                    d -= 2.0 * std::f64::consts::PI;
                }
                while d < -std::f64::consts::PI {
                    d += 2.0 * std::f64::consts::PI;
                }
                rot_sum += d;
                count += 1;
            }
        }
        let mean_rot = rot_sum / count.max(1) as f64;
        println!(
            "mean centroid rotation: {mean_rot:.3} rad (target π/4 = {:.3})",
            std::f64::consts::FRAC_PI_4
        );
    }
    println!("\nExpected shape (paper): after retraining, the decision-region");
    println!("diagram (and its centroids) appears rotated by π/4 at both SNRs.");
}
