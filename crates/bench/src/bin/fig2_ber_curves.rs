//! **Fig. 2** — "Bit-error-rate (BER) of different demapping
//! algorithms": BER vs SNR for the conventional soft demapper
//! (Gray 16-QAM), AE-inference, and the extracted-centroid hybrid.
//! The AE is trained separately at every SNR, as in the paper.

use hybridem_bench::{banner, budget, write_json};
use hybridem_comm::channel::Awgn;
use hybridem_comm::theory::ber_qam16_gray;
use hybridem_core::config::SystemConfig;
use hybridem_core::eval::{markdown_table, BerPoint};
use hybridem_core::pipeline::HybridPipeline;

fn main() {
    banner(
        "Fig. 2 — BER of different demapping algorithms vs SNR",
        "Ney, Hammoud, Wehn (IPDPSW'22), Fig. 2",
    );
    let snrs = [0.0f64, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
    let mut all_points: Vec<BerPoint> = Vec::new();

    for &snr in &snrs {
        let mut cfg = SystemConfig::paper_default().at_snr(snr);
        cfg.e2e_steps = budget(5000) as usize;
        // Enough symbols to resolve the high-SNR tail.
        let symbols = if snr >= 10.0 {
            budget(4_000_000)
        } else {
            budget(1_000_000)
        };

        eprintln!("training AE at SNR {snr} dB …");
        let mut pipe = HybridPipeline::new(cfg);
        let loss = pipe.e2e_train();
        let report = pipe.extract_centroids();
        let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());
        let points = pipe.evaluate_three(&channel, symbols, 1000 + snr as u64);
        eprintln!(
            "  loss {loss:.3}, missing {}, vdis {:.2}% → BER conv {:.3e} | ae {:.3e} | hybrid {:.3e}",
            report.missing_labels.len(),
            100.0 * report.voronoi_disagreement,
            points[0].ber,
            points[1].ber,
            points[2].ber
        );
        all_points.extend(points);
    }

    println!("\n{}", markdown_table(&all_points));
    println!("Closed-form Gray 16-QAM reference:");
    println!("| SNR (Eb/N0) [dB] | theory BER |");
    println!("|---|---|");
    for &snr in &snrs {
        let es = hybridem_comm::snr::ebn0_to_esn0_db(snr, 4);
        println!("| {snr} | {:.4e} |", ber_qam16_gray(es));
    }

    let path = write_json("fig2_ber_curves.json", &all_points);
    println!("\nartefact: {path:?}");
    println!("\nExpected shape (paper): the three receivers lie on the same");
    println!("curve up to ~10 dB; the centroid receiver degrades slightly at");
    println!("12 dB. Our SNR axis is Eb/N0 (validated in comm::theory).");
}
