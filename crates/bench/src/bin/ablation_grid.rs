//! **Ablation — extraction grid resolution.** How finely must the
//! demapper's input space be sampled for faithful centroids? Sweeps
//! the grid resolution and reports Voronoi disagreement, centroid
//! stability and hybrid BER.

use hybridem_bench::{banner, budget, write_json};
use hybridem_comm::channel::{Awgn, Channel};
use hybridem_comm::linksim::{simulate_link, LinkSpec};
use hybridem_core::config::SystemConfig;
use hybridem_core::extraction::{extract, ExtractionConfig};
use hybridem_core::hybrid::HybridDemapper;
use hybridem_core::pipeline::HybridPipeline;

struct GridRow {
    grid_n: usize,
    voronoi_disagreement: f64,
    missing: usize,
    hybrid_ber: f64,
    centroid_drift_vs_finest: f64,
    extraction_samples: usize,
}

hybridem_mathkit::impl_to_json!(GridRow {
    grid_n,
    voronoi_disagreement,
    missing,
    hybrid_ber,
    centroid_drift_vs_finest,
    extraction_samples,
});

fn main() {
    banner(
        "Ablation — extraction grid resolution",
        "sampling step of §II-C (\"sample over the two-dimensional input space\")",
    );
    let mut cfg = SystemConfig::paper_default();
    cfg.e2e_steps = budget(4000) as usize;
    let sigma = cfg.sigma();
    let symbols = budget(400_000);

    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let constellation = pipe.constellation();
    let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());

    // Finest grid as the reference for centroid drift.
    let finest = extract(
        pipe.ann_demapper(),
        &ExtractionConfig::new(384, 4.0 / 3.0),
        &constellation,
    );

    let mut rows = Vec::new();
    for &n in &[24usize, 32, 48, 64, 96, 128, 192, 256] {
        let report = extract(
            pipe.ann_demapper(),
            &ExtractionConfig::new(n, 4.0 / 3.0),
            &constellation,
        );
        let hybrid = HybridDemapper::from_extraction(&report, sigma);
        let spec = LinkSpec::new(
            &constellation,
            &channel as &dyn Channel,
            &hybrid,
            symbols,
            23,
        );
        let ber = simulate_link(&spec).ber();
        let drift = report
            .centroids
            .iter()
            .zip(&finest.centroids)
            .map(|(a, b)| a.dist_sqr(*b).sqrt() as f64)
            .fold(0.0, f64::max);
        rows.push(GridRow {
            grid_n: n,
            voronoi_disagreement: report.voronoi_disagreement,
            missing: report.missing_labels.len(),
            hybrid_ber: ber,
            centroid_drift_vs_finest: drift,
            extraction_samples: n * n,
        });
        eprintln!(
            "grid {n:3}² → vdis {:.3}, BER {ber:.4e}",
            report.voronoi_disagreement
        );
    }

    println!("\n| grid | samples | Voronoi disagreement | missing labels | max centroid drift | hybrid BER |");
    println!("|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {}² | {} | {:.3} | {} | {:.4} | {:.4e} |",
            r.grid_n,
            r.extraction_samples,
            r.voronoi_disagreement,
            r.missing,
            r.centroid_drift_vs_finest,
            r.hybrid_ber
        );
    }

    let path = write_json("ablation_grid.json", &rows);
    println!("\nartefact: {path:?}");
    println!("\nShape: BER and centroid positions stabilise around 64–128 cells");
    println!("per axis — the extraction is cheap relative to retraining.");
}
