//! **Table 1** — "Phase-offset adaption of AE and conventional
//! algorithm applied to extracted centroids": BER before/after
//! retraining at SNR −2 and 8 dB under a π/4 offset, against the
//! no-offset baseline.

use hybridem_bench::{banner, budget, write_json};
use hybridem_comm::channel::ChannelChain;
use hybridem_comm::theory::ber_qam16_gray;
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;

struct Table1Row {
    snr_db: f64,
    baseline_ber: f64,
    ae_before: f64,
    centroid_before: f64,
    ae_after: f64,
    centroid_after: f64,
    paper_baseline: f64,
    paper_ae_before: f64,
    paper_centroid_before: f64,
    paper_ae_after: f64,
    paper_centroid_after: f64,
}

hybridem_mathkit::impl_to_json!(Table1Row {
    snr_db,
    baseline_ber,
    ae_before,
    centroid_before,
    ae_after,
    centroid_after,
    paper_baseline,
    paper_ae_before,
    paper_centroid_before,
    paper_ae_after,
    paper_centroid_after,
});

fn main() {
    banner(
        "Table 1 — phase-offset adaptation (π/4) of AE and extracted centroids",
        "Ney, Hammoud, Wehn (IPDPSW'22), Table 1",
    );
    let theta = std::f32::consts::FRAC_PI_4;
    // The paper's reported values for comparison (0.318 is a quoted
    // BER from Table 1, not 1/π).
    #[allow(clippy::approx_constant)]
    let paper = [
        (-2.0, 0.19, 0.318, 0.319, 0.199, 0.2005),
        (8.0, 0.0103, 0.316, 0.323, 0.0127, 0.0143),
    ];
    let mut rows = Vec::new();

    for &(snr, p_base, p_ae_b, p_c_b, p_ae_a, p_c_a) in &paper {
        let mut cfg = SystemConfig::paper_default().at_snr(snr);
        cfg.e2e_steps = budget(5000) as usize;
        cfg.retrain_steps = budget(2500) as usize;
        let es = cfg.es_n0_db();
        let symbols = budget(1_000_000);

        eprintln!("SNR {snr} dB: training …");
        let mut pipe = HybridPipeline::new(cfg);
        let _ = pipe.e2e_train();
        let _ = pipe.extract_centroids();

        let rotated = ChannelChain::phase_then_awgn(theta, es);
        let before = pipe.evaluate_three(&rotated, symbols, 41);
        eprintln!("  retraining on the rotated channel …");
        let mut live = ChannelChain::phase_then_awgn(theta, es);
        let _ = pipe.retrain(&mut live);
        let after = pipe.evaluate_three(&rotated, symbols, 42);

        rows.push(Table1Row {
            snr_db: snr,
            baseline_ber: ber_qam16_gray(es),
            ae_before: before[1].ber,
            centroid_before: before[2].ber,
            ae_after: after[1].ber,
            centroid_after: after[2].ber,
            paper_baseline: p_base,
            paper_ae_before: p_ae_b,
            paper_centroid_before: p_c_b,
            paper_ae_after: p_ae_a,
            paper_centroid_after: p_c_a,
        });
    }

    println!("\n|  | Before retraining | | After retraining | |");
    println!("| SNR | AE BER | Cent. BER | AE BER | Cent. BER | Baseline |");
    println!("|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} (ours) | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |",
            r.snr_db, r.ae_before, r.centroid_before, r.ae_after, r.centroid_after, r.baseline_ber
        );
        println!(
            "| {} (paper) | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |",
            r.snr_db,
            r.paper_ae_before,
            r.paper_centroid_before,
            r.paper_ae_after,
            r.paper_centroid_after,
            r.paper_baseline
        );
    }

    let path = write_json("table1_adaptation.json", &rows);
    println!("\nartefact: {path:?}");
    println!("\nExpected shape (paper): before retraining both receivers sit");
    println!("near BER ≈ 0.32 at either SNR; after retraining they approach");
    println!("the no-offset baseline (0.19 / 0.0103).");
}
