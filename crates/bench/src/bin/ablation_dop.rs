//! **Ablation — degree of parallelism (DOP).** The paper: the FINN
//! layers "allow for flexible adjustment of the degree of parallelism
//! (DOP) which enables to trade-off between latency and power
//! consumption". Sweep the MVAU folding of the 16×16 hidden layer and
//! report DSP / II / latency / power.

use hybridem_bench::{banner, write_json};
use hybridem_fixed::QFormat;
use hybridem_fpga::mvau::{Folding, HwActivation, Mvau, MvauConfig};
use hybridem_fpga::power::PowerModel;
use hybridem_mathkit::matrix::Matrix;

struct DopRow {
    simd: usize,
    pe: usize,
    dsp: u64,
    lut: u64,
    ii_cycles: u64,
    depth_cycles: u64,
    latency_ns: f64,
    throughput_msym_s: f64,
    power_w: f64,
    energy_per_input_nj: f64,
}

hybridem_mathkit::impl_to_json!(DopRow {
    simd,
    pe,
    dsp,
    lut,
    ii_cycles,
    depth_cycles,
    latency_ns,
    throughput_msym_s,
    power_w,
    energy_per_input_nj,
});

fn main() {
    banner(
        "Ablation — MVAU folding (DOP): latency/power trade-off",
        "Ney, Hammoud, Wehn (IPDPSW'22), §II-B (FINN DOP discussion)",
    );
    let clock_mhz = 150.0;
    let fmt = QFormat::signed(8, 6);
    let weight = Matrix::zeros(16, 16);
    let bias = Matrix::zeros(1, 16);
    let power = PowerModel::default();

    let mut rows = Vec::new();
    for &(simd, pe) in &[(1usize, 1usize), (2, 2), (4, 4), (8, 8), (16, 4), (16, 16)] {
        let cfg = MvauConfig {
            in_dim: 16,
            out_dim: 16,
            folding: Folding::new(pe, simd),
            weight_format: fmt,
            in_format: fmt,
            out_format: fmt,
            writable_weights: true,
        };
        let m = Mvau::from_dense(cfg, &weight, &bias, HwActivation::Relu);
        let r = m.resources();
        let ii = m.config().ii_cycles();
        let depth = m.config().depth_cycles();
        let p = power.power_w(&r, clock_mhz, 1.0);
        let thr = clock_mhz * 1e6 / ii as f64;
        rows.push(DopRow {
            simd,
            pe,
            dsp: r.dsp,
            lut: r.lut,
            ii_cycles: ii,
            depth_cycles: depth,
            latency_ns: depth as f64 / clock_mhz * 1e3,
            throughput_msym_s: thr / 1e6,
            power_w: p,
            energy_per_input_nj: p / thr * 1e9,
        });
    }

    println!("\n| SIMD | PE | DSP | LUT | II [cyc] | latency [ns] | throughput [Msym/s] | power [W] | energy [nJ/input] |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {:.1} | {:.2} | {:.4} | {:.3} |",
            r.simd,
            r.pe,
            r.dsp,
            r.lut,
            r.ii_cycles,
            r.latency_ns,
            r.throughput_msym_s,
            r.power_w,
            r.energy_per_input_nj
        );
    }

    // The invariant behind the trade-off: DSP × II = MAC count.
    println!("\nDSP·II invariant (≈256 = the layer's MAC count):");
    for r in &rows {
        println!(
            "  simd={:2} pe={:2}: DSP·II = {}",
            r.simd,
            r.pe,
            r.dsp * r.ii_cycles
        );
    }

    let path = write_json("ablation_dop.json", &rows);
    println!("\nartefact: {path:?}");
    println!("\nShape: parallelism buys throughput linearly in DSP while power");
    println!("rises almost proportionally — energy per input stays within a");
    println!("band, so DOP is a latency↔power knob, exactly the paper's claim.");
}
