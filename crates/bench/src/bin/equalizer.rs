//! **Equalizer** — the frequency-selective drift story plus the
//! adaptive-FIR kernel trajectory (DESIGN.md §14).
//!
//! Two artefacts per run:
//!
//! 1. `equalizer_runtime.json` — a drift campaign on a two-ray ISI
//!    onset at the 12 dB QPSK operating point, `unequalized` max-log
//!    vs the blind `equalized` receiver
//!    ([`OnlineLink::equalized`](hybridem_core::runtime::OnlineLink::equalized),
//!    zero pilot symbols). The re-read artefact must prove the claim
//!    the memoryless drift suite cannot: the equalized link
//!    re-converges to within 2× of its pre-onset BER while the
//!    unequalized demapper stays ≥ 4× degraded. Any schema drift or
//!    claim regression exits non-zero.
//! 2. `BENCH_equalizer.json` — the committed `hybridem-perf-v1`
//!    trajectory for the adaptive-FIR hot paths (blind CMA/DD
//!    equalize, supervised LMS train, the wrapped equalize+demap
//!    block), under the same 15% regression gate as the other kernel
//!    trajectories (DESIGN.md §11.4).
//!
//! Budget knobs: `HYBRIDEM_QUICK=1` halves the link count;
//! `HYBRIDEM_BENCH_MS` selects the perf smoke budget (schema + append
//! validation only; the trajectory goes to the results dir). The
//! runtime artefact is byte-for-byte reproducible from the seed at any
//! `HYBRIDEM_THREADS` (per-link equalizer instances, link-order
//! pooling — see `tests/equalizer_runtime.rs`).

use hybridem_bench::{banner, perf, quick_mode, write_json};
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::{Demapper, MaxLogMap};
use hybridem_comm::equalizer::{AdaptiveEqualizer, EqualizedDemapper, EqualizerConfig};
use hybridem_comm::snr::noise_sigma;
use hybridem_comm::trajectory::{ChannelState, Taps, Trajectory};
use hybridem_core::runtime::{
    run_drift_campaign, DriftCampaignSpec, DriftFamily, DriftRuntimeReport, DriftScenario,
    FamilyRole, LinkParams, OnlineLink, OnlineLinkSpec,
};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::json::{FromJson, Json, ToJson};
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};
use std::hint::black_box;
use std::sync::Arc;

/// The bench operating point: QPSK at 12 dB Es/N0. Low enough that
/// two-ray ISI is catastrophic for a memoryless demapper, high enough
/// that the decision-directed handoff threshold clears the noise floor
/// (noise-only decision MSE 2σ² ≈ 0.063 < `dd_enter_mse`).
const ES_N0_DB: f64 = 12.0;

/// The scripted disturbance: a two-ray echo (gain 0.4, phase 0.35,
/// one-symbol delay) appears at frame 40 and stays. ISI is channel
/// *memory* — the drift suite attaches no recovery claims to its
/// memoryless families on this onset; here the claims are the point.
fn two_ray_onset() -> DriftScenario {
    let clean = ChannelState::clean(ES_N0_DB);
    let isi = clean.with_taps(Taps::two_ray(0.4, 0.35, 1));
    DriftScenario {
        trajectory: Trajectory::new("two-ray-onset")
            .hold(40, clean)
            .hold(120, isi),
        baseline_frames: 40,
        drift_end_frame: 40,
        // The equalized family re-converges; the unequalized family
        // must stay broken (the frozen claim).
        adaptive_recovers: Some(true),
        frozen_recovers: Some(false),
    }
}

/// The two receiver families: the stock max-log demapper with no
/// equalizer ahead of it, and the same demapper behind the blind
/// adaptive FIR. Both run with zero pilot symbols — the re-convergence
/// is earned without any pilot overhead.
fn families(qam: &Constellation, params: &LinkParams) -> Vec<DriftFamily<'static>> {
    let sigma = noise_sigma(ES_N0_DB, 1.0) as f32;
    let spec = {
        let params = params.clone();
        move |traj: &Trajectory, seed: u64| OnlineLinkSpec {
            trajectory: traj.clone(),
            seed,
            params: params.clone(),
        }
    };
    let fixed_spec = spec.clone();
    let fixed_qam = qam.clone();
    let eq_qam = qam.clone();
    vec![
        DriftFamily {
            name: "unequalized".to_string(),
            role: FamilyRole::Frozen,
            build: Box::new(move |traj, seed| {
                OnlineLink::fixed(
                    fixed_spec(traj, seed),
                    fixed_qam.clone(),
                    Box::new(MaxLogMap::new(fixed_qam.clone(), sigma)),
                )
            }),
        },
        DriftFamily {
            name: "equalized".to_string(),
            role: FamilyRole::Equalized,
            build: Box::new(move |traj, seed| {
                OnlineLink::equalized(
                    spec(traj, seed),
                    eq_qam.clone(),
                    Box::new(MaxLogMap::new(eq_qam.clone(), sigma)),
                    EqualizerConfig::default(),
                )
            }),
        },
    ]
}

/// A deterministic two-ray QPSK stream for the kernel timings.
fn two_ray_stream(n: usize, qam: &Constellation) -> (Vec<C32>, Vec<C32>) {
    let mut chan = hybridem_comm::channel::TappedDelayLine::two_ray(0.4, 0.35, 1);
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let tx: Vec<C32> = (0..n)
        .map(|_| qam.point((rng.next_u64() % qam.points().len() as u64) as usize))
        .collect();
    let mut rx = tx.clone();
    hybridem_comm::channel::Channel::transmit(&mut chan, &mut rx, &mut rng);
    (rx, tx)
}

fn main() {
    banner(
        "equalizer — blind re-convergence on ISI + adaptive-FIR kernel trajectory",
        "Ney, Hammoud, Wehn (IPDPSW'22) + the group's unsupervised-equalizer line (arXiv 2304.06987)",
    );

    // ---- drift campaign: equalized vs unequalized on the onset ----
    let qam = Constellation::qam_gray(4);
    let params = LinkParams {
        pilot_symbols: 0, // fully blind: no pilot overhead
        ..Default::default()
    };
    let links = if quick_mode() { 2 } else { 4 };
    let spec = DriftCampaignSpec {
        name: "equalizer-runtime".to_string(),
        families: families(&qam, &params),
        scenarios: vec![two_ray_onset()],
        links,
        params,
        seed: 20_220_517,
    };
    eprintln!(
        "running {} families × 1 scenario × {} links …",
        spec.families.len(),
        spec.links
    );
    let report = run_drift_campaign(&spec);
    println!("\n{}", report.markdown_table());

    let path = write_json("equalizer_runtime.json", &report.to_json());
    println!("artefact: {path:?}");

    // Schema + claim gate: re-read from disk, parse back through the
    // DriftRuntimeReport schema, then hold the bench's headline claim
    // — `equalized` re-converges within 2× of its pre-onset BER,
    // `unequalized` stays ≥ 4× degraded — CI fails on any drift.
    let text = std::fs::read_to_string(&path).expect("re-read artefact");
    let reloaded = DriftRuntimeReport::from_json(&Json::parse(&text).expect("artefact parses"))
        .expect("artefact matches the DriftRuntimeReport schema");
    reloaded.validate().expect("artefact invariants hold");
    reloaded
        .validate_recovery()
        .expect("equalizer re-convergence claims hold");
    assert_eq!(reloaded.rows.len(), 2, "one row per family");
    assert!(
        reloaded.rows.iter().all(|r| r.retrains == 0),
        "neither family retrains — the equalizer converges in the datapath"
    );
    println!("claim check: equalized re-converges, unequalized stays broken\n");

    // ---- adaptive-FIR kernel trajectory ---------------------------
    println!(
        "budget {} ms/case · rev {}\n",
        perf::bench_budget_ms(),
        perf::git_rev()
    );
    let n = 4096;
    let (rx, tx) = two_ray_stream(n, &qam);
    let mut block = rx.clone();

    // Blind CMA → DD equalization of a 4096-symbol block. State
    // persists across iterations (as it does across frames in a
    // link), so later samples time the converged DD fast path.
    let mut eq = AdaptiveEqualizer::new(qam.clone(), EqualizerConfig::default());
    let blind = perf::measure_melems(n as u64, || {
        block.copy_from_slice(&rx);
        eq.equalize(black_box(&mut block));
        black_box(&block);
    });

    // Supervised LMS training on a 256-symbol pilot prefix.
    let mut eq_t = AdaptiveEqualizer::new(qam.clone(), EqualizerConfig::default());
    let trained = perf::measure_melems(256, || {
        block[..256].copy_from_slice(&rx[..256]);
        eq_t.train(black_box(&mut block[..256]), &tx[..256]);
        black_box(&block);
    });

    // The wrapped datapath: equalize + max-log demap in one
    // demap_block call, the per-frame cost of an equalized link.
    let sigma = noise_sigma(ES_N0_DB, 1.0) as f32;
    let wrapped = EqualizedDemapper::new(
        Arc::new(MaxLogMap::new(qam.clone(), sigma)),
        AdaptiveEqualizer::new(qam.clone(), EqualizerConfig::default()),
    );
    let mut llrs = vec![0f32; n * wrapped.bits_per_symbol()];
    let demap = perf::measure_melems(n as u64, || {
        wrapped.demap_block(black_box(&rx), &mut llrs);
        black_box(&llrs);
    });

    let results = vec![
        ("eq_blind_block_n4096".to_string(), blind),
        ("eq_train_n256".to_string(), trained),
        ("eq_demap_block_n4096".to_string(), demap),
    ];
    println!("| case | median Melem/s |");
    println!("|---|---|");
    for (k, v) in &results {
        println!("| {k} | {v:.1} |");
    }

    let mut failed = false;
    match perf::append_trajectory("equalizer", &results) {
        Ok(update) => {
            println!("\nwrote {}", update.path.display());
            for msg in &update.regressions {
                if perf::smoke_mode() {
                    println!("  smoke-budget regression (ignored): {msg}");
                } else {
                    eprintln!("  REGRESSION: {msg}");
                    failed = true;
                }
            }
        }
        Err(e) => {
            eprintln!("trajectory equalizer: {e}");
            failed = true;
        }
    }
    if failed {
        eprintln!("\nperf gate FAILED (>15% below the last committed entry)");
        std::process::exit(1);
    }
    println!("\nperf gate OK");
}
