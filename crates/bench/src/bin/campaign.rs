//! **Campaign** — the paper's Fig. 2 waterfall comparison as a full
//! SNR-sweep campaign over the backend registry (DESIGN.md §13):
//! conventional max-log, AE-inference, hybrid centroids, the
//! fixed-point FPGA accelerator model, the QAT-fine-tuned quantised
//! ANN at W4/W6/W8 (the BER-vs-bitwidth trade-off, DESIGN.md §9),
//! exact log-MAP, and the event-driven/spiking readout stub — across
//! the paper's channel impairments, with statistical early stopping
//! (DESIGN.md §8) and a schema-validated JSON artefact. The family
//! list is enumerated from [`hybridem_core::registry::paper_registry`],
//! not hand-built.
//!
//! Budget knobs: `HYBRIDEM_QUICK=1` cuts the AE training budget 8×;
//! `HYBRIDEM_CAMPAIGN_TRIALS=<n>` caps simulated symbols per point
//! (how CI runs a seeded micro-campaign smoke). The artefact is
//! byte-for-byte reproducible from the seed at any thread count.

use hybridem_bench::{banner, budget, campaign_symbol_cap, write_json};
use hybridem_comm::campaign::{run_campaign, CampaignReport, CampaignSpec, EarlyStop};
use hybridem_comm::snr::ebn0_to_esn0_db;
use hybridem_comm::theory::ber_qam16_gray;
use hybridem_core::config::SystemConfig;
use hybridem_core::eval::{campaign_families, paper_scenarios};
use hybridem_core::pipeline::HybridPipeline;
use hybridem_core::qat::{qat_quantized_demapper, QatConfig};
use hybridem_fpga::demapper_accel::SoftDemapperConfig;
use hybridem_mathkit::json::{FromJson, Json, ToJson};

fn main() {
    banner(
        "Campaign — BER waterfall sweep with statistical early stopping",
        "Ney, Hammoud, Wehn (IPDPSW'22), Fig. 2 + impairment extensions",
    );

    // One AE, trained at the paper's nominal operating point, shared
    // across the grid (the per-SNR retraining study lives in
    // fig2_ber_curves; the campaign compares receiver structures).
    let mut cfg = SystemConfig::paper_default().at_snr(8.0);
    cfg.e2e_steps = budget(5000) as usize;
    eprintln!("training AE at SNR 8 dB ({} steps) …", cfg.e2e_steps);
    let mut pipe = HybridPipeline::new(cfg);
    let loss = pipe.e2e_train();
    let report = pipe.extract_centroids();
    eprintln!(
        "  loss {loss:.3}, missing labels {}, voronoi disagreement {:.2}%",
        report.missing_labels.len(),
        100.0 * report.voronoi_disagreement
    );

    // QAT width sweep: fine-tune the trained demapper through the
    // deployment's fake-quantisation noise at each width and lower it
    // to the integer IR (DESIGN.md §9). W8 should sit on the float
    // curve; W4 exposes the breakdown the paper's 8-bit choice avoids.
    let quantized: Vec<_> = [4u32, 6, 8]
        .iter()
        .map(|&bits| {
            let mut qcfg = QatConfig::at_bits(bits);
            qcfg.steps = budget(600) as usize;
            let graph = qat_quantized_demapper(&pipe, &qcfg);
            eprintln!("QAT W{bits}: {} fine-tuning steps", qcfg.steps);
            graph
        })
        .collect();

    let mut stop = EarlyStop::paper_default();
    if let Some(cap) = campaign_symbol_cap() {
        eprintln!("HYBRIDEM_CAMPAIGN_TRIALS: capping each point at {cap} symbols");
        stop = stop.capped(cap);
    }

    let mut spec = CampaignSpec::new(
        campaign_families(&pipe, SoftDemapperConfig::paper_default(), &quantized),
        paper_scenarios(4),
        vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0],
        20_220_517, // the paper's publication date as a seed
    );
    spec.name = "fig2-waterfall-campaign".to_string();
    spec.stop = stop;

    eprintln!(
        "running {} families × {} scenarios × {} SNRs …",
        spec.families.len(),
        spec.scenarios.len(),
        spec.snrs_db.len()
    );
    let campaign = run_campaign(&spec);
    println!("\n{}", campaign.markdown_table());

    println!("Closed-form Gray 16-QAM reference (AWGN column):");
    println!("| SNR (Eb/N0) [dB] | theory BER |");
    println!("|---|---|");
    for &snr in &campaign.snrs_db {
        println!(
            "| {snr} | {:.4e} |",
            ber_qam16_gray(ebn0_to_esn0_db(snr, 4))
        );
    }

    let path = write_json("campaign_waterfall.json", &campaign.to_json());
    println!("\nartefact: {path:?}");

    // Schema gate: re-read the artefact from disk, parse it back into
    // a CampaignReport and check every invariant — CI fails on any
    // schema drift or NaN leak.
    let text = std::fs::read_to_string(&path).expect("re-read artefact");
    let reloaded = CampaignReport::from_json(&Json::parse(&text).expect("artefact parses"))
        .expect("artefact matches the CampaignReport schema");
    reloaded.validate().expect("artefact invariants hold");
    assert_eq!(
        reloaded.points.len(),
        spec.families.len() * spec.scenarios.len() * spec.snrs_db.len(),
        "one point per matrix cell"
    );
    // The quantised-family rows must be present and complete — the CI
    // smoke gates the BER-vs-bitwidth slice of the artefact on this.
    for fam in ["ann-qat-w4", "ann-qat-w6", "ann-qat-w8"] {
        let rows = reloaded.points.iter().filter(|p| p.family == fam).count();
        assert_eq!(
            rows,
            spec.scenarios.len() * spec.snrs_db.len(),
            "artefact must carry every {fam} row"
        );
    }
    println!(
        "schema check: {} points valid, {} early-stopped",
        reloaded.points.len(),
        reloaded.points.iter().filter(|p| p.stopped_early).count()
    );
}
