//! Serving-fabric saturation curves + regression gate: drives a
//! 1024-link [`LinkServer`] fleet through full submit→serve rounds and
//! appends to the committed `BENCH_linkserver.json` trajectory
//! (DESIGN.md §12.5).
//!
//! Cases (elements = frames, so medians read as M frames/s): a
//! noiseless QAM-16 fleet of 1024 sessions, 8 symbols/frame, served
//! at worker counts {1, 2, 4, N} × batch sizes {1, 16, 256} with the
//! max-log backend, plus the compiled paper-demapper
//! [`QuantizedGraph`](hybridem_fpga::graph::compile) backend at the
//! extreme batch sizes. The channel is noiseless and the frames are
//! short so demapping dominates each round — the regime the cross-link
//! gather/scatter path exists for: the max-log tile kernel cannot fill
//! its SIMD lanes from one short frame (≈2 Msym/s at 8 symbols vs
//! ≈55 Msym/s at 256 on ×8 lanes), so fusing frames across links into
//! one `demap_block` call is worth a large factor. The graph backend's
//! MVAU datapath is symbol-sequential (SIMD spans neurons, not
//! symbols), so its curves record the smaller call-overhead
//! amortisation — both shapes belong in the trajectory.
//!
//! Invariant pinned here (not just recorded): cross-link batching at
//! `batch_links = 256` must at least **double** frames/s over per-link
//! `demap_block` calls (`batch_links = 1`) on the max-log backend at
//! every measured worker count.
//!
//! Exit is non-zero when any case regresses more than 15% against the
//! last committed entry, unless `HYBRIDEM_BENCH_MS` selects the smoke
//! budget (schema + append validation only; artefacts go to the
//! results dir).

use hybridem_bench::perf;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::{Demapper, MaxLogMap};
use hybridem_comm::trajectory::{ChannelState, Trajectory};
use hybridem_core::server::{LinkServer, ServerCfg, SessionCfg};
use hybridem_fixed::{QFormat, QuantSpec, Rounding};
use hybridem_fpga::graph::compile;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::model::MlpSpec;
use std::sync::Arc;

/// Fleet size: the issue's many-link regime.
const LINKS: u64 = 1024;
/// Symbols per frame: short frames are the serving regime batching
/// exists for — one frame cannot fill the max-log kernel's SIMD lanes.
const FRAME_SYMBOLS: usize = 8;

/// The two serving backends under test.
#[derive(Clone, Copy, PartialEq)]
enum Backend {
    MaxLog,
    Graph,
}

impl Backend {
    fn demapper(self) -> Arc<dyn Demapper> {
        let qam = Constellation::qam_gray(16);
        match self {
            Backend::MaxLog => Arc::new(MaxLogMap::new(qam, 0.2)),
            Backend::Graph => {
                let model = MlpSpec::paper_demapper().build(&mut Xoshiro256pp::seed_from_u64(3));
                let q = |fmt: QFormat| QuantSpec {
                    format: fmt,
                    rounding: Rounding::Nearest,
                };
                Arc::new(compile(
                    &model,
                    &[
                        q(QFormat::signed(8, 5)),
                        q(QFormat::signed(8, 4)),
                        q(QFormat::signed(8, 4)),
                        q(QFormat::unsigned(8, 8)),
                    ],
                ))
            }
        }
    }

    fn name(self) -> &'static str {
        match self {
            Backend::MaxLog => "maxlog",
            Backend::Graph => "graph",
        }
    }
}

/// Times one configuration: a full submit-one-frame-per-link +
/// serve-to-drain round is one iteration, so the median is in
/// M frames/s across the whole fleet.
fn serve_case(backend: Backend, workers: usize, batch_links: usize) -> f64 {
    let qam = Constellation::qam_gray(16);
    let mut server = LinkServer::new(ServerCfg {
        workers,
        queue_cap: 4,
        batch_links,
    });
    let be = server.register_backend(qam, backend.demapper());
    let ids: Vec<_> = (0..LINKS)
        .map(|i| {
            let mut cfg = SessionCfg::new(
                be,
                Trajectory::constant("clean", ChannelState::clean(f64::INFINITY), 1),
                i,
            );
            cfg.frame_symbols = FRAME_SYMBOLS;
            cfg.pilot_symbols = 2;
            server.open_session(cfg)
        })
        .collect();
    perf::measure_melems(LINKS, || {
        for &id in &ids {
            server.submit(id, 1).unwrap();
        }
        let served = server.serve();
        assert_eq!(served, LINKS);
    })
}

fn main() {
    hybridem_bench::banner(
        "linkserver — many-link serving saturation + regression gate",
        "DESIGN.md §12.5 (tracks the ISSUE 7 ≥2× cross-link batching target)",
    );
    let max_threads = hybridem_parallel::num_threads();
    println!(
        "budget {} ms/case · {} links × {} sym frames · max threads {} · rev {}\n",
        perf::bench_budget_ms(),
        LINKS,
        FRAME_SYMBOLS,
        max_threads,
        perf::git_rev()
    );

    let mut thread_sweep = vec![1usize, 2, 4, max_threads];
    thread_sweep.sort_unstable();
    thread_sweep.dedup();
    let batch_sweep = [1usize, 16, 256];

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |backend: Backend, t: usize, b: usize| -> f64 {
        let melems = serve_case(backend, t, b);
        let name = format!("serve_{}_l{LINKS}_t{t}_b{b}", backend.name());
        println!("  {name}: {melems:.3} M frames/s");
        results.push((name, melems));
        melems
    };

    // Full worker × batch sweep on the conventional kernel; the graph
    // backend (the paper's deployment datapath) at the extreme batch
    // sizes only, to bound the matrix.
    let mut maxlog_pairs = Vec::new();
    for &t in &thread_sweep {
        let mut by_batch = Vec::new();
        for &b in &batch_sweep {
            by_batch.push(record(Backend::MaxLog, t, b));
        }
        maxlog_pairs.push((t, by_batch[0], by_batch[batch_sweep.len() - 1]));
    }
    for &t in &thread_sweep {
        record(Backend::Graph, t, 1);
        record(Backend::Graph, t, 256);
    }

    println!("\n| case | median M frames/s |");
    println!("|---|---|");
    for (k, v) in &results {
        println!("| {k} | {v:.3} |");
    }

    // Tentpole invariant: cross-link batching doubles max-log serving
    // throughput at 1024 links. Smoke budgets are too noisy to judge
    // it.
    if !perf::smoke_mode() {
        for (t, unbatched, batched) in &maxlog_pairs {
            assert!(
                batched >= &(2.0 * unbatched),
                "cross-link batching must double max-log serving throughput at \
                 {LINKS} links, t={t}: batched {batched:.3} vs per-link {unbatched:.3} M frames/s"
            );
        }
    }

    let mut failed = false;
    match perf::append_trajectory("linkserver", &results) {
        Ok(update) => {
            println!("\nwrote {}", update.path.display());
            for msg in &update.regressions {
                if perf::smoke_mode() {
                    println!("  smoke-budget regression (ignored): {msg}");
                } else {
                    eprintln!("  REGRESSION: {msg}");
                    failed = true;
                }
            }
        }
        Err(e) => {
            eprintln!("trajectory linkserver: {e}");
            failed = true;
        }
    }
    if failed {
        eprintln!("\nlinkserver perf gate FAILED (>15% below the last committed entry)");
        std::process::exit(1);
    }
    println!("\nlinkserver perf gate OK");
}
