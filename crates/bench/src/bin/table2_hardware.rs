//! **Table 2** — "Comparison of AE-based inference to conventional
//! soft demapping": latency, throughput, BRAM, DSP, FF, LUT, power and
//! energy per symbol for the hybrid soft demapper, AE-inference, and
//! AE-training on the modelled ZU3EG.

use hybridem_bench::{banner, budget, write_json};
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_fpga::builder::{build_inference_design, DeployConfig};
use hybridem_fpga::demapper_accel::SoftDemapperConfig;
use hybridem_fpga::device::DeviceModel;
use hybridem_fpga::power::PowerModel;
use hybridem_fpga::trainer::{TrainerConfig, TrainerDesign};
use hybridem_fpga::ImplReport;
use hybridem_mathkit::rng::Xoshiro256pp;

fn main() {
    banner(
        "Table 2 — FPGA implementation comparison (modelled ZU3EG)",
        "Ney, Hammoud, Wehn (IPDPSW'22), Table 2",
    );
    let mut cfg = SystemConfig::paper_default();
    cfg.e2e_steps = budget(4000) as usize;
    let sigma = cfg.sigma();

    eprintln!("training the AE once to obtain deployable weights …");
    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();

    let constellation = pipe.constellation();
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let calibration: Vec<_> = (0..2048)
        .map(|i| {
            let p = constellation.point(i % 16);
            hybridem_mathkit::complex::C32::new(
                p.re + sigma * rng.normal_f32(),
                p.im + sigma * rng.normal_f32(),
            )
        })
        .collect();

    let power = PowerModel::default();
    let hybrid = pipe
        .hybrid_demapper()
        .unwrap()
        .to_hardware(SoftDemapperConfig::paper_default());
    let inference = build_inference_design(
        pipe.ann_demapper().model(),
        &calibration,
        &DeployConfig::default(),
    );
    let trainer = TrainerDesign::new(TrainerConfig::paper_default());

    let ours = vec![
        hybrid.report(&power),
        inference.report(&power),
        trainer.report(&power),
    ];
    println!("\n== our model ==\n{}", ImplReport::markdown_table(&ours));

    println!("== paper (measured on silicon) ==");
    println!("| Design | Latency [s] | Throughput [sym/s] | BRAM | DSP | FF | LUT | Power [W] | Energy [J/sym] |");
    println!("|---|---|---|---|---|---|---|---|---|");
    println!("| Soft-demapper (learned centroids) | 5.33e-8 | 7.50e7 | 0 | 1 | 1042 | 1107 | 5.5e-2 | 7.33e-10 |");
    println!(
        "| AE-inference | 8.10e-8 | 1.23e7 | 18.5 | 352 | 10895 | 11343 | 4.53e-1 | 3.67e-8 |"
    );
    println!("| AE-training | 2.67e-7 | 3.75e6 | 89 | 343 | 19013 | 19793 | 5.47e-1 | 1.46e-7 |");

    let ratios = ours[0].ratios_vs(&ours[1]);
    println!("\n== headline ratios: hybrid vs AE-inference ==");
    println!("| metric | ours | paper |");
    println!("|---|---|---|");
    println!("| DSP | {:.0}× | 352× |", ratios.dsp);
    println!("| LUT | {:.1}× | 10.2× |", ratios.lut);
    println!("| power | {:.1}× | 8.2× |", ratios.power);
    println!("| energy/symbol | {:.0}× | 50× |", ratios.energy);
    println!("| throughput | {:.1}× | 6.1× |", ratios.throughput);

    let device = DeviceModel::zu3eg();
    println!("\n== device fit (ZU3EG: 70560 LUT, 141120 FF, 360 DSP, 216 BRAM36) ==");
    for r in &ours {
        let (l, f, d, b) = device.utilization(&r.usage);
        println!(
            "{:36} fits={} LUT {:5.1}% FF {:5.1}% DSP {:5.1}% BRAM {:5.1}%",
            r.name,
            device.fits(&r.usage),
            100.0 * l,
            100.0 * f,
            100.0 * d,
            100.0 * b
        );
    }

    // The paper's parallel-replication claim: "performing demapping in
    // parallel by instantiating multiple modules of the soft-demapper
    // to approach a throughput in the order of Gbps".
    let n = device.max_instances(&ours[0].usage, 0.8);
    let agg_bps = n as f64 * ours[0].throughput_sym_s * 4.0;
    println!(
        "\n== replication ==\n{n} hybrid demappers fit the ZU3EG (80% margin) →          {:.1} Gbit/s aggregate ({} × 75 Msym/s × 4 bit) — the paper's 'order of Gbps'.",
        agg_bps / 1e9,
        n
    );
    let n_ae = device.max_instances(&ours[1].usage, 1.0);
    println!(
        "vs {n_ae} AE-inference instance(s) (DSP-limited) → {:.2} Gbit/s.",
        n_ae as f64 * ours[1].throughput_sym_s * 4.0 / 1e9
    );

    let path = write_json("table2_hardware.json", &ours);
    println!("\nartefact: {path:?}");
    println!("\nNote: our resource numbers come from a structural model (see");
    println!("DESIGN.md §2); absolute values differ from Vivado's, the shape —");
    println!("who wins, by roughly what factor — is the reproduction target.");
}
