//! **Backend switch** — the `SwitchBackend` drift scenario
//! (DESIGN.md §13): links ride an SNR ramp while a per-link controller
//! picks, every frame, the cheapest registry backend whose predicted
//! BER at the windowed pilot-SNR estimate meets the link's target.
//! Rising SNR earns cheaper hardware (max-log → hybrid centroids →
//! fully parallel quantized W4); the ramp back forces the accuracy
//! upshifts. Writes a self-validated `backend_switch.json` with every
//! link's per-frame backend trace and switch log.
//!
//! Budget knobs: `HYBRIDEM_QUICK=1` cuts the AE training budget 8× and
//! halves the link count. The artefact is byte-for-byte reproducible
//! from the seed at any `HYBRIDEM_THREADS` (per-link RNG streams and
//! SNR estimators, link-order rows).

use hybridem_bench::{banner, budget, quick_mode, write_json};
use hybridem_comm::trajectory::{ChannelState, Trajectory};
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_core::qat::{qat_quantized_demapper, QatConfig};
use hybridem_core::registry::switch_registry;
use hybridem_core::runtime::{
    run_switch_campaign, BackendSwitchReport, LinkParams, SwitchCampaignSpec, SwitchPolicy,
};
use hybridem_mathkit::json::{FromJson, Json, ToJson};
use std::sync::Arc;

/// The scripted ramp, on the registry's Es/N0 axis. Gray 16-QAM
/// theory crosses the 2e-2 target near 12.65 dB; the hybrid
/// (+0.45 dB) and W4 (+2.6 dB) penalties put the selection thresholds
/// at ≈ 13.1 and ≈ 15.25 dB, so a 12.7 ↔ 16.6 dB ramp sweeps the
/// whole ladder in both directions.
fn ramp_trajectory() -> Trajectory {
    let low = ChannelState::clean(12.7);
    let high = ChannelState::clean(16.6);
    Trajectory::new("backend-switch-ramp")
        .hold(20, low)
        .ramp(30, high)
        .hold(30, high)
        .ramp(30, low)
        .hold(40, low)
}

fn main() {
    banner(
        "Backend switch — riding the registry's cost ladder over an SNR ramp",
        "Ney, Hammoud, Wehn (IPDPSW'22), §II-C adaptation as backend selection",
    );

    // One AE shared by every link; the switch line-up needs the
    // extracted centroids (hybrid backend) and the QAT graphs.
    let mut cfg = SystemConfig::paper_default().at_snr(8.0);
    cfg.e2e_steps = budget(5000) as usize;
    eprintln!("training AE at SNR 8 dB ({} steps) …", cfg.e2e_steps);
    let mut pipe = HybridPipeline::new(cfg);
    let loss = pipe.e2e_train();
    let extraction = pipe.extract_centroids();
    eprintln!(
        "  loss {loss:.3}, missing labels {}",
        extraction.missing_labels.len()
    );
    let quantized: Vec<_> = [4u32, 6, 8]
        .iter()
        .map(|&bits| {
            let mut qcfg = QatConfig::at_bits(bits);
            qcfg.steps = budget(600) as usize;
            qat_quantized_demapper(&pipe, &qcfg)
        })
        .collect();
    let registry = Arc::new(switch_registry(&pipe, &quantized));
    eprintln!("switch registry: {}", registry.names().join(", "));

    let policy = SwitchPolicy {
        ber_target: 2e-2,
        window_frames: 6,
        min_dwell_frames: 6,
        initial_es_n0_db: 12.7,
        ..SwitchPolicy::default()
    };
    let links = if quick_mode() { 2 } else { 4 };
    let spec = SwitchCampaignSpec {
        name: "backend-switch".to_string(),
        registry: registry.clone(),
        trajectory: ramp_trajectory(),
        links,
        params: LinkParams::default(),
        policy,
        seed: 20_220_517, // the paper's publication date as a seed
    };
    eprintln!(
        "running {} links × {} frames over {} backends …",
        spec.links,
        spec.trajectory.total_frames(),
        registry.len()
    );
    let report = run_switch_campaign(&spec);
    println!("\n{}", report.markdown_table());
    for row in &report.rows {
        for e in &row.events {
            println!(
                "switch link {}: frame {} {} → {} at est {:.2} dB ({})",
                e.link,
                e.frame,
                report.backends[e.from as usize],
                report.backends[e.to as usize],
                e.est_es_n0_db,
                if e.downshift { "downshift" } else { "upshift" }
            );
        }
    }

    let path = write_json("backend_switch.json", &report.to_json());
    println!("\nartefact: {path:?}");

    // Schema + scenario gate: re-read the artefact from disk, parse it
    // back through the BackendSwitchReport schema, check the trace /
    // event-log consistency invariants AND the scenario's claim — the
    // ramp must produce at least one downshift and one upshift — so
    // the CI smoke fails on any drift.
    let text = std::fs::read_to_string(&path).expect("re-read artefact");
    let reloaded = BackendSwitchReport::from_json(&Json::parse(&text).expect("artefact parses"))
        .expect("artefact matches the BackendSwitchReport schema");
    reloaded.validate().expect("artefact invariants hold");
    reloaded
        .validate_switching()
        .expect("the ramp exercises the cost ladder in both directions");
    assert_eq!(
        reloaded.backends[reloaded.initial_backend as usize], "max-log",
        "the ramp starts below every cheaper backend's operating region"
    );
    let w4 = reloaded
        .backends
        .iter()
        .position(|b| b == "ann-qat-w4")
        .expect("W4 registered") as u32;
    assert!(
        reloaded.rows.iter().any(|r| r.active.contains(&w4)),
        "the high-SNR hold must reach the cheapest backend (W4)"
    );
    println!(
        "schema check: {} links valid, {} downshifts, {} upshifts",
        reloaded.rows.len(),
        reloaded.downshifts,
        reloaded.upshifts
    );
}
