//! **Ablation — retrain-trigger detection.** The paper proposes two
//! channel-change monitors (§II-C): pilot-BER thresholding and
//! ECC corrected-flip counting. Measure how many frames each needs to
//! detect phase offsets of different magnitudes.

use hybridem_bench::{banner, budget, write_json};
use hybridem_comm::channel::{Channel, ChannelChain};
use hybridem_comm::demapper::Demapper;
use hybridem_comm::ecc::{ConvCode, Viterbi};
use hybridem_core::adapt::{AdaptThresholds, AdaptationController, Recommendation};
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

struct TriggerRow {
    theta_rad: f32,
    pilot_frames_to_trigger: Option<usize>,
    ecc_frames_to_trigger: Option<usize>,
}

hybridem_mathkit::impl_to_json!(TriggerRow {
    theta_rad,
    pilot_frames_to_trigger,
    ecc_frames_to_trigger,
});

const FRAME_SYMBOLS: usize = 256;
const MAX_FRAMES: usize = 200;

fn main() {
    banner(
        "Ablation — retrain-trigger detection latency (pilot BER vs ECC flips)",
        "Ney, Hammoud, Wehn (IPDPSW'22), §II-C",
    );
    let mut cfg = SystemConfig::paper_default();
    cfg.e2e_steps = budget(4000) as usize;
    let es = cfg.es_n0_db();

    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();
    let constellation = pipe.constellation();
    let hybrid = pipe.hybrid_demapper().unwrap();
    let code = ConvCode::new();
    let viterbi = Viterbi::new();

    let mut rows = Vec::new();
    for &theta in &[0.0f32, 0.05, 0.1, 0.2, 0.4, std::f32::consts::FRAC_PI_4] {
        let mut pilot_ctl = AdaptationController::new(AdaptThresholds::default());
        let mut ecc_ctl = AdaptationController::new(AdaptThresholds::default());
        let mut channel = ChannelChain::phase_then_awgn(theta, es);
        let mut rng = Xoshiro256pp::seed_from_u64(777);
        let mut pilot_hit = None;
        let mut ecc_hit = None;

        for frame in 0..MAX_FRAMES {
            // Pilot monitor.
            let m = constellation.bits_per_symbol();
            let mut tx_bits = Vec::with_capacity(FRAME_SYMBOLS * m);
            let mut syms = Vec::with_capacity(FRAME_SYMBOLS);
            for _ in 0..FRAME_SYMBOLS {
                let u = (rng.next_u64() >> (64 - m)) as usize;
                for k in 0..m {
                    tx_bits.push(((u >> (m - 1 - k)) & 1) as u8);
                }
                syms.push(constellation.point(u));
            }
            channel.transmit(&mut syms, &mut rng);
            let mut rx_bits = vec![0u8; FRAME_SYMBOLS * m];
            hybrid.hard_decide_block(&syms, &mut rx_bits);
            pilot_ctl.observe_pilot_bits(&tx_bits, &rx_bits);

            // ECC monitor: a genuinely coded payload (rate-1/2
            // convolutional) transmitted through the same channel; the
            // decoder's corrected-flip count is the quality metric.
            let mut payload = vec![0u8; FRAME_SYMBOLS];
            rng.fill_bits(&mut payload);
            let coded = code.encode(&payload);
            let mut csyms = Vec::with_capacity(coded.len() / m + 1);
            for chunk in coded.chunks(m) {
                let mut word = chunk.to_vec();
                while word.len() < m {
                    word.push(0);
                }
                csyms.push(constellation.point(hybridem_comm::bits::pack_bits(&word)));
            }
            channel.transmit(&mut csyms, &mut rng);
            let outcome = viterbi.decode_demapped(&code, hybrid, &csyms, coded.len());
            ecc_ctl.observe_ecc(outcome.corrected, coded.len() as u64);

            if pilot_hit.is_none() && pilot_ctl.recommendation() == Recommendation::Retrain {
                pilot_hit = Some(frame + 1);
            }
            if ecc_hit.is_none() && ecc_ctl.recommendation() == Recommendation::Retrain {
                ecc_hit = Some(frame + 1);
            }
            if pilot_hit.is_some() && ecc_hit.is_some() {
                break;
            }
        }
        eprintln!(
            "θ = {theta:.3}: pilot trigger after {pilot_hit:?} frames, ECC after {ecc_hit:?}"
        );
        rows.push(TriggerRow {
            theta_rad: theta,
            pilot_frames_to_trigger: pilot_hit,
            ecc_frames_to_trigger: ecc_hit,
        });
    }

    println!("\n| phase offset [rad] | pilot frames to trigger | ECC frames to trigger |");
    println!("|---|---|---|");
    for r in &rows {
        let p = r
            .pilot_frames_to_trigger
            .map_or("never".to_string(), |v| v.to_string());
        let e = r
            .ecc_frames_to_trigger
            .map_or("never".to_string(), |v| v.to_string());
        println!("| {:.3} | {} | {} |", r.theta_rad, p, e);
    }

    let path = write_json("ablation_trigger.json", &rows);
    println!("\nartefact: {path:?}");
    println!("\nShape: no trigger on the healthy channel; large offsets detected");
    println!("within a couple of frames; the ECC monitor needs no pilot");
    println!("overhead but reacts a little later (corrected flips saturate).");
}
