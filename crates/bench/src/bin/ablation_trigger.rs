//! **Ablation — retrain-trigger detection.** The paper proposes two
//! channel-change monitors (§II-C): pilot-BER thresholding and
//! ECC corrected-flip counting. Measure how many frames each needs to
//! detect phase offsets of different magnitudes.
//!
//! Driven by the online link runtime
//! ([`hybridem_core::runtime::OnlineLink`], DESIGN.md §10) in its
//! detection-only mode: a constant phase trajectory streams frames at
//! the chosen monitor until the controller fires
//! ([`TriggerAction::LogOnly`] records the trigger without spending a
//! retrain). Pilot monitoring uses all-pilot frames; ECC monitoring
//! needs no pilots at all — the payload carries a rate-1/2
//! convolutional codeword and the Viterbi corrected-flip count is the
//! evidence.

use hybridem_bench::{banner, budget, write_json};
use hybridem_comm::trajectory::{ChannelState, Trajectory};
use hybridem_core::adapt::AdaptThresholds;
use hybridem_core::config::SystemConfig;
use hybridem_core::pipeline::HybridPipeline;
use hybridem_core::runtime::{Monitor, OnlineLink, OnlineLinkSpec, TriggerAction};

struct TriggerRow {
    theta_rad: f32,
    pilot_frames_to_trigger: Option<usize>,
    ecc_frames_to_trigger: Option<usize>,
}

hybridem_mathkit::impl_to_json!(TriggerRow {
    theta_rad,
    pilot_frames_to_trigger,
    ecc_frames_to_trigger,
});

const MAX_FRAMES: u64 = 200;

fn main() {
    banner(
        "Ablation — retrain-trigger detection latency (pilot BER vs ECC flips)",
        "Ney, Hammoud, Wehn (IPDPSW'22), §II-C",
    );
    let mut cfg = SystemConfig::paper_default();
    cfg.e2e_steps = budget(4000) as usize;
    let es = cfg.es_n0_db();

    let mut pipe = HybridPipeline::new(cfg);
    let _ = pipe.e2e_train();
    let _ = pipe.extract_centroids();

    let frames_to_trigger = |theta: f32, monitor: Monitor| -> Option<usize> {
        let trajectory = Trajectory::constant(
            "phase-offset",
            ChannelState::clean(es).with_phase(theta),
            MAX_FRAMES,
        );
        let mut spec = OnlineLinkSpec::new(trajectory, 777);
        spec.params.monitor = monitor;
        spec.params.action = TriggerAction::LogOnly;
        spec.params.thresholds = AdaptThresholds::default();
        // Pilot monitoring: every frame symbol is a known pilot. ECC
        // monitoring: no pilot overhead, the whole frame is codeword.
        spec.params.pilot_symbols = match monitor {
            Monitor::Pilot => spec.params.frame_symbols,
            Monitor::Ecc => 0,
        };
        let mut link = OnlineLink::adaptive(spec, &pipe);
        while link.frames() < MAX_FRAMES && link.events().is_empty() {
            link.step();
        }
        link.events().first().map(|e| e.trigger_frame as usize + 1)
    };

    let mut rows = Vec::new();
    for &theta in &[0.0f32, 0.05, 0.1, 0.2, 0.4, std::f32::consts::FRAC_PI_4] {
        let pilot_hit = frames_to_trigger(theta, Monitor::Pilot);
        let ecc_hit = frames_to_trigger(theta, Monitor::Ecc);
        eprintln!(
            "θ = {theta:.3}: pilot trigger after {pilot_hit:?} frames, ECC after {ecc_hit:?}"
        );
        rows.push(TriggerRow {
            theta_rad: theta,
            pilot_frames_to_trigger: pilot_hit,
            ecc_frames_to_trigger: ecc_hit,
        });
    }

    println!("\n| phase offset [rad] | pilot frames to trigger | ECC frames to trigger |");
    println!("|---|---|---|");
    for r in &rows {
        let p = r
            .pilot_frames_to_trigger
            .map_or("never".to_string(), |v| v.to_string());
        let e = r
            .ecc_frames_to_trigger
            .map_or("never".to_string(), |v| v.to_string());
        println!("| {:.3} | {} | {} |", r.theta_rad, p, e);
    }

    let path = write_json("ablation_trigger.json", &rows);
    println!("\nartefact: {path:?}");
    println!("\nShape: no trigger on the healthy channel; large offsets detected");
    println!("within a couple of frames; the ECC monitor needs no pilot");
    println!("overhead but is blinder to small offsets (the decoder corrects");
    println!("them away, so the flip rate saturates below its threshold).");
}
