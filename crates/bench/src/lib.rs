//! # hybridem-bench
//!
//! Experiment harness: one binary per paper artefact (Fig. 2, Fig. 3,
//! Table 1, Table 2) plus ablation sweeps, and criterion benches for
//! the hot paths. Binaries print Markdown tables to stdout and write
//! JSON/PGM artefacts under `results/`.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig2_ber_curves` | Fig. 2 — BER vs SNR for the three receivers |
//! | `fig3_decision_regions` | Fig. 3 — decision regions + centroids before/after retraining |
//! | `table1_adaptation` | Table 1 — phase-offset adaptation BERs |
//! | `table2_hardware` | Table 2 — FPGA implementation comparison |
//! | `campaign` | Fig. 2 as a campaign: waterfall sweep, all receivers × impairments, early stopping |
//! | `drift_runtime` | (ext.) §II-C online: time-varying links through the trigger→retrain→redeploy loop |
//! | `ablation_dop` | (ext.) MVAU folding: DSP ↔ latency ↔ power |
//! | `ablation_quant` | (ext.) bit-width vs BER |
//! | `ablation_grid` | (ext.) extraction-grid resolution |
//! | `ablation_trigger` | (ext.) retrain-trigger detection latency |
//! | `perf` | (infra) perf-regression gate over the SIMD kernels, trajectories in `BENCH_*.json` |
//! | `linkserver` | (infra) many-link serving saturation curves (workers × batch), trajectory in `BENCH_linkserver.json` |
//! | `equalizer` | (ext.) blind re-convergence on two-ray ISI + adaptive-FIR kernel trajectory in `BENCH_equalizer.json` |

#![warn(missing_docs)]

pub mod perf;

use hybridem_mathkit::json::ToJson;
use std::path::{Path, PathBuf};

/// Directory where experiment artefacts are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HYBRIDEM_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Writes a serialisable artefact as pretty JSON under `results/`.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(name);
    let json = hybridem_mathkit::json::to_string_pretty(value);
    std::fs::write(&path, json).expect("write artefact");
    path
}

/// Writes a text artefact (PGM images, Markdown tables) under `results/`.
pub fn write_text(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write artefact");
    path
}

/// Pretty banner for experiment binaries.
pub fn banner(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("{}", "=".repeat(72));
}

/// Returns true when the caller asked for a reduced-budget run
/// (`HYBRIDEM_QUICK=1`) — used by CI and smoke tests.
pub fn quick_mode() -> bool {
    std::env::var("HYBRIDEM_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Standard experiment budgets, cut by 8× under [`quick_mode`].
pub fn budget(full: u64) -> u64 {
    if quick_mode() {
        (full / 8).max(1)
    } else {
        full
    }
}

/// Per-point symbol cap for campaign runs, from the
/// `HYBRIDEM_CAMPAIGN_TRIALS` environment variable, parsed by the
/// strict shared rule ([`hybridem_mathkit::env::parse_count`]: digits
/// only, ≥ 1; unset or anything else ⇒ `None`, i.e. the campaign's
/// own cap applies). The
/// campaign schedule rounds the cap up to whole blocks, so actual
/// budgets can exceed it by up to `block_len − 1` symbols. CI sets a
/// small value to keep the seeded micro-campaign smoke cheap.
pub fn campaign_symbol_cap() -> Option<u64> {
    std::env::var("HYBRIDEM_CAMPAIGN_TRIALS")
        .ok()
        .as_deref()
        .and_then(hybridem_mathkit::env::parse_count)
}

/// Checks a path exists after writing (sanity for artefact tests).
pub fn assert_written(path: &Path) {
    assert!(path.exists(), "artefact {path:?} missing");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artefact_round_trip() {
        std::env::set_var("HYBRIDEM_RESULTS", "/tmp/hybridem-bench-test");
        let artefact =
            hybridem_mathkit::json::Json::object([("x", hybridem_mathkit::json::Json::Int(1))]);
        let p = write_json("test.json", &artefact);
        assert_written(&p);
        let p = write_text("test.txt", "hello");
        assert_written(&p);
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "hello");
    }

    #[test]
    fn budget_full_without_quick_mode() {
        std::env::remove_var("HYBRIDEM_QUICK");
        assert_eq!(budget(800), 800);
    }
}
