//! Convex hulls (Andrew's monotone chain).

use hybridem_mathkit::vec2::Vec2;

/// Convex hull of a point set, counter-clockwise, starting from the
/// lexicographically smallest point. Collinear boundary points are
/// dropped. Degenerate inputs (0–2 points, all collinear) return what
/// remains after deduplication.
pub fn convex_hull(points: &[Vec2]) -> Vec<Vec2> {
    let mut pts: Vec<Vec2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let cross = |o: Vec2, a: Vec2, b: Vec2| (a - o).cross(b - o);
    let mut hull: Vec<Vec2> = Vec::with_capacity(2 * n);
    // Lower chain.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper chain.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // the first point is repeated at the end
    hull
}

/// True if `p` lies inside or on the boundary of a convex CCW polygon.
pub fn convex_contains(hull: &[Vec2], p: Vec2, eps: f64) -> bool {
    if hull.len() < 3 {
        return false;
    }
    for i in 0..hull.len() {
        let a = hull[i];
        let b = hull[(i + 1) % hull.len()];
        if (b - a).cross(p - a) < -eps {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_with_interior_points() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(0.5, 0.5),
            Vec2::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        // CCW from the lexicographic minimum (0,0).
        assert_eq!(hull[0], Vec2::new(0.0, 0.0));
        assert_eq!(hull[1], Vec2::new(1.0, 0.0));
        assert_eq!(hull[2], Vec2::new(1.0, 1.0));
        assert_eq!(hull[3], Vec2::new(0.0, 1.0));
    }

    #[test]
    fn collinear_points_collapse() {
        let pts: Vec<Vec2> = (0..5)
            .map(|i| Vec2::new(i as f64, 2.0 * i as f64))
            .collect();
        let hull = convex_hull(&pts);
        // Degenerate: endpoints only (monotone chain keeps the two
        // extremes of the line segment).
        assert!(
            hull.len() <= 2,
            "collinear set must not form an area: {hull:?}"
        );
    }

    #[test]
    fn duplicates_removed() {
        let pts = vec![Vec2::new(1.0, 1.0); 10];
        assert_eq!(convex_hull(&pts).len(), 1);
    }

    #[test]
    fn hull_is_ccw_and_contains_all_points() {
        // Deterministic pseudo-random points.
        let mut pts = Vec::new();
        let mut x = 0.123f64;
        for _ in 0..100 {
            x = (x * 97.13 + 0.417).fract();
            let y = (x * 57.77 + 0.1).fract();
            pts.push(Vec2::new(x * 4.0 - 2.0, y * 4.0 - 2.0));
        }
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        // CCW: positive signed area.
        let mut area2 = 0.0;
        for i in 0..hull.len() {
            let a = hull[i];
            let b = hull[(i + 1) % hull.len()];
            area2 += a.cross(b);
        }
        assert!(area2 > 0.0);
        for &p in &pts {
            assert!(convex_contains(&hull, p, 1e-9), "{p:?} outside hull");
        }
    }

    #[test]
    fn contains_rejects_outside_points() {
        let hull = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
        ];
        assert!(convex_contains(&hull, Vec2::new(1.0, 1.0), 1e-12));
        assert!(convex_contains(&hull, Vec2::new(0.0, 0.0), 1e-12));
        assert!(!convex_contains(&hull, Vec2::new(3.0, 1.0), 1e-12));
        assert!(!convex_contains(&hull, Vec2::new(-0.1, 1.0), 1e-12));
    }
}
