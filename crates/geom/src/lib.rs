//! # hybridem-geom
//!
//! Computational geometry for decision-region analysis.
//!
//! The paper's extraction step samples the demapper ANN over the I/Q
//! plane, interprets the resulting label map as a Voronoi diagram and
//! computes one centroid per cell. This crate supplies the geometric
//! machinery:
//!
//! - [`grid::LabelGrid`] — a rectangular map of symbol labels over a
//!   window of the plane (the sampled decision regions);
//! - [`regions`] — connected components, per-label masses and mass
//!   centroids of a label grid;
//! - [`marching`] — marching-squares boundary extraction of a label's
//!   region as polygons;
//! - [`polygon`] — areas, vertex centroids, point-in-polygon and
//!   Sutherland–Hodgman clipping;
//! - [`hull`] — Andrew monotone-chain convex hulls;
//! - [`voronoi`] — exact Voronoi cells of a point set inside a bounding
//!   box via half-plane clipping, used to validate that extracted
//!   regions behave like a Voronoi partition.

#![warn(missing_docs)]

pub mod components;
pub mod grid;
pub mod hull;
pub mod marching;
pub mod polygon;
pub mod regions;
pub mod voronoi;

pub use components::label_components;
pub use grid::LabelGrid;
pub use hull::convex_hull;
pub use polygon::Polygon;
pub use voronoi::voronoi_cells;
