//! Per-cell connected-component labelling.
//!
//! [`label_components`] assigns every grid cell a component id (4-connected,
//! same label), so downstream consumers can reason about fragments —
//! e.g. restrict centroid extraction to each label's dominant component,
//! discarding spurious wedges a neural demapper produces where it
//! extrapolates far outside the training distribution.

use crate::grid::LabelGrid;
use std::collections::VecDeque;

/// Component labelling of a grid.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id per cell (row-major, same layout as the grid).
    pub id: Vec<u32>,
    /// Cell count per component id.
    pub sizes: Vec<usize>,
    /// Symbol label per component id.
    pub label_of: Vec<u16>,
}

impl Components {
    /// Component id of cell `(ix, iy)`.
    pub fn id_at(&self, grid: &LabelGrid, ix: usize, iy: usize) -> u32 {
        self.id[iy * grid.nx() + ix]
    }

    /// The largest component carrying `label`, if any.
    pub fn dominant_of_label(&self, label: u16) -> Option<u32> {
        self.label_of
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == label)
            .max_by_key(|&(cid, _)| self.sizes[cid])
            .map(|(cid, _)| cid as u32)
    }

    /// Number of components carrying `label`.
    pub fn count_of_label(&self, label: u16) -> usize {
        self.label_of.iter().filter(|&&l| l == label).count()
    }
}

/// BFS flood-fill component labelling (4-connectivity).
pub fn label_components(grid: &LabelGrid) -> Components {
    let (nx, ny) = (grid.nx(), grid.ny());
    const UNSET: u32 = u32::MAX;
    let mut id = vec![UNSET; nx * ny];
    let mut sizes = Vec::new();
    let mut label_of = Vec::new();
    let mut queue = VecDeque::new();
    for sy in 0..ny {
        for sx in 0..nx {
            if id[sy * nx + sx] != UNSET {
                continue;
            }
            let cid = sizes.len() as u32;
            let label = grid.label(sx, sy);
            label_of.push(label);
            let mut size = 0usize;
            id[sy * nx + sx] = cid;
            queue.push_back((sx, sy));
            while let Some((cx, cy)) = queue.pop_front() {
                size += 1;
                let neighbours = [
                    (cx.wrapping_sub(1), cy),
                    (cx + 1, cy),
                    (cx, cy.wrapping_sub(1)),
                    (cx, cy + 1),
                ];
                for (vx, vy) in neighbours {
                    if vx < nx && vy < ny {
                        let vi = vy * nx + vx;
                        if id[vi] == UNSET && grid.label(vx, vy) == label {
                            id[vi] = cid;
                            queue.push_back((vx, vy));
                        }
                    }
                }
            }
            sizes.push(size);
        }
    }
    Components {
        id,
        sizes,
        label_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Window;

    #[test]
    fn split_label_has_two_components() {
        let g = LabelGrid::sample(Window::square(1.0), 16, 16, |p| {
            if (p.x > 0.5 && p.y > 0.5) || (p.x < -0.5 && p.y < -0.5) {
                1
            } else {
                0
            }
        });
        let comps = label_components(&g);
        assert_eq!(comps.count_of_label(1), 2);
        assert_eq!(comps.count_of_label(0), 1);
        // Sizes cover the grid.
        assert_eq!(comps.sizes.iter().sum::<usize>(), 256);
        // The dominant component of label 0 is the big background.
        let dom0 = comps.dominant_of_label(0).unwrap();
        assert!(comps.sizes[dom0 as usize] > 200);
        assert!(comps.dominant_of_label(9).is_none());
    }

    #[test]
    fn ids_consistent_with_labels() {
        let g = LabelGrid::sample(Window::square(1.0), 8, 8, |p| u16::from(p.x > 0.0));
        let comps = label_components(&g);
        for iy in 0..8 {
            for ix in 0..8 {
                let cid = comps.id_at(&g, ix, iy);
                assert_eq!(comps.label_of[cid as usize], g.label(ix, iy));
            }
        }
    }

    #[test]
    fn dominant_picks_largest() {
        // Label 1: one 2-cell blob, one larger blob.
        let g = LabelGrid::sample(Window::square(1.0), 16, 16, |p| {
            // Two disjoint blobs share label 1: a small corner blob and
            // a bigger quadrant blob.
            u16::from((p.x > 0.6 && p.y > 0.6) || (p.x < -0.2 && p.y < -0.2))
        });
        let comps = label_components(&g);
        let dom = comps.dominant_of_label(1).unwrap() as usize;
        // The dominant blob is the lower-left one: it contains the cell
        // nearest (−0.5, −0.5).
        let mut found = false;
        for iy in 0..16 {
            for ix in 0..16 {
                let c = g.center(ix, iy);
                if c.x < -0.3 && c.y < -0.3 && comps.id_at(&g, ix, iy) == dom as u32 {
                    found = true;
                }
            }
        }
        assert!(found, "dominant component must be the large blob");
    }
}
