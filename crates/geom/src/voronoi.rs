//! Voronoi cells by half-plane clipping.
//!
//! For the ≤256 sites of a constellation, the O(n²) half-plane
//! construction is exact, simple and fast: the cell of site `s_i`
//! inside a bounding box is the box clipped against the bisector
//! half-plane of every other site. Used to (a) validate that extracted
//! decision regions behave like a Voronoi partition and (b) re-decide
//! labels from extracted centroids.

use crate::polygon::Polygon;
use hybridem_mathkit::vec2::Vec2;

/// Computes the Voronoi cell of every site inside the rectangle
/// `[x0,x1] × [y0,y1]`. A site strictly outside the box may have an
/// empty cell (`None`). Duplicate sites split nothing — the first
/// occurrence wins the shared cell, later duplicates return `None`.
pub fn voronoi_cells(sites: &[Vec2], x0: f64, y0: f64, x1: f64, y1: f64) -> Vec<Option<Polygon>> {
    sites
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut cell = Polygon::rect(x0, y0, x1, y1);
            for (j, &t) in sites.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = t - s;
                if d.norm_sqr() == 0.0 {
                    // Duplicate site: cede the cell to the earlier copy.
                    if j < i {
                        return None;
                    }
                    continue;
                }
                // Keep {x : ‖x−s‖ ≤ ‖x−t‖} ⇔ 2(t−s)·x ≤ ‖t‖²−‖s‖².
                let c = t.norm_sqr() - s.norm_sqr();
                match cell.clip_half_plane(d * 2.0, c) {
                    Some(p) => cell = p,
                    None => return None,
                }
            }
            Some(cell)
        })
        .collect()
}

/// Index of the nearest site to `p` (ties to the lowest index).
pub fn nearest_site(sites: &[Vec2], p: Vec2) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &s) in sites.iter().enumerate() {
        let d = p.dist_sqr(s);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sites_split_the_box() {
        let sites = [Vec2::new(-1.0, 0.0), Vec2::new(1.0, 0.0)];
        let cells = voronoi_cells(&sites, -2.0, -2.0, 2.0, 2.0);
        let a = cells[0].as_ref().unwrap();
        let b = cells[1].as_ref().unwrap();
        assert!((a.area() - 8.0).abs() < 1e-9);
        assert!((b.area() - 8.0).abs() < 1e-9);
        assert!((a.centroid().x + 1.0).abs() < 1e-9);
        assert!((b.centroid().x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cells_tile_the_box() {
        // 4×4 grid of sites (a 16-QAM layout).
        let mut sites = Vec::new();
        for i in 0..4 {
            for q in 0..4 {
                sites.push(Vec2::new(
                    (2 * i as i64 - 3) as f64,
                    (2 * q as i64 - 3) as f64,
                ));
            }
        }
        let cells = voronoi_cells(&sites, -4.0, -4.0, 4.0, 4.0);
        let total: f64 = cells.iter().flatten().map(|c| c.area()).sum();
        assert!((total - 64.0).abs() < 1e-6, "cells must tile: {total}");
        // Interior cells are 2×2 squares with the site at the centre.
        let c5 = cells[5].as_ref().unwrap(); // site (−1,−1): interior
        assert!((c5.area() - 4.0).abs() < 1e-9);
        let cc = c5.centroid();
        assert!((cc.x + 1.0).abs() < 1e-9 && (cc.y + 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_cell_point_is_nearest_to_its_site() {
        // Deterministic scattered sites.
        let mut sites = Vec::new();
        let mut x = 0.37f64;
        for _ in 0..12 {
            x = (x * 83.7 + 0.21).fract();
            let y = (x * 61.3 + 0.43).fract();
            sites.push(Vec2::new(x * 2.0 - 1.0, y * 2.0 - 1.0));
        }
        let cells = voronoi_cells(&sites, -1.5, -1.5, 1.5, 1.5);
        for (i, cell) in cells.iter().enumerate() {
            let cell = cell.as_ref().expect("non-empty cell for interior site");
            // The centroid of a convex cell lies in the cell; check the
            // nearest-site property there and at each vertex pulled
            // slightly toward the site.
            let c = cell.centroid();
            assert_eq!(nearest_site(&sites, c), i, "centroid of cell {i}");
            for &v in cell.vertices() {
                let inner = v.lerp(sites[i], 1e-6);
                let d_own = inner.dist_sqr(sites[i]);
                for (j, &s) in sites.iter().enumerate() {
                    if j != i {
                        assert!(
                            d_own <= inner.dist_sqr(s) + 1e-9,
                            "vertex of cell {i} closer to site {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_sites_handled() {
        let sites = [
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
        ];
        let cells = voronoi_cells(&sites, -2.0, -2.0, 2.0, 2.0);
        assert!(cells[0].is_some());
        assert!(cells[1].is_none(), "duplicate cedes to the first copy");
        assert!(cells[2].is_some());
    }

    #[test]
    fn far_outside_site_gets_empty_cell() {
        let sites = [Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)];
        let cells = voronoi_cells(&sites, -1.0, -1.0, 1.0, 1.0);
        assert!(cells[0].is_some());
        assert!(cells[1].is_none());
    }
}
