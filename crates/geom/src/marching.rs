//! Marching squares: boundary polygons of a labelled region.
//!
//! Turns the cells of a [`LabelGrid`] carrying one target label into
//! closed boundary polygons. The mask is padded with one ring of
//! "outside" so every contour closes, and segments are oriented with
//! the region on the left (CCW loops around regions, CW around holes).
//! The resulting polygons feed [`crate::polygon::Polygon::centroid`] —
//! the paper's "centroid from the vertices of the Voronoi cell".

use crate::grid::LabelGrid;
use crate::polygon::Polygon;
use hybridem_mathkit::vec2::Vec2;
use std::collections::HashMap;

/// An edge-midpoint key on the padded node lattice:
/// `(x, y, 0)` = horizontal edge from node (x,y) to (x+1,y),
/// `(x, y, 1)` = vertical edge from node (x,y) to (x,y+1).
type EdgeKey = (usize, usize, u8);

/// Extracts the boundary polygons of all cells labelled `label`.
pub fn region_boundaries(grid: &LabelGrid, label: u16) -> Vec<Polygon> {
    let (nx, ny) = (grid.nx(), grid.ny());
    // Padded mask: (nx+2) × (ny+2), border = outside.
    let pnx = nx + 2;
    let pny = ny + 2;
    let mask = |ix: usize, iy: usize| -> bool {
        if ix == 0 || iy == 0 || ix > nx || iy > ny {
            false
        } else {
            grid.label(ix - 1, iy - 1) == label
        }
    };

    // World position of padded node (ix, iy): the centre of grid cell
    // (ix−1, iy−1), linearly extended outside the window for the pad.
    let w = grid.window();
    let dx = w.width() / nx as f64;
    let dy = w.height() / ny as f64;
    let node = move |ix: usize, iy: usize| -> Vec2 {
        Vec2::new(w.x0 + (ix as f64 - 0.5) * dx, w.y0 + (iy as f64 - 0.5) * dy)
    };
    let midpoint = move |e: EdgeKey| -> Vec2 {
        let a = node(e.0, e.1);
        let b = if e.2 == 0 {
            node(e.0 + 1, e.1)
        } else {
            node(e.0, e.1 + 1)
        };
        a.midpoint(b)
    };

    // Directed segments: start edge → end edge, region kept on the left.
    let mut next: HashMap<EdgeKey, EdgeKey> = HashMap::new();
    for y in 0..pny - 1 {
        for x in 0..pnx - 1 {
            let c0 = mask(x, y) as u8;
            let c1 = mask(x + 1, y) as u8;
            let c2 = mask(x + 1, y + 1) as u8;
            let c3 = mask(x, y + 1) as u8;
            let case = c0 | c1 << 1 | c2 << 2 | c3 << 3;
            let b: EdgeKey = (x, y, 0); // bottom
            let r: EdgeKey = (x + 1, y, 1); // right
            let t: EdgeKey = (x, y + 1, 0); // top
            let l: EdgeKey = (x, y, 1); // left
            let mut put = |from: EdgeKey, to: EdgeKey| {
                let prev = next.insert(from, to);
                debug_assert!(prev.is_none(), "marching-squares edge reused");
            };
            match case {
                0 | 15 => {}
                1 => put(b, l),
                2 => put(r, b),
                3 => put(r, l),
                4 => put(t, r),
                5 => {
                    put(b, l);
                    put(t, r);
                }
                6 => put(t, b),
                7 => put(t, l),
                8 => put(l, t),
                9 => put(b, t),
                10 => {
                    put(r, b);
                    put(l, t);
                }
                11 => put(r, t),
                12 => put(l, r),
                13 => put(b, r),
                14 => put(l, b),
                _ => unreachable!(),
            }
        }
    }

    // Chain segments into closed loops.
    let mut polygons = Vec::new();
    let mut visited: HashMap<EdgeKey, bool> = HashMap::new();
    let starts: Vec<EdgeKey> = next.keys().copied().collect();
    for start in starts {
        if visited.get(&start).copied().unwrap_or(false) {
            continue;
        }
        let mut loop_pts = Vec::new();
        let mut cur = start;
        loop {
            visited.insert(cur, true);
            loop_pts.push(midpoint(cur));
            cur = next[&cur];
            if cur == start {
                break;
            }
        }
        if loop_pts.len() >= 3 {
            polygons.push(Polygon::new(simplify_collinear(loop_pts)));
        }
    }
    polygons
}

/// Drops interior vertices that are collinear with their neighbours
/// (marching squares produces long axis-aligned runs of midpoints).
fn simplify_collinear(pts: Vec<Vec2>) -> Vec<Vec2> {
    let n = pts.len();
    if n <= 4 {
        return pts;
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prev = pts[(i + n - 1) % n];
        let cur = pts[i];
        let nxt = pts[(i + 1) % n];
        if (cur - prev).cross(nxt - cur).abs() > 1e-12 {
            out.push(cur);
        }
    }
    if out.len() < 3 {
        pts
    } else {
        out
    }
}

/// Area centroid over (possibly several) boundary polygons of a region:
/// outer CCW loops carry positive signed area, holes negative, so the
/// signed-weighted combination is the true region centroid.
pub fn boundary_centroid(polygons: &[Polygon]) -> Option<Vec2> {
    let mut total_a = 0.0;
    let mut acc = Vec2::zero();
    for p in polygons {
        let a = p.signed_area();
        acc += p.centroid() * a;
        total_a += a;
    }
    if total_a.abs() < 1e-30 {
        None
    } else {
        Some(acc / total_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{LabelGrid, Window};

    fn disc_grid(n: usize, cx: f64, cy: f64, r: f64) -> LabelGrid {
        LabelGrid::sample(Window::square(1.0), n, n, |p| {
            u16::from((p.x - cx).powi(2) + (p.y - cy).powi(2) <= r * r)
        })
    }

    #[test]
    fn disc_boundary_single_loop() {
        let g = disc_grid(64, 0.2, -0.1, 0.5);
        let polys = region_boundaries(&g, 1);
        assert_eq!(polys.len(), 1, "a disc has one boundary loop");
        let p = &polys[0];
        // CCW (region-left orientation).
        assert!(p.signed_area() > 0.0);
        // Area ≈ πr² within grid resolution.
        let expect = std::f64::consts::PI * 0.25;
        assert!((p.area() - expect).abs() < 0.05, "area {}", p.area());
        // Vertex centroid ≈ disc centre.
        let c = boundary_centroid(&polys).unwrap();
        assert!(
            (c.x - 0.2).abs() < 0.02 && (c.y + 0.1).abs() < 0.02,
            "{c:?}"
        );
    }

    #[test]
    fn complement_has_hole() {
        // The complement of the disc inside the window: an outer loop
        // plus a CW hole where the disc sits.
        let g = disc_grid(64, 0.0, 0.0, 0.4);
        let polys = region_boundaries(&g, 0);
        assert_eq!(polys.len(), 2);
        let (pos, neg): (Vec<_>, Vec<_>) = polys.iter().partition(|p| p.signed_area() > 0.0);
        assert_eq!(pos.len(), 1, "one outer boundary");
        assert_eq!(neg.len(), 1, "one hole");
        // Signed-area combination gives window area − disc area.
        let total: f64 = polys.iter().map(|p| p.signed_area()).sum();
        let expect = 4.0 - std::f64::consts::PI * 0.16;
        assert!((total - expect).abs() < 0.08, "net area {total}");
        // The centroid of the symmetric complement is the origin.
        let c = boundary_centroid(&polys).unwrap();
        assert!(c.norm() < 0.02, "{c:?}");
    }

    #[test]
    fn two_separate_blobs_two_loops() {
        let g = LabelGrid::sample(Window::square(1.0), 64, 64, |p| {
            u16::from(
                (p.x - 0.5).powi(2) + (p.y - 0.5).powi(2) <= 0.04
                    || (p.x + 0.5).powi(2) + (p.y + 0.5).powi(2) <= 0.04,
            )
        });
        let polys = region_boundaries(&g, 1);
        assert_eq!(polys.len(), 2);
        assert!(polys.iter().all(|p| p.signed_area() > 0.0));
    }

    #[test]
    fn absent_label_yields_nothing() {
        let g = disc_grid(16, 0.0, 0.0, 0.5);
        assert!(region_boundaries(&g, 42).is_empty());
        assert!(boundary_centroid(&[]).is_none());
    }

    #[test]
    fn half_plane_region_touching_border_closes() {
        // A region touching the window edge must still close (via the
        // padding ring).
        let g = LabelGrid::sample(Window::square(1.0), 32, 32, |p| u16::from(p.x > 0.0));
        let polys = region_boundaries(&g, 1);
        assert_eq!(polys.len(), 1);
        let c = boundary_centroid(&polys).unwrap();
        assert!(c.x > 0.4 && c.x < 0.6, "{c:?}");
        assert!(c.y.abs() < 0.02);
    }
}
