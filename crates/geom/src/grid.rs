//! Label grids: sampled decision regions.
//!
//! A [`LabelGrid`] stores, for each cell of a regular `nx × ny` grid
//! over a window of the plane, the symbol label a demapper assigns to
//! the cell's centre point. It is the discrete decision-region diagram
//! of the paper's Fig. 3 and the input to centroid extraction.

use hybridem_mathkit::vec2::Vec2;

/// A rectangular window of the plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Window {
    /// Minimum x (inclusive).
    pub x0: f64,
    /// Minimum y (inclusive).
    pub y0: f64,
    /// Maximum x (exclusive for cell centres).
    pub x1: f64,
    /// Maximum y.
    pub y1: f64,
}

impl Window {
    /// Symmetric square window `[−a, a]²`.
    pub fn square(a: f64) -> Self {
        assert!(a > 0.0);
        Self {
            x0: -a,
            y0: -a,
            x1: a,
            y1: a,
        }
    }

    /// Window width.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Window height.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }
}

/// Symbol labels sampled on a regular grid.
#[derive(Clone, Debug)]
pub struct LabelGrid {
    window: Window,
    nx: usize,
    ny: usize,
    labels: Vec<u16>,
}

impl LabelGrid {
    /// Samples `label_fn` at every cell centre of an `nx × ny` grid
    /// covering `window`.
    pub fn sample(
        window: Window,
        nx: usize,
        ny: usize,
        mut label_fn: impl FnMut(Vec2) -> u16,
    ) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid too small");
        assert!(
            window.width() > 0.0 && window.height() > 0.0,
            "empty window"
        );
        let mut labels = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                labels.push(label_fn(Self::center_of(window, nx, ny, ix, iy)));
            }
        }
        Self {
            window,
            nx,
            ny,
            labels,
        }
    }

    /// Builds a grid from labels already sampled in row-major order
    /// (`iy` outer, `ix` inner — the order [`LabelGrid::sample`] visits
    /// cells, and the order [`LabelGrid::cell_centers`] yields). This
    /// is the batch entry point: callers evaluate all cell centres in
    /// one block (e.g. a single batched ANN inference) and hand the
    /// labels over.
    ///
    /// # Panics
    /// Panics unless `labels.len() == nx * ny` (and the grid/window are
    /// valid, as for [`LabelGrid::sample`]).
    pub fn from_labels(window: Window, nx: usize, ny: usize, labels: Vec<u16>) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid too small");
        assert!(
            window.width() > 0.0 && window.height() > 0.0,
            "empty window"
        );
        assert_eq!(labels.len(), nx * ny, "labels must cover the grid");
        Self {
            window,
            nx,
            ny,
            labels,
        }
    }

    /// Cell centres in sampling order (`iy` outer, `ix` inner) — the
    /// batch companion of [`LabelGrid::from_labels`].
    pub fn cell_centers(window: Window, nx: usize, ny: usize) -> Vec<Vec2> {
        let mut out = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                out.push(Self::center_of(window, nx, ny, ix, iy));
            }
        }
        out
    }

    fn center_of(w: Window, nx: usize, ny: usize, ix: usize, iy: usize) -> Vec2 {
        let dx = w.width() / nx as f64;
        let dy = w.height() / ny as f64;
        Vec2::new(w.x0 + (ix as f64 + 0.5) * dx, w.y0 + (iy as f64 + 0.5) * dy)
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The sampled window.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Label of cell `(ix, iy)`.
    #[inline]
    pub fn label(&self, ix: usize, iy: usize) -> u16 {
        self.labels[iy * self.nx + ix]
    }

    /// Centre point of cell `(ix, iy)`.
    pub fn center(&self, ix: usize, iy: usize) -> Vec2 {
        Self::center_of(self.window, self.nx, self.ny, ix, iy)
    }

    /// Area of one grid cell.
    pub fn cell_area(&self) -> f64 {
        (self.window.width() / self.nx as f64) * (self.window.height() / self.ny as f64)
    }

    /// Number of distinct labels present.
    pub fn distinct_labels(&self) -> Vec<u16> {
        let mut seen = std::collections::BTreeSet::new();
        for &l in &self.labels {
            seen.insert(l);
        }
        seen.into_iter().collect()
    }

    /// Raw label buffer (row-major, `iy` major).
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// Fraction of cells whose label disagrees with `other` (grids must
    /// have identical shape) — used to compare an extracted region map
    /// against the Voronoi re-decision of its centroids.
    pub fn disagreement(&self, other: &LabelGrid) -> f64 {
        assert_eq!(self.nx, other.nx, "grid shape mismatch");
        assert_eq!(self.ny, other.ny, "grid shape mismatch");
        let diff = self
            .labels
            .iter()
            .zip(&other.labels)
            .filter(|(a, b)| a != b)
            .count();
        diff as f64 / self.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadrant_grid(n: usize) -> LabelGrid {
        LabelGrid::sample(Window::square(1.0), n, n, |p| {
            match (p.x >= 0.0, p.y >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            }
        })
    }

    #[test]
    fn sampling_covers_window() {
        let g = quadrant_grid(8);
        assert_eq!(g.nx(), 8);
        assert_eq!(g.ny(), 8);
        assert_eq!(g.labels().len(), 64);
        // Cell centres stay strictly inside the window.
        let c00 = g.center(0, 0);
        assert!(c00.x > -1.0 && c00.y > -1.0);
        let c77 = g.center(7, 7);
        assert!(c77.x < 1.0 && c77.y < 1.0);
        // Total area is conserved.
        assert!((g.cell_area() * 64.0 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quadrant_labels_correct() {
        let g = quadrant_grid(8);
        assert_eq!(g.label(7, 7), 0); // +x, +y
        assert_eq!(g.label(0, 7), 1); // −x, +y
        assert_eq!(g.label(0, 0), 2); // −x, −y
        assert_eq!(g.label(7, 0), 3); // +x, −y
        assert_eq!(g.distinct_labels(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn disagreement_metric() {
        let a = quadrant_grid(16);
        let b = quadrant_grid(16);
        assert_eq!(a.disagreement(&b), 0.0);
        // Rotate labels: everything disagrees.
        let c = LabelGrid::sample(Window::square(1.0), 16, 16, |p| {
            match (p.x >= 0.0, p.y >= 0.0) {
                (true, true) => 1,
                (false, true) => 2,
                (false, false) => 3,
                (true, false) => 0,
            }
        });
        assert_eq!(a.disagreement(&c), 1.0);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_rejected() {
        let _ = LabelGrid::sample(Window::square(1.0), 1, 8, |_| 0);
    }
}
