//! Simple polygons: area, centroid, containment, clipping.
//!
//! The paper computes each cell centroid "based on the vertices of each
//! Voronoi cell" — that is [`Polygon::centroid`] (the area centroid from
//! the shoelace formula), applied to cells produced either by marching
//! squares over the sampled decision regions or by exact Voronoi
//! clipping.

use hybridem_mathkit::vec2::Vec2;

/// A simple polygon given by its vertices in order (either winding);
/// the closing edge from last back to first is implicit.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    vertices: Vec<Vec2>,
}

impl Polygon {
    /// Builds from vertices.
    ///
    /// # Panics
    /// Panics with fewer than 3 vertices.
    pub fn new(vertices: Vec<Vec2>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs ≥3 vertices");
        Self { vertices }
    }

    /// Axis-aligned rectangle `[x0,x1] × [y0,y1]` (CCW).
    pub fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x1 > x0 && y1 > y0, "degenerate rectangle");
        Self::new(vec![
            Vec2::new(x0, y0),
            Vec2::new(x1, y0),
            Vec2::new(x1, y1),
            Vec2::new(x0, y1),
        ])
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// Signed area (positive for CCW winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut a = 0.0;
        for i in 0..n {
            a += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        a / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Area centroid (shoelace-weighted). Falls back to the vertex mean
    /// for degenerate (zero-area) polygons.
    pub fn centroid(&self) -> Vec2 {
        let n = self.vertices.len();
        let a = self.signed_area();
        if a.abs() < 1e-30 {
            let mut m = Vec2::zero();
            for &v in &self.vertices {
                m += v;
            }
            return m / n as f64;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Vec2::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Point containment by the even–odd (ray casting) rule; boundary
    /// points may land either way (the decision-region use never places
    /// query points exactly on boundaries).
    pub fn contains(&self, p: Vec2) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[j];
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Clips this polygon against a half-plane `{x : n·x ≤ c}` using
    /// Sutherland–Hodgman; returns `None` when the intersection is
    /// empty or degenerate.
    pub fn clip_half_plane(&self, normal: Vec2, c: f64) -> Option<Polygon> {
        let inside = |p: Vec2| normal.dot(p) <= c + 1e-12;
        let mut out: Vec<Vec2> = Vec::with_capacity(self.vertices.len() + 2);
        let n = self.vertices.len();
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let cur_in = inside(cur);
            let nxt_in = inside(nxt);
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the boundary: add the intersection point.
                let d = normal.dot(nxt - cur);
                if d.abs() > 1e-30 {
                    let t = (c - normal.dot(cur)) / d;
                    out.push(cur.lerp(nxt, t.clamp(0.0, 1.0)));
                }
            }
        }
        if out.len() < 3 {
            return None;
        }
        Some(Polygon::new(out))
    }

    /// Clips against an axis-aligned box.
    pub fn clip_rect(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> Option<Polygon> {
        self.clip_half_plane(Vec2::new(1.0, 0.0), x1)?
            .clip_half_plane(Vec2::new(-1.0, 0.0), -x0)?
            .clip_half_plane(Vec2::new(0.0, 1.0), y1)?
            .clip_half_plane(Vec2::new(0.0, -1.0), -y0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_area_and_centroid() {
        let p = Polygon::rect(0.0, 0.0, 4.0, 2.0);
        assert_eq!(p.signed_area(), 8.0);
        assert_eq!(p.centroid(), Vec2::new(2.0, 1.0));
    }

    #[test]
    fn triangle_centroid_is_vertex_mean() {
        let p = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 0.0),
            Vec2::new(0.0, 3.0),
        ]);
        assert_eq!(p.area(), 4.5);
        let c = p.centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn winding_independence_of_centroid() {
        let ccw = Polygon::rect(1.0, 1.0, 2.0, 3.0);
        let mut rev = ccw.vertices().to_vec();
        rev.reverse();
        let cw = Polygon::new(rev);
        assert!(cw.signed_area() < 0.0);
        assert_eq!(ccw.centroid(), cw.centroid());
        assert_eq!(ccw.area(), cw.area());
    }

    #[test]
    fn l_shape_centroid_differs_from_vertex_mean() {
        // Non-convex L: area centroid must weight by area, not vertices.
        let p = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ]);
        assert_eq!(p.area(), 3.0);
        let c = p.centroid();
        // Decompose: [0,2]×[0,1] (c=(1,0.5), A=2) + [0,1]×[1,2] (c=(0.5,1.5), A=1).
        assert!((c.x - (2.0 * 1.0 + 1.0 * 0.5) / 3.0).abs() < 1e-12);
        assert!((c.y - (2.0 * 0.5 + 1.0 * 1.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let p = Polygon::rect(0.0, 0.0, 1.0, 1.0);
        assert!(p.contains(Vec2::new(0.5, 0.5)));
        assert!(!p.contains(Vec2::new(1.5, 0.5)));
        assert!(!p.contains(Vec2::new(-0.5, 0.5)));
        // Non-convex containment.
        let l = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ]);
        assert!(l.contains(Vec2::new(0.5, 1.5)));
        assert!(!l.contains(Vec2::new(1.5, 1.5)));
    }

    #[test]
    fn half_plane_clip_splits_square() {
        let p = Polygon::rect(0.0, 0.0, 2.0, 2.0);
        // Keep x ≤ 1.
        let h = p.clip_half_plane(Vec2::new(1.0, 0.0), 1.0).unwrap();
        assert!((h.area() - 2.0).abs() < 1e-12);
        let c = h.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_to_empty_returns_none() {
        let p = Polygon::rect(0.0, 0.0, 1.0, 1.0);
        assert!(p.clip_half_plane(Vec2::new(1.0, 0.0), -1.0).is_none());
    }

    #[test]
    fn rect_clip_intersection() {
        let p = Polygon::rect(0.0, 0.0, 4.0, 4.0);
        let clipped = p.clip_rect(1.0, 1.0, 2.0, 3.0).unwrap();
        assert!((clipped.area() - 2.0).abs() < 1e-12);
        let c = clipped.centroid();
        assert!((c.x - 1.5).abs() < 1e-12 && (c.y - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "polygon needs")]
    fn too_few_vertices_rejected() {
        let _ = Polygon::new(vec![Vec2::zero(), Vec2::new(1.0, 0.0)]);
    }
}
