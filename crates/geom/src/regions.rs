//! Region statistics over label grids.
//!
//! Computes per-label masses and mass centroids (the robust centroid
//! extractor) and connected components (to detect fragmented decision
//! regions, which indicate an under-trained demapper or too-coarse a
//! sampling grid).

use crate::grid::LabelGrid;
use hybridem_mathkit::vec2::Vec2;

/// Per-label statistics of a label grid.
#[derive(Clone, Debug)]
pub struct RegionStats {
    /// The label this entry describes.
    pub label: u16,
    /// Number of grid cells carrying the label.
    pub cells: usize,
    /// Area covered (cells × cell area).
    pub area: f64,
    /// Mass centroid: mean of the centres of all cells with this label.
    pub centroid: Vec2,
    /// Number of 4-connected components forming the region.
    pub components: usize,
}

/// Computes [`RegionStats`] for every label present in the grid,
/// ordered by label.
pub fn region_stats(grid: &LabelGrid) -> Vec<RegionStats> {
    let labels = grid.distinct_labels();
    let mut idx_of = std::collections::BTreeMap::new();
    for (i, &l) in labels.iter().enumerate() {
        idx_of.insert(l, i);
    }
    let mut cells = vec![0usize; labels.len()];
    let mut sums = vec![Vec2::zero(); labels.len()];
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let i = idx_of[&grid.label(ix, iy)];
            cells[i] += 1;
            sums[i] += grid.center(ix, iy);
        }
    }
    let comps = connected_components(grid);
    labels
        .iter()
        .enumerate()
        .map(|(i, &label)| RegionStats {
            label,
            cells: cells[i],
            area: cells[i] as f64 * grid.cell_area(),
            centroid: sums[i] / cells[i].max(1) as f64,
            components: comps[i],
        })
        .collect()
}

/// Number of 4-connected components per distinct label (in label
/// order), via BFS flood fill.
pub fn connected_components(grid: &LabelGrid) -> Vec<usize> {
    let labels = grid.distinct_labels();
    let mut idx_of = std::collections::BTreeMap::new();
    for (i, &l) in labels.iter().enumerate() {
        idx_of.insert(l, i);
    }
    let (nx, ny) = (grid.nx(), grid.ny());
    let mut visited = vec![false; nx * ny];
    let mut counts = vec![0usize; labels.len()];
    let mut queue = std::collections::VecDeque::new();
    for iy in 0..ny {
        for ix in 0..nx {
            let start = iy * nx + ix;
            if visited[start] {
                continue;
            }
            let label = grid.label(ix, iy);
            counts[idx_of[&label]] += 1;
            visited[start] = true;
            queue.push_back((ix, iy));
            while let Some((cx, cy)) = queue.pop_front() {
                let neighbours = [
                    (cx.wrapping_sub(1), cy),
                    (cx + 1, cy),
                    (cx, cy.wrapping_sub(1)),
                    (cx, cy + 1),
                ];
                for (vx, vy) in neighbours {
                    if vx < nx && vy < ny {
                        let vi = vy * nx + vx;
                        if !visited[vi] && grid.label(vx, vy) == label {
                            visited[vi] = true;
                            queue.push_back((vx, vy));
                        }
                    }
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Window;

    fn quadrant_grid(n: usize) -> LabelGrid {
        LabelGrid::sample(Window::square(1.0), n, n, |p| {
            match (p.x >= 0.0, p.y >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            }
        })
    }

    #[test]
    fn quadrant_stats() {
        let g = quadrant_grid(32);
        let stats = region_stats(&g);
        assert_eq!(stats.len(), 4);
        for s in &stats {
            assert_eq!(s.cells, 256);
            assert!((s.area - 1.0).abs() < 1e-12);
            assert_eq!(s.components, 1);
            // Quadrant mass centroids at (±0.5, ±0.5).
            assert!((s.centroid.x.abs() - 0.5).abs() < 1e-9, "{:?}", s.centroid);
            assert!((s.centroid.y.abs() - 0.5).abs() < 1e-9);
        }
        // Check the sign pattern label→quadrant.
        assert!(stats[0].centroid.x > 0.0 && stats[0].centroid.y > 0.0);
        assert!(stats[1].centroid.x < 0.0 && stats[1].centroid.y > 0.0);
        assert!(stats[2].centroid.x < 0.0 && stats[2].centroid.y < 0.0);
        assert!(stats[3].centroid.x > 0.0 && stats[3].centroid.y < 0.0);
    }

    #[test]
    fn fragmented_region_detected() {
        // Label 1 in two opposite corners: 2 components.
        let g = LabelGrid::sample(Window::square(1.0), 16, 16, |p| {
            if (p.x > 0.5 && p.y > 0.5) || (p.x < -0.5 && p.y < -0.5) {
                1
            } else {
                0
            }
        });
        let comps = connected_components(&g);
        let labels = g.distinct_labels();
        let idx1 = labels.iter().position(|&l| l == 1).unwrap();
        assert_eq!(comps[idx1], 2);
        let idx0 = labels.iter().position(|&l| l == 0).unwrap();
        assert_eq!(comps[idx0], 1);
    }

    #[test]
    fn single_label_grid() {
        let g = LabelGrid::sample(Window::square(1.0), 8, 8, |_| 7);
        let stats = region_stats(&g);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].label, 7);
        assert_eq!(stats[0].cells, 64);
        assert_eq!(stats[0].components, 1);
        // Centroid at the window centre.
        assert!(stats[0].centroid.norm() < 1e-9);
    }
}
