//! Property-based tests of the geometry substrate.

use hybridem_geom::components::label_components;
use hybridem_geom::grid::{LabelGrid, Window};
use hybridem_geom::hull::{convex_contains, convex_hull};
use hybridem_geom::marching::{boundary_centroid, region_boundaries};
use hybridem_geom::polygon::Polygon;
use hybridem_geom::voronoi::{nearest_site, voronoi_cells};
use hybridem_mathkit::vec2::Vec2;
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec2>> {
    proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Vec2::new(x, y)).collect())
}

proptest! {
    #[test]
    fn hull_contains_all_inputs(pts in points(3..40)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            for &p in &pts {
                prop_assert!(convex_contains(&hull, p, 1e-7), "{p:?} outside");
            }
            // CCW orientation: positive signed area.
            let poly = Polygon::new(hull.clone());
            prop_assert!(poly.signed_area() > -1e-12);
        }
    }

    #[test]
    fn hull_is_idempotent(pts in points(3..30)) {
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        prop_assert_eq!(h1.len(), h2.len());
    }

    #[test]
    fn polygon_area_invariant_under_translation(
        pts in points(3..12), dx in -5.0f64..5.0, dy in -5.0f64..5.0
    ) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let p1 = Polygon::new(hull.clone());
        let shifted: Vec<Vec2> = hull.iter().map(|&v| v + Vec2::new(dx, dy)).collect();
        let p2 = Polygon::new(shifted);
        prop_assert!((p1.area() - p2.area()).abs() < 1e-6 * p1.area().max(1.0));
        // Centroid translates with the polygon.
        let c1 = p1.centroid() + Vec2::new(dx, dy);
        let c2 = p2.centroid();
        prop_assert!(c1.dist(c2) < 1e-6);
    }

    #[test]
    fn polygon_centroid_inside_convex_hull(pts in points(3..20)) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let poly = Polygon::new(hull.clone());
        prop_assume!(poly.area() > 1e-6);
        prop_assert!(convex_contains(&hull, poly.centroid(), 1e-7));
    }

    #[test]
    fn clipping_never_grows_area(pts in points(3..15), c in -8.0f64..8.0) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let poly = Polygon::new(hull);
        if let Some(clipped) = poly.clip_half_plane(Vec2::new(1.0, 0.0), c) {
            prop_assert!(clipped.area() <= poly.area() + 1e-9);
            // Every vertex satisfies the half-plane.
            for v in clipped.vertices() {
                prop_assert!(v.x <= c + 1e-6);
            }
        }
    }

    #[test]
    fn voronoi_cells_tile_the_box(pts in points(2..12)) {
        // Deduplicate (duplicates legitimately produce empty cells).
        let mut sites = pts;
        sites.dedup_by(|a, b| a.dist(*b) < 1e-9);
        prop_assume!(sites.len() >= 2);
        let cells = voronoi_cells(&sites, -12.0, -12.0, 12.0, 12.0);
        let total: f64 = cells.iter().flatten().map(|c| c.area()).sum();
        prop_assert!((total - 576.0).abs() < 1e-6, "cells must tile: {total}");
    }

    #[test]
    fn voronoi_centroid_belongs_to_its_site(pts in points(2..10)) {
        let mut sites = pts;
        sites.dedup_by(|a, b| a.dist(*b) < 1e-9);
        prop_assume!(sites.len() >= 2);
        let cells = voronoi_cells(&sites, -12.0, -12.0, 12.0, 12.0);
        for (i, cell) in cells.iter().enumerate() {
            if let Some(cell) = cell {
                prop_assert_eq!(nearest_site(&sites, cell.centroid()), i);
            }
        }
    }

    #[test]
    fn marching_area_matches_cell_count(cx in -0.5f64..0.5, cy in -0.5f64..0.5, r in 0.15f64..0.45) {
        // The signed-area sum of the boundary loops equals the counted
        // cell area to within one boundary ring.
        let n = 48usize;
        let grid = LabelGrid::sample(Window::square(1.0), n, n, |p| {
            u16::from((p.x - cx).powi(2) + (p.y - cy).powi(2) <= r * r)
        });
        let cells = grid
            .labels()
            .iter()
            .filter(|&&l| l == 1)
            .count();
        prop_assume!(cells > 4);
        let polys = region_boundaries(&grid, 1);
        let poly_area: f64 = polys.iter().map(|p| p.signed_area()).sum();
        let cell_area = cells as f64 * grid.cell_area();
        let perimeter = 2.0 * std::f64::consts::PI * r;
        let ring = perimeter * (2.0 / n as f64);
        prop_assert!((poly_area - cell_area).abs() <= ring + 1e-9,
            "poly {poly_area} vs cells {cell_area} (ring {ring})");
        // And the vertex centroid is inside the disc.
        let c = boundary_centroid(&polys).unwrap();
        prop_assert!(c.dist(Vec2::new(cx, cy)) < r);
    }

    #[test]
    fn components_partition_the_grid(seed in any::<u64>()) {
        // Random 4-label grid: component sizes sum to the cell count and
        // each component is label-homogeneous.
        let n = 24usize;
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 62) as u16
        };
        let labels: Vec<u16> = (0..n * n).map(|_| next()).collect();
        let grid = {
            let labels = labels.clone();
            LabelGrid::sample(Window::square(1.0), n, n, move |p| {
                let ix = (((p.x + 1.0) / 2.0) * n as f64) as usize;
                let iy = (((p.y + 1.0) / 2.0) * n as f64) as usize;
                labels[iy.min(n - 1) * n + ix.min(n - 1)]
            })
        };
        let comps = label_components(&grid);
        prop_assert_eq!(comps.sizes.iter().sum::<usize>(), n * n);
        for iy in 0..n {
            for ix in 0..n {
                let cid = comps.id_at(&grid, ix, iy) as usize;
                prop_assert_eq!(comps.label_of[cid], grid.label(ix, iy));
            }
        }
    }
}
