//! Property-based tests of fixed-point arithmetic: the invariants the
//! FPGA datapath simulation relies on.

use hybridem_fixed::{Fx, QFormat, QuantSpec, Rounding};
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = QFormat> {
    (2u32..=16, 0u32..=16).prop_map(|(total, frac)| QFormat::signed(total, frac.min(total)))
}

fn roundings() -> impl Strategy<Value = Rounding> {
    prop_oneof![
        Just(Rounding::Truncate),
        Just(Rounding::Nearest),
        Just(Rounding::NearestEven),
    ]
}

proptest! {
    #[test]
    fn conversion_round_trip_within_half_lsb(f in formats(), v in -100.0f64..100.0) {
        let raw = f.raw_from_f64(v, Rounding::Nearest);
        let back = f.f64_from_raw(raw);
        if v >= f.min_value() && v <= f.max_value() {
            prop_assert!((back - v).abs() <= f.resolution() / 2.0 + 1e-12,
                "{v} → {back} in {f}");
        } else {
            // Saturated: clamped to the nearer bound.
            prop_assert!(back == f.min_value() || back == f.max_value());
        }
    }

    #[test]
    fn saturation_never_out_of_range(f in formats(), raw in any::<i32>()) {
        let (s, _) = f.saturate(raw as i64);
        prop_assert!(s >= f.raw_min() && s <= f.raw_max());
    }

    #[test]
    fn rounding_error_bounded_by_one(r in roundings(), raw in -1_000_000i64..1_000_000, shift in 1u32..20) {
        let shifted = r.shift_right(raw, shift);
        let exact = raw as f64 / (1u64 << shift) as f64;
        prop_assert!((shifted as f64 - exact).abs() <= 1.0, "{raw} >> {shift} = {shifted} vs {exact}");
    }

    #[test]
    fn nearest_rounding_error_at_most_half(raw in -1_000_000i64..1_000_000, shift in 1u32..20) {
        let shifted = Rounding::Nearest.shift_right(raw, shift);
        let exact = raw as f64 / (1u64 << shift) as f64;
        prop_assert!((shifted as f64 - exact).abs() <= 0.5 + 1e-12);
    }

    #[test]
    fn addition_is_exact(fa in formats(), fb in formats(), a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let xa = Fx::from_f64(a, fa, Rounding::Nearest);
        let xb = Fx::from_f64(b, fb, Rounding::Nearest);
        let s = xa.add_exact(&xb);
        prop_assert!((s.to_f64() - (xa.to_f64() + xb.to_f64())).abs() < 1e-12);
    }

    #[test]
    fn multiplication_is_exact(fa in formats(), fb in formats(), a in -5.0f64..5.0, b in -5.0f64..5.0) {
        prop_assume!(fa.total_bits + fb.total_bits <= 40);
        let xa = Fx::from_f64(a, fa, Rounding::Nearest);
        let xb = Fx::from_f64(b, fb, Rounding::Nearest);
        let p = xa.mul_exact(&xb);
        prop_assert!((p.to_f64() - xa.to_f64() * xb.to_f64()).abs() < 1e-9);
    }

    #[test]
    fn resize_then_widen_is_idempotent(f in formats(), v in -5.0f64..5.0) {
        // Narrow → widen → narrow again must not change the value.
        let wide = QFormat::signed(24, 12);
        let x = Fx::from_f64(v, wide, Rounding::Nearest);
        let (narrow, _) = x.resize(f, Rounding::Nearest);
        let (rewide, _) = narrow.resize(wide, Rounding::Nearest);
        let (narrow2, _) = rewide.resize(f, Rounding::Nearest);
        prop_assert_eq!(narrow.raw(), narrow2.raw());
    }

    #[test]
    fn quantspec_fit_covers_data(bits in 4u32..16, scale in 0.01f64..100.0) {
        let spec = QuantSpec::fit(bits, scale, Rounding::Nearest);
        if scale <= (1u64 << (bits - 1)) as f64 {
            // Representable budget: the fitted format covers ±scale.
            prop_assert!(spec.format.max_value() >= scale - spec.format.resolution());
            prop_assert!(spec.format.min_value() <= -scale + spec.format.resolution());
        } else {
            // Out of range: fit maxes the integer part (saturating use).
            prop_assert_eq!(spec.format.frac_bits, 0);
        }
    }

    #[test]
    fn quantspec_round_trip_within_half_lsb(
        f in formats(),
        vs in proptest::collection::vec(-8.0f32..8.0, 1..64),
    ) {
        // The tensor path: quantize → dequantize through a QuantSpec
        // under round-to-nearest recovers every in-range value to
        // within half an LSB (out-of-range values clamp to the nearer
        // format bound).
        let spec = QuantSpec { format: f, rounding: Rounding::Nearest };
        let raw = hybridem_fixed::quantize_slice(&spec, &vs);
        let back = hybridem_fixed::dequantize(&spec, &raw);
        let half_lsb = f.resolution() / 2.0 + 1e-6;
        for (&v, &b) in vs.iter().zip(&back) {
            if (v as f64) >= f.min_value() && (v as f64) <= f.max_value() {
                prop_assert!(((v - b) as f64).abs() <= half_lsb,
                    "{v} → {b} in {f}");
            } else {
                prop_assert!(b as f64 == f.min_value() || b as f64 == f.max_value(),
                    "out-of-range {v} must clamp, got {b} in {f}");
            }
        }
    }

    #[test]
    fn fx_add_mul_saturation_never_wraps(
        fa in formats(), fb in formats(), target in formats(),
        ra in any::<i16>(), rb in any::<i16>(),
    ) {
        // Exact Fx sums/products pushed through a narrowing cast
        // saturate — the result stays inside the target range and
        // lands on the *correct* bound (no two's-complement
        // wrap-around flipping the sign).
        let a = Fx::from_raw((ra as i64).clamp(fa.raw_min(), fa.raw_max()), fa);
        let b = Fx::from_raw((rb as i64).clamp(fb.raw_min(), fb.raw_max()), fb);
        let half = target.resolution() / 2.0;
        for v in [a.add_exact(&b), a.mul_exact(&b), a.sub_exact(&b)] {
            let (r, clipped) = v.resize(target, Rounding::Nearest);
            prop_assert!(r.raw() >= target.raw_min() && r.raw() <= target.raw_max());
            let exact = v.to_f64();
            // Values beyond rounding reach of the format bounds must
            // clamp to the *correct* bound (saturation, not wrap).
            if exact > target.max_value() + half {
                prop_assert!(clipped);
                prop_assert_eq!(r.raw(), target.raw_max(),
                    "positive overflow must clamp high, not wrap: {} in {}", exact, target);
            } else if exact < target.min_value() - half {
                prop_assert!(clipped);
                prop_assert_eq!(r.raw(), target.raw_min(),
                    "negative overflow must clamp low, not wrap: {} in {}", exact, target);
            } else {
                // Within reach: the cast only loses fraction bits.
                prop_assert!((r.to_f64() - exact).abs() <= half + 1e-12);
            }
        }
    }

    #[test]
    fn sqnr_tracks_six_db_per_fraction_bit(
        frac in 4u32..13,
        vs in proptest::collection::vec(-1.0f32..1.0, 256..512),
    ) {
        // Unit-range uniform inputs through an all-fraction signed
        // format: quantisation noise is ≈ Δ²/12 with Δ = 2^−frac, so
        // measured SQNR must track the analytic
        // 10·log10(12·P_sig/Δ²) = 6.02·frac + 10·log10(12·P_sig)
        // rule — i.e. ≈6 dB per fraction bit.
        let f = QFormat::signed(frac + 1, frac);
        let p_sig: f64 = vs.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()
            / vs.len() as f64;
        prop_assume!(p_sig > 0.02);
        let spec = QuantSpec { format: f, rounding: Rounding::Nearest };
        let back = hybridem_fixed::dequantize(&spec, &hybridem_fixed::quantize_slice(&spec, &vs));
        let measured = hybridem_fixed::sqnr_db(&vs, &back);
        // An infinite SQNR means every sample landed exactly on the
        // grid — better than any finite bound, so nothing to check.
        if !measured.is_infinite() {
            let delta = f.resolution();
            let analytic = 10.0 * (12.0 * p_sig / (delta * delta)).log10();
            prop_assert!((measured - analytic).abs() <= 3.0,
                "frac={}: measured {measured:.2} dB vs analytic {analytic:.2} dB", frac);
            // And the headline rule of thumb: ≈6.02 dB per fraction bit.
            prop_assert!(measured > 6.02 * frac as f64 - 12.0);
            prop_assert!(measured < 6.02 * frac as f64 + 14.0);
        }
    }

    #[test]
    fn dot_product_fold_invariance(
        xs in proptest::collection::vec(-1.0f32..1.0, 8),
        ws in proptest::collection::vec(-1.0f32..1.0, 8),
    ) {
        // Accumulating in any chunk order gives the same raw result —
        // the property behind MVAU fold invariance.
        let af = QFormat::signed(8, 6);
        let wf = QFormat::signed(8, 6);
        let q = |v: f32, f: QFormat| f.raw_from_f64(v as f64, Rounding::Nearest);
        let xq: Vec<i64> = xs.iter().map(|&v| q(v, af)).collect();
        let wq: Vec<i64> = ws.iter().map(|&v| q(v, wf)).collect();
        let full: i64 = xq.iter().zip(&wq).map(|(&x, &w)| x * w).sum();
        for chunk in [1usize, 2, 4, 8] {
            let mut acc = 0i64;
            for (cx, cw) in xq.chunks(chunk).zip(wq.chunks(chunk)) {
                let part: i64 = cx.iter().zip(cw).map(|(&x, &w)| x * w).sum();
                acc += part;
            }
            prop_assert_eq!(acc, full);
        }
    }
}
