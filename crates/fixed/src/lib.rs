//! # hybridem-fixed
//!
//! Fixed-point arithmetic for the FPGA substrate.
//!
//! The paper implements its demapper ANN with Vivado HLS in fixed point
//! (FINN-style). This crate provides the arithmetic that the cycle
//! simulator in `hybridem-fpga` executes:
//!
//! - [`QFormat`] — a runtime Q-format descriptor (total bits, fraction
//!   bits, signedness) mirroring HLS `ap_fixed<W, I>`;
//! - [`rounding::Rounding`] — truncation / round-to-nearest modes;
//! - [`fx::Fx`] — a fixed-point value (raw integer + format) with
//!   saturating, format-tracking arithmetic;
//! - [`quantize`] — tensor quantisation: range analysis, f32 → fixed
//!   conversion, signal-to-quantisation-noise (SQNR) measurement.
//!
//! All operations are bit-exact and deterministic: the same quantised
//! network produces the same outputs on every platform, which is what
//! lets integration tests assert that the simulated FPGA datapath
//! matches the f32 reference model within an analytic error bound.

#![warn(missing_docs)]

pub mod fx;
pub mod qformat;
pub mod quantize;
pub mod rounding;

pub use fx::Fx;
pub use qformat::QFormat;
pub use quantize::{dequantize, quantize_slice, sqnr_db, QuantSpec};
pub use rounding::Rounding;
