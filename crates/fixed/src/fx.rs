//! Fixed-point values with format-tracking arithmetic.
//!
//! [`Fx`] couples a raw two's-complement integer with its [`QFormat`].
//! Arithmetic follows HLS semantics: additions align binary points and
//! widen, multiplications produce the exact double-width product, and
//! [`Fx::resize`] performs the rounding + saturation step that a
//! hardware cast inserts. The MVAU datapath in `hybridem-fpga` is built
//! on exactly these three operations.

use crate::qformat::QFormat;
use crate::rounding::Rounding;

/// A fixed-point value: raw integer plus format.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fx {
    raw: i64,
    format: QFormat,
}

impl Fx {
    /// Builds from a raw integer already expressed in `format`.
    ///
    /// # Panics
    /// Panics (debug) if `raw` is outside the representable range.
    pub fn from_raw(raw: i64, format: QFormat) -> Self {
        debug_assert!(
            raw >= format.raw_min() && raw <= format.raw_max(),
            "raw {raw} out of range for {format}"
        );
        Self { raw, format }
    }

    /// Quantises a real value into `format` (saturating).
    pub fn from_f64(v: f64, format: QFormat, rounding: Rounding) -> Self {
        Self {
            raw: format.raw_from_f64(v, rounding),
            format,
        }
    }

    /// Zero in the given format.
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// The raw integer.
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Real value represented.
    pub fn to_f64(&self) -> f64 {
        self.format.f64_from_raw(self.raw)
    }

    /// Exact sum: binary points aligned, result widened by one bit
    /// (never overflows, mirrors a full-width hardware adder).
    pub fn add_exact(&self, other: &Fx) -> Fx {
        let f = self.format.frac_bits.max(other.format.frac_bits);
        let a = self.raw << (f - self.format.frac_bits);
        let b = other.raw << (f - other.format.frac_bits);
        let int = self.format.int_bits().max(other.format.int_bits()) + 1;
        let total = (int + f).min(63);
        Fx {
            raw: a + b,
            format: QFormat {
                total_bits: total,
                frac_bits: f,
                signed: self.format.signed || other.format.signed,
            },
        }
    }

    /// Exact difference (same widening as [`Fx::add_exact`]).
    pub fn sub_exact(&self, other: &Fx) -> Fx {
        self.add_exact(&other.neg())
    }

    /// Exact product: widths and fraction bits add (a DSP multiply).
    pub fn mul_exact(&self, other: &Fx) -> Fx {
        Fx {
            raw: self.raw * other.raw,
            format: self.format.product(&other.format),
        }
    }

    /// Negation (stays in a signed version of the format, widened by one
    /// bit so `-raw_min` is representable).
    pub fn neg(&self) -> Fx {
        Fx {
            raw: -self.raw,
            format: QFormat {
                total_bits: (self.format.total_bits + 1).min(63),
                frac_bits: self.format.frac_bits,
                signed: true,
            },
        }
    }

    /// Casts into `target`: rounds away fraction bits, then saturates.
    /// This is the only lossy operation; it reports whether saturation
    /// clipped the value.
    pub fn resize(&self, target: QFormat, rounding: Rounding) -> (Fx, bool) {
        let raw = if target.frac_bits >= self.format.frac_bits {
            let shift = target.frac_bits - self.format.frac_bits;
            if shift >= 63 {
                0
            } else {
                self.raw.checked_shl(shift).unwrap_or(0)
            }
        } else {
            rounding.shift_right(self.raw, self.format.frac_bits - target.frac_bits)
        };
        let (raw, clipped) = target.saturate(raw);
        (
            Fx {
                raw,
                format: target,
            },
            clipped,
        )
    }

    /// Convenience: resize and discard the clipping flag.
    pub fn cast(&self, target: QFormat, rounding: Rounding) -> Fx {
        self.resize(target, rounding).0
    }
}

impl std::fmt::Display for Fx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(t: u32, fr: u32) -> QFormat {
        QFormat::signed(t, fr)
    }

    #[test]
    fn f64_round_trip() {
        let f = q(16, 8);
        let x = Fx::from_f64(1.5, f, Rounding::Nearest);
        assert_eq!(x.to_f64(), 1.5);
        assert_eq!(x.raw(), 384);
    }

    #[test]
    fn addition_aligns_binary_points() {
        let a = Fx::from_f64(1.25, q(8, 2), Rounding::Nearest); // raw 5
        let b = Fx::from_f64(0.375, q(8, 3), Rounding::Nearest); // raw 3
        let s = a.add_exact(&b);
        assert_eq!(s.to_f64(), 1.625);
        assert_eq!(s.format().frac_bits, 3);
    }

    #[test]
    fn multiplication_is_exact() {
        let a = Fx::from_f64(1.5, q(8, 4), Rounding::Nearest);
        let b = Fx::from_f64(-2.25, q(8, 4), Rounding::Nearest);
        let p = a.mul_exact(&b);
        assert_eq!(p.to_f64(), -3.375);
        assert_eq!(p.format().total_bits, 16);
        assert_eq!(p.format().frac_bits, 8);
    }

    #[test]
    fn add_exact_never_overflows_at_extremes() {
        let f = q(8, 0);
        let a = Fx::from_raw(f.raw_max(), f);
        let s = a.add_exact(&a);
        assert_eq!(s.to_f64(), 254.0);
        let b = Fx::from_raw(f.raw_min(), f);
        let d = b.add_exact(&b);
        assert_eq!(d.to_f64(), -256.0);
    }

    #[test]
    fn resize_rounds_and_saturates() {
        let wide = Fx::from_f64(std::f64::consts::PI, q(24, 16), Rounding::Nearest);
        let (narrow, clipped) = wide.resize(q(8, 4), Rounding::Nearest);
        assert!(!clipped);
        assert!(
            (narrow.to_f64() - std::f64::consts::PI).abs() <= q(8, 4).resolution() / 2.0 + 1e-9
        );

        let big = Fx::from_f64(100.0, q(16, 4), Rounding::Nearest);
        let (sat, clipped) = big.resize(q(8, 4), Rounding::Nearest);
        assert!(clipped);
        assert_eq!(sat.raw(), q(8, 4).raw_max());
    }

    #[test]
    fn resize_can_widen_fraction() {
        let x = Fx::from_f64(0.5, q(8, 2), Rounding::Nearest);
        let (y, clipped) = x.resize(q(16, 8), Rounding::Truncate);
        assert!(!clipped);
        assert_eq!(y.to_f64(), 0.5);
        assert_eq!(y.raw(), 128);
    }

    #[test]
    fn neg_handles_most_negative() {
        let f = q(8, 0);
        let x = Fx::from_raw(f.raw_min(), f);
        let y = x.neg();
        assert_eq!(y.to_f64(), 128.0);
        assert!(y.format().raw_max() >= 128);
    }

    #[test]
    fn mac_chain_matches_float_within_bound() {
        // A little dot product in Q2.6 × Q1.7 with a wide accumulator,
        // the exact pattern the MVAU performs.
        let af = q(8, 6);
        let wf = q(8, 7);
        let acc_f = af.accumulator(&wf, 4);
        let xs = [0.9, -0.5, 0.25, 1.1];
        let ws = [0.7, 0.3, -0.9, 0.5];
        let mut acc = Fx::zero(acc_f);
        let mut exact = 0.0;
        for (&x, &w) in xs.iter().zip(&ws) {
            let xq = Fx::from_f64(x, af, Rounding::Nearest);
            let wq = Fx::from_f64(w, wf, Rounding::Nearest);
            exact += xq.to_f64() * wq.to_f64();
            let p = xq.mul_exact(&wq);
            acc = p.add_exact(&acc).cast(acc_f, Rounding::Truncate);
        }
        assert!(
            (acc.to_f64() - exact).abs() < 1e-9,
            "accumulation must be exact"
        );
    }
}
