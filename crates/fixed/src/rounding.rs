//! Rounding modes for fraction-bit reduction.
//!
//! These mirror the HLS quantisation modes the paper's toolchain
//! (Vivado HLS `ap_fixed`) offers: plain truncation (`AP_TRN`, the
//! cheapest in hardware), round-half-away (`AP_RND`), and
//! round-half-even (`AP_RND_CONV`, the DSP-friendly convergent mode).

/// How to dispose of discarded fraction bits when narrowing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rounding {
    /// Drop the bits (floor for non-negative raws, toward −∞ in
    /// two's complement). Zero extra hardware.
    Truncate,
    /// Round to nearest, ties away from zero. One adder.
    Nearest,
    /// Round to nearest, ties to even. One adder plus a LUT; avoids the
    /// DC bias `Nearest` introduces on exact ties.
    NearestEven,
}

impl Rounding {
    /// Shifts `raw` right by `shift` bits applying this rounding mode.
    /// `shift == 0` is the identity; `shift` ≥ 63 collapses to the sign.
    #[inline]
    pub fn shift_right(self, raw: i64, shift: u32) -> i64 {
        if shift == 0 {
            return raw;
        }
        if shift >= 63 {
            // Everything is fraction; the magnitude rounds to 0, and the
            // arithmetic shift of the sign handles Truncate semantics.
            return match self {
                Rounding::Truncate => raw >> 62 >> 1,
                _ => 0,
            };
        }
        match self {
            Rounding::Truncate => raw >> shift,
            Rounding::Nearest => {
                let half = 1i64 << (shift - 1);
                // Add half of an LSB before truncating; for negative raw
                // values this implements ties-away-from-zero.
                if raw >= 0 {
                    (raw + half) >> shift
                } else {
                    -((-raw + half) >> shift)
                }
            }
            Rounding::NearestEven => {
                let floor = raw >> shift;
                let rem = raw - (floor << shift);
                let half = 1i64 << (shift - 1);
                if rem > half || (rem == half && (floor & 1) == 1) {
                    floor + 1
                } else {
                    floor
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_is_floor_shift() {
        assert_eq!(Rounding::Truncate.shift_right(7, 1), 3);
        assert_eq!(Rounding::Truncate.shift_right(-7, 1), -4); // toward −∞
        assert_eq!(Rounding::Truncate.shift_right(8, 2), 2);
        assert_eq!(Rounding::Truncate.shift_right(5, 0), 5);
    }

    #[test]
    fn nearest_rounds_half_away() {
        assert_eq!(Rounding::Nearest.shift_right(3, 1), 2); // 1.5 → 2
        assert_eq!(Rounding::Nearest.shift_right(-3, 1), -2); // −1.5 → −2
        assert_eq!(Rounding::Nearest.shift_right(5, 2), 1); // 1.25 → 1
        assert_eq!(Rounding::Nearest.shift_right(7, 2), 2); // 1.75 → 2
    }

    #[test]
    fn nearest_even_breaks_ties_to_even() {
        // 0.5 → 0 (even), 1.5 → 2 (even), 2.5 → 2 (even).
        assert_eq!(Rounding::NearestEven.shift_right(1, 1), 0);
        assert_eq!(Rounding::NearestEven.shift_right(3, 1), 2);
        assert_eq!(Rounding::NearestEven.shift_right(5, 1), 2);
        // Non-ties behave like nearest.
        assert_eq!(Rounding::NearestEven.shift_right(7, 2), 2);
        assert_eq!(Rounding::NearestEven.shift_right(-3, 1), -2);
    }

    #[test]
    fn nearest_even_has_no_tie_bias() {
        // Summed rounding error over a symmetric set of ties cancels.
        let mut bias_nearest = 0i64;
        let mut bias_even = 0i64;
        for raw in (-100..100).map(|k| 2 * k + 1) {
            bias_nearest += Rounding::Nearest.shift_right(raw, 1) * 2 - raw;
            bias_even += Rounding::NearestEven.shift_right(raw, 1) * 2 - raw;
        }
        assert_eq!(bias_even, 0);
        // ties-away drifts by one LSB per pair of equal-sign ties; the
        // symmetric range makes it cancel too, but each half is biased.
        let pos: i64 = (1..100)
            .map(|k| Rounding::Nearest.shift_right(2 * k + 1, 1) * 2 - (2 * k + 1))
            .sum();
        assert!(pos > 0);
        let _ = bias_nearest;
    }

    #[test]
    fn extreme_shift_collapses() {
        assert_eq!(Rounding::Truncate.shift_right(-1, 63), -1);
        assert_eq!(Rounding::Truncate.shift_right(1, 64), 0);
        assert_eq!(Rounding::Nearest.shift_right(i64::MAX, 64), 0);
        assert_eq!(Rounding::NearestEven.shift_right(i64::MIN / 2, 70), 0);
    }
}
