//! Tensor quantisation: mapping the trained f32 network onto fixed
//! point formats for the FPGA datapath.
//!
//! [`QuantSpec::fit`] performs the range analysis step of an FPGA
//! deployment flow: given the observed dynamic range of a tensor
//! (weights after training, activations after calibration), choose the
//! number of integer bits that avoids saturation and spend the rest of
//! the budget on fraction bits. [`sqnr_db`] quantifies the damage.

use crate::qformat::QFormat;
use crate::rounding::Rounding;

/// A tensor quantisation plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantSpec {
    /// The chosen fixed-point format.
    pub format: QFormat,
    /// Rounding mode applied during conversion.
    pub rounding: Rounding,
}

impl QuantSpec {
    /// Fits a signed format of `total_bits` to data with the given
    /// maximum absolute value: integer bits = ⌈log₂(max_abs)⌉ + sign,
    /// remaining bits become fraction bits.
    ///
    /// `max_abs == 0` (an all-zero tensor) gets the all-fraction format.
    pub fn fit(total_bits: u32, max_abs: f64, rounding: Rounding) -> Self {
        assert!(
            (2..=32).contains(&total_bits),
            "unsupported width {total_bits}"
        );
        let int_bits = if max_abs <= 0.0 {
            0
        } else {
            // Bits needed so that max_abs ≤ max representable.
            let needed = max_abs.log2().floor() as i64 + 1;
            needed.clamp(0, (total_bits - 1) as i64) as u32
        };
        let frac = total_bits - 1 - int_bits;
        Self {
            format: QFormat::signed(total_bits, frac),
            rounding,
        }
    }

    /// Fits a format to a data slice (max-abs calibration).
    pub fn fit_to_data(total_bits: u32, data: &[f32], rounding: Rounding) -> Self {
        let max_abs = data.iter().fold(0.0f32, |m, &x| m.max(x.abs())) as f64;
        Self::fit(total_bits, max_abs, rounding)
    }

    /// Quantises one value to its raw representation.
    pub fn quantize(&self, v: f32) -> i64 {
        self.format.raw_from_f64(v as f64, self.rounding)
    }

    /// Dequantises one raw value.
    pub fn dequantize(&self, raw: i64) -> f32 {
        self.format.f64_from_raw(raw) as f32
    }
}

/// Quantises a whole slice, returning the raw representation.
pub fn quantize_slice(spec: &QuantSpec, data: &[f32]) -> Vec<i64> {
    data.iter().map(|&v| spec.quantize(v)).collect()
}

/// Dequantises a slice of raw values.
pub fn dequantize(spec: &QuantSpec, raw: &[i64]) -> Vec<f32> {
    raw.iter().map(|&r| spec.dequantize(r)).collect()
}

/// Signal-to-quantisation-noise ratio in dB between a reference signal
/// and its quantised reconstruction. Returns `f64::INFINITY` for an
/// exact match and `f64::NAN` for an all-zero reference.
pub fn sqnr_db(reference: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(reference.len(), reconstructed.len());
    let mut sig = 0.0f64;
    let mut noise = 0.0f64;
    for (&r, &q) in reference.iter().zip(reconstructed) {
        sig += (r as f64) * (r as f64);
        let e = (r - q) as f64;
        noise += e * e;
    }
    if sig == 0.0 {
        f64::NAN
    } else if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_chooses_enough_integer_bits() {
        let s = QuantSpec::fit(8, 3.9, Rounding::Nearest);
        // Needs 2 integer bits (+sign) for 3.9.
        assert!(s.format.max_value() >= 3.9);
        assert_eq!(s.format.total_bits, 8);
        // A tensor bounded by 0.9 should spend everything on fractions.
        let t = QuantSpec::fit(8, 0.9, Rounding::Nearest);
        assert_eq!(t.format.int_bits(), 1); // sign only
        assert!(t.format.max_value() >= 0.9);
    }

    #[test]
    fn fit_handles_zero_and_powers_of_two() {
        let z = QuantSpec::fit(8, 0.0, Rounding::Nearest);
        assert_eq!(z.format.frac_bits, 7);
        // Exactly 1.0 needs one integer bit (1.0 > max of all-fraction Q0.7).
        let one = QuantSpec::fit(8, 1.0, Rounding::Nearest);
        assert!(one.format.max_value() >= 1.0);
    }

    #[test]
    fn round_trip_error_bounded_by_half_lsb() {
        let data: Vec<f32> = (-50..50).map(|i| i as f32 * 0.037).collect();
        let spec = QuantSpec::fit_to_data(12, &data, Rounding::Nearest);
        let raw = quantize_slice(&spec, &data);
        let back = dequantize(&spec, &raw);
        let half_lsb = spec.format.resolution() / 2.0 + 1e-9;
        for (&a, &b) in data.iter().zip(&back) {
            assert!(((a - b) as f64).abs() <= half_lsb, "{a} vs {b}");
        }
    }

    #[test]
    fn sqnr_improves_with_width() {
        let data: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.01).sin()).collect();
        let mut last = -1.0;
        for bits in [4u32, 6, 8, 10, 12, 16] {
            let spec = QuantSpec::fit_to_data(bits, &data, Rounding::Nearest);
            let back = dequantize(&spec, &quantize_slice(&spec, &data));
            let s = sqnr_db(&data, &back);
            assert!(s > last, "SQNR must increase with width: {s} after {last}");
            last = s;
        }
        // Rule of thumb: ≈ 6 dB per bit; 16 bits on unit-range data
        // should exceed 80 dB comfortably.
        assert!(last > 80.0, "16-bit SQNR too low: {last}");
    }

    #[test]
    fn sqnr_edge_cases() {
        let x = [1.0f32, 2.0];
        assert!(sqnr_db(&x, &x).is_infinite());
        assert!(sqnr_db(&[0.0, 0.0], &[0.0, 0.0]).is_nan());
    }

    #[test]
    #[should_panic(expected = "unsupported width")]
    fn fit_rejects_silly_widths() {
        let _ = QuantSpec::fit(1, 1.0, Rounding::Nearest);
    }
}
