//! Runtime Q-format descriptors.
//!
//! A [`QFormat`] mirrors an HLS `ap_fixed<W, I>` type: `W = total_bits`
//! total bits of which `I = total_bits − frac_bits` are integer bits
//! (including the sign for signed formats). The FPGA resource model
//! prices operators by these widths, and the datapath simulator uses
//! them to saturate and round exactly as the hardware would.

use crate::rounding::Rounding;

/// A fixed-point number format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QFormat {
    /// Total width in bits (1..=63 so raw values fit an `i64` with
    /// headroom for products).
    pub total_bits: u32,
    /// Number of fraction bits. May exceed `total_bits` (all-fraction
    /// sub-unit formats) or be negative-equivalent via large integer
    /// parts; here it is constrained to `0..=total_bits` for clarity.
    pub frac_bits: u32,
    /// Two's-complement signed when true, unsigned otherwise.
    pub signed: bool,
}

impl QFormat {
    /// Signed format with `total_bits` total and `frac_bits` fraction bits.
    ///
    /// # Panics
    /// Panics unless `1 ≤ total_bits ≤ 63` and `frac_bits ≤ total_bits`.
    pub fn signed(total_bits: u32, frac_bits: u32) -> Self {
        assert!(
            (1..=63).contains(&total_bits) && frac_bits <= total_bits,
            "invalid QFormat({total_bits},{frac_bits})"
        );
        Self {
            total_bits,
            frac_bits,
            signed: true,
        }
    }

    /// Unsigned format.
    ///
    /// # Panics
    /// Panics unless `1 ≤ total_bits ≤ 63` and `frac_bits ≤ total_bits`.
    pub fn unsigned(total_bits: u32, frac_bits: u32) -> Self {
        assert!(
            (1..=63).contains(&total_bits) && frac_bits <= total_bits,
            "invalid QFormat({total_bits},{frac_bits})"
        );
        Self {
            total_bits,
            frac_bits,
            signed: false,
        }
    }

    /// Number of integer bits (including sign when signed).
    pub fn int_bits(&self) -> u32 {
        self.total_bits - self.frac_bits
    }

    /// Smallest representable raw value.
    pub fn raw_min(&self) -> i64 {
        if self.signed {
            -(1i64 << (self.total_bits - 1))
        } else {
            0
        }
    }

    /// Largest representable raw value.
    pub fn raw_max(&self) -> i64 {
        if self.signed {
            (1i64 << (self.total_bits - 1)) - 1
        } else {
            (1i64 << self.total_bits) - 1
        }
    }

    /// Value of one least-significant bit.
    pub fn resolution(&self) -> f64 {
        (-(self.frac_bits as f64)).exp2()
    }

    /// Smallest representable real value.
    pub fn min_value(&self) -> f64 {
        self.raw_min() as f64 * self.resolution()
    }

    /// Largest representable real value.
    pub fn max_value(&self) -> f64 {
        self.raw_max() as f64 * self.resolution()
    }

    /// Converts a real value to the nearest raw integer, saturating at
    /// the format bounds.
    pub fn raw_from_f64(&self, v: f64, rounding: Rounding) -> i64 {
        let scaled = v * (self.frac_bits as f64).exp2();
        let raw = match rounding {
            Rounding::Truncate => scaled.floor(),
            Rounding::Nearest => {
                if scaled >= 0.0 {
                    (scaled + 0.5).floor()
                } else {
                    -((-scaled + 0.5).floor())
                }
            }
            Rounding::NearestEven => {
                let f = scaled.floor();
                let rem = scaled - f;
                if rem > 0.5 || (rem == 0.5 && (f as i64) & 1 == 1) {
                    f + 1.0
                } else {
                    f
                }
            }
        };
        let raw = raw.clamp(self.raw_min() as f64, self.raw_max() as f64);
        raw as i64
    }

    /// Converts a raw integer back to a real value (no checks — raw is
    /// assumed in range).
    pub fn f64_from_raw(&self, raw: i64) -> f64 {
        raw as f64 * self.resolution()
    }

    /// Saturates a raw value into this format's range, reporting whether
    /// clipping occurred.
    pub fn saturate(&self, raw: i64) -> (i64, bool) {
        let lo = self.raw_min();
        let hi = self.raw_max();
        if raw < lo {
            (lo, true)
        } else if raw > hi {
            (hi, true)
        } else {
            (raw, false)
        }
    }

    /// The exact product format of two inputs: widths add, fraction bits
    /// add (what a DSP multiplier emits before any narrowing).
    ///
    /// # Panics
    /// Panics if the product would exceed 63 bits.
    pub fn product(&self, other: &QFormat) -> QFormat {
        let total = self.total_bits + other.total_bits;
        assert!(
            total <= 63,
            "product format {total} bits exceeds i64 headroom"
        );
        QFormat {
            total_bits: total,
            frac_bits: self.frac_bits + other.frac_bits,
            signed: self.signed || other.signed,
        }
    }

    /// Accumulator format for summing `n` products without overflow:
    /// the product format widened by ⌈log₂ n⌉ guard bits.
    pub fn accumulator(&self, other: &QFormat, n: usize) -> QFormat {
        let p = self.product(other);
        let guard = usize::BITS - n.max(1).leading_zeros();
        let total = (p.total_bits + guard).min(63);
        QFormat {
            total_bits: total,
            frac_bits: p.frac_bits,
            signed: true,
        }
    }
}

impl std::fmt::Display for QFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}Q{}.{}",
            if self.signed { "" } else { "u" },
            self.int_bits(),
            self.frac_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges() {
        let q = QFormat::signed(8, 4); // Q4.4
        assert_eq!(q.raw_min(), -128);
        assert_eq!(q.raw_max(), 127);
        assert_eq!(q.resolution(), 1.0 / 16.0);
        assert_eq!(q.min_value(), -8.0);
        assert!((q.max_value() - 7.9375).abs() < 1e-12);
        let u = QFormat::unsigned(8, 8);
        assert_eq!(u.raw_min(), 0);
        assert_eq!(u.raw_max(), 255);
        assert!((u.max_value() - 255.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn f64_round_trip_within_resolution() {
        let q = QFormat::signed(16, 10);
        for &v in &[0.0, 1.0, -1.0, 0.123, -3.9, 5.4321] {
            let raw = q.raw_from_f64(v, Rounding::Nearest);
            let back = q.f64_from_raw(raw);
            assert!(
                (back - v).abs() <= q.resolution() / 2.0 + 1e-12,
                "{v} → {back}"
            );
        }
    }

    #[test]
    fn saturation_on_conversion() {
        let q = QFormat::signed(8, 4);
        assert_eq!(q.raw_from_f64(100.0, Rounding::Nearest), q.raw_max());
        assert_eq!(q.raw_from_f64(-100.0, Rounding::Nearest), q.raw_min());
        let (v, clipped) = q.saturate(1000);
        assert_eq!(v, 127);
        assert!(clipped);
        let (v, clipped) = q.saturate(-5);
        assert_eq!(v, -5);
        assert!(!clipped);
    }

    #[test]
    fn product_and_accumulator_formats() {
        let a = QFormat::signed(8, 6);
        let w = QFormat::signed(8, 7);
        let p = a.product(&w);
        assert_eq!(p.total_bits, 16);
        assert_eq!(p.frac_bits, 13);
        // 16 products → 4 guard bits? ⌈log2 16⌉ = 5 by the leading_zeros
        // formula on n=16 (bits needed to count 16 items).
        let acc = a.accumulator(&w, 16);
        assert_eq!(acc.frac_bits, 13);
        assert!(acc.total_bits >= p.total_bits + 4);
        assert!(acc.signed);
    }

    #[test]
    fn accumulator_never_overflows_worst_case() {
        let a = QFormat::signed(8, 6);
        let w = QFormat::signed(8, 7);
        let n = 16usize;
        let acc = a.accumulator(&w, n);
        // Worst case: n × (most negative × most negative products).
        let worst = (a.raw_min() * w.raw_min()) as i128 * n as i128;
        assert!(worst <= acc.raw_max() as i128);
    }

    #[test]
    fn display() {
        assert_eq!(QFormat::signed(8, 4).to_string(), "Q4.4");
        assert_eq!(QFormat::unsigned(10, 8).to_string(), "uQ2.8");
    }

    #[test]
    #[should_panic(expected = "invalid QFormat")]
    fn rejects_zero_width() {
        let _ = QFormat::signed(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds i64 headroom")]
    fn rejects_oversized_product() {
        let a = QFormat::signed(40, 0);
        let _ = a.product(&a);
    }
}
