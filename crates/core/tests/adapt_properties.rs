//! Property-based tests of the adaptation controller: the retrain
//! recommendation is monotone in observed pilot BER, a reset restores
//! a healthy state, and evidence accumulation is order-insensitive
//! (the monitors are pure counters — paper §II-C).

use hybridem_core::adapt::{AdaptThresholds, AdaptationController, Recommendation};
use proptest::prelude::*;

/// Observes `errors` wrong bits out of `trials` in one call.
fn observe(c: &mut AdaptationController, errors: u64, trials: u64) {
    let tx = vec![0u8; trials as usize];
    let mut rx = tx.clone();
    for slot in rx.iter_mut().take(errors as usize) {
        *slot = 1;
    }
    c.observe_pilot_bits(&tx, &rx);
}

fn controller() -> AdaptationController {
    AdaptationController::new(AdaptThresholds::default())
}

proptest! {
    /// More pilot errors on the same trial count can only move the
    /// recommendation toward Retrain, never away from it.
    #[test]
    fn recommendation_is_monotone_in_pilot_ber(
        trials in 2_000u64..20_000,
        lo_errors in 0u64..2_000,
        extra in 0u64..2_000,
    ) {
        let lo = lo_errors.min(trials);
        let hi = (lo_errors + extra).min(trials);
        let mut a = controller();
        observe(&mut a, lo, trials);
        let mut b = controller();
        observe(&mut b, hi, trials);
        if a.recommendation() == Recommendation::Retrain {
            prop_assert_eq!(b.recommendation(), Recommendation::Retrain,
                "{} errors triggered but {} did not ({} trials)", lo, hi, trials);
        }
        // And the contrapositive direction for is_healthy.
        if b.is_healthy() {
            prop_assert!(a.is_healthy(),
                "{} errors healthy but {} not ({} trials)", hi, lo, trials);
        }
    }

    /// reset_after_retrain always restores the no-evidence state, no
    /// matter what was observed before: recommendation Continue, zero
    /// observations, retrain counter bumped.
    #[test]
    fn reset_restores_a_healthy_state(
        chunks in proptest::collection::vec((0u64..200, 1u64..500), 0..12),
        ecc in proptest::collection::vec((0u64..300, 1u64..3_000), 0..6),
    ) {
        let mut c = controller();
        for &(e, t) in &chunks {
            observe(&mut c, e.min(t), t);
        }
        for &(e, t) in &ecc {
            c.observe_ecc(e.min(t), t);
        }
        let before = c.retrains_triggered();
        c.reset_after_retrain();
        prop_assert_eq!(c.recommendation(), Recommendation::Continue);
        prop_assert_eq!(c.observations(), 0);
        prop_assert!(!c.is_healthy(), "no evidence is not *confidently* healthy");
        prop_assert_eq!(c.retrains_triggered(), before + 1);
    }

    /// The monitors are counters: feeding the same evidence chunks in
    /// reverse (or with pilot/ECC calls interleaved differently)
    /// yields the identical decision state.
    #[test]
    fn evidence_accumulation_is_order_insensitive(
        chunks in proptest::collection::vec((0u64..300, 1u64..800), 1..10),
        ecc in proptest::collection::vec((0u64..300, 1u64..3_000), 0..6),
    ) {
        let mut fwd = controller();
        for &(e, t) in &chunks {
            observe(&mut fwd, e.min(t), t);
        }
        for &(e, t) in &ecc {
            fwd.observe_ecc(e.min(t), t);
        }
        let mut rev = controller();
        // ECC first, then pilot chunks reversed: both streams permuted.
        for &(e, t) in ecc.iter().rev() {
            rev.observe_ecc(e.min(t), t);
        }
        for &(e, t) in chunks.iter().rev() {
            observe(&mut rev, e.min(t), t);
        }
        prop_assert_eq!(fwd.recommendation(), rev.recommendation());
        prop_assert_eq!(fwd.is_healthy(), rev.is_healthy());
        prop_assert_eq!(fwd.observations(), rev.observations());
    }

    /// Below the minimum observation count the controller never fires,
    /// whatever the error rate.
    #[test]
    fn no_decision_below_min_observations(
        trials in 1u64..2_000,
        errors in 0u64..2_000,
    ) {
        let mut c = controller();
        observe(&mut c, errors.min(trials), trials);
        prop_assert_eq!(c.recommendation(), Recommendation::Continue);
        prop_assert!(!c.is_healthy());
    }

    /// ECC evidence is monotone too: more corrected flips out of the
    /// same code-bit budget can only push toward Retrain.
    #[test]
    fn recommendation_is_monotone_in_ecc_flips(
        code_bits in 2_000u64..50_000,
        lo_flips in 0u64..5_000,
        extra in 0u64..5_000,
    ) {
        let lo = lo_flips.min(code_bits);
        let hi = (lo_flips + extra).min(code_bits);
        let mut a = controller();
        a.observe_ecc(lo, code_bits);
        let mut b = controller();
        b.observe_ecc(hi, code_bits);
        if a.recommendation() == Recommendation::Retrain {
            prop_assert_eq!(b.recommendation(), Recommendation::Retrain);
        }
    }
}
