//! Property tests of the block demapping contract for the learned
//! receiver family: the ANN demapper's single batched inference and
//! the hybrid centroid demapper's forwarded kernel are bit-exact with
//! their per-symbol `llrs` loops.

use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::Demapper;
use hybridem_core::demapper_ann::NeuralDemapper;
use hybridem_core::hybrid::HybridDemapper;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::model::MlpSpec;
use proptest::prelude::*;

fn random_block(len: usize, seed: u64) -> Vec<C32> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..len)
        .map(|_| C32::new(rng.normal_f32(), rng.normal_f32()))
        .collect()
}

fn assert_block_matches_per_symbol(d: &dyn Demapper, ys: &[C32]) {
    let m = d.bits_per_symbol();
    let mut block = vec![0f32; ys.len() * m];
    d.demap_block(ys, &mut block);
    let mut single = vec![0f32; m];
    for (s, &y) in ys.iter().enumerate() {
        d.llrs(y, &mut single);
        for k in 0..m {
            assert_eq!(
                block[s * m + k].to_bits(),
                single[k].to_bits(),
                "symbol {s} bit {k}: block {} vs per-symbol {}",
                block[s * m + k],
                single[k]
            );
        }
    }
}

proptest! {
    #[test]
    fn neural_demapper_block_bit_exact(
        len in 0usize..40,
        model_seed in 0u64..32,
        block_seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(model_seed);
        let d = NeuralDemapper::new(MlpSpec::paper_demapper_logits().build(&mut rng));
        assert_block_matches_per_symbol(&d, &random_block(len, block_seed));
    }

    #[test]
    fn hybrid_demapper_block_bit_exact(
        len in 0usize..40,
        theta in -3.2f32..3.2,
        sigma in 0.05f32..0.5,
        block_seed in any::<u64>(),
    ) {
        // Rotated centroid sets: the post-retraining deployment case.
        let centroids = Constellation::qam_gray(16).rotated(theta);
        let d = HybridDemapper::from_centroids(centroids, sigma);
        assert_block_matches_per_symbol(&d, &random_block(len, block_seed));
    }

    #[test]
    fn neural_decide_symbols_matches_scalar_path(
        len in 1usize..64,
        model_seed in 0u64..16,
        block_seed in any::<u64>(),
    ) {
        // The extraction sampling primitive: batched label decisions
        // equal the one-sample decision rule.
        let mut rng = Xoshiro256pp::seed_from_u64(model_seed);
        let d = NeuralDemapper::new(MlpSpec::paper_demapper_logits().build(&mut rng));
        let ys = random_block(len, block_seed);
        let mut labels = Vec::new();
        d.decide_symbols(&ys, &mut labels);
        prop_assert_eq!(labels.len(), ys.len());
        for (s, &y) in ys.iter().enumerate() {
            prop_assert_eq!(labels[s], d.decide_symbol(y), "sample {}", s);
        }
    }
}
