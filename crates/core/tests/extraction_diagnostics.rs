//! Manual diagnostic for extraction quality (run with --ignored):
//! prints per-symbol centroid displacement and BER of every receiver
//! at the paper's full training budget.

use hybridem_comm::channel::Awgn;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::MaxLogMap;
use hybridem_comm::linksim::{simulate_link, LinkSpec};
use hybridem_core::config::SystemConfig;
use hybridem_core::hybrid::HybridDemapper;
use hybridem_core::pipeline::HybridPipeline;

#[test]
#[ignore]
fn extraction_diagnostics() {
    let mut cfg = SystemConfig::paper_default();
    cfg.grid_n = 128;
    cfg.e2e_steps = 8000;
    cfg.batch_size = 512;
    cfg.e2e_lr = 8e-3;
    cfg.snr_db = 8.0;
    let mut pipe = HybridPipeline::new(cfg);
    let loss = pipe.e2e_train();
    println!("loss {loss}");
    let report = pipe.extract_centroids();
    println!(
        "missing {:?} comps {:?} vdis {}",
        report.missing_labels, report.components, report.voronoi_disagreement
    );
    let learned = pipe.constellation();
    for u in 0..16 {
        let p = learned.point(u);
        let c = report.centroids[u];
        let v = report.vertex_centroids[u];
        println!(
            "{u:2}: point ({:+.3},{:+.3}) mass ({:+.3},{:+.3}) d={:.3} vert {:?}",
            p.re,
            p.im,
            c.re,
            c.im,
            p.dist_sqr(c).sqrt(),
            v.map(|v| (v.re, v.im))
        );
    }
    let sigma = pipe.config().sigma();
    let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());
    let eval = |name: &str, demapper: &dyn hybridem_comm::demapper::Demapper| {
        let spec = LinkSpec::new(&learned, &channel, demapper, 200_000, 5);
        let r = simulate_link(&spec);
        println!("{name}: ber {:.4e}", r.ber());
    };
    eval("ae", pipe.ann_demapper());
    eval("hybrid-mass", pipe.hybrid_demapper().unwrap());
    let genie = MaxLogMap::new(learned.clone(), sigma);
    eval("genie-learned-points", &genie);
    let vc: Vec<_> = report
        .vertex_centroids
        .iter()
        .enumerate()
        .map(|(u, v)| v.unwrap_or(report.centroids[u]))
        .collect();
    let hv = HybridDemapper::from_centroids(Constellation::from_points(vc), sigma);
    eval("hybrid-vertex", &hv);
    let qam = Constellation::qam_gray(16);
    let conv = MaxLogMap::new(qam.clone(), sigma);
    let spec = LinkSpec::new(&qam, &channel, &conv, 200_000, 5);
    println!("conventional: {:.4e}", simulate_link(&spec).ber());
}
