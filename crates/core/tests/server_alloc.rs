//! No-alloc steady-state contract of the link server (DESIGN.md §12.4,
//! extending the PR 4 counting-allocator contract to the gather /
//! scatter path): after a warmup round at full load, serving frames
//! allocates nothing — session scratch, the round plan, the gather
//! buffers and the pool's deques all reuse their capacity.
//!
//! The assertions run with `workers: 1`, where every chunk executes
//! inline on this (counted) thread, making the measurement exact and
//! deterministic. With background workers the per-frame work is the
//! same closures on other threads plus per-round condvar signalling —
//! none of which allocates — but which thread runs which chunk is
//! scheduler-dependent, so a thread-local counter could not pin it.
//! ECC-monitored sessions are excluded by design: `ConvCode::encode` /
//! `Viterbi::decode_soft` allocate internally (documented in
//! `core::server`), so the contract is stated for pilot monitoring.

use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::MaxLogMap;
use hybridem_comm::trajectory::{ChannelState, Trajectory};
use hybridem_core::server::{LinkServer, ServerCfg, SessionCfg, SessionId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

/// System allocator with a per-thread allocation counter (same rig as
/// the fpga/nn alloc tests): counting thread-locally isolates the
/// measured region from the test harness.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

const LINKS: u64 = 256;
const FRAMES: u32 = 100;

fn fleet(batch_links: usize) -> (LinkServer, Vec<SessionId>) {
    let qam = Constellation::qam_gray(16);
    let mut server = LinkServer::new(ServerCfg {
        workers: 1,
        queue_cap: FRAMES + 1,
        batch_links,
    });
    let backend = server.register_backend(qam.clone(), Arc::new(MaxLogMap::new(qam, 0.2)) as _);
    let ids = (0..LINKS)
        .map(|i| {
            let mut cfg = SessionCfg::new(
                backend,
                Trajectory::constant("awgn", ChannelState::clean(10.0), 1),
                i,
            );
            cfg.frame_symbols = 32;
            cfg.pilot_symbols = 8;
            server.open_session(cfg)
        })
        .collect();
    (server, ids)
}

fn assert_steady_state_alloc_free(batch_links: usize, label: &str) {
    let (mut server, ids) = fleet(batch_links);
    // Warmup: one full-load round grows every buffer — session
    // scratch, plan vectors, gather buffers, pool deques — to its
    // high-water mark.
    for &id in &ids {
        server.submit(id, 1).unwrap();
    }
    assert_eq!(server.serve(), LINKS);

    let before = allocations();
    for _ in 0..FRAMES {
        for &id in &ids {
            server.submit(id, 1).unwrap();
        }
        server.serve_round();
    }
    assert_eq!(
        allocations() - before,
        0,
        "{label}: steady state over {FRAMES} frames × {LINKS} links must not allocate"
    );
    assert_eq!(server.aggregate().frames, u64::from(FRAMES + 1) * LINKS);
}

#[test]
fn batched_steady_state_allocates_nothing() {
    // 256 links / 64-link batches: the gather → one demap_block →
    // scatter path.
    assert_steady_state_alloc_free(64, "batched");
}

#[test]
fn unbatched_steady_state_allocates_nothing() {
    // batch_links = 1: the per-link in-place demap path.
    assert_steady_state_alloc_free(1, "unbatched");
}

#[test]
fn steady_state_survives_queue_depth_changes_without_allocating() {
    // Varying queued depth (multi-round drains) must still reuse the
    // warm plan: the active set shrinks and regrows, never exceeding
    // the warmed high-water mark.
    let (mut server, ids) = fleet(32);
    for &id in &ids {
        server.submit(id, 3).unwrap();
    }
    assert_eq!(server.serve(), LINKS * 3);

    let before = allocations();
    for round in 0..20u32 {
        for (i, &id) in ids.iter().enumerate() {
            server.submit(id, 1 + (i as u32 + round) % 3).unwrap();
        }
        server.serve();
    }
    assert_eq!(
        allocations() - before,
        0,
        "drain loops at varying depth must not allocate"
    );
}
