//! Channel-change detection and retrain triggering.
//!
//! Paper §II-C: "the performance of the system can be regularly
//! evaluated, either by periodically sending pilot symbols to trigger
//! retraining of the demapper if the bit error rate reaches a
//! threshold, or by using an outer error correction code … the number
//! of bit flips that are corrected by the ECC can guide as performance
//! metric."
//!
//! [`AdaptationController`] implements both monitors with hysteresis:
//! the *retrain* decision requires statistical confidence (the Wilson
//! lower bound of the observed error rate must exceed the threshold),
//! so a brief noise burst does not trigger a spurious retrain, while
//! the *resume* decision requires the upper bound to fall back below a
//! lower threshold.

use hybridem_mathkit::stats::ErrorCounter;

/// Trigger thresholds.
#[derive(Clone, Copy, Debug)]
pub struct AdaptThresholds {
    /// Retrain when the pilot-BER Wilson lower bound exceeds this.
    pub ber_retrain: f64,
    /// Consider the channel healthy when the upper bound falls below
    /// this (must be < `ber_retrain`; the gap is the hysteresis).
    pub ber_healthy: f64,
    /// Minimum observed pilot bits before any decision.
    pub min_observations: u64,
    /// Retrain when the ECC corrected-flip rate exceeds this.
    pub ecc_flip_rate_retrain: f64,
    /// Confidence multiplier (z-score) for the Wilson bounds.
    pub z: f64,
}

impl Default for AdaptThresholds {
    fn default() -> Self {
        Self {
            ber_retrain: 0.05,
            ber_healthy: 0.02,
            min_observations: 2_000,
            ecc_flip_rate_retrain: 0.08,
            z: 2.58, // 99 %
        }
    }
}

/// What the controller recommends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recommendation {
    /// Keep operating; not enough evidence of degradation.
    Continue,
    /// The channel has drifted: retrain the demapper.
    Retrain,
}

/// Sliding-window monitor over pilot errors and ECC corrections.
#[derive(Clone, Debug)]
pub struct AdaptationController {
    thresholds: AdaptThresholds,
    pilots: ErrorCounter,
    ecc_flips: ErrorCounter,
    retrains_triggered: u64,
}

impl AdaptationController {
    /// New controller.
    pub fn new(thresholds: AdaptThresholds) -> Self {
        assert!(
            thresholds.ber_healthy < thresholds.ber_retrain,
            "hysteresis gap must be positive"
        );
        Self {
            thresholds,
            pilots: ErrorCounter::new(),
            ecc_flips: ErrorCounter::new(),
            retrains_triggered: 0,
        }
    }

    /// Records a pilot comparison: transmitted vs decided bits.
    pub fn observe_pilot_bits(&mut self, tx: &[u8], rx: &[u8]) {
        assert_eq!(tx.len(), rx.len());
        let errors = tx.iter().zip(rx).filter(|(a, b)| a != b).count() as u64;
        self.pilots.record(errors, tx.len() as u64);
    }

    /// Records an ECC decode outcome: corrected flips out of total
    /// code bits.
    pub fn observe_ecc(&mut self, corrected: u64, code_bits: u64) {
        self.ecc_flips.record(corrected, code_bits);
    }

    /// Pilot bits observed since the last reset.
    pub fn observations(&self) -> u64 {
        self.pilots.trials()
    }

    /// Number of retrains this controller has triggered.
    pub fn retrains_triggered(&self) -> u64 {
        self.retrains_triggered
    }

    /// Current recommendation.
    pub fn recommendation(&self) -> Recommendation {
        let th = &self.thresholds;
        // Pilot-BER evidence.
        if self.pilots.trials() >= th.min_observations {
            let (lo, _) = self.pilots.wilson_interval(th.z);
            if lo > th.ber_retrain {
                return Recommendation::Retrain;
            }
        }
        // ECC evidence (each corrected flip ≈ one channel error caught).
        if self.ecc_flips.trials() >= th.min_observations {
            let (lo, _) = self.ecc_flips.wilson_interval(th.z);
            if lo > th.ecc_flip_rate_retrain {
                return Recommendation::Retrain;
            }
        }
        Recommendation::Continue
    }

    /// True when the monitored channel is confidently healthy (used to
    /// leave the retraining state).
    pub fn is_healthy(&self) -> bool {
        if self.pilots.trials() < self.thresholds.min_observations {
            return false;
        }
        let (_, hi) = self.pilots.wilson_interval(self.thresholds.z);
        hi < self.thresholds.ber_healthy
    }

    /// Clears the monitors after a retrain completed.
    pub fn reset_after_retrain(&mut self) {
        self.pilots = ErrorCounter::new();
        self.ecc_flips = ErrorCounter::new();
        self.retrains_triggered += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptationController {
        AdaptationController::new(AdaptThresholds::default())
    }

    #[test]
    fn quiet_channel_continues() {
        let mut c = controller();
        let tx = vec![0u8; 10_000];
        let rx = tx.clone();
        c.observe_pilot_bits(&tx, &rx);
        assert_eq!(c.recommendation(), Recommendation::Continue);
        assert!(c.is_healthy());
    }

    #[test]
    fn broken_channel_triggers_retrain() {
        let mut c = controller();
        // 30 % pilot BER — the π/4-offset disaster case.
        let tx = vec![0u8; 10_000];
        let mut rx = tx.clone();
        for (i, slot) in rx.iter_mut().enumerate() {
            if i % 10 < 3 {
                *slot = 1;
            }
        }
        c.observe_pilot_bits(&tx, &rx);
        assert_eq!(c.recommendation(), Recommendation::Retrain);
        assert!(!c.is_healthy());
    }

    #[test]
    fn insufficient_evidence_never_triggers() {
        let mut c = controller();
        // 100 % BER but only 100 bits — below min_observations.
        let tx = vec![0u8; 100];
        let rx = vec![1u8; 100];
        c.observe_pilot_bits(&tx, &rx);
        assert_eq!(c.recommendation(), Recommendation::Continue);
    }

    #[test]
    fn hysteresis_band_is_respected() {
        let mut c = controller();
        // BER 3 %: above healthy (2 %) but below retrain (5 %) —
        // neither healthy nor retraining.
        let tx = vec![0u8; 100_000];
        let mut rx = tx.clone();
        for (i, slot) in rx.iter_mut().enumerate() {
            if i % 100 < 3 {
                *slot = 1;
            }
        }
        c.observe_pilot_bits(&tx, &rx);
        assert_eq!(c.recommendation(), Recommendation::Continue);
        assert!(!c.is_healthy());
    }

    #[test]
    fn ecc_flip_rate_triggers() {
        let mut c = controller();
        // 12 % corrected-flip rate over plenty of code bits.
        c.observe_ecc(1_200, 10_000);
        assert_eq!(c.recommendation(), Recommendation::Retrain);
    }

    #[test]
    fn reset_clears_and_counts() {
        let mut c = controller();
        let tx = vec![0u8; 10_000];
        let rx = vec![1u8; 10_000];
        c.observe_pilot_bits(&tx, &rx);
        assert_eq!(c.recommendation(), Recommendation::Retrain);
        c.reset_after_retrain();
        assert_eq!(c.recommendation(), Recommendation::Continue);
        assert_eq!(c.observations(), 0);
        assert_eq!(c.retrains_triggered(), 1);
    }

    #[test]
    #[should_panic(expected = "hysteresis gap")]
    fn bad_thresholds_rejected() {
        let _ = AdaptationController::new(AdaptThresholds {
            ber_retrain: 0.01,
            ber_healthy: 0.02,
            ..AdaptThresholds::default()
        });
    }
}
