//! The neural demapper and its receiver-facing adapters.
//!
//! The demapper MLP is trained on logits (fused BCE); at the receiver
//! its outputs convert directly to LLRs. With `p_k = σ(z_k) =
//! P(b_k = 1 | y)`, the workspace LLR convention
//! (`LLR = ln P(b=0) − ln P(b=1)`) gives simply `LLR_k = −z_k` — the
//! sigmoid never needs to be evaluated for demapping.

use hybridem_comm::demapper::Demapper;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::matrix::Matrix;
use hybridem_nn::Sequential;

/// A trained demapper network with receiver adapters.
pub struct NeuralDemapper {
    model: Sequential,
}

impl NeuralDemapper {
    /// Wraps a logit-output model (`2 → … → m`).
    pub fn new(model: Sequential) -> Self {
        assert_eq!(model.input_dim(), 2, "demapper input must be I/Q");
        Self { model }
    }

    /// The underlying model (e.g. for snapshotting or FPGA export).
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access (training).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(&self) -> usize {
        self.model.output_dim()
    }

    /// Logits for a batch of received samples (`batch × 2` I/Q rows).
    pub fn logits(&self, samples: &Matrix<f32>) -> Matrix<f32> {
        self.model.infer(samples)
    }

    /// Bit probabilities `P(b_k = 1 | y)` for a batch.
    pub fn probabilities(&self, samples: &Matrix<f32>) -> Matrix<f32> {
        self.logits(samples)
            .map(hybridem_mathkit::special::sigmoid_f32)
    }

    /// Hard symbol decision for one sample: the label formed by the
    /// per-bit decisions (MSB first) — the sampling primitive of the
    /// decision-region extraction.
    pub fn decide_symbol(&self, y: C32) -> usize {
        let z = self.logits(&Matrix::from_vec(1, 2, vec![y.re, y.im]));
        let m = self.bits_per_symbol();
        let mut label = 0usize;
        for k in 0..m {
            label = (label << 1) | usize::from(z[(0, k)] > 0.0);
        }
        label
    }
}

impl Demapper for NeuralDemapper {
    fn bits_per_symbol(&self) -> usize {
        self.model.output_dim()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let z = self.logits(&Matrix::from_vec(1, 2, vec![y.re, y.im]));
        let m = self.bits_per_symbol();
        for k in 0..m {
            out[k] = -z[(0, k)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::Xoshiro256pp;
    use hybridem_nn::model::MlpSpec;

    fn demapper(seed: u64) -> NeuralDemapper {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NeuralDemapper::new(MlpSpec::paper_demapper_logits().build(&mut rng))
    }

    #[test]
    fn llr_sign_matches_probability() {
        let d = demapper(1);
        let y = C32::new(0.3, -0.8);
        let mut llr = [0f32; 4];
        d.llrs(y, &mut llr);
        let p = d.probabilities(&Matrix::from_vec(1, 2, vec![y.re, y.im]));
        for k in 0..4 {
            // p > 0.5 ⇔ bit 1 more likely ⇔ LLR < 0.
            assert_eq!(p[(0, k)] > 0.5, llr[k] < 0.0, "bit {k}");
        }
    }

    #[test]
    fn decide_symbol_consistent_with_llrs() {
        let d = demapper(2);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut llr = [0f32; 4];
        for _ in 0..100 {
            let y = C32::new(rng.normal_f32(), rng.normal_f32());
            let label = d.decide_symbol(y);
            d.llrs(y, &mut llr);
            for (k, &l) in llr.iter().enumerate() {
                let bit = (label >> (3 - k)) & 1;
                assert_eq!(bit == 1, l < 0.0);
            }
        }
    }

    #[test]
    fn batch_and_single_paths_agree() {
        let d = demapper(4);
        let batch = Matrix::from_rows(&[&[0.1f32, 0.2], &[-0.5, 0.9]]);
        let zs = d.logits(&batch);
        let mut llr = [0f32; 4];
        d.llrs(C32::new(0.1, 0.2), &mut llr);
        for k in 0..4 {
            assert!((llr[k] + zs[(0, k)]).abs() < 1e-6);
        }
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = demapper(5);
        let batch = Matrix::from_rows(&[&[3.0f32, -3.0]]);
        let p = d.probabilities(&batch);
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
